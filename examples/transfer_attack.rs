//! Black-box transfer attack (paper Sec. VI): poison the graph with the
//! OddBall-designed BinarizedAttack and watch a *different* detector —
//! ReFeX embeddings + MLP — lose its grip on the targets, while its
//! global accuracy barely moves (the "unnoticeable" property).
//!
//! Run: `cargo run --release --example transfer_attack`

use binarized_attack::gad::{
    evaluate_system, identify_targets, pipeline::delta_b, pipeline::oddball_labels,
    train_test_split, GadSystem, RefexConfig, TransferConfig,
};
use binarized_attack::prelude::*;

fn main() {
    // Build a trust-network-like graph with planted fraud structures.
    let g = binarized_attack::datasets::Dataset::BitcoinAlpha.build_scaled(500, 1200, 21);
    println!("graph: {} nodes, {} edges", g.num_nodes(), g.num_edges());

    // Step 1 — pre-processing: OddBall labels + train/test split.
    let tcfg = TransferConfig::default();
    let labels = oddball_labels(&g, tcfg.label_fraction);
    let (train, test) = train_test_split(g.num_nodes(), tcfg.train_fraction, tcfg.seed);

    // Step 2 — target identification on the clean graph.
    let system = GadSystem::Refex(RefexConfig::default());
    let (targets, clean) = identify_targets(&system, &g, &labels, &train, &test, &tcfg);
    println!(
        "clean {}: AUC {:.3}, F1 {:.3}; {} test nodes flagged anomalous (the targets)",
        system.name(),
        clean.auc,
        clean.f1,
        targets.len()
    );
    assert!(!targets.is_empty(), "need at least one identified target");

    // Step 3 — graph poisoning, black-box w.r.t. ReFeX.
    let budget = 25;
    let attack = BinarizedAttack::new(AttackConfig::default());
    let outcome = attack.attack(&g, &targets, budget).expect("attack");
    let poisoned = outcome.poisoned_graph(&g, budget);

    // Step 4 — evaluation: defender retrains on the poisoned graph
    // (labels stay fixed from pre-processing, paper Sec. VI-B).
    let after = evaluate_system(&system, &poisoned, &labels, &train, &test, &targets, &tcfg);
    let db = delta_b(clean.target_soft_sum, after.target_soft_sum);
    println!(
        "poisoned {}: AUC {:.3}, F1 {:.3}; target soft labels {:.2} -> {:.2} (delta_B = {:.1}%)",
        system.name(),
        after.auc,
        after.f1,
        clean.target_soft_sum,
        after.target_soft_sum,
        100.0 * db
    );
    assert!(db > 0.0, "transfer attack should reduce target soft labels");
}
