//! Drop-in real data: run the full pipeline on any SNAP-style edge list.
//! If no path is given, a synthetic stand-in is written to a temp file
//! first, so the example is runnable offline end to end — but point it
//! at the real `soc-sign-bitcoinalpha.csv`-derived edge list to
//! reproduce the paper's exact setting.
//!
//! Run: `cargo run --release --example real_data [-- /path/to/edges.txt]`

use binarized_attack::datasets;
use binarized_attack::prelude::*;

fn main() {
    let arg = std::env::args().nth(1);
    let path = match arg {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            // Offline fallback: synthesise a graph and save it, to show
            // the exact file-based workflow.
            let tmp = std::env::temp_dir().join("binattack_example.edges");
            let g = datasets::Dataset::Wikivote.build_scaled(600, 2800, 11);
            binarized_attack::graph::io::save_edge_list(&g, &tmp).expect("save");
            println!(
                "(no path given; wrote a synthetic stand-in to {})",
                tmp.display()
            );
            tmp
        }
    };

    // The paper's pre-processing: sample a connected ~1000-node subgraph.
    let g = datasets::load_real(&path, 1000, 17).expect("load edge list");
    println!(
        "loaded {}: {} nodes, {} edges after BFS sampling",
        path.display(),
        g.num_nodes(),
        g.num_edges()
    );

    let detector = OddBall::default();
    let model = detector.fit(&g).expect("fit");
    println!(
        "power law: ln E = {:.3} + {:.3} ln N  (paper: 1 <= slope <= 2)",
        model.beta0(),
        model.beta1()
    );

    // Sample 10 targets from the top-50 ranking (paper Sec. VIII-A3) and
    // attack with a 1.75% edge budget.
    let targets: Vec<NodeId> = model.top_k(10).into_iter().map(|(i, _)| i).collect();
    let budget = (g.num_edges() as f64 * 0.0175).round() as usize;
    let s0 = model.target_score_sum(&targets);
    let attack = BinarizedAttack::new(AttackConfig::default());
    let outcome = attack.attack(&g, &targets, budget).expect("attack");
    let poisoned = outcome.poisoned_graph(&g, budget);
    let sb = detector
        .fit(&poisoned)
        .expect("fit poisoned")
        .target_score_sum(&targets);
    println!(
        "attacked {} targets with {} edge flips: AScore sum {s0:.2} -> {sb:.2} (tau_as {:.1}%)",
        targets.len(),
        outcome.ops(budget).len(),
        100.0 * (s0 - sb) / s0.max(1e-12)
    );
}
