//! Botnet command-and-control evasion — the paper's motivating scenario
//! (Sec. I): a C&C centre coordinates its bots' communications, i.e. it
//! *globally optimises the structure of the communication graph* to
//! evade graph-based botnet detection.
//!
//! The C&C node is a near-star (many bots, few bot-to-bot links), which
//! OddBall flags. The attacker may only REWIRE BOT TRAFFIC — here we
//! model that as edge additions among the C&C's neighbours plus
//! deletions of its spokes — and wants the C&C to leave the top-10
//! anomaly ranking.
//!
//! Run: `cargo run --release --example botnet_cc`

use binarized_attack::prelude::*;

fn main() {
    // Benign background traffic plus a 60-bot C&C star.
    let mut g = generators::erdos_renyi(500, 0.015, 7);
    generators::attach_isolated(&mut g, 8);
    let cc: NodeId = 499;
    generators::plant_near_star(&mut g, cc, 60, 9);
    println!(
        "communication graph: {} hosts, {} flows; C&C degree = {}",
        g.num_nodes(),
        g.num_edges(),
        g.degree(cc)
    );

    let detector = OddBall::default();
    let before = detector.fit(&g).expect("fit");
    let rank_before = before
        .top_k(g.num_nodes())
        .iter()
        .position(|&(n, _)| n == cc)
        .unwrap()
        + 1;
    println!(
        "C&C anomaly rank before attack: {rank_before} (score {:.3})",
        before.score(cc)
    );

    // The C&C center coordinates its own bots: candidate flips restricted
    // to its neighbourhood (bot-to-bot links + its own spokes).
    let cfg = AttackConfig {
        scope: CandidateScope::TargetNeighborhood,
        ..AttackConfig::default()
    };
    let attack = BinarizedAttack::new(cfg).with_iterations(150);
    let budget = 40;
    let outcome = attack.attack(&g, &[cc], budget).expect("attack");
    let poisoned = outcome.poisoned_graph(&g, budget);

    let after = detector.fit(&poisoned).expect("fit poisoned");
    let rank_after = after
        .top_k(g.num_nodes())
        .iter()
        .position(|&(n, _)| n == cc)
        .unwrap()
        + 1;
    let ops = outcome.ops(budget);
    let adds = ops.iter().filter(|o| o.added).count();
    println!(
        "rewired {} flows ({adds} new bot-to-bot links, {} dropped spokes)",
        ops.len(),
        ops.len() - adds
    );
    println!(
        "C&C anomaly rank after attack: {rank_after} (score {:.3})",
        after.score(cc)
    );
    assert!(after.score(cc) < before.score(cc));
    assert!(
        rank_after > 10,
        "C&C should leave the top-10 (got rank {rank_after})"
    );
}
