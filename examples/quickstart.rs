//! Quickstart: score a graph with OddBall, pick the riskiest node, make
//! it evade detection with BinarizedAttack.
//!
//! Run: `cargo run --release --example quickstart`

use binarized_attack::prelude::*;

fn main() {
    // 1. A synthetic social graph with a planted fraud ring (near-clique).
    let mut g = generators::erdos_renyi(400, 0.02, 42);
    generators::attach_isolated(&mut g, 43);
    let ring: Vec<NodeId> = (0..9).collect();
    generators::plant_near_clique(&mut g, &ring, 1.0, 44);
    println!("graph: {} nodes, {} edges", g.num_nodes(), g.num_edges());

    // 2. The defender's view: OddBall anomaly scores.
    let detector = OddBall::default();
    let model = detector.fit(&g).expect("OddBall fit");
    println!(
        "power law fit: ln E = {:.3} + {:.3} ln N",
        model.beta0(),
        model.beta1()
    );
    println!("top-5 anomalies (node, AScore):");
    for (node, score) in model.top_k(5) {
        println!("  v{node:<4} {score:.3}");
    }

    // 3. The attacker: hide the single riskiest node with ≤ 12 edge flips.
    let target = model.top_k(1)[0].0;
    let attack = BinarizedAttack::new(AttackConfig::default());
    let outcome = attack.attack(&g, &[target], 12).expect("attack");
    let poisoned = outcome.poisoned_graph(&g, 12);

    // 4. The defender re-fits on the poisoned graph.
    let model_after = detector.fit(&poisoned).expect("fit poisoned");
    let (s0, sb) = (model.score(target), model_after.score(target));
    println!(
        "\ntarget v{target}: AScore {s0:.3} -> {sb:.3} after {} flips",
        outcome.ops(12).len()
    );
    let rank_after = model_after
        .top_k(g.num_nodes())
        .iter()
        .position(|&(n, _)| n == target)
        .unwrap();
    println!("rank among anomalies: 1 -> {}", rank_after + 1);
    assert!(sb < s0, "the attack must reduce the target's score");
}
