//! Countermeasures (paper Sec. VII): swap OddBall's OLS estimator for
//! Huber or RANSAC and measure how much of the attack survives. The
//! paper's finding — robust estimation only *slightly* mitigates
//! BinarizedAttack — falls out directly.
//!
//! Run: `cargo run --release --example robust_defense`

use binarized_attack::prelude::*;

fn main() {
    let g = binarized_attack::datasets::Dataset::BitcoinAlpha.build_scaled(500, 1200, 33);
    let ols = OddBall::default();
    let model = ols.fit(&g).expect("fit");
    let targets: Vec<NodeId> = model.top_k(5).into_iter().map(|(i, _)| i).collect();
    println!(
        "attacking {} targets on a {}-node trust graph",
        targets.len(),
        g.num_nodes()
    );

    let budget = 25;
    let attack = BinarizedAttack::new(AttackConfig::default());
    let outcome = attack.attack(&g, &targets, budget).expect("attack");
    let poisoned = outcome.poisoned_graph(&g, budget);

    println!(
        "{:>12}  {:>10}  {:>10}  {:>8}",
        "estimator", "S_clean", "S_poison", "tau_as"
    );
    let mut taus = Vec::new();
    for (name, reg) in [
        ("OLS", Regressor::Ols),
        ("Huber", Regressor::default_huber()),
        ("RANSAC", Regressor::default_ransac(5)),
    ] {
        let det = OddBall::new(reg);
        let s0 = det.fit(&g).expect("fit clean").target_score_sum(&targets);
        let sb = det
            .fit(&poisoned)
            .expect("fit poisoned")
            .target_score_sum(&targets);
        let tau = (s0 - sb) / s0.max(1e-12);
        println!("{name:>12}  {s0:>10.3}  {sb:>10.3}  {tau:>8.3}");
        taus.push(tau);
    }
    // The attack must remain effective under every estimator (paper:
    // robust estimation "slightly mitigates" it).
    for (i, tau) in taus.iter().enumerate() {
        assert!(
            *tau > 0.15,
            "estimator #{i} fully defended (tau = {tau}) — unexpected"
        );
    }
}
