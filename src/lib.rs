//! # binarized-attack
//!
//! Façade crate for the BinarizedAttack reproduction (ICDE 2022):
//! re-exports the workspace crates under one roof and provides a
//! [`prelude`] for examples and downstream users.
//!
//! See the repository `README.md` for the architecture overview and
//! `DESIGN.md` / `EXPERIMENTS.md` for the paper-reproduction index.

pub use ba_autodiff as autodiff;
pub use ba_core as attack;
pub use ba_datasets as datasets;
pub use ba_gad as gad;
pub use ba_graph as graph;
pub use ba_linalg as linalg;
pub use ba_oddball as oddball;
pub use ba_serve as serve;
pub use ba_stats as stats;
pub use ba_stream as stream;

/// Commonly used items, for `use binarized_attack::prelude::*;`.
pub mod prelude {
    pub use ba_core::{
        AttackConfig, AttackOutcome, BinarizedAttack, CandidateScope, ContinuousA, EdgeOpKind,
        GradMaxSearch, RandomAttack, StructuralAttack,
    };
    pub use ba_graph::{generators, Graph, NodeId};
    pub use ba_oddball::{OddBall, Regressor};
    pub use ba_serve::{Connection, Request, Response, ServeConfig, Server};
    pub use ba_stream::{StreamConfig, StreamEngine, StreamEvent};
}
