//! Workspace-level integration tests: the complete pipelines a user of
//! the `binarized-attack` façade would run, spanning every crate.

use binarized_attack::datasets::Dataset;
use binarized_attack::prelude::*;

/// Full attack pipeline on each Table-I dataset (at reduced scale):
/// build → score → sample targets → attack → verify evasion.
#[test]
fn attack_pipeline_on_every_dataset() {
    for d in Dataset::all() {
        let (n, m) = d.paper_statistics();
        let g = d.build_scaled(n / 4, m / 4, 5);
        let detector = OddBall::default();
        let model = detector
            .fit(&g)
            .unwrap_or_else(|e| panic!("{}: {e}", d.name()));
        let targets: Vec<NodeId> = model.top_k(5).into_iter().map(|(i, _)| i).collect();
        let s0 = model.target_score_sum(&targets);
        assert!(s0 > 0.0, "{}: no anomaly signal to attack", d.name());

        let budget = (g.num_edges() / 40).clamp(5, 30);
        let attack = BinarizedAttack::new(AttackConfig::default())
            .with_iterations(60)
            .with_lambdas(vec![0.01, 0.05]);
        let outcome = attack
            .attack(&g, &targets, budget)
            .unwrap_or_else(|e| panic!("{}: attack failed: {e}", d.name()));
        let poisoned = outcome.poisoned_graph(&g, budget);
        let sb = detector.fit(&poisoned).unwrap().target_score_sum(&targets);
        assert!(
            sb < s0 * 0.9,
            "{}: attack too weak: {s0:.3} -> {sb:.3} with budget {budget}",
            d.name()
        );
    }
}

/// The three attack methods agree on the interface and the qualitative
/// ordering: gradient methods clearly beat random.
#[test]
fn method_ordering_holds() {
    let g = Dataset::BitcoinAlpha.build_scaled(300, 700, 9);
    let model = OddBall::default().fit(&g).unwrap();
    let targets: Vec<NodeId> = model.top_k(5).into_iter().map(|(i, _)| i).collect();
    let budget = 15;

    let run = |a: &dyn StructuralAttack| -> f64 {
        let o = a.attack(&g, &targets, budget).unwrap();
        let curve = o.ascore_curve(&g, &targets, &OddBall::default()).unwrap();
        ba_core::AttackOutcome::tau_as(&curve, o.max_budget().min(budget))
    };
    let bin = run(&BinarizedAttack::default()
        .with_iterations(60)
        .with_lambdas(vec![0.01, 0.05]));
    let gms = run(&GradMaxSearch::default());
    let rnd = run(&RandomAttack::default());
    assert!(bin > rnd, "binarized {bin} <= random {rnd}");
    assert!(gms > rnd, "gradmax {gms} <= random {rnd}");
    assert!(bin > 0.3, "binarized too weak: {bin}");
}

/// Graph IO round trip through the attack: poison, save, reload, and the
/// reloaded graph scores identically.
#[test]
fn poisoned_graph_io_roundtrip() {
    let g = Dataset::Er.build_scaled(250, 1200, 3);
    let model = OddBall::default().fit(&g).unwrap();
    let targets: Vec<NodeId> = model.top_k(3).into_iter().map(|(i, _)| i).collect();
    let attack = GradMaxSearch::default();
    let outcome = attack.attack(&g, &targets, 8).unwrap();
    let poisoned = outcome.poisoned_graph(&g, 8);

    let dir = std::env::temp_dir().join("ba_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("poisoned.edges");
    binarized_attack::graph::io::save_edge_list(&poisoned, &path).unwrap();
    let reloaded = binarized_attack::graph::io::load_edge_list(&path)
        .unwrap()
        .graph;
    std::fs::remove_file(&path).ok();

    // Isolated nodes cannot appear (attack forbids singletons), so the
    // reload preserves the node count and the score sum.
    assert_eq!(reloaded.num_edges(), poisoned.num_edges());
    if reloaded.num_nodes() == poisoned.num_nodes() {
        let s1 = OddBall::default().fit(&poisoned).unwrap().scores().to_vec();
        let s2 = OddBall::default().fit(&reloaded).unwrap().scores().to_vec();
        let sum1: f64 = s1.iter().sum();
        let sum2: f64 = s2.iter().sum();
        assert!((sum1 - sum2).abs() < 1e-6);
    }
}

/// Autodiff façade re-export sanity: the tape differentiates through the
/// same scoring shape the library uses.
#[test]
fn facade_autodiff_reexport_works() {
    use binarized_attack::autodiff::Tape;
    let tape = Tape::new();
    let e = tape.var(10.0);
    let c = tape.var(4.0);
    let score = (e.max(c) / e.min(c)) * ((e - c).abs() + 1.0).ln();
    let g = score.backward();
    assert!(g.wrt(e).is_finite());
    assert!(g.wrt(c) < 0.0); // raising the prediction toward E lowers the score
}

/// Defence integration: robust OddBall variants still fit and rank on a
/// poisoned graph, and mitigation is bounded (paper: slight).
#[test]
fn robust_defense_bounded_mitigation() {
    let g = Dataset::Wikivote.build_scaled(300, 1400, 13);
    let model = OddBall::default().fit(&g).unwrap();
    let targets: Vec<NodeId> = model.top_k(4).into_iter().map(|(i, _)| i).collect();
    let attack = BinarizedAttack::default()
        .with_iterations(60)
        .with_lambdas(vec![0.01, 0.05]);
    let outcome = attack.attack(&g, &targets, 15).unwrap();
    let poisoned = outcome.poisoned_graph(&g, 15);
    for reg in [
        Regressor::Ols,
        Regressor::default_huber(),
        Regressor::default_ransac(3),
    ] {
        let det = OddBall::new(reg);
        let s0 = det.fit(&g).unwrap().target_score_sum(&targets);
        let sb = det.fit(&poisoned).unwrap().target_score_sum(&targets);
        let tau = (s0 - sb) / s0.max(1e-12);
        assert!(tau > 0.1, "{reg:?}: attack fully defended (tau = {tau})");
    }
}

/// The orchestrator path end to end: dataset generation → parallel
/// attack grid over a shared frozen substrate → CSV artifact + cell
/// manifest on disk, with a fixed-seed golden row count.
#[test]
fn orchestrator_grid_end_to_end() {
    use ba_bench::artifact::Manifest;
    use ba_bench::experiments::{Fig4Experiment, Fig4Method, Fig4Panel};
    use ba_bench::runner::{DatasetSpec, ExperimentRunner};
    use ba_bench::ExpOptions;

    let dir = std::env::temp_dir().join("ba_e2e_orchestrator");
    let _ = std::fs::remove_dir_all(&dir);
    let exp = Fig4Experiment {
        name: "e2e_grid".to_string(),
        csv_name: "e2e_grid.csv".to_string(),
        panels: vec![Fig4Panel {
            label: "ER".to_string(),
            spec: DatasetSpec::scaled(Dataset::Er, 200, 700),
            num_targets: 3,
            budget_frac: 0.01,
        }],
        methods: vec![Fig4Method::Binarized, Fig4Method::GradMax],
        samples: 2,
        pool: 20,
        bin_iters: 40,
        bin_lambdas: vec![0.02],
        cont_iters: 8,
    };
    let opts = ExpOptions {
        paper: false,
        seed: 5,
        samples: 2,
        out_dir: dir.clone(),
        threads: 2,
        resume: false,
    };
    ExperimentRunner::new(&opts)
        .run(&exp, &opts)
        .expect("runner");

    // CSV artifact with the fixed-seed golden shape: header + one row
    // per budget step (budget 7 at seed 5 → steps 0..=7).
    let csv = std::fs::read_to_string(dir.join("e2e_grid.csv")).unwrap();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines[0], "panel,budget,edges_pct,tau_binarized,tau_gradmax");
    assert_eq!(lines.len(), 9, "golden row count changed:\n{csv}");
    // Both methods made progress on the anomaly score by the last row.
    let last: Vec<&str> = lines[8].split(',').collect();
    for tau in &last[3..] {
        let tau: f64 = tau.parse().unwrap();
        assert!(tau > 0.0, "no attack progress in final row: {csv}");
    }

    // Durable cell store: manifest reports all four cells committed.
    let manifest = Manifest::load(&dir.join(".cells/e2e_grid/manifest.json")).unwrap();
    assert_eq!(manifest.num_cells, 4);
    assert_eq!(manifest.completed.len(), 4);
    for c in 0..4 {
        assert!(dir
            .join(format!(".cells/e2e_grid/cell_{c:04}.rows"))
            .exists());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Stats + gad integration: permutation test sees no significant shift
/// in N after a small targeted attack (the unnoticeability claim).
#[test]
fn small_attack_is_statistically_unnoticeable_in_n() {
    let g = Dataset::BitcoinAlpha.build_scaled(400, 950, 15);
    let model = OddBall::default().fit(&g).unwrap();
    let targets: Vec<NodeId> = model.top_k(5).into_iter().map(|(i, _)| i).collect();
    let attack = BinarizedAttack::default()
        .with_iterations(60)
        .with_lambdas(vec![0.02]);
    let outcome = attack.attack(&g, &targets, 12).unwrap();
    let poisoned = outcome.poisoned_graph(&g, 12);
    let clean = binarized_attack::graph::egonet::egonet_features(&g);
    let pois = binarized_attack::graph::egonet::egonet_features(&poisoned);
    let p = binarized_attack::stats::PermutationTest {
        resamples: 3000,
        seed: 5,
    }
    .pvalue(&clean.n, &pois.n);
    assert!(
        p > 0.01,
        "degree distribution significantly shifted: p = {p}"
    );
}
