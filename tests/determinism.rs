//! The orchestrator's determinism contract (tier-1):
//!
//! 1. A fig4-style grid experiment produces **byte-identical** CSV
//!    artifacts and per-cell record files at `--threads 1`, `4`, and
//!    `8` — results are merged in cell-index order and every RNG stream
//!    derives from `(experiment, cell index, base seed)`, never from
//!    scheduling.
//! 2. Resuming from a half-completed manifest yields the same artifact
//!    bytes as a fresh run.

use ba_bench::artifact::Manifest;
use ba_bench::experiments::{Fig4Experiment, Fig4Method, Fig4Panel};
use ba_bench::runner::{DatasetSpec, ExperimentRunner};
use ba_bench::ExpOptions;
use binarized_attack::datasets::Dataset;
use std::path::{Path, PathBuf};

/// A seconds-scale fig4 instance: two half-panels, all three methods,
/// two target samples — 12 cells.
fn tiny_fig4(name: &str) -> Fig4Experiment {
    Fig4Experiment {
        name: name.to_string(),
        csv_name: format!("{name}.csv"),
        panels: vec![
            Fig4Panel {
                label: "ER".to_string(),
                spec: DatasetSpec::scaled(Dataset::Er, 150, 550),
                num_targets: 4,
                budget_frac: 0.012,
            },
            Fig4Panel {
                label: "BA".to_string(),
                spec: DatasetSpec::scaled(Dataset::Ba, 150, 450),
                num_targets: 4,
                budget_frac: 0.015,
            },
        ],
        methods: vec![
            Fig4Method::Binarized,
            Fig4Method::GradMax,
            Fig4Method::Continuous,
        ],
        samples: 2,
        pool: 20,
        bin_iters: 40,
        bin_lambdas: vec![0.02],
        cont_iters: 8,
    }
}

fn opts_for(dir: &Path, threads: usize, resume: bool) -> ExpOptions {
    ExpOptions {
        paper: false,
        seed: 42,
        samples: 2,
        out_dir: dir.to_path_buf(),
        threads,
        resume,
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ba_determinism").join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(exp_name: &str, dir: &Path, threads: usize, resume: bool) -> Vec<u8> {
    let exp = tiny_fig4(exp_name);
    let opts = opts_for(dir, threads, resume);
    ExperimentRunner::new(&opts).run(&exp, &opts);
    std::fs::read(dir.join(format!("{exp_name}.csv"))).unwrap()
}

/// All committed cell record files of an experiment, in index order.
fn cell_files(dir: &Path, exp_name: &str) -> Vec<Vec<u8>> {
    let exp = tiny_fig4(exp_name);
    let cells = exp.panels.len() * exp.methods.len() * exp.samples;
    (0..cells)
        .map(|c| {
            std::fs::read(
                dir.join(".cells")
                    .join(exp_name)
                    .join(format!("cell_{c:04}.rows")),
            )
            .unwrap_or_else(|e| panic!("cell {c} missing: {e}"))
        })
        .collect()
}

#[test]
fn parallel_output_is_byte_identical_to_serial() {
    let name = "det_fig4";
    let mut runs = Vec::new();
    for threads in [1usize, 4, 8] {
        let dir = fresh_dir(&format!("threads{threads}"));
        let csv = run(name, &dir, threads, false);
        let cells = cell_files(&dir, name);
        runs.push((threads, csv, cells));
    }
    let (_, ref_csv, ref_cells) = &runs[0];
    assert!(!ref_csv.is_empty());
    // The mean τ curves reach the CSV: sanity that we are not comparing
    // empty artifacts.
    let text = String::from_utf8(ref_csv.clone()).unwrap();
    assert!(text.starts_with("panel,budget,edges_pct,tau_binarized,tau_gradmax,tau_continuousA"));
    assert!(text.lines().count() > 10);
    for (threads, csv, cells) in &runs[1..] {
        assert_eq!(
            csv, ref_csv,
            "CSV bytes differ between --threads 1 and --threads {threads}"
        );
        assert_eq!(
            cells, ref_cells,
            "cell record files (tau curves) differ between --threads 1 and --threads {threads}"
        );
    }
}

#[test]
fn resume_from_half_completed_manifest_matches_fresh_run() {
    let name = "det_resume";
    // Reference: one fresh run.
    let ref_dir = fresh_dir("resume_reference");
    let ref_csv = run(name, &ref_dir, 2, false);

    // Interrupted run: complete everything, then roll the store back to
    // a half-finished state (as if the process died mid-grid).
    let dir = fresh_dir("resume_interrupted");
    run(name, &dir, 2, false);
    let store_dir = dir.join(".cells").join(name);
    let manifest_path = store_dir.join("manifest.json");
    let mut manifest = Manifest::load(&manifest_path).expect("manifest exists");
    let total = manifest.num_cells;
    assert_eq!(manifest.completed.len(), total);
    let keep: Vec<usize> = manifest.completed.iter().copied().take(total / 2).collect();
    manifest.completed = keep.iter().copied().collect();
    manifest.save(&manifest_path).unwrap();
    for c in total / 2..total {
        std::fs::remove_file(store_dir.join(format!("cell_{c:04}.rows"))).unwrap();
    }
    std::fs::remove_file(dir.join(format!("{name}.csv"))).unwrap();

    // Resume with a different thread count; artifact must match the
    // fresh run byte for byte.
    let resumed_csv = run(name, &dir, 4, true);
    assert_eq!(
        resumed_csv, ref_csv,
        "resumed artifact differs from fresh run"
    );
    let manifest = Manifest::load(&manifest_path).unwrap();
    assert_eq!(manifest.completed.len(), total, "manifest not completed");

    // A fingerprint mismatch (different seed) must invalidate the store
    // instead of resuming stale cells.
    let mut opts = opts_for(&dir, 2, true);
    opts.seed = 43;
    let exp = tiny_fig4(name);
    ExperimentRunner::new(&opts).run(&exp, &opts);
    let other_csv = std::fs::read(dir.join(format!("{name}.csv"))).unwrap();
    assert_ne!(
        other_csv, ref_csv,
        "different seed reused stale cells from the old manifest"
    );
}
