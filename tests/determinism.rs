//! The orchestrator's determinism contract (tier-1):
//!
//! 1. A fig4-style grid experiment produces **byte-identical** CSV
//!    artifacts and per-cell record files at `--threads 1`, `4`, and
//!    `8` — results are merged in cell-index order and every RNG stream
//!    derives from `(experiment, cell index, base seed)`, never from
//!    scheduling.
//! 2. Resuming from a half-completed manifest yields the same artifact
//!    bytes as a fresh run.
//!
//! Plus the streaming engine's mirror of the same contract (tier-1):
//!
//! 3. Stream ingest produces byte-identical formatted output at
//!    `--shards 1`, `4`, and `8` (the CI determinism job additionally
//!    diffs the `binattack stream` stdout bytes end to end).
//! 4. Killing the stream at a batch boundary and resuming from the
//!    snapshot continues with byte-identical output.

use ba_bench::artifact::Manifest;
use ba_bench::experiments::Fig4Experiment;
use ba_bench::runner::ExperimentRunner;
use ba_bench::ExpOptions;
use std::path::{Path, PathBuf};

/// The seconds-scale fig4 instance shared with the distributed tests
/// and the CI smoke (`Fig4Experiment::tiny`): two tiny panels, all
/// three methods, two target samples — 12 cells.
fn tiny_fig4(name: &str) -> Fig4Experiment {
    Fig4Experiment::tiny(name)
}

fn opts_for(dir: &Path, threads: usize, resume: bool) -> ExpOptions {
    ExpOptions {
        paper: false,
        seed: 42,
        samples: 2,
        out_dir: dir.to_path_buf(),
        threads,
        resume,
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ba_determinism").join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(exp_name: &str, dir: &Path, threads: usize, resume: bool) -> Vec<u8> {
    let exp = tiny_fig4(exp_name);
    let opts = opts_for(dir, threads, resume);
    ExperimentRunner::new(&opts)
        .run(&exp, &opts)
        .expect("runner");
    std::fs::read(dir.join(format!("{exp_name}.csv"))).unwrap()
}

/// All committed cell record files of an experiment, in index order.
fn cell_files(dir: &Path, exp_name: &str) -> Vec<Vec<u8>> {
    let exp = tiny_fig4(exp_name);
    let cells = exp.panels.len() * exp.methods.len() * exp.samples;
    (0..cells)
        .map(|c| {
            std::fs::read(
                dir.join(".cells")
                    .join(exp_name)
                    .join(format!("cell_{c:04}.rows")),
            )
            .unwrap_or_else(|e| panic!("cell {c} missing: {e}"))
        })
        .collect()
}

#[test]
fn parallel_output_is_byte_identical_to_serial() {
    let name = "det_fig4";
    let mut runs = Vec::new();
    for threads in [1usize, 4, 8] {
        let dir = fresh_dir(&format!("threads{threads}"));
        let csv = run(name, &dir, threads, false);
        let cells = cell_files(&dir, name);
        runs.push((threads, csv, cells));
    }
    let (_, ref_csv, ref_cells) = &runs[0];
    assert!(!ref_csv.is_empty());
    // The mean τ curves reach the CSV: sanity that we are not comparing
    // empty artifacts.
    let text = String::from_utf8(ref_csv.clone()).unwrap();
    assert!(text.starts_with("panel,budget,edges_pct,tau_binarized,tau_gradmax,tau_continuousA"));
    assert!(text.lines().count() > 10);
    for (threads, csv, cells) in &runs[1..] {
        assert_eq!(
            csv, ref_csv,
            "CSV bytes differ between --threads 1 and --threads {threads}"
        );
        assert_eq!(
            cells, ref_cells,
            "cell record files (tau curves) differ between --threads 1 and --threads {threads}"
        );
    }
}

#[test]
fn resume_from_half_completed_manifest_matches_fresh_run() {
    let name = "det_resume";
    // Reference: one fresh run.
    let ref_dir = fresh_dir("resume_reference");
    let ref_csv = run(name, &ref_dir, 2, false);

    // Interrupted run: complete everything, then roll the store back to
    // a half-finished state (as if the process died mid-grid).
    let dir = fresh_dir("resume_interrupted");
    run(name, &dir, 2, false);
    let store_dir = dir.join(".cells").join(name);
    let manifest_path = store_dir.join("manifest.json");
    let mut manifest = Manifest::load(&manifest_path).expect("manifest exists");
    let total = manifest.num_cells;
    assert_eq!(manifest.completed.len(), total);
    let keep: Vec<usize> = manifest.completed.iter().copied().take(total / 2).collect();
    manifest.completed = keep.iter().copied().collect();
    manifest.save(&manifest_path).unwrap();
    for c in total / 2..total {
        std::fs::remove_file(store_dir.join(format!("cell_{c:04}.rows"))).unwrap();
    }
    std::fs::remove_file(dir.join(format!("{name}.csv"))).unwrap();

    // Resume with a different thread count; artifact must match the
    // fresh run byte for byte.
    let resumed_csv = run(name, &dir, 4, true);
    assert_eq!(
        resumed_csv, ref_csv,
        "resumed artifact differs from fresh run"
    );
    let manifest = Manifest::load(&manifest_path).unwrap();
    assert_eq!(manifest.completed.len(), total, "manifest not completed");

    // A fingerprint mismatch (different seed) must invalidate the store
    // instead of resuming stale cells.
    let mut opts = opts_for(&dir, 2, true);
    opts.seed = 43;
    let exp = tiny_fig4(name);
    ExperimentRunner::new(&opts)
        .run(&exp, &opts)
        .expect("runner");
    let other_csv = std::fs::read(dir.join(format!("{name}.csv"))).unwrap();
    assert_ne!(
        other_csv, ref_csv,
        "different seed reused stale cells from the old manifest"
    );
}

mod stream {
    use ba_stream::{synthetic_stream, StreamConfig, StreamEngine, StreamEvent};
    use binarized_attack::graph::generators;

    /// The deterministic record the CLI prints per batch, rebuilt here
    /// at the engine level so shard invariance is asserted on formatted
    /// bytes, not just on structured summaries.
    fn run_formatted(shards: usize, snapshot_cut: Option<(usize, &std::path::Path)>) -> String {
        let g = generators::erdos_renyi(400, 0.02, 21);
        let events = synthetic_stream(&g, 500, 33);
        let cfg = StreamConfig {
            shards,
            ..StreamConfig::default()
        };
        let mut engine = StreamEngine::new(&g, cfg);
        format_batches(&mut engine, events.chunks(50), snapshot_cut)
    }

    fn format_batches<'a>(
        engine: &mut StreamEngine,
        batches: impl Iterator<Item = &'a [StreamEvent]>,
        snapshot_cut: Option<(usize, &std::path::Path)>,
    ) -> String {
        let mut out = String::new();
        for (i, batch) in batches.enumerate() {
            let s = engine.ingest_batch(batch);
            let fit = match &s.params {
                Ok(p) => format!(
                    "beta0={:016x} beta1={:016x}",
                    p.beta0.to_bits(),
                    p.beta1.to_bits()
                ),
                Err(e) => format!("degenerate({e})"),
            };
            out.push_str(&format!(
                "batch {}: events={} applied={} moved={} edges={} compacted={} {fit}\n",
                s.batch, s.events, s.applied, s.dirty_rows, s.edges, s.compacted
            ));
            for (node, score) in engine.top_k(5).into_iter().flatten() {
                out.push_str(&format!("  {node} {:016x}\n", score.to_bits()));
            }
            if let Some((cut, path)) = snapshot_cut {
                if i == cut {
                    engine.save_snapshot(path).expect("save snapshot");
                }
            }
        }
        out
    }

    #[test]
    fn stream_output_byte_identical_across_shards() {
        let reference = run_formatted(1, None);
        assert!(reference.lines().count() > 50, "suspiciously short output");
        for shards in [4usize, 8] {
            assert_eq!(
                run_formatted(shards, None),
                reference,
                "stream output differs between --shards 1 and --shards {shards}"
            );
        }
    }

    #[test]
    fn stream_resumes_byte_identically_after_snapshot() {
        let dir = std::env::temp_dir().join("ba_determinism_stream");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cut.snapshot");
        let cut = 4usize; // snapshot after the 5th of 10 batches
        let reference = run_formatted(2, Some((cut, &path)));

        // "Killed" process: a fresh engine restored from the snapshot
        // replays only the remaining batches.
        let g = generators::erdos_renyi(400, 0.02, 21);
        let events = synthetic_stream(&g, 500, 33);
        let mut resumed = StreamEngine::restore_snapshot(&path, 8).expect("restore snapshot");
        assert_eq!(resumed.batches_ingested(), cut as u64 + 1);
        let tail = format_batches(&mut resumed, events.chunks(50).skip(cut + 1), None);
        assert!(
            reference.ends_with(&tail),
            "resumed output is not a byte-identical suffix of the uninterrupted run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
