//! Fig. 4 (a–h) — the headline result: τ_as (decreasing percentage of
//! the targets' AScore sum) vs. attack power (% edges changed) for the
//! three attacks on all panels:
//!
//! ER, BA, Blogcatalog-10/30, Bitcoin-Alpha-10/30, Wikivote-10/30.
//!
//! Targets are sampled from the top-50 AScore ranking (10 or 30 of
//! them), `opts.samples` times; curves are means. Paper observations to
//! reproduce: BinarizedAttack best everywhere, GradMaxSearch close but
//! myopic at large budgets, ContinuousA erratic; < 2% (10 targets) or
//! < 5% (30 targets) of edges suffice for up to ~90% score decrease.
//!
//! Run: `cargo run -p ba-bench --release --bin fig4 [--paper]`
//! (quick profile: 500-node datasets, 3 samples; `--paper`: Table-I
//! scale, 5 samples)

use ba_bench::{f4, mean_tau_curve, sample_targets, ExpOptions};
use ba_core::{AttackConfig, BinarizedAttack, ContinuousA, GradMaxSearch};
use ba_datasets::Dataset;
use ba_graph::{Graph, NodeId};

struct Panel {
    label: &'static str,
    dataset: Dataset,
    num_targets: usize,
    /// Budget as a fraction of the panel's edge count.
    budget_frac: f64,
}

fn panels() -> Vec<Panel> {
    vec![
        Panel {
            label: "ER",
            dataset: Dataset::Er,
            num_targets: 10,
            budget_frac: 0.003,
        },
        Panel {
            label: "BA",
            dataset: Dataset::Ba,
            num_targets: 10,
            budget_frac: 0.02,
        },
        Panel {
            label: "Blogcatalog-10",
            dataset: Dataset::Blogcatalog,
            num_targets: 10,
            budget_frac: 0.008,
        },
        Panel {
            label: "Blogcatalog-30",
            dataset: Dataset::Blogcatalog,
            num_targets: 30,
            budget_frac: 0.02,
        },
        Panel {
            label: "Bitcoin-Alpha-10",
            dataset: Dataset::BitcoinAlpha,
            num_targets: 10,
            budget_frac: 0.0175,
        },
        Panel {
            label: "Bitcoin-Alpha-30",
            dataset: Dataset::BitcoinAlpha,
            num_targets: 30,
            budget_frac: 0.04,
        },
        Panel {
            label: "Wikivote-10",
            dataset: Dataset::Wikivote,
            num_targets: 10,
            budget_frac: 0.0175,
        },
        Panel {
            label: "Wikivote-30",
            dataset: Dataset::Wikivote,
            num_targets: 30,
            budget_frac: 0.04,
        },
    ]
}

fn main() {
    let opts = ExpOptions::from_args();
    let cfg = AttackConfig::default();
    // Quick profile shrinks graphs and optimiser effort; --paper restores
    // Table-I scale.
    let (bin_iters, bin_lambdas, cont_iters) = if opts.paper {
        (400, vec![0.002, 0.008, 0.03], 50)
    } else {
        (300, vec![0.002, 0.02], 30)
    };
    let binarized = BinarizedAttack::new(cfg)
        .with_iterations(bin_iters)
        .with_lambdas(bin_lambdas);
    let gradmax = GradMaxSearch::new(cfg);
    let continuous = ContinuousA::new(cfg).with_iterations(cont_iters);

    println!(
        "FIG 4: tau_as vs edges changed (%) — mean over {} target samples",
        opts.samples
    );
    let mut csv = Vec::new();
    for panel in panels() {
        let g: Graph = if opts.paper {
            panel.dataset.build(opts.seed)
        } else {
            let (n, m) = panel.dataset.paper_statistics();
            panel.dataset.build_scaled(n / 2, m / 2, opts.seed)
        };
        let edges = g.num_edges();
        let budget = ((edges as f64 * panel.budget_frac).round() as usize).max(4);
        let target_sets: Vec<Vec<NodeId>> = (0..opts.samples)
            .map(|s| sample_targets(&g, panel.num_targets, 50, opts.seed + 100 + s as u64))
            .collect();

        println!(
            "\n=== {} (n={}, m={}, budget={} = {:.2}% edges) ===",
            panel.label,
            g.num_nodes(),
            edges,
            budget,
            100.0 * budget as f64 / edges as f64
        );
        let t0 = std::time::Instant::now();
        let curve_bin = mean_tau_curve(&binarized, &g, &target_sets, budget);
        let curve_gms = mean_tau_curve(&gradmax, &g, &target_sets, budget);
        let curve_con = mean_tau_curve(&continuous, &g, &target_sets, budget);
        println!("(runtime {:.1}s)", t0.elapsed().as_secs_f64());

        println!(
            "{:>10}  {:>14}  {:>14}  {:>14}",
            "edges(%)", "binarized", "gradmax", "continuousA"
        );
        let step = (budget / 8).max(1);
        for b in (0..=budget).step_by(step) {
            let pct = 100.0 * b as f64 / edges as f64;
            let get = |c: &Vec<f64>| -> String {
                if c.is_empty() {
                    "n/a".into()
                } else {
                    f4(c[b.min(c.len() - 1)])
                }
            };
            println!(
                "{:>10.3}  {:>14}  {:>14}  {:>14}",
                pct,
                get(&curve_bin),
                get(&curve_gms),
                get(&curve_con)
            );
            csv.push(format!(
                "{},{},{:.5},{},{},{}",
                panel.label,
                b,
                pct,
                if curve_bin.is_empty() {
                    f64::NAN
                } else {
                    curve_bin[b.min(curve_bin.len() - 1)]
                },
                if curve_gms.is_empty() {
                    f64::NAN
                } else {
                    curve_gms[b.min(curve_gms.len() - 1)]
                },
                if curve_con.is_empty() {
                    f64::NAN
                } else {
                    curve_con[b.min(curve_con.len() - 1)]
                },
            ));
        }
    }
    opts.write_csv(
        "fig4.csv",
        "panel,budget,edges_pct,tau_binarized,tau_gradmax,tau_continuousA",
        &csv,
    );
}
