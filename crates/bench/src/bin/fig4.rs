//! Fig. 4 (a–h) — the headline result: τ_as (decreasing percentage of
//! the targets' AScore sum) vs. attack power (% edges changed) for the
//! three attacks on all panels:
//!
//! ER, BA, Blogcatalog-10/30, Bitcoin-Alpha-10/30, Wikivote-10/30.
//!
//! Targets are sampled from the top-50 AScore ranking (10 or 30 of
//! them), `opts.samples` times; curves are means. Paper observations to
//! reproduce: BinarizedAttack best everywhere, GradMaxSearch close but
//! myopic at large budgets, ContinuousA erratic; < 2% (10 targets) or
//! < 5% (30 targets) of edges suffice for up to ~90% score decrease.
//!
//! The grid runs on the deterministic parallel orchestrator: one cell
//! per (panel, method, target-sample), byte-identical output at any
//! `--threads` value, resumable with `--resume`.
//!
//! Run: `cargo run -p ba-bench --release --bin fig4 [--paper]
//! [--threads N] [--resume]` (quick profile: 500-node datasets, 3
//! samples; `--paper`: Table-I scale, 5 samples)

use ba_bench::experiments::Fig4Experiment;
use ba_bench::runner::ExperimentRunner;
use ba_bench::ExpOptions;

fn main() {
    let opts = ExpOptions::from_args();
    let exp = Fig4Experiment::standard(&opts);
    if let Err(e) = ExperimentRunner::new(&opts).run(&exp, &opts) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
