//! Fig. 5 — case studies on the Wikivote-like graph: BinarizedAttack
//! restricted to (1) add-only, (2) delete-only, (3) add+delete edge
//! operations against single high-AScore targets. The paper reports
//! AScore drops 6.05→0.69 (add), 8.4→0.29 (delete), 5.34→0.42 (both) and
//! shows the near-star / near-clique egonets becoming "normal".
//!
//! Run: `cargo run -p ba-bench --release --bin fig5`

use ba_bench::ExpOptions;
use ba_core::{AttackConfig, BinarizedAttack, EdgeOpKind, StructuralAttack};
use ba_datasets::Dataset;
use ba_oddball::OddBall;

fn main() {
    let opts = ExpOptions::from_args();
    let g = Dataset::Wikivote.build(opts.seed);
    let model = OddBall::default().fit(&g).expect("fit");
    // Three distinct targets from the top ranks.
    let top: Vec<u32> = model.top_k(6).into_iter().map(|(i, _)| i).collect();
    let cases = [
        ("case1_add_edges", EdgeOpKind::AddOnly, top[0]),
        ("case2_delete_edges", EdgeOpKind::DeleteOnly, top[1]),
        ("case3_add_delete", EdgeOpKind::Both, top[2]),
    ];
    println!(
        "FIG 5: single-target case studies (Wikivote-like, n={}, m={})",
        g.num_nodes(),
        g.num_edges()
    );
    println!(
        "{:>18} {:>7} {:>9} {:>9} {:>7} {:>7} {:>7} {:>7} {:>6} {:>6}",
        "case", "target", "S_before", "S_after", "N_b", "E_b", "N_a", "E_a", "#add", "#del"
    );
    let mut csv = Vec::new();
    for (name, kind, target) in cases {
        let cfg = AttackConfig {
            op_kind: kind,
            ..AttackConfig::default()
        };
        let attack = BinarizedAttack::new(cfg).with_iterations(400);
        let budget = 25;
        let outcome = attack.attack(&g, &[target], budget).expect("attack");
        let b = outcome.max_budget();
        let poisoned = outcome.poisoned_graph(&g, b);
        let model_after = OddBall::default().fit(&poisoned).expect("fit poisoned");
        let feats_b = model.features();
        let feats_a = model_after.features();
        let adds = outcome.ops(b).iter().filter(|op| op.added).count();
        let dels = outcome.ops(b).len() - adds;
        println!(
            "{:>18} {:>7} {:>9.3} {:>9.3} {:>7.0} {:>7.0} {:>7.0} {:>7.0} {:>6} {:>6}",
            name,
            target,
            model.score(target),
            model_after.score(target),
            feats_b.n[target as usize],
            feats_b.e[target as usize],
            feats_a.n[target as usize],
            feats_a.e[target as usize],
            adds,
            dels
        );
        csv.push(format!(
            "{},{},{:.5},{:.5},{},{},{},{},{},{}",
            name,
            target,
            model.score(target),
            model_after.score(target),
            feats_b.n[target as usize],
            feats_b.e[target as usize],
            feats_a.n[target as usize],
            feats_a.e[target as usize],
            adds,
            dels
        ));
    }
    opts.write_csv(
        "fig5.csv",
        "case,target,score_before,score_after,n_before,e_before,n_after,e_after,adds,deletes",
        &csv,
    );
    println!("\n(paper anchors: 6.05->0.69 add-only, 8.4->0.29 delete-only, 5.34->0.42 both)");
}
