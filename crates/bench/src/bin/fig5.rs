//! Fig. 5 — case studies on the Wikivote-like graph: BinarizedAttack
//! restricted to (1) add-only, (2) delete-only, (3) add+delete edge
//! operations against single high-AScore targets. The paper reports
//! AScore drops 6.05→0.69 (add), 8.4→0.29 (delete), 5.34→0.42 (both) and
//! shows the near-star / near-clique egonets becoming "normal".
//!
//! Runs the three independent cases as orchestrator cells.
//!
//! Run: `cargo run -p ba-bench --release --bin fig5 [--threads N]`

use ba_bench::experiments::Fig5Experiment;
use ba_bench::runner::ExperimentRunner;
use ba_bench::ExpOptions;

fn main() {
    let opts = ExpOptions::from_args();
    let exp = Fig5Experiment::standard(&opts);
    if let Err(e) = ExperimentRunner::new(&opts).run(&exp, &opts) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
