//! Curve-evaluation micro-benchmark: the incremental detector-refit
//! engine vs the per-budget full refit.
//!
//! Times the τ_as evaluation loop — OddBall refitted on the poisoned
//! graph at every budget point — on a 1000-node, ~5000-edge Erdős–Rényi
//! graph at budget 30, two ways:
//!
//! * **incremental** —
//!   [`ba_core::AttackOutcome::ascore_curve_with_clean`]: one
//!   `DeltaOverlay` + `IncrementalEgonet` replay of the op sequence with
//!   `IncrementalFit` patching only the dirty log-feature rows,
//!   `O(deg(u) + deg(v))` per budget;
//! * **full refit** —
//!   [`ba_core::AttackOutcome::ascore_curve_full_refit`]: the
//!   pre-engine path, re-extracting egonet features over the whole graph
//!   and re-running the regression from scratch per budget,
//!   `O(budget × (n + m + Σdeg²))` total.
//!
//! The two curves are cross-checked bit-identical before timing is
//! reported. Exits non-zero if the incremental path is less than 5×
//! faster — the CI smoke gate for the "evaluation loop is incremental"
//! acceptance criterion. `--quick` runs fewer repetitions (CI), `--csv`
//! emits a machine-readable line.

use ba_bench::{sample_from_pool, target_pool};
use ba_core::{AttackConfig, RandomAttack, StructuralAttack};
use ba_graph::{generators, CsrGraph};
use ba_oddball::OddBall;
use std::time::Instant;

const REQUIRED_SPEEDUP: f64 = 5.0;

fn time_best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let (inc_reps, full_reps) = if quick { (10, 2) } else { (30, 5) };

    // The acceptance instance: ER 1000 nodes / ~5000 edges, budget 30.
    let n = 1000usize;
    let budget = 30usize;
    let g = generators::erdos_renyi(n, 0.01, 7);
    let csr = CsrGraph::from(&g);
    let detector = OddBall::default();
    let clean = detector.fit(&csr).expect("clean fit");
    let targets = sample_from_pool(&target_pool(&clean, 50), 10, 42);

    // A budget-30 nested op sequence (the greedy shape every attack's
    // curve evaluation replays); RandomAttack keeps the setup cheap.
    let outcome = RandomAttack::new(AttackConfig {
        seed: 11,
        ..AttackConfig::default()
    })
    .attack(&g, &targets, budget)
    .expect("random attack");
    assert_eq!(outcome.max_budget(), budget, "attack saturated early");

    eprintln!(
        "graph: n = {n}, m = {}, budget = {budget}, targets = {}",
        g.num_edges(),
        targets.len()
    );

    let mut fast = Vec::new();
    let inc_s = time_best_of(inc_reps, || {
        fast = outcome
            .ascore_curve_with_clean(&csr, &clean, &targets, &detector)
            .expect("incremental curve");
    });
    let mut slow = Vec::new();
    let full_s = time_best_of(full_reps, || {
        slow = outcome
            .ascore_curve_full_refit(&csr, &clean, &targets, &detector)
            .expect("full-refit curve");
    });

    // Cross-check before reporting: the engine must be bit-identical to
    // the from-scratch refit at every budget point.
    assert_eq!(fast.len(), slow.len());
    for (b, (f, s)) in fast.iter().zip(&slow).enumerate() {
        assert_eq!(
            f.to_bits(),
            s.to_bits(),
            "incremental/full curve mismatch at budget {b}: {f} != {s}"
        );
    }

    let speedup = full_s / inc_s;
    if csv {
        println!("n,m,budget,targets,incremental_s,full_s,speedup");
        println!(
            "{n},{},{budget},{},{inc_s:.6},{full_s:.6},{speedup:.2}",
            g.num_edges(),
            targets.len()
        );
    } else {
        println!("incremental replay: {:>10.3} ms", inc_s * 1e3);
        println!("full refit:         {:>10.3} ms", full_s * 1e3);
        println!("speedup:            {speedup:>10.2}x (gate: ≥{REQUIRED_SPEEDUP}x)");
    }
    ba_bench::report::BenchReport::new("eval")
        .metric("n", n as f64, "count")
        .metric("m", g.num_edges() as f64, "count")
        .metric("budget", budget as f64, "count")
        .metric("targets", targets.len() as f64, "count")
        .metric("incremental_s", inc_s, "s")
        .metric("full_s", full_s, "s")
        .metric("speedup", speedup, "x")
        .write_if_requested(&args)
        .expect("write bench json");
    if speedup < REQUIRED_SPEEDUP {
        eprintln!("FAIL: incremental path is only {speedup:.2}x faster (need {REQUIRED_SPEEDUP}x)");
        std::process::exit(1);
    }
}
