//! End-to-end attack-search benchmark: memoized vs cold sessions.
//!
//! The workload is a **two-pass suite**: the two search-based attacks
//! (GradMaxSearch and the paper's BinarizedAttack) over several target
//! sets on one frozen substrate, and then the whole sweep again on the
//! same session. That is the orchestrator's shape — experiment suites
//! (budget curves, detector ablations, λ-grid scans) revisit identical
//! `(substrate, targets, attack, config)` cells across experiments, and
//! the bench runner now shares one memoized session per substrate. The
//! cold path runs the exact same two passes on an unmemoized session,
//! so the only variable is the memo. Pass 2 exercises the whole cache
//! hierarchy top down: run-outcome replay for repeated cells, then the
//! node-grads slots, the assembly LRU, and the transposition table
//! within passes, across budget steps, λ restarts, and retargets.
//!
//! Before any timing is reported the two paths are checked for **bit
//! identity**: ops, per-budget losses, and loss trajectories must match
//! exactly (`==` on `f64` bits via `assert_eq!`) — memoization trades
//! memory for wall-clock, never results.
//!
//! Exits non-zero if the memoized path is less than 2× faster end to
//! end — the CI perf gate for this optimisation. `--quick` shrinks the
//! workload (CI), `--json` writes `BENCH_search.json` with the timing
//! and the transposition-table hit/miss/eviction counters.

use ba_core::{
    AttackConfig, AttackOutcome, AttackSession, BinarizedAttack, GradMaxSearch, StructuralAttack,
};
use ba_graph::{generators, CsrGraph, Graph, NodeId};
use ba_oddball::OddBall;
use std::time::Instant;

const REQUIRED_SPEEDUP: f64 = 2.0;

/// The fixed-seed workload: an ER substrate with a planted near-clique
/// (so OddBall has true positives to rank) and several disjoint target
/// sets drawn from the detector's own top anomalies.
fn build_workload(n: usize, seed: u64, num_target_sets: usize) -> (Graph, Vec<Vec<NodeId>>) {
    let mut g = generators::erdos_renyi(n, 8.0 / n as f64, seed);
    generators::attach_isolated(&mut g, seed + 1);
    let members: Vec<NodeId> = (0..12).collect();
    generators::plant_near_clique(&mut g, &members, 1.0, seed + 2);
    let model = OddBall::default().fit(&g).expect("fit clean graph");
    let ranked: Vec<NodeId> = model
        .top_k(3 * num_target_sets)
        .into_iter()
        .map(|(i, _)| i)
        .collect();
    let targets: Vec<Vec<NodeId>> = (0..num_target_sets)
        .map(|k| ranked[3 * k..3 * (k + 1)].to_vec())
        .collect();
    (g, targets)
}

/// Number of identical passes per timed suite (cross-experiment cell
/// replay, the pattern the run-outcome memo tier targets).
const SUITE_PASSES: usize = 2;

/// One full sweep: every attack × every target set on `session`,
/// in a fixed order. Returns the outcomes for the bit-identity check.
fn run_sweep(
    session: &mut AttackSession<'_>,
    target_sets: &[Vec<NodeId>],
    budget: usize,
    iterations: usize,
) -> Vec<AttackOutcome> {
    let gradmax = GradMaxSearch::new(AttackConfig::default());
    let binarized = BinarizedAttack::new(AttackConfig::default()).with_iterations(iterations);
    let mut outcomes = Vec::with_capacity(2 * target_sets.len());
    for targets in target_sets {
        session.retarget(targets).expect("valid targets");
        outcomes.push(
            binarized
                .attack_with_session(session, budget)
                .expect("binarized attack"),
        );
        session.retarget(targets).expect("valid targets");
        outcomes.push(
            gradmax
                .attack_with_session(session, budget)
                .expect("gradmax attack"),
        );
    }
    outcomes
}

/// The timed unit: [`SUITE_PASSES`] identical sweeps on one session.
fn run_suite(
    session: &mut AttackSession<'_>,
    target_sets: &[Vec<NodeId>],
    budget: usize,
    iterations: usize,
) -> Vec<AttackOutcome> {
    let mut outcomes = Vec::new();
    for _ in 0..SUITE_PASSES {
        outcomes.extend(run_sweep(session, target_sets, budget, iterations));
    }
    outcomes
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    // `iterations` stays at the attacks' shipped default (T = 300): the
    // bench must measure the search as users run it, and the PGD tail —
    // where the re-binarised graph cycles through a handful of states —
    // is exactly what the memo exists for.
    let (n, budget, iterations, reps) = if quick {
        (300, 20, 300, 1)
    } else {
        (400, 24, 300, 3)
    };
    let num_target_sets = 3;

    let (g, target_sets) = build_workload(n, 20_220_508, num_target_sets);
    let csr = CsrGraph::from(&g);
    let threads = ba_core::resolve_threads(0);
    eprintln!(
        "graph: n = {n}, m = {}, target sets = {num_target_sets}, budget = {budget}, \
         iterations = {iterations}, threads = {threads}",
        g.num_edges()
    );

    eprintln!("suite: {SUITE_PASSES} passes per timed rep (cross-experiment cell replay)");

    // Cold path: an unmemoized session runs the identical two-pass
    // suite (the pre-memo engine's behaviour — retarget reuses features
    // but every cell re-searches from scratch).
    let mut cold_outcomes = Vec::new();
    let mut cold_s = f64::INFINITY;
    for _ in 0..reps {
        let mut session = AttackSession::new(&csr, &target_sets[0])
            .expect("session")
            .with_threads(threads);
        assert!(!session.memo_enabled());
        let t0 = Instant::now();
        cold_outcomes = run_suite(&mut session, &target_sets, budget, iterations);
        cold_s = cold_s.min(t0.elapsed().as_secs_f64());
    }

    // Memoized path: one session with the cache hierarchy attached,
    // reused across every attack, target set, and suite pass.
    let mut memo_outcomes = Vec::new();
    let mut memo_s = f64::INFINITY;
    let mut memo_stats = None;
    for _ in 0..reps {
        let mut session = AttackSession::new(&csr, &target_sets[0])
            .expect("session")
            .with_threads(threads)
            .with_memo();
        let t0 = Instant::now();
        memo_outcomes = run_suite(&mut session, &target_sets, budget, iterations);
        memo_s = memo_s.min(t0.elapsed().as_secs_f64());
        memo_stats = session.memo_stats();
    }
    let stats = memo_stats.expect("memo was attached");

    // Bit identity: the memo must be invisible in the results.
    assert_eq!(cold_outcomes.len(), memo_outcomes.len());
    for (c, m) in cold_outcomes.iter().zip(&memo_outcomes) {
        assert_eq!(c.name, m.name);
        assert_eq!(
            c.ops_per_budget, m.ops_per_budget,
            "{}: ops diverged",
            c.name
        );
        assert_eq!(
            c.surrogate_loss_per_budget, m.surrogate_loss_per_budget,
            "{}: losses diverged",
            c.name
        );
        assert_eq!(
            c.loss_trajectory, m.loss_trajectory,
            "{}: trajectory diverged",
            c.name
        );
    }
    eprintln!(
        "bit-identity check passed ({} outcomes)",
        cold_outcomes.len()
    );

    let speedup = cold_s / memo_s;
    let tt = stats.table;
    println!("cold  sweep: {:>10.3} ms", cold_s * 1e3);
    println!("memo  sweep: {:>10.3} ms", memo_s * 1e3);
    println!("speedup:     {speedup:>10.2}x (gate: ≥{REQUIRED_SPEEDUP}x)");
    println!(
        "tt: {} hits / {} misses ({:.1}% hit rate), {} stores, {} evictions, capacity {}",
        tt.hits,
        tt.misses,
        100.0 * tt.hit_rate(),
        tt.stores,
        tt.evictions,
        tt.capacity
    );
    println!(
        "ng cache: {} hits / {} misses; assembly LRU: {} hits / {} misses; \
         loss memo: {} hits / {} misses",
        stats.ng_hits,
        stats.ng_misses,
        stats.grads_hits,
        stats.grads_misses,
        stats.loss_hits,
        stats.loss_misses
    );
    println!(
        "run-outcome memo: {} hits / {} misses",
        stats.outcome_hits, stats.outcome_misses
    );
    ba_bench::report::BenchReport::new("search")
        .metric("n", n as f64, "count")
        .metric("m", g.num_edges() as f64, "count")
        .metric("target_sets", num_target_sets as f64, "count")
        .metric("budget", budget as f64, "count")
        .metric("threads", threads as f64, "count")
        .metric("cold_s", cold_s, "s")
        .metric("memo_s", memo_s, "s")
        .metric("speedup", speedup, "x")
        .metric("tt_hits", tt.hits as f64, "count")
        .metric("tt_misses", tt.misses as f64, "count")
        .metric("tt_hit_rate", tt.hit_rate(), "ratio")
        .metric("tt_evictions", tt.evictions as f64, "count")
        .metric("ng_hits", stats.ng_hits as f64, "count")
        .metric("grads_hits", stats.grads_hits as f64, "count")
        .metric("grads_misses", stats.grads_misses as f64, "count")
        .metric("loss_hits", stats.loss_hits as f64, "count")
        .metric("outcome_hits", stats.outcome_hits as f64, "count")
        .metric("outcome_misses", stats.outcome_misses as f64, "count")
        .write_if_requested(&args)
        .expect("write bench json");
    if speedup < REQUIRED_SPEEDUP {
        eprintln!("FAIL: memoized sweep is only {speedup:.2}x faster (need {REQUIRED_SPEEDUP}x)");
        std::process::exit(1);
    }
}
