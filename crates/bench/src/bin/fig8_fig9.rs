//! Figs. 8–9 — t-SNE scatterplots of the penultimate MLP features of the
//! test nodes, for GAL (Fig. 8) and ReFeX (Fig. 9), clean vs poisoned
//! (B = 50 on Bitcoin-Alpha-like, B = 100 on Wikivote-like).
//!
//! The paper's qualitative claim: on the clean graph the target nodes
//! sit on one side of a (near-linear) boundary; after poisoning they mix
//! into the benign mass. We emit the 2-D coordinates as CSV and print a
//! quantitative separation score — the ratio of mean cross-class to mean
//! within-class distance of the targets — which must *drop* under attack.
//!
//! Run: `cargo run -p ba-bench --release --bin fig8_fig9 [--paper]`

use ba_bench::ExpOptions;
use ba_core::{AttackConfig, BinarizedAttack, StructuralAttack};
use ba_datasets::Dataset;
use ba_gad::{
    evaluate_system, identify_targets, pipeline::oddball_labels, train_test_split, tsne, GadSystem,
    GalConfig, RefexConfig, TransferConfig, TsneConfig,
};
use ba_graph::NodeId;
use ba_linalg::Matrix;

/// Mean 2-D distance ratio: targets→rest / targets→targets. Larger ⇒
/// the targets form their own separated cluster.
fn separation(coords: &Matrix, test_nodes: &[NodeId], targets: &[NodeId]) -> f64 {
    let is_target: std::collections::HashSet<NodeId> = targets.iter().copied().collect();
    let mut within = (0.0, 0.0);
    let mut cross = (0.0, 0.0);
    for a in 0..coords.rows() {
        for b in (a + 1)..coords.rows() {
            let dx = coords[(a, 0)] - coords[(b, 0)];
            let dy = coords[(a, 1)] - coords[(b, 1)];
            let dist = (dx * dx + dy * dy).sqrt();
            let ta = is_target.contains(&test_nodes[a]);
            let tb = is_target.contains(&test_nodes[b]);
            match (ta, tb) {
                (true, true) => {
                    within.0 += dist;
                    within.1 += 1.0;
                }
                (true, false) | (false, true) => {
                    cross.0 += dist;
                    cross.1 += 1.0;
                }
                _ => {}
            }
        }
    }
    if within.1 == 0.0 || cross.1 == 0.0 {
        return 1.0;
    }
    (cross.0 / cross.1) / (within.0 / within.1).max(1e-9)
}

fn main() {
    let opts = ExpOptions::from_args();
    let tcfg = TransferConfig {
        seed: opts.seed + 11,
        ..TransferConfig::default()
    };
    let tsne_cfg = TsneConfig {
        iterations: if opts.paper { 400 } else { 200 },
        ..TsneConfig::default()
    };
    println!("FIGS 8-9: embedding separation before/after poisoning");
    println!(
        "{:>7} {:>16} {:>12} {:>12} {:>10}",
        "system", "dataset", "sep_clean", "sep_poison", "drop?"
    );
    let mut csv = Vec::new();
    for (fig, system) in [
        (
            "fig8",
            GadSystem::Gal(GalConfig {
                epochs: if opts.paper { 120 } else { 60 },
                ..GalConfig::default()
            }),
        ),
        ("fig9", GadSystem::Refex(RefexConfig::default())),
    ] {
        for (d, budget) in [(Dataset::BitcoinAlpha, 50usize), (Dataset::Wikivote, 100)] {
            let g = d.build(opts.seed);
            let labels = oddball_labels(&g, tcfg.label_fraction);
            let (train, test) = train_test_split(g.num_nodes(), tcfg.train_fraction, tcfg.seed);
            let (targets, clean) = identify_targets(&system, &g, &labels, &train, &test, &tcfg);
            if targets.len() < 3 {
                eprintln!("warning: too few targets on {}; skipping", d.name());
                continue;
            }
            let attack = BinarizedAttack::new(AttackConfig::default())
                .with_iterations(if opts.paper { 400 } else { 120 })
                .with_lambdas(if opts.paper {
                    vec![0.002, 0.02]
                } else {
                    vec![0.004, 0.04]
                });
            let outcome = attack.attack(&g, &targets, budget).expect("attack");
            let poisoned = outcome.poisoned_graph(&g, budget);
            let after =
                evaluate_system(&system, &poisoned, &labels, &train, &test, &targets, &tcfg);

            let y_clean = tsne(&clean.penultimate_test, tsne_cfg);
            let y_pois = tsne(&after.penultimate_test, tsne_cfg);
            let sep_c = separation(&y_clean, &clean.test_nodes, &targets);
            let sep_p = separation(&y_pois, &after.test_nodes, &targets);
            println!(
                "{:>7} {:>16} {:>12.3} {:>12.3} {:>10}",
                system.name(),
                d.name(),
                sep_c,
                sep_p,
                if sep_p < sep_c { "yes" } else { "NO" }
            );
            // Emit coordinates for plotting.
            let is_target: std::collections::HashSet<NodeId> = targets.iter().copied().collect();
            for (tag, coords, nodes) in [
                ("clean", &y_clean, &clean.test_nodes),
                ("poisoned", &y_pois, &after.test_nodes),
            ] {
                for (r, &node) in nodes.iter().enumerate() {
                    csv.push(format!(
                        "{fig},{},{tag},{node},{:.5},{:.5},{}",
                        d.name(),
                        coords[(r, 0)],
                        coords[(r, 1)],
                        u8::from(is_target.contains(&node))
                    ));
                }
            }
        }
    }
    opts.write_csv(
        "fig8_fig9_tsne.csv",
        "figure,dataset,graph,node,x,y,is_target",
        &csv,
    )
    .expect("write csv");
}
