//! Pair-gradient assembly micro-benchmark: sparse CSR merge vs dense
//! matmul.
//!
//! Times one full backward pass of the attack engine — `G_ij` for every
//! unordered candidate pair — on a 1000-node, ~5000-edge Erdős–Rényi
//! graph, two ways:
//!
//! * **sparse** — [`ba_core::assemble_pair_grads`] over the frozen
//!   [`CsrGraph`]: parallel sorted-merge common-neighbour scans,
//!   `O(Σ_pairs deg(i)+deg(j))`, no `n×n` allocation;
//! * **dense** — [`ba_core::dense_pair_gradient`]: the two `n×n`
//!   products (`A²`, `A·diag(gE)·A`) the pre-CSR engine paid per step
//!   (retained in production only for ContinuousA's fractional state).
//!
//! Exits non-zero if the sparse path is less than 5× faster — the CI
//! smoke gate for the "no dense matmuls in the attack hot path"
//! acceptance criterion. `--quick` runs fewer repetitions (CI), `--csv`
//! emits a machine-readable line.

use ba_core::{assemble_pair_grads, dense_pair_gradient, node_grads, CandidateScope, Candidates};
use ba_graph::egonet::egonet_features;
use ba_graph::{generators, CsrGraph};
use std::time::Instant;

const REQUIRED_SPEEDUP: f64 = 5.0;

fn time_best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let (sparse_reps, dense_reps) = if quick { (5, 1) } else { (20, 3) };

    // ~5000 edges: p = 0.01 on n = 1000 gives E[m] ≈ 4995.
    let n = 1000usize;
    let g = generators::erdos_renyi(n, 0.01, 7);
    let feats = egonet_features(&g);
    let targets: Vec<u32> = (0..10).collect();
    let ng = node_grads(&feats.n, &feats.e, &targets).expect("node grads");
    let candidates = Candidates::build(CandidateScope::Full, &g, &targets);
    let mask = vec![true; candidates.len()];
    let csr = CsrGraph::from(&g);
    let threads = ba_core::resolve_threads(0);

    eprintln!(
        "graph: n = {n}, m = {}, pairs = {}, threads = {threads}",
        g.num_edges(),
        candidates.len()
    );

    // Sparse: parallel merge assembly over the CSR substrate.
    let mut sparse_out = Vec::new();
    let sparse_s = time_best_of(sparse_reps, || {
        sparse_out = assemble_pair_grads(&csr, &ng, &candidates, &mask, threads);
    });

    // Dense: the retired hot-path (two n×n products + n² assembly).
    let a = ba_linalg::Matrix::from_vec(n, n, ba_graph::adjacency::to_row_major(&g));
    let mut dense_out = ba_linalg::Matrix::zeros(0, 0);
    let dense_s = time_best_of(dense_reps, || {
        dense_out = dense_pair_gradient(&a, &ng, threads);
    });

    // Cross-check before reporting: both paths must agree.
    let mut max_diff = 0.0f64;
    candidates.for_each(|idx, i, j| {
        let d = (sparse_out[idx] - dense_out[(i as usize, j as usize)]).abs();
        max_diff = max_diff.max(d);
    });
    assert!(
        max_diff < 1e-9,
        "sparse/dense gradient mismatch: max |Δ| = {max_diff:e}"
    );

    let speedup = dense_s / sparse_s;
    if csv {
        println!("n,m,pairs,threads,sparse_s,dense_s,speedup");
        println!(
            "{n},{},{},{threads},{sparse_s:.6},{dense_s:.6},{speedup:.2}",
            g.num_edges(),
            candidates.len()
        );
    } else {
        println!("sparse assembly: {:>10.3} ms", sparse_s * 1e3);
        println!("dense  assembly: {:>10.3} ms", dense_s * 1e3);
        println!("speedup:         {speedup:>10.2}x (gate: ≥{REQUIRED_SPEEDUP}x)");
    }
    ba_bench::report::BenchReport::new("grad")
        .metric("n", n as f64, "count")
        .metric("m", g.num_edges() as f64, "count")
        .metric("pairs", candidates.len() as f64, "count")
        .metric("threads", threads as f64, "count")
        .metric("sparse_s", sparse_s, "s")
        .metric("dense_s", dense_s, "s")
        .metric("speedup", speedup, "x")
        .write_if_requested(&args)
        .expect("write bench json");
    if speedup < REQUIRED_SPEEDUP {
        eprintln!("FAIL: sparse path is only {speedup:.2}x faster (need {REQUIRED_SPEEDUP}x)");
        std::process::exit(1);
    }
}
