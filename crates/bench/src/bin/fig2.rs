//! Fig. 2b — the Egonet Density Power Law: the (ln N, ln E) scatter and
//! the fitted regression line whose vertical distances define AScore.
//!
//! Emits the scatter as CSV and prints the fitted (β0, β1) per dataset —
//! the paper observes `1 ≤ β1 ≤ 2`.
//!
//! Run: `cargo run -p ba-bench --release --bin fig2`

use ba_bench::ExpOptions;
use ba_datasets::Dataset;
use ba_oddball::OddBall;

fn main() {
    let opts = ExpOptions::from_args();
    println!("FIG 2b: Egonet Density Power Law fits");
    println!(
        "{:>14}  {:>10}  {:>10}  {:>12}",
        "dataset", "beta0", "beta1", "max AScore"
    );
    for d in Dataset::all() {
        let g = d.build(opts.seed);
        let model = OddBall::default().fit(&g).expect("fit");
        let feats = model.features();
        let mut rows = Vec::with_capacity(g.num_nodes());
        for i in 0..g.num_nodes() {
            rows.push(format!(
                "{},{:.6},{:.6},{:.6}",
                i,
                feats.n[i].max(1.0).ln(),
                feats.e[i].max(1.0).ln(),
                model.scores()[i]
            ));
        }
        let max_score = model.scores().iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{:>14}  {:>10.4}  {:>10.4}  {:>12.4}",
            d.name(),
            model.beta0(),
            model.beta1(),
            max_score
        );
        opts.write_csv(
            &format!("fig2_{}.csv", d.name().to_lowercase().replace('-', "_")),
            "node,log_n,log_e,ascore",
            &rows,
        )
        .expect("write csv");
    }
}
