//! Table III — transfer attack against GAL (GCN + anomaly margin loss).
//!
//! For edge-change budgets 0–2% (step 0.2%) on the Bitcoin-Alpha-like
//! and Wikivote-like graphs: global AUC and F1 on the test split, and
//! the soft-label decrease δ_B on the targets identified from the clean
//! run. Paper shape: AUC/F1 sag only mildly (0.72→0.65 / 0.85→0.81 on
//! Bitcoin-Alpha) while δ_B climbs to ~25% — a targeted, unnoticeable
//! attack.
//!
//! Run: `cargo run -p ba-bench --release --bin table3 [--paper]`

use ba_bench::ExpOptions;
use ba_core::{AttackConfig, BinarizedAttack, StructuralAttack};
use ba_datasets::Dataset;
use ba_gad::{
    evaluate_system, identify_targets, pipeline::delta_b, pipeline::oddball_labels,
    train_test_split, GadSystem, GalConfig, TransferConfig,
};

fn main() {
    let opts = ExpOptions::from_args();
    let gal_epochs = if opts.paper { 120 } else { 60 };
    let system = GadSystem::Gal(GalConfig {
        epochs: gal_epochs,
        ..GalConfig::default()
    });
    let tcfg = TransferConfig {
        seed: opts.seed + 3,
        ..TransferConfig::default()
    };

    println!("TABLE III: GAL transfer attack (AUC / F1 / delta_B)");
    let mut csv = Vec::new();
    for d in [Dataset::BitcoinAlpha, Dataset::Wikivote] {
        let g = d.build(opts.seed);
        let labels = oddball_labels(&g, tcfg.label_fraction);
        let (train, test) = train_test_split(g.num_nodes(), tcfg.train_fraction, tcfg.seed);
        let (targets, clean) = identify_targets(&system, &g, &labels, &train, &test, &tcfg);
        println!(
            "\n--- {} (n={}, m={}, {} identified targets) ---",
            d.name(),
            g.num_nodes(),
            g.num_edges(),
            targets.len()
        );
        println!("{:>12} {:>8} {:>8} {:>8}", "edges(%)", "AUC", "F1", "dB(%)");
        println!(
            "{:>12} {:>8.3} {:>8.3} {:>8.2}",
            "0.0", clean.auc, clean.f1, 0.0
        );
        csv.push(format!(
            "{},0.0,{:.4},{:.4},0.0",
            d.name(),
            clean.auc,
            clean.f1
        ));
        if targets.is_empty() {
            eprintln!("warning: no targets identified; skipping dataset");
            continue;
        }

        // One attack run at the max budget; reuse per-budget op sets.
        let max_pct = 2.0;
        let max_budget = (g.num_edges() as f64 * max_pct / 100.0).round() as usize;
        let attack = BinarizedAttack::new(AttackConfig::default())
            .with_iterations(if opts.paper { 120 } else { 60 })
            .with_lambdas(vec![0.01, 0.05]);
        let outcome = attack.attack(&g, &targets, max_budget).expect("attack");

        let steps = 10;
        for s in 1..=steps {
            let pct = max_pct * s as f64 / steps as f64;
            let b = (g.num_edges() as f64 * pct / 100.0).round() as usize;
            let poisoned = outcome.poisoned_graph(&g, b);
            // Poisoning setting: the system retrains on the poisoned
            // graph; labels stay fixed from pre-processing (Sec. VI-B).
            let after =
                evaluate_system(&system, &poisoned, &labels, &train, &test, &targets, &tcfg);
            let db = 100.0 * delta_b(clean.target_soft_sum, after.target_soft_sum);
            println!(
                "{:>12.1} {:>8.3} {:>8.3} {:>8.2}",
                pct, after.auc, after.f1, db
            );
            csv.push(format!(
                "{},{pct:.1},{:.4},{:.4},{db:.3}",
                d.name(),
                after.auc,
                after.f1
            ));
        }
    }
    opts.write_csv("table3.csv", "dataset,edges_pct,auc,f1,delta_b_pct", &csv);
    println!("\n(paper: Bitcoin-Alpha AUC 0.72->0.65, F1 0.85->0.81, dB up to 25.7%;");
    println!(" Wikivote AUC 0.68->0.60, F1 0.77->0.71, dB up to 28%)");
}
