//! Table III — transfer attack against GAL (GCN + anomaly margin loss).
//!
//! For edge-change budgets 0–2% (step 0.2%) on the Bitcoin-Alpha-like
//! and Wikivote-like graphs: global AUC and F1 on the test split, and
//! the soft-label decrease δ_B on the targets identified from the clean
//! run. Paper shape: AUC/F1 sag only mildly (0.72→0.65 / 0.85→0.81 on
//! Bitcoin-Alpha) while δ_B climbs to ~25% — a targeted, unnoticeable
//! attack.
//!
//! One orchestrator cell per dataset (the GAL training runs dominate).
//!
//! Run: `cargo run -p ba-bench --release --bin table3 [--paper]
//! [--threads N]`

use ba_bench::experiments::Table3Experiment;
use ba_bench::runner::ExperimentRunner;
use ba_bench::ExpOptions;

fn main() {
    let opts = ExpOptions::from_args();
    let exp = Table3Experiment::standard(&opts);
    if let Err(e) = ExperimentRunner::new(&opts).run(&exp, &opts) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
