//! Fig. 10 — countermeasures: OddBall with robust estimators (Huber,
//! RANSAC) vs plain OLS under BinarizedAttack, on the
//! Bitcoin-Alpha-like and Wikivote-like graphs with 10 targets.
//!
//! τ_as is re-evaluated under each estimator: the attack is optimised
//! against OLS-OddBall, then scored by the robust variants. Paper
//! finding: both robust estimators *slightly* mitigate the attack, which
//! remains very effective.
//!
//! Run: `cargo run -p ba-bench --release --bin fig10 [--paper]`

use ba_bench::{f4, sample_targets, ExpOptions};
use ba_core::{AttackConfig, BinarizedAttack, StructuralAttack};
use ba_datasets::Dataset;
use ba_graph::NodeId;
use ba_oddball::{OddBall, Regressor};

fn main() {
    let opts = ExpOptions::from_args();
    println!(
        "FIG 10: defence with robust estimators (mean over {} runs)",
        opts.samples
    );
    let mut csv = Vec::new();
    for d in [Dataset::BitcoinAlpha, Dataset::Wikivote] {
        let g = d.build(opts.seed);
        let budget = (g.num_edges() as f64 * 0.0175).round() as usize;
        println!(
            "\n--- {} (budget {} = 1.75% of edges) ---",
            d.name(),
            budget
        );
        println!(
            "{:>8}  {:>12}  {:>12}  {:>12}",
            "budget", "no defence", "huber", "ransac"
        );

        // Mean curves across target resamples.
        let detectors = [
            ("no_defence", OddBall::default()),
            ("huber", OddBall::new(Regressor::default_huber())),
            (
                "ransac",
                OddBall::new(Regressor::default_ransac(opts.seed + 17)),
            ),
        ];
        let mut sums = vec![vec![0.0f64; budget + 1]; detectors.len()];
        let mut runs = 0usize;
        for s in 0..opts.samples {
            let targets: Vec<NodeId> = sample_targets(&g, 10, 50, opts.seed + 31 + s as u64);
            let attack = BinarizedAttack::new(AttackConfig::default())
                .with_iterations(if opts.paper { 400 } else { 120 })
                .with_lambdas(if opts.paper {
                    vec![0.002, 0.02]
                } else {
                    vec![0.004, 0.04]
                });
            let Ok(outcome) = attack.attack(&g, &targets, budget) else {
                continue;
            };
            // All three detector curves must evaluate for the sample to
            // count; a degenerate robust refit skips the sample with a
            // warning instead of aborting the sweep.
            let curves: Result<Vec<Vec<f64>>, _> = detectors
                .iter()
                .map(|(_, det)| outcome.ascore_curve(&g, &targets, det))
                .collect();
            let curves = match curves {
                Ok(curves) => curves,
                Err(e) => {
                    eprintln!("warning: curve evaluation failed on sample {s}: {e}");
                    continue;
                }
            };
            runs += 1;
            for (k, curve) in curves.iter().enumerate() {
                for (b, slot) in sums[k].iter_mut().enumerate() {
                    *slot += ba_core::AttackOutcome::tau_as(curve, b);
                }
            }
        }
        assert!(runs > 0, "all attack runs failed");
        for row in &mut sums {
            for v in row.iter_mut() {
                *v /= runs as f64;
            }
        }
        let step = (budget / 8).max(1);
        for b in (0..=budget).step_by(step) {
            println!(
                "{:>8}  {:>12}  {:>12}  {:>12}",
                b,
                f4(sums[0][b]),
                f4(sums[1][b]),
                f4(sums[2][b])
            );
            csv.push(format!(
                "{},{b},{},{},{}",
                d.name(),
                sums[0][b],
                sums[1][b],
                sums[2][b]
            ));
        }
        let mitig_h = sums[0][budget] - sums[1][budget];
        let mitig_r = sums[0][budget] - sums[2][budget];
        println!(
            "mitigation at max budget: huber {:.4}, ransac {:.4} (paper: slight, attack stays effective)",
            mitig_h, mitig_r
        );
    }
    opts.write_csv(
        "fig10.csv",
        "dataset,budget,tau_ols,tau_huber,tau_ransac",
        &csv,
    )
    .expect("write csv");
}
