//! Runs every experiment binary in sequence (quick profile), mirroring
//! the paper's full evaluation section. Useful as a one-shot smoke run:
//!
//! `cargo run -p ba-bench --release --bin run_all`
//!
//! Pass `--paper` to forward the full-scale flag to every stage.

use std::process::Command;

fn main() {
    let forward: Vec<String> = std::env::args().skip(1).collect();
    let bins = [
        "table1",
        "fig2",
        "fig4",
        "fig5",
        "fig6",
        "fig7_table2",
        "table3",
        "table4",
        "fig8_fig9",
        "fig10",
        "ablation",
    ];
    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    for bin in bins {
        println!("\n================ {bin} ================");
        let status = Command::new(exe_dir.join(bin))
            .args(&forward)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("warning: {bin} exited with {status}");
        }
    }
    println!("\nAll experiments complete. CSVs in target/experiments/.");
}
