//! Runs the full evaluation section, mirroring the paper:
//!
//! `cargo run -p ba-bench --release --bin run_all [--paper] [--threads N]
//! [--resume]`
//!
//! The five grid-shaped experiments (fig4, fig5, fig6, table3, table4)
//! run first as **one pooled orchestrator suite**: their cells share a
//! worker pool and deduplicated dataset substrates, so the machine stays
//! saturated across experiment boundaries, every cell is committed
//! atomically (an interrupted run resumes with `--resume`), and the
//! merged CSVs are byte-identical at any `--threads` value. The
//! remaining scalar/diagnostic binaries (table1, fig2, fig7_table2,
//! fig8_fig9, fig10, ablation) then run as child processes, as before.

use ba_bench::experiments::{
    Fig4Experiment, Fig5Experiment, Fig6Experiment, Table3Experiment, Table4Experiment,
};
use ba_bench::runner::{Experiment, ExperimentRunner};
use ba_bench::ExpOptions;
use std::process::Command;

fn main() {
    let opts = ExpOptions::from_args();
    let forward: Vec<String> = std::env::args().skip(1).collect();

    println!(
        "================ orchestrated grid (fig4, fig5, fig6, table3, table4) ================"
    );
    let fig4 = Fig4Experiment::standard(&opts);
    let fig5 = Fig5Experiment::standard(&opts);
    let fig6 = Fig6Experiment::standard(&opts);
    let table3 = Table3Experiment::standard(&opts);
    let table4 = Table4Experiment::standard(&opts);
    let suite: [&dyn Experiment; 5] = [&fig4, &fig5, &fig6, &table3, &table4];
    if let Err(e) = ExperimentRunner::new(&opts).run_suite(&suite, &opts) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }

    // The remaining binaries are scalar reports or diagnostics with no
    // grid to fan out; they keep their child-process path.
    let bins = [
        "table1",
        "fig2",
        "fig7_table2",
        "fig8_fig9",
        "fig10",
        "ablation",
    ];
    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    for bin in bins {
        println!("\n================ {bin} ================");
        let status = Command::new(exe_dir.join(bin))
            .args(&forward)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("warning: {bin} exited with {status}");
        }
    }
    println!(
        "\nAll experiments complete. CSVs in {}.",
        opts.out_dir.display()
    );
}
