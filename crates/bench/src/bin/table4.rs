//! Table IV — transfer attack against ReFeX (recursive structural
//! features + MLP).
//!
//! Budgets are absolute edge counts: 0–50 step 5 on Bitcoin-Alpha-like,
//! 0–100 step 10 on Wikivote-like (as in the paper's table). Reports
//! AUC / F1 / δ_B. Paper shape: AUC sags 0.79→0.72 / 0.84→0.66, δ_B
//! reaches 33% / 56%.
//!
//! One orchestrator cell per dataset.
//!
//! Run: `cargo run -p ba-bench --release --bin table4 [--paper]
//! [--threads N]`

use ba_bench::experiments::Table4Experiment;
use ba_bench::runner::ExperimentRunner;
use ba_bench::ExpOptions;

fn main() {
    let opts = ExpOptions::from_args();
    let exp = Table4Experiment::standard(&opts);
    if let Err(e) = ExperimentRunner::new(&opts).run(&exp, &opts) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
