//! Table IV — transfer attack against ReFeX (recursive structural
//! features + MLP).
//!
//! Budgets are absolute edge counts: 0–50 step 5 on Bitcoin-Alpha-like,
//! 0–100 step 10 on Wikivote-like (as in the paper's table). Reports
//! AUC / F1 / δ_B. Paper shape: AUC sags 0.79→0.72 / 0.84→0.66, δ_B
//! reaches 33% / 56%.
//!
//! Run: `cargo run -p ba-bench --release --bin table4 [--paper]`

use ba_bench::ExpOptions;
use ba_core::{AttackConfig, BinarizedAttack, StructuralAttack};
use ba_datasets::Dataset;
use ba_gad::{
    evaluate_system, identify_targets, pipeline::delta_b, pipeline::oddball_labels,
    train_test_split, GadSystem, RefexConfig, TransferConfig,
};

fn main() {
    let opts = ExpOptions::from_args();
    let system = GadSystem::Refex(RefexConfig::default());
    let tcfg = TransferConfig {
        seed: opts.seed + 5,
        ..TransferConfig::default()
    };

    println!("TABLE IV: ReFeX transfer attack (AUC / F1 / delta_B)");
    let mut csv = Vec::new();
    for (d, max_budget, step) in [
        (Dataset::BitcoinAlpha, 50usize, 5usize),
        (Dataset::Wikivote, 100, 10),
    ] {
        let g = d.build(opts.seed);
        let labels = oddball_labels(&g, tcfg.label_fraction);
        let (train, test) = train_test_split(g.num_nodes(), tcfg.train_fraction, tcfg.seed);
        let (targets, clean) = identify_targets(&system, &g, &labels, &train, &test, &tcfg);
        println!(
            "\n--- {} (n={}, m={}, {} identified targets) ---",
            d.name(),
            g.num_nodes(),
            g.num_edges(),
            targets.len()
        );
        println!("{:>8} {:>8} {:>8} {:>8}", "B", "AUC", "F1", "dB(%)");
        println!("{:>8} {:>8.3} {:>8.3} {:>8.2}", 0, clean.auc, clean.f1, 0.0);
        csv.push(format!(
            "{},0,{:.4},{:.4},0.0",
            d.name(),
            clean.auc,
            clean.f1
        ));
        if targets.is_empty() {
            eprintln!("warning: no targets identified; skipping dataset");
            continue;
        }

        let attack = BinarizedAttack::new(AttackConfig::default())
            .with_iterations(if opts.paper { 120 } else { 60 })
            .with_lambdas(vec![0.01, 0.05]);
        let outcome = attack.attack(&g, &targets, max_budget).expect("attack");
        let mut b = step;
        while b <= max_budget {
            let poisoned = outcome.poisoned_graph(&g, b);
            let after =
                evaluate_system(&system, &poisoned, &labels, &train, &test, &targets, &tcfg);
            let db = 100.0 * delta_b(clean.target_soft_sum, after.target_soft_sum);
            println!("{:>8} {:>8.3} {:>8.3} {:>8.2}", b, after.auc, after.f1, db);
            csv.push(format!(
                "{},{b},{:.4},{:.4},{db:.3}",
                d.name(),
                after.auc,
                after.f1
            ));
            b += step;
        }
    }
    opts.write_csv("table4.csv", "dataset,budget,auc,f1,delta_b_pct", &csv);
    println!("\n(paper: Bitcoin-Alpha AUC 0.79->0.72, dB up to 33.3%;");
    println!(" Wikivote AUC 0.84->0.66, dB up to 56.4%)");
}
