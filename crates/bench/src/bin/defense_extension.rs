//! Extension experiment (beyond paper Fig. 10): the low-rank
//! purification defence the paper's related work points at (Entezari et
//! al., WSDM'20) against BinarizedAttack, compared with the paper's
//! robust-regression defences, plus the stricter KS-test unnoticeability
//! probe.
//!
//! Questions answered:
//! 1. Does spectral truncation of the poisoned adjacency undo the
//!    attack's edge flips (τ_as with purification vs without)?
//! 2. What does purification cost on the *clean* graph (false-positive
//!    structural damage — edge retention)?
//! 3. Do the poisoned feature distributions fail a KS test even when
//!    they pass the paper's mean-based permutation test?
//!
//! Run: `cargo run -p ba-bench --release --bin defense_extension`

use ba_bench::{f4, sample_targets, ExpOptions};
use ba_core::{AttackConfig, BinarizedAttack, StructuralAttack};
use ba_datasets::Dataset;
use ba_graph::egonet::egonet_features;
use ba_oddball::{edge_retention, low_rank_purify, OddBall, PurifyConfig, Regressor};
use ba_stats::{ks_test, PermutationTest};

fn main() {
    let opts = ExpOptions::from_args();
    println!("DEFENSE EXTENSION: low-rank purification vs BinarizedAttack");
    let mut csv = Vec::new();
    for d in [Dataset::BitcoinAlpha, Dataset::Wikivote] {
        let g = d.build(opts.seed);
        let targets = sample_targets(&g, 10, 50, opts.seed + 41);
        let budget = (g.num_edges() as f64 * 0.0175).round() as usize;
        let attack = BinarizedAttack::new(AttackConfig::default())
            .with_iterations(if opts.paper { 400 } else { 120 })
            .with_lambdas(if opts.paper {
                vec![0.002, 0.02]
            } else {
                vec![0.004, 0.04]
            });
        let outcome = attack.attack(&g, &targets, budget).expect("attack");
        let poisoned = outcome.poisoned_graph(&g, budget);

        let s0 = OddBall::default()
            .fit(&g)
            .unwrap()
            .target_score_sum(&targets);
        let tau = |detector: &OddBall, graph: &ba_graph::Graph| -> f64 {
            let s = detector.fit(graph).unwrap().target_score_sum(&targets);
            (s0 - s) / s0.max(1e-12)
        };

        // Purification at two ranks.
        let pur16 = low_rank_purify(
            &poisoned,
            PurifyConfig {
                rank: 16,
                ..PurifyConfig::default()
            },
        );
        let pur48 = low_rank_purify(
            &poisoned,
            PurifyConfig {
                rank: 48,
                ..PurifyConfig::default()
            },
        );
        let clean_pur = low_rank_purify(
            &g,
            PurifyConfig {
                rank: 48,
                ..PurifyConfig::default()
            },
        );

        let ols = OddBall::default();
        let rows = [
            ("no defence", tau(&ols, &poisoned)),
            (
                "huber",
                tau(&OddBall::new(Regressor::default_huber()), &poisoned),
            ),
            (
                "ransac",
                tau(
                    &OddBall::new(Regressor::default_ransac(opts.seed)),
                    &poisoned,
                ),
            ),
            ("purify rank16", tau(&ols, &pur16)),
            ("purify rank48", tau(&ols, &pur48)),
        ];
        println!("\n--- {} (budget {budget}) ---", d.name());
        println!("{:>16}  {:>10}", "defence", "tau_as");
        for (name, t) in rows {
            println!("{name:>16}  {:>10}", f4(t));
            csv.push(format!("{},{name},{t:.5}", d.name()));
        }
        println!(
            "clean-graph purification damage: retains {:.1}% of benign edges",
            100.0 * edge_retention(&g, &clean_pur)
        );

        // Unnoticeability under both tests.
        let cf = egonet_features(&g);
        let pf = egonet_features(&poisoned);
        let perm_n = PermutationTest {
            resamples: 10_000,
            seed: opts.seed + 3,
        }
        .pvalue(&cf.n, &pf.n);
        let ks_n = ks_test(&cf.n, &pf.n);
        let perm_e = PermutationTest {
            resamples: 10_000,
            seed: opts.seed + 4,
        }
        .pvalue(&cf.e, &pf.e);
        let ks_e = ks_test(&cf.e, &pf.e);
        println!(
            "unnoticeability: N perm p={perm_n:.3} / KS p={:.3}; E perm p={perm_e:.3} / KS p={:.3}",
            ks_n.p_value, ks_e.p_value
        );
        csv.push(format!(
            "{},pvalues,{perm_n:.4}|{:.4}|{perm_e:.4}|{:.4}",
            d.name(),
            ks_n.p_value,
            ks_e.p_value
        ));
    }
    opts.write_csv("defense_extension.csv", "dataset,defence,tau_or_p", &csv)
        .expect("write csv");
}
