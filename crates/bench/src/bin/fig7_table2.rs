//! Fig. 7 + Table II — the attack's side effects on the global feature
//! distributions.
//!
//! Fig. 7: Gaussian-KDE densities of the egonet features N and E on the
//! Bitcoin-Alpha-like graph, clean vs poisoned (max perturbation, 30
//! targets).
//!
//! Table II: Monte-Carlo permutation-test p-values (M = 100 000) for
//! `N_clean` vs `N_poisoned` and `E_clean` vs `E_poisoned` over 5
//! experiment repetitions on the three "real" datasets. Paper: N is
//! never significantly shifted; E occasionally is (one Wikivote run).
//!
//! Run: `cargo run -p ba-bench --release --bin fig7_table2 [--paper]`

use ba_bench::{sample_targets, ExpOptions};
use ba_core::{AttackConfig, BinarizedAttack, StructuralAttack};
use ba_datasets::Dataset;
use ba_graph::egonet::egonet_features;
use ba_stats::{Kde, PermutationTest};

fn main() {
    let opts = ExpOptions::from_args();
    let resamples = if opts.paper { 100_000 } else { 20_000 };
    let runs = 5;
    let datasets = [
        Dataset::BitcoinAlpha,
        Dataset::Blogcatalog,
        Dataset::Wikivote,
    ];

    println!("TABLE II: permutation-test p-values for ego-features (M = {resamples})");
    println!(
        "{:>4}  {:>16} {:>8} {:>8}",
        "run", "dataset", "p(N)", "p(E)"
    );
    let mut table_csv = Vec::new();
    let mut fig7_done = false;
    for run in 1..=runs {
        for d in datasets {
            let seed = opts.seed + run as u64 * 1000;
            let g = d.build(seed);
            let targets = sample_targets(&g, 30, 50, seed + 7);
            let budget = (g.num_edges() as f64 * 0.04).round() as usize;
            let attack = BinarizedAttack::new(AttackConfig::default())
                .with_iterations(if opts.paper { 400 } else { 120 })
                .with_lambdas(if opts.paper {
                    vec![0.002, 0.02]
                } else {
                    vec![0.004, 0.04]
                });
            let outcome = attack.attack(&g, &targets, budget).expect("attack");
            let poisoned = outcome.poisoned_graph(&g, budget);

            let clean = egonet_features(&g);
            let pois = egonet_features(&poisoned);
            let test = PermutationTest {
                resamples,
                seed: seed + 13,
            };
            let p_n = test.pvalue(&clean.n, &pois.n);
            let p_e = test.pvalue(&clean.e, &pois.e);
            println!("{:>4}  {:>16} {:>8.3} {:>8.3}", run, d.name(), p_n, p_e);
            table_csv.push(format!("{run},{},{p_n},{p_e}", d.name()));

            // Fig. 7 densities once, on the first Bitcoin-Alpha run.
            if !fig7_done && d == Dataset::BitcoinAlpha {
                fig7_done = true;
                let mut rows = Vec::new();
                for (feat, cl, po) in [("N", &clean.n, &pois.n), ("E", &clean.e, &pois.e)] {
                    let hi = cl.iter().chain(po.iter()).cloned().fold(0.0f64, f64::max);
                    let kde_c = Kde::new(cl);
                    let kde_p = Kde::new(po);
                    let (xs, yc) = kde_c.grid(0.0, hi * 1.05, 200);
                    let (_, yp) = kde_p.grid(0.0, hi * 1.05, 200);
                    for k in 0..xs.len() {
                        rows.push(format!("{feat},{:.5},{:.8},{:.8}", xs[k], yc[k], yp[k]));
                    }
                }
                opts.write_csv(
                    "fig7_density.csv",
                    "feature,x,density_clean,density_poisoned",
                    &rows,
                )
                .expect("write csv");
            }
        }
    }
    opts.write_csv("table2.csv", "run,dataset,p_n,p_e", &table_csv)
        .expect("write csv");
    println!(
        "\n(paper: p(N) ~ 0.56-0.75 never significant; p(E) 0.005-0.14, one Wikivote run < 0.01)"
    );
}
