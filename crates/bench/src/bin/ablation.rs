//! Ablations of BinarizedAttack's design choices (DESIGN.md §6):
//!
//! 1. **λ grid** — single λ values vs the swept grid.
//! 2. **Iteration budget T** and **learning rate η**.
//! 3. **Candidate scoping** — full pair space vs target neighbourhood.
//! 4. **Gradient guidance** — BinarizedAttack / GradMaxSearch vs the
//!    structural CliqueBreaker heuristic and the random floor.
//!
//! Run: `cargo run -p ba-bench --release --bin ablation`

use ba_bench::{f4, mean_tau_curve, sample_targets, ExpOptions};
use ba_core::{
    AttackConfig, BinarizedAttack, CandidateScope, CliqueBreaker, GradMaxSearch, RandomAttack,
    StructuralAttack,
};
use ba_datasets::Dataset;
use ba_graph::NodeId;

fn main() {
    let opts = ExpOptions::from_args();
    let (n, m) = Dataset::Ba.paper_statistics();
    let g = if opts.paper {
        Dataset::Ba.build(opts.seed)
    } else {
        Dataset::Ba.build_scaled(n / 2, m / 2, opts.seed)
    };
    let budget = (g.num_edges() as f64 * 0.02).round() as usize;
    let target_sets: Vec<Vec<NodeId>> = (0..opts.samples)
        .map(|s| sample_targets(&g, 10, 50, opts.seed + 300 + s as u64))
        .collect();
    println!(
        "ABLATIONS on BA-like graph (n={}, m={}, budget={budget}, {} samples)",
        g.num_nodes(),
        g.num_edges(),
        opts.samples
    );
    let mut csv = Vec::new();
    let mut run = |name: &str, attack: &dyn StructuralAttack| {
        let t0 = std::time::Instant::now();
        let curve = mean_tau_curve(attack, &g, &target_sets, budget);
        let tau = curve.last().copied().unwrap_or(0.0);
        let secs = t0.elapsed().as_secs_f64();
        println!("{name:>34}  tau_as = {}  ({secs:.1}s)", f4(tau));
        csv.push(format!("{name},{tau},{secs:.2}"));
        tau
    };

    println!("\n[1] lambda grid");
    for lam in [0.002, 0.01, 0.05, 0.2] {
        run(
            &format!("binarized lambda={lam}"),
            &BinarizedAttack::default()
                .with_iterations(80)
                .with_lambdas(vec![lam]),
        );
    }
    run(
        "binarized swept grid",
        &BinarizedAttack::default()
            .with_iterations(80)
            .with_lambdas(vec![0.002, 0.01, 0.05]),
    );

    println!("\n[2] iterations and learning rate");
    for iters in [20, 80, 200] {
        run(
            &format!("binarized T={iters}"),
            &BinarizedAttack::default()
                .with_iterations(iters)
                .with_lambdas(vec![0.01, 0.05]),
        );
    }
    for lr in [0.01, 0.05, 0.2] {
        run(
            &format!("binarized lr={lr}"),
            &BinarizedAttack::default()
                .with_iterations(80)
                .with_learning_rate(lr)
                .with_lambdas(vec![0.01, 0.05]),
        );
    }

    println!("\n[3] candidate scope");
    let scoped = AttackConfig {
        scope: CandidateScope::TargetNeighborhood,
        ..AttackConfig::default()
    };
    run(
        "binarized full scope",
        &BinarizedAttack::default()
            .with_iterations(80)
            .with_lambdas(vec![0.01, 0.05]),
    );
    run(
        "binarized target-neighborhood",
        &BinarizedAttack::new(scoped)
            .with_iterations(80)
            .with_lambdas(vec![0.01, 0.05]),
    );

    println!("\n[4] gradient guidance vs heuristics");
    run(
        "binarized (default)",
        &BinarizedAttack::default()
            .with_iterations(80)
            .with_lambdas(vec![0.01, 0.05]),
    );
    run("gradmaxsearch", &GradMaxSearch::default());
    run("cliquebreaker heuristic", &CliqueBreaker::default());
    run("random floor", &RandomAttack::default());

    opts.write_csv("ablation.csv", "variant,tau_as,seconds", &csv)
        .expect("write csv");
}
