//! Table I — statistics of the five evaluation datasets, compared with
//! the counts the paper reports.
//!
//! Run: `cargo run -p ba-bench --release --bin table1 [--seed N]`

use ba_bench::{print_row, ExpOptions};
use ba_datasets::table_one;

fn main() {
    let opts = ExpOptions::from_args();
    let rows = table_one(opts.seed);
    println!("TABLE I: Statistics of datasets (built vs paper)");
    let widths = [14, 8, 8, 12, 12, 12];
    print_row(
        &[
            "dataset".into(),
            "nodes".into(),
            "edges".into(),
            "paper_nodes".into(),
            "paper_edges".into(),
            "clustering".into(),
        ],
        &widths,
    );
    let mut csv = Vec::new();
    for r in &rows {
        print_row(
            &[
                r.name.to_string(),
                r.nodes.to_string(),
                r.edges.to_string(),
                r.paper_nodes.to_string(),
                r.paper_edges.to_string(),
                format!("{:.4}", r.avg_clustering),
            ],
            &widths,
        );
        csv.push(format!(
            "{},{},{},{},{},{:.6}",
            r.name, r.nodes, r.edges, r.paper_nodes, r.paper_edges, r.avg_clustering
        ));
    }
    opts.write_csv(
        "table1.csv",
        "dataset,nodes,edges,paper_nodes,paper_edges,avg_clustering",
        &csv,
    )
    .expect("write csv");
}
