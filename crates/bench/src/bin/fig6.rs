//! Fig. 6 — attack preferences by target group on the Blogcatalog-like
//! graph. Nodes are split into low/medium/high AScore groups at the 10th
//! and 90th percentiles; 10 targets are drawn from each group and the 30
//! attacked together. The paper finds BinarizedAttack exerts much more
//! influence on the high-level anomalies; it also plots the regression
//! lines on the clean graph and at B = 60.
//!
//! Run: `cargo run -p ba-bench --release --bin fig6`

use ba_bench::{f4, ExpOptions};
use ba_core::{AttackConfig, AttackOutcome, BinarizedAttack, StructuralAttack};
use ba_datasets::Dataset;
use ba_graph::NodeId;
use ba_oddball::OddBall;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let opts = ExpOptions::from_args();
    let g = Dataset::Blogcatalog.build(opts.seed);
    let model = OddBall::default().fit(&g).expect("fit clean");
    let scores = model.scores();
    let q1 = ba_stats::percentile(scores, 10.0);
    let q2 = ba_stats::percentile(scores, 90.0);
    println!(
        "FIG 6: Blogcatalog-like, percentile thresholds q1={:.4} (10%), q2={:.4} (90%)",
        q1, q2
    );

    // Group membership.
    let mut low: Vec<NodeId> = Vec::new();
    let mut med: Vec<NodeId> = Vec::new();
    let mut high: Vec<NodeId> = Vec::new();
    for (i, &s) in scores.iter().enumerate() {
        let id = i as NodeId;
        if s <= q1 {
            low.push(id);
        } else if s >= q2 {
            high.push(id);
        } else {
            med.push(id);
        }
    }
    let mut rng = StdRng::seed_from_u64(opts.seed + 9);
    for group in [&mut low, &mut med, &mut high] {
        group.shuffle(&mut rng);
        group.truncate(10);
        group.sort_unstable();
    }
    let mut all_targets = Vec::new();
    all_targets.extend_from_slice(&low);
    all_targets.extend_from_slice(&med);
    all_targets.extend_from_slice(&high);

    let budget = 60;
    let attack = BinarizedAttack::new(AttackConfig::default()).with_iterations(if opts.paper {
        400
    } else {
        300
    });
    let outcome = attack.attack(&g, &all_targets, budget).expect("attack");

    // Per-group τ_as curves.
    println!(
        "{:>8}  {:>10}  {:>10}  {:>10}",
        "budget", "low", "medium", "high"
    );
    let mut csv = Vec::new();
    let detector = OddBall::default();
    let group_curve = |targets: &[NodeId]| -> Vec<f64> {
        let curve = outcome.ascore_curve(&g, targets, &detector);
        (0..curve.len())
            .map(|b| AttackOutcome::tau_as(&curve, b))
            .collect()
    };
    let c_low = group_curve(&low);
    let c_med = group_curve(&med);
    let c_high = group_curve(&high);
    for b in (0..=budget).step_by(10) {
        let at = |c: &Vec<f64>| c[b.min(c.len() - 1)];
        println!(
            "{:>8}  {:>10}  {:>10}  {:>10}",
            b,
            f4(at(&c_low)),
            f4(at(&c_med)),
            f4(at(&c_high))
        );
        csv.push(format!("{b},{},{},{}", at(&c_low), at(&c_med), at(&c_high)));
    }
    opts.write_csv(
        "fig6_groups.csv",
        "budget,tau_low,tau_medium,tau_high",
        &csv,
    );

    // Regression lines clean vs poisoned at B = 60 (Fig. 6b/6c).
    let poisoned = outcome.poisoned_graph(&g, budget);
    let model_after = OddBall::default().fit(&poisoned).expect("fit poisoned");
    println!(
        "\nregression clean:    beta0 = {:.4}, beta1 = {:.4}",
        model.beta0(),
        model.beta1()
    );
    println!(
        "regression B={budget}:  beta0 = {:.4}, beta1 = {:.4}",
        model_after.beta0(),
        model_after.beta1()
    );
    let mut reg_csv = vec![
        format!("clean,{:.6},{:.6}", model.beta0(), model.beta1()),
        format!(
            "poisoned_b{budget},{:.6},{:.6}",
            model_after.beta0(),
            model_after.beta1()
        ),
    ];
    // Scatter of the targets for the two panels.
    for (tag, m) in [("clean", &model), ("poisoned", &model_after)] {
        for (gname, group) in [("low", &low), ("medium", &med), ("high", &high)] {
            for &t in group.iter() {
                let f = m.features();
                reg_csv.push(format!(
                    "scatter_{tag}_{gname},{:.6},{:.6}",
                    f.n[t as usize].max(1.0).ln(),
                    f.e[t as usize].max(1.0).ln()
                ));
            }
        }
    }
    opts.write_csv(
        "fig6_regression.csv",
        "series,x_or_beta0,y_or_beta1",
        &reg_csv,
    );
}
