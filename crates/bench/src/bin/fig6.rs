//! Fig. 6 — attack preferences by target group on the Blogcatalog-like
//! graph. Nodes are split into low/medium/high AScore groups at the 10th
//! and 90th percentiles; 10 targets are drawn from each group and the 30
//! attacked together. The paper finds BinarizedAttack exerts much more
//! influence on the high-level anomalies; it also plots the regression
//! lines on the clean graph and at B = 60.
//!
//! A single orchestrator cell (everything derives from one attack run);
//! `run_all` pools it with the other experiments' cells.
//!
//! Run: `cargo run -p ba-bench --release --bin fig6`

use ba_bench::experiments::Fig6Experiment;
use ba_bench::runner::ExperimentRunner;
use ba_bench::ExpOptions;

fn main() {
    let opts = ExpOptions::from_args();
    let exp = Fig6Experiment::standard(&opts);
    if let Err(e) = ExperimentRunner::new(&opts).run(&exp, &opts) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
