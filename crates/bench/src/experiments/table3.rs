//! Table III as a runner experiment — the GAL (GCN + anomaly margin
//! loss) transfer attack. One cell per dataset: the expensive
//! target-identification training run and the single max-budget attack
//! are shared by all ten evaluation budgets, so a finer decomposition
//! would re-train GAL per budget.

use crate::artifact::enc_f64;
use crate::experiments::{corrupt, dec_field};
use crate::runner::{CellCtx, DatasetSpec, Experiment};
use crate::{BenchError, ExpOptions};
use ba_core::{AttackConfig, BinarizedAttack, StructuralAttack};
use ba_datasets::Dataset;
use ba_gad::{
    evaluate_system, identify_targets, pipeline::delta_b, pipeline::oddball_labels,
    train_test_split, GadSystem, GalConfig, TransferConfig,
};

const DATASETS: [Dataset; 2] = [Dataset::BitcoinAlpha, Dataset::Wikivote];
const MAX_PCT: f64 = 2.0;
const STEPS: usize = 10;

/// The Table III transfer-attack experiment.
#[derive(Debug, Clone)]
pub struct Table3Experiment {
    /// GAL training epochs.
    pub gal_epochs: usize,
    /// BinarizedAttack PGD iterations.
    pub attack_iters: usize,
}

impl Table3Experiment {
    /// Paper configuration at the profile `opts` selects.
    pub fn standard(opts: &ExpOptions) -> Self {
        Self {
            gal_epochs: if opts.paper { 120 } else { 60 },
            attack_iters: if opts.paper { 120 } else { 60 },
        }
    }
}

impl Experiment for Table3Experiment {
    fn name(&self) -> String {
        "table3".to_string()
    }

    fn config_fingerprint(&self) -> String {
        format!("{self:?}")
    }

    fn artifacts(&self) -> Vec<String> {
        vec!["table3.csv".to_string()]
    }

    fn datasets(&self) -> Vec<DatasetSpec> {
        DATASETS.iter().map(|&d| DatasetSpec::full(d)).collect()
    }

    fn num_cells(&self) -> usize {
        DATASETS.len()
    }

    fn cell_dataset(&self, cell: usize) -> usize {
        cell
    }

    fn cell_label(&self, cell: usize) -> String {
        format!("gal/{}", DATASETS[cell].name())
    }

    fn run_cell(&self, cell: usize, ctx: &mut CellCtx<'_, '_>) -> Vec<String> {
        let d = DATASETS[cell];
        let g = ctx.graph(cell);
        let system = GadSystem::Gal(GalConfig {
            epochs: self.gal_epochs,
            ..GalConfig::default()
        });
        let tcfg = TransferConfig {
            seed: ctx.seed_for("transfer", &[]),
            ..TransferConfig::default()
        };
        let labels = oddball_labels(g, tcfg.label_fraction);
        let (train, test) = train_test_split(g.num_nodes(), tcfg.train_fraction, tcfg.seed);
        let (targets, clean) = identify_targets(&system, g, &labels, &train, &test, &tcfg);
        let mut rows = vec![
            format!(
                "meta,{},{},{},{}",
                d.name(),
                g.num_nodes(),
                g.num_edges(),
                targets.len()
            ),
            format!("clean,{},{}", enc_f64(clean.auc), enc_f64(clean.f1)),
        ];
        if targets.is_empty() {
            return rows;
        }

        // One attack run at the max budget; per-budget op sets reused.
        // An attack error fails the dataset's poisoned rows gracefully
        // (fig6 convention): the clean row still ships, the reason rides
        // in the record, and no worker panics.
        let max_budget = (g.num_edges() as f64 * MAX_PCT / 100.0).round() as usize;
        let outcome = match ctx.session(cell, &targets).and_then(|session| {
            BinarizedAttack::new(AttackConfig::default())
                .with_iterations(self.attack_iters)
                .with_lambdas(vec![0.01, 0.05])
                .attack_with_session(session, max_budget)
        }) {
            Ok(outcome) => outcome,
            Err(e) => {
                eprintln!("warning: table3 attack on {} failed: {e}", d.name());
                rows.push(format!("failed,{e}"));
                return rows;
            }
        };

        for s in 1..=STEPS {
            let pct = MAX_PCT * s as f64 / STEPS as f64;
            let b = (g.num_edges() as f64 * pct / 100.0).round() as usize;
            let poisoned = outcome.poisoned_graph(g, b);
            // Poisoning setting: the system retrains on the poisoned
            // graph; labels stay fixed from pre-processing (Sec. VI-B).
            let after =
                evaluate_system(&system, &poisoned, &labels, &train, &test, &targets, &tcfg);
            let db = 100.0 * delta_b(clean.target_soft_sum, after.target_soft_sum);
            rows.push(format!(
                "step,{s},{},{},{}",
                enc_f64(after.auc),
                enc_f64(after.f1),
                enc_f64(db)
            ));
        }
        rows
    }

    fn finalize(&self, opts: &ExpOptions, cells: &[Vec<String>]) -> Result<(), BenchError> {
        println!("TABLE III: GAL transfer attack (AUC / F1 / delta_B)");
        let mut csv = Vec::new();
        for rows in cells {
            let meta: Vec<&str> = rows[0].split(',').collect();
            let (name, n, m, ntargets) = (meta[1], meta[2], meta[3], meta[4]);
            println!("\n--- {name} (n={n}, m={m}, {ntargets} identified targets) ---");
            println!("{:>12} {:>8} {:>8} {:>8}", "edges(%)", "AUC", "F1", "dB(%)");
            let clean: Vec<&str> = rows[1].split(',').collect();
            let auc = dec_field("table3", "clean auc", clean[1])?;
            let f1 = dec_field("table3", "clean f1", clean[2])?;
            println!("{:>12} {auc:>8.3} {f1:>8.3} {:>8.2}", "0.0", 0.0);
            csv.push(format!("{name},0.0,{auc:.4},{f1:.4},0.0"));
            if rows.len() <= 2 {
                eprintln!("warning: no targets identified; skipping dataset");
                continue;
            }
            if let Some(reason) = rows[2].strip_prefix("failed,") {
                eprintln!("warning: table3 {name} attack rows unavailable: {reason}");
                continue;
            }
            for row in rows.iter().skip(2) {
                let parts: Vec<&str> = row.split(',').collect();
                let s: usize = parts[1]
                    .parse()
                    .map_err(|_| corrupt("table3", format!("step index: {:?}", parts[1])))?;
                let pct = MAX_PCT * s as f64 / STEPS as f64;
                let auc = dec_field("table3", "auc", parts[2])?;
                let f1 = dec_field("table3", "f1", parts[3])?;
                let db = dec_field("table3", "db", parts[4])?;
                println!("{pct:>12.1} {auc:>8.3} {f1:>8.3} {db:>8.2}");
                csv.push(format!("{name},{pct:.1},{auc:.4},{f1:.4},{db:.3}"));
            }
        }
        opts.write_csv("table3.csv", "dataset,edges_pct,auc,f1,delta_b_pct", &csv)?;
        println!("\n(paper: Bitcoin-Alpha AUC 0.72->0.65, F1 0.85->0.81, dB up to 25.7%;");
        println!(" Wikivote AUC 0.68->0.60, F1 0.77->0.71, dB up to 28%)");
        Ok(())
    }
}
