//! Table IV as a runner experiment — the ReFeX (recursive structural
//! features + MLP) transfer attack. One cell per dataset, mirroring
//! [`crate::experiments::table3`]; budgets are absolute edge counts as
//! in the paper's table.

use crate::artifact::enc_f64;
use crate::experiments::{corrupt, dec_field};
use crate::runner::{CellCtx, DatasetSpec, Experiment};
use crate::{BenchError, ExpOptions};
use ba_core::{AttackConfig, BinarizedAttack, StructuralAttack};
use ba_datasets::Dataset;
use ba_gad::{
    evaluate_system, identify_targets, pipeline::delta_b, pipeline::oddball_labels,
    train_test_split, GadSystem, RefexConfig, TransferConfig,
};

const GRID: [(Dataset, usize, usize); 2] =
    [(Dataset::BitcoinAlpha, 50, 5), (Dataset::Wikivote, 100, 10)];

/// The Table IV transfer-attack experiment.
#[derive(Debug, Clone)]
pub struct Table4Experiment {
    /// BinarizedAttack PGD iterations.
    pub attack_iters: usize,
}

impl Table4Experiment {
    /// Paper configuration at the profile `opts` selects.
    pub fn standard(opts: &ExpOptions) -> Self {
        Self {
            attack_iters: if opts.paper { 120 } else { 60 },
        }
    }
}

impl Experiment for Table4Experiment {
    fn name(&self) -> String {
        "table4".to_string()
    }

    fn config_fingerprint(&self) -> String {
        format!("{self:?}")
    }

    fn artifacts(&self) -> Vec<String> {
        vec!["table4.csv".to_string()]
    }

    fn datasets(&self) -> Vec<DatasetSpec> {
        GRID.iter().map(|&(d, _, _)| DatasetSpec::full(d)).collect()
    }

    fn num_cells(&self) -> usize {
        GRID.len()
    }

    fn cell_dataset(&self, cell: usize) -> usize {
        cell
    }

    fn cell_label(&self, cell: usize) -> String {
        format!("refex/{}", GRID[cell].0.name())
    }

    fn run_cell(&self, cell: usize, ctx: &mut CellCtx<'_, '_>) -> Vec<String> {
        let (d, max_budget, step) = GRID[cell];
        let g = ctx.graph(cell);
        let system = GadSystem::Refex(RefexConfig::default());
        let tcfg = TransferConfig {
            seed: ctx.seed_for("transfer", &[]),
            ..TransferConfig::default()
        };
        let labels = oddball_labels(g, tcfg.label_fraction);
        let (train, test) = train_test_split(g.num_nodes(), tcfg.train_fraction, tcfg.seed);
        let (targets, clean) = identify_targets(&system, g, &labels, &train, &test, &tcfg);
        let mut rows = vec![
            format!(
                "meta,{},{},{},{}",
                d.name(),
                g.num_nodes(),
                g.num_edges(),
                targets.len()
            ),
            format!("clean,{},{}", enc_f64(clean.auc), enc_f64(clean.f1)),
        ];
        if targets.is_empty() {
            return rows;
        }

        // An attack error fails the dataset's poisoned rows gracefully
        // (fig6 convention): the clean row still ships, the reason rides
        // in the record, and no worker panics.
        let outcome = match ctx.session(cell, &targets).and_then(|session| {
            BinarizedAttack::new(AttackConfig::default())
                .with_iterations(self.attack_iters)
                .with_lambdas(vec![0.01, 0.05])
                .attack_with_session(session, max_budget)
        }) {
            Ok(outcome) => outcome,
            Err(e) => {
                eprintln!("warning: table4 attack on {} failed: {e}", d.name());
                rows.push(format!("failed,{e}"));
                return rows;
            }
        };

        let mut b = step;
        while b <= max_budget {
            let poisoned = outcome.poisoned_graph(g, b);
            let after =
                evaluate_system(&system, &poisoned, &labels, &train, &test, &targets, &tcfg);
            let db = 100.0 * delta_b(clean.target_soft_sum, after.target_soft_sum);
            rows.push(format!(
                "step,{b},{},{},{}",
                enc_f64(after.auc),
                enc_f64(after.f1),
                enc_f64(db)
            ));
            b += step;
        }
        rows
    }

    fn finalize(&self, opts: &ExpOptions, cells: &[Vec<String>]) -> Result<(), BenchError> {
        println!("TABLE IV: ReFeX transfer attack (AUC / F1 / delta_B)");
        let mut csv = Vec::new();
        for rows in cells {
            let meta: Vec<&str> = rows[0].split(',').collect();
            let (name, n, m, ntargets) = (meta[1], meta[2], meta[3], meta[4]);
            println!("\n--- {name} (n={n}, m={m}, {ntargets} identified targets) ---");
            println!("{:>8} {:>8} {:>8} {:>8}", "B", "AUC", "F1", "dB(%)");
            let clean: Vec<&str> = rows[1].split(',').collect();
            let auc = dec_field("table4", "clean auc", clean[1])?;
            let f1 = dec_field("table4", "clean f1", clean[2])?;
            println!("{:>8} {auc:>8.3} {f1:>8.3} {:>8.2}", 0, 0.0);
            csv.push(format!("{name},0,{auc:.4},{f1:.4},0.0"));
            if rows.len() <= 2 {
                eprintln!("warning: no targets identified; skipping dataset");
                continue;
            }
            if let Some(reason) = rows[2].strip_prefix("failed,") {
                eprintln!("warning: table4 {name} attack rows unavailable: {reason}");
                continue;
            }
            for row in rows.iter().skip(2) {
                let parts: Vec<&str> = row.split(',').collect();
                let b: usize = parts[1]
                    .parse()
                    .map_err(|_| corrupt("table4", format!("budget: {:?}", parts[1])))?;
                let auc = dec_field("table4", "auc", parts[2])?;
                let f1 = dec_field("table4", "f1", parts[3])?;
                let db = dec_field("table4", "db", parts[4])?;
                println!("{b:>8} {auc:>8.3} {f1:>8.3} {db:>8.2}");
                csv.push(format!("{name},{b},{auc:.4},{f1:.4},{db:.3}"));
            }
        }
        opts.write_csv("table4.csv", "dataset,budget,auc,f1,delta_b_pct", &csv)?;
        println!("\n(paper: Bitcoin-Alpha AUC 0.79->0.72, dB up to 33.3%;");
        println!(" Wikivote AUC 0.84->0.66, dB up to 56.4%)");
        Ok(())
    }
}
