//! Fig. 6 as a runner experiment — attack preference by target group on
//! the Blogcatalog-like graph. A single cell: the three group curves and
//! the regression panels all derive from one 30-target attack run, so
//! splitting them would re-run the attack per group. Parallelism comes
//! from pooling this cell with other experiments' cells in `run_all`.

use crate::artifact::{dec_curve, dec_f64, enc_curve, enc_f64};
use crate::runner::{CellCtx, DatasetSpec, Experiment};
use crate::{f4, ExpOptions};
use ba_core::{AttackConfig, AttackOutcome, BinarizedAttack, StructuralAttack};
use ba_datasets::Dataset;
use ba_graph::{DeltaOverlay, EditableGraph, NodeId};
use ba_oddball::OddBall;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The Fig. 6 group-preference experiment.
#[derive(Debug, Clone)]
pub struct Fig6Experiment {
    /// BinarizedAttack PGD iterations.
    pub iterations: usize,
    /// Edge budget (paper: 60).
    pub budget: usize,
}

impl Fig6Experiment {
    /// Paper configuration at the profile `opts` selects.
    pub fn standard(opts: &ExpOptions) -> Self {
        Self {
            iterations: if opts.paper { 400 } else { 300 },
            budget: 60,
        }
    }
}

impl Experiment for Fig6Experiment {
    fn name(&self) -> String {
        "fig6".to_string()
    }

    fn config_fingerprint(&self) -> String {
        format!("{self:?}")
    }

    fn artifacts(&self) -> Vec<String> {
        vec![
            "fig6_groups.csv".to_string(),
            "fig6_regression.csv".to_string(),
        ]
    }

    fn datasets(&self) -> Vec<DatasetSpec> {
        vec![DatasetSpec::full(Dataset::Blogcatalog)]
    }

    fn num_cells(&self) -> usize {
        1
    }

    fn cell_dataset(&self, _cell: usize) -> usize {
        0
    }

    fn cell_label(&self, _cell: usize) -> String {
        "groups+regression".to_string()
    }

    fn run_cell(&self, _cell: usize, ctx: &mut CellCtx<'_, '_>) -> Vec<String> {
        let model = ctx.model(0);
        let scores = model.scores();
        let q1 = ba_stats::percentile(scores, 10.0);
        let q2 = ba_stats::percentile(scores, 90.0);

        // Group membership at the 10th/90th percentiles.
        let mut low: Vec<NodeId> = Vec::new();
        let mut med: Vec<NodeId> = Vec::new();
        let mut high: Vec<NodeId> = Vec::new();
        for (i, &s) in scores.iter().enumerate() {
            let id = i as NodeId;
            if s <= q1 {
                low.push(id);
            } else if s >= q2 {
                high.push(id);
            } else {
                med.push(id);
            }
        }
        let mut rng = StdRng::seed_from_u64(ctx.seed_for("groups", &[]));
        for group in [&mut low, &mut med, &mut high] {
            group.shuffle(&mut rng);
            group.truncate(10);
            group.sort_unstable();
        }
        let mut all_targets = Vec::new();
        all_targets.extend_from_slice(&low);
        all_targets.extend_from_slice(&med);
        all_targets.extend_from_slice(&high);

        let session = ctx.session(0, &all_targets).expect("valid targets");
        let outcome = BinarizedAttack::new(AttackConfig::default())
            .with_iterations(self.iterations)
            .attack_with_session(session, self.budget)
            .expect("fig6 attack");

        let detector = OddBall::default();
        let csr = ctx.csr(0);
        // A degenerate refit on this full-scale substrate means the cell
        // cannot produce its figure; the expect message (with the failing
        // budget from CurveError) reaches the runner's panic isolation.
        let group_curve = |targets: &[NodeId]| -> Vec<f64> {
            let curve = outcome
                .ascore_curve_with_clean(csr, model, targets, &detector)
                .expect("fig6 AScore curve");
            (0..curve.len())
                .map(|b| AttackOutcome::tau_as(&curve, b))
                .collect()
        };

        let mut rows = vec![format!("q,{},{}", enc_f64(q1), enc_f64(q2))];
        for (gname, group) in [("low", &low), ("medium", &med), ("high", &high)] {
            rows.push(format!(
                "groupcurve,{gname},{}",
                enc_curve(&group_curve(group))
            ));
        }

        // Regression lines clean vs poisoned at the full budget.
        let mut poisoned = DeltaOverlay::new(csr);
        poisoned.apply_ops(outcome.ops(self.budget));
        let model_after = OddBall::default().fit(&poisoned).expect("fit poisoned");
        rows.push(format!(
            "beta,clean,{},{}",
            enc_f64(model.beta0()),
            enc_f64(model.beta1())
        ));
        rows.push(format!(
            "beta,poisoned,{},{}",
            enc_f64(model_after.beta0()),
            enc_f64(model_after.beta1())
        ));
        for (tag, m) in [("clean", model), ("poisoned", &model_after)] {
            for (gname, group) in [("low", &low), ("medium", &med), ("high", &high)] {
                for &t in group.iter() {
                    let f = m.features();
                    rows.push(format!(
                        "scatter,{tag},{gname},{},{}",
                        enc_f64(f.n[t as usize].max(1.0).ln()),
                        enc_f64(f.e[t as usize].max(1.0).ln())
                    ));
                }
            }
        }
        rows
    }

    fn finalize(&self, opts: &ExpOptions, cells: &[Vec<String>]) {
        let rows = &cells[0];
        let qs: Vec<f64> = rows[0]
            .split(',')
            .skip(1)
            .map(|s| dec_f64(s).expect("q payload"))
            .collect();
        println!(
            "FIG 6: Blogcatalog-like, percentile thresholds q1={:.4} (10%), q2={:.4} (90%)",
            qs[0], qs[1]
        );

        let mut curves: Vec<(String, Vec<f64>)> = Vec::new();
        let mut betas: Vec<(String, f64, f64)> = Vec::new();
        let mut scatter: Vec<String> = Vec::new();
        for row in rows.iter().skip(1) {
            let parts: Vec<&str> = row.split(',').collect();
            match parts[0] {
                "groupcurve" => curves.push((
                    parts[1].to_string(),
                    dec_curve(parts[2]).expect("curve payload"),
                )),
                "beta" => betas.push((
                    parts[1].to_string(),
                    dec_f64(parts[2]).expect("beta0"),
                    dec_f64(parts[3]).expect("beta1"),
                )),
                "scatter" => scatter.push(format!(
                    "scatter_{}_{},{:.6},{:.6}",
                    parts[1],
                    parts[2],
                    dec_f64(parts[3]).expect("x"),
                    dec_f64(parts[4]).expect("y")
                )),
                other => panic!("unknown fig6 record {other:?}"),
            }
        }

        println!(
            "{:>8}  {:>10}  {:>10}  {:>10}",
            "budget", "low", "medium", "high"
        );
        let mut csv = Vec::new();
        for b in (0..=self.budget).step_by(10) {
            let at = |c: &Vec<f64>| c[b.min(c.len() - 1)];
            println!(
                "{:>8}  {:>10}  {:>10}  {:>10}",
                b,
                f4(at(&curves[0].1)),
                f4(at(&curves[1].1)),
                f4(at(&curves[2].1))
            );
            csv.push(format!(
                "{b},{},{},{}",
                at(&curves[0].1),
                at(&curves[1].1),
                at(&curves[2].1)
            ));
        }
        opts.write_csv(
            "fig6_groups.csv",
            "budget,tau_low,tau_medium,tau_high",
            &csv,
        );

        let mut reg_csv = Vec::new();
        for (tag, b0, b1) in &betas {
            if tag == "clean" {
                println!("\nregression clean:    beta0 = {b0:.4}, beta1 = {b1:.4}");
                reg_csv.push(format!("clean,{b0:.6},{b1:.6}"));
            } else {
                println!(
                    "regression B={}:  beta0 = {b0:.4}, beta1 = {b1:.4}",
                    self.budget
                );
                reg_csv.push(format!("poisoned_b{},{b0:.6},{b1:.6}", self.budget));
            }
        }
        reg_csv.extend(scatter);
        opts.write_csv(
            "fig6_regression.csv",
            "series,x_or_beta0,y_or_beta1",
            &reg_csv,
        );
    }
}
