//! Fig. 6 as a runner experiment — attack preference by target group on
//! the Blogcatalog-like graph. A single cell: the three group curves and
//! the regression panels all derive from one 30-target attack run, so
//! splitting them would re-run the attack per group. Parallelism comes
//! from pooling this cell with other experiments' cells in `run_all`.

use crate::artifact::{dec_curve, enc_curve, enc_f64};
use crate::experiments::{corrupt, dec_field};
use crate::runner::{CellCtx, DatasetSpec, Experiment};
use crate::{f4, BenchError, ExpOptions};
use ba_core::{AttackConfig, AttackOutcome, BinarizedAttack, StructuralAttack};
use ba_datasets::Dataset;
use ba_graph::{DeltaOverlay, EditableGraph, NodeId};
use ba_oddball::OddBall;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The Fig. 6 group-preference experiment.
#[derive(Debug, Clone)]
pub struct Fig6Experiment {
    /// BinarizedAttack PGD iterations.
    pub iterations: usize,
    /// Edge budget (paper: 60).
    pub budget: usize,
}

impl Fig6Experiment {
    /// Paper configuration at the profile `opts` selects.
    pub fn standard(opts: &ExpOptions) -> Self {
        Self {
            iterations: if opts.paper { 400 } else { 300 },
            budget: 60,
        }
    }
}

impl Experiment for Fig6Experiment {
    fn name(&self) -> String {
        "fig6".to_string()
    }

    fn config_fingerprint(&self) -> String {
        format!("{self:?}")
    }

    fn artifacts(&self) -> Vec<String> {
        vec![
            "fig6_groups.csv".to_string(),
            "fig6_regression.csv".to_string(),
        ]
    }

    fn datasets(&self) -> Vec<DatasetSpec> {
        vec![DatasetSpec::full(Dataset::Blogcatalog)]
    }

    fn num_cells(&self) -> usize {
        1
    }

    fn cell_dataset(&self, _cell: usize) -> usize {
        0
    }

    fn cell_label(&self, _cell: usize) -> String {
        "groups+regression".to_string()
    }

    /// Cell records (all float payloads in the exact bit codec):
    /// * `q,<q1>,<q2>` — the percentile thresholds;
    /// * `groupcurve,<group>,<curve>` or `groupcurve,<group>,failed,<reason>`;
    /// * `beta,<tag>,<b0>,<b1>` or `beta,poisoned,failed,<reason>`;
    /// * `scatter,<tag>,<group>,<x>,<y>`;
    /// * a single `failed,<reason>` row when the attack itself failed.
    fn run_cell(&self, _cell: usize, ctx: &mut CellCtx<'_, '_>) -> Vec<String> {
        let model = ctx.model(0);
        let scores = model.scores();
        let q1 = ba_stats::percentile(scores, 10.0);
        let q2 = ba_stats::percentile(scores, 90.0);

        // Group membership at the 10th/90th percentiles.
        let mut low: Vec<NodeId> = Vec::new();
        let mut med: Vec<NodeId> = Vec::new();
        let mut high: Vec<NodeId> = Vec::new();
        for (i, &s) in scores.iter().enumerate() {
            let id = i as NodeId;
            if s <= q1 {
                low.push(id);
            } else if s >= q2 {
                high.push(id);
            } else {
                med.push(id);
            }
        }
        let mut rng = StdRng::seed_from_u64(ctx.seed_for("groups", &[]));
        for group in [&mut low, &mut med, &mut high] {
            group.shuffle(&mut rng);
            group.truncate(10);
            group.sort_unstable();
        }
        let mut all_targets = Vec::new();
        all_targets.extend_from_slice(&low);
        all_targets.extend_from_slice(&med);
        all_targets.extend_from_slice(&high);

        // Attack errors fail the cell gracefully, like fig4: the reason
        // rides in the record row, the runner keeps its workers, and
        // finalize reports the failure instead of the figure.
        let outcome = match ctx.session(0, &all_targets).and_then(|session| {
            BinarizedAttack::new(AttackConfig::default())
                .with_iterations(self.iterations)
                .attack_with_session(session, self.budget)
        }) {
            Ok(outcome) => outcome,
            Err(e) => {
                eprintln!("warning: fig6 attack failed: {e}");
                return vec![format!("failed,{e}")];
            }
        };

        let detector = OddBall::default();
        let csr = ctx.csr(0);
        // A degenerate refit at some budget fails only that group's
        // curve: the failing budget (named by CurveError) rides in the
        // record and finalize prints `n/a` for the group.
        let group_curve = |targets: &[NodeId]| -> Result<Vec<f64>, String> {
            let curve = outcome
                .ascore_curve_with_clean(csr, model, targets, &detector)
                .map_err(|e| e.to_string())?;
            Ok((0..curve.len())
                .map(|b| AttackOutcome::tau_as(&curve, b))
                .collect())
        };

        let mut rows = vec![format!("q,{},{}", enc_f64(q1), enc_f64(q2))];
        for (gname, group) in [("low", &low), ("medium", &med), ("high", &high)] {
            match group_curve(group) {
                Ok(curve) => rows.push(format!("groupcurve,{gname},{}", enc_curve(&curve))),
                Err(reason) => {
                    eprintln!("warning: fig6 {gname}-group curve failed: {reason}");
                    rows.push(format!("groupcurve,{gname},failed,{reason}"));
                }
            }
        }

        // Regression lines clean vs poisoned at the full budget.
        let mut poisoned = DeltaOverlay::new(csr);
        poisoned.apply_ops(outcome.ops(self.budget));
        rows.push(format!(
            "beta,clean,{},{}",
            enc_f64(model.beta0()),
            enc_f64(model.beta1())
        ));
        let model_after = match OddBall::default().fit(&poisoned) {
            Ok(m) => Some(m),
            Err(e) => {
                eprintln!("warning: fig6 poisoned refit failed: {e}");
                rows.push(format!("beta,poisoned,failed,{e}"));
                None
            }
        };
        if let Some(ref m) = model_after {
            rows.push(format!(
                "beta,poisoned,{},{}",
                enc_f64(m.beta0()),
                enc_f64(m.beta1())
            ));
        }
        let mut panels: Vec<(&str, &ba_oddball::OddBallModel)> = vec![("clean", model)];
        if let Some(ref m) = model_after {
            panels.push(("poisoned", m));
        }
        for (tag, m) in panels {
            for (gname, group) in [("low", &low), ("medium", &med), ("high", &high)] {
                for &t in group.iter() {
                    let f = m.features();
                    rows.push(format!(
                        "scatter,{tag},{gname},{},{}",
                        enc_f64(f.n[t as usize].max(1.0).ln()),
                        enc_f64(f.e[t as usize].max(1.0).ln())
                    ));
                }
            }
        }
        rows
    }

    fn finalize(&self, opts: &ExpOptions, cells: &[Vec<String>]) -> Result<(), BenchError> {
        let rows = &cells[0];
        // A whole-cell failure (the attack itself) ships empty artifacts
        // plus a warning instead of panicking the finalize pass, so the
        // rest of a pooled suite is unaffected. The failure row is a
        // *committed* cell (like fig4's failed samples): re-running
        // without `--resume` recomputes it.
        if let Some(reason) = rows[0].strip_prefix("failed,") {
            eprintln!("warning: fig6 produced no figure: {reason}");
            opts.write_csv("fig6_groups.csv", "budget,tau_low,tau_medium,tau_high", &[])?;
            opts.write_csv("fig6_regression.csv", "series,x_or_beta0,y_or_beta1", &[])?;
            return Ok(());
        }
        let qs: Vec<f64> = rows[0]
            .split(',')
            .skip(1)
            .map(|s| dec_field("fig6", "q payload", s))
            .collect::<Result<_, _>>()?;
        println!(
            "FIG 6: Blogcatalog-like, percentile thresholds q1={:.4} (10%), q2={:.4} (90%)",
            qs[0], qs[1]
        );

        // A group curve / poisoned beta can individually be `failed`;
        // those render as `n/a` (stdout) and NaN (CSV), like fig4.
        let mut curves: Vec<(String, Option<Vec<f64>>)> = Vec::new();
        let mut betas: Vec<(String, f64, f64)> = Vec::new();
        let mut scatter: Vec<String> = Vec::new();
        for row in rows.iter().skip(1) {
            let parts: Vec<&str> = row.split(',').collect();
            match parts[0] {
                "groupcurve" => {
                    let curve = if parts[2] == "failed" {
                        None
                    } else {
                        Some(dec_curve(parts[2]).ok_or_else(|| {
                            corrupt("fig6", format!("{} curve payload", parts[1]))
                        })?)
                    };
                    curves.push((parts[1].to_string(), curve));
                }
                "beta" if parts[2] == "failed" => {
                    eprintln!(
                        "warning: fig6 {} regression unavailable: {}",
                        parts[1],
                        parts[3..].join(",")
                    );
                }
                "beta" => betas.push((
                    parts[1].to_string(),
                    dec_field("fig6", "beta0", parts[2])?,
                    dec_field("fig6", "beta1", parts[3])?,
                )),
                "scatter" => scatter.push(format!(
                    "scatter_{}_{},{:.6},{:.6}",
                    parts[1],
                    parts[2],
                    dec_field("fig6", "scatter x", parts[3])?,
                    dec_field("fig6", "scatter y", parts[4])?
                )),
                other => return Err(corrupt("fig6", format!("unknown record {other:?}"))),
            }
        }

        println!(
            "{:>8}  {:>10}  {:>10}  {:>10}",
            "budget", "low", "medium", "high"
        );
        let mut csv = Vec::new();
        for b in (0..=self.budget).step_by(10) {
            let at = |c: &Option<Vec<f64>>| c.as_ref().map(|c| c[b.min(c.len() - 1)]);
            let shown = |v: Option<f64>| v.map_or_else(|| "n/a".to_string(), f4);
            println!(
                "{:>8}  {:>10}  {:>10}  {:>10}",
                b,
                shown(at(&curves[0].1)),
                shown(at(&curves[1].1)),
                shown(at(&curves[2].1))
            );
            csv.push(format!(
                "{b},{},{},{}",
                at(&curves[0].1).unwrap_or(f64::NAN),
                at(&curves[1].1).unwrap_or(f64::NAN),
                at(&curves[2].1).unwrap_or(f64::NAN)
            ));
        }
        opts.write_csv(
            "fig6_groups.csv",
            "budget,tau_low,tau_medium,tau_high",
            &csv,
        )?;

        let mut reg_csv = Vec::new();
        for (tag, b0, b1) in &betas {
            if tag == "clean" {
                println!("\nregression clean:    beta0 = {b0:.4}, beta1 = {b1:.4}");
                reg_csv.push(format!("clean,{b0:.6},{b1:.6}"));
            } else {
                println!(
                    "regression B={}:  beta0 = {b0:.4}, beta1 = {b1:.4}",
                    self.budget
                );
                reg_csv.push(format!("poisoned_b{},{b0:.6},{b1:.6}", self.budget));
            }
        }
        reg_csv.extend(scatter);
        opts.write_csv(
            "fig6_regression.csv",
            "series,x_or_beta0,y_or_beta1",
            &reg_csv,
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::enc_f64;

    fn opts(tag: &str) -> ExpOptions {
        let dir = std::env::temp_dir().join("ba_fig6_failpath").join(tag);
        let _ = std::fs::remove_dir_all(&dir);
        ExpOptions {
            out_dir: dir,
            ..ExpOptions::default()
        }
    }

    /// A whole-cell attack failure finalizes to empty artifacts instead
    /// of a panic (the pre-fix behaviour surfaced through the runner's
    /// panic isolation and shipped nothing).
    #[test]
    fn whole_cell_failure_finalizes_gracefully() {
        let exp = Fig6Experiment {
            iterations: 1,
            budget: 20,
        };
        let opts = opts("whole");
        exp.finalize(&opts, &[vec!["failed,empty target set".to_string()]])
            .unwrap();
        let groups = std::fs::read_to_string(opts.out_dir.join("fig6_groups.csv")).unwrap();
        assert_eq!(groups, "budget,tau_low,tau_medium,tau_high\n");
        assert!(opts.out_dir.join("fig6_regression.csv").exists());
    }

    /// A single failed group curve / poisoned refit renders as n/a//NaN
    /// while the healthy records still ship.
    #[test]
    fn partial_failures_render_as_na() {
        let exp = Fig6Experiment {
            iterations: 1,
            budget: 10,
        };
        let opts = opts("partial");
        let curve: Vec<f64> = (0..=10).map(|b| b as f64 / 10.0).collect();
        let rows = vec![
            format!("q,{},{}", enc_f64(0.1), enc_f64(0.9)),
            format!("groupcurve,low,{}", crate::artifact::enc_curve(&curve)),
            "groupcurve,medium,failed,refit degenerate at budget 7".to_string(),
            format!("groupcurve,high,{}", crate::artifact::enc_curve(&curve)),
            format!("beta,clean,{},{}", enc_f64(0.5), enc_f64(1.2)),
            "beta,poisoned,failed,regression failed: degenerate".to_string(),
            format!("scatter,clean,low,{},{}", enc_f64(1.0), enc_f64(2.0)),
        ];
        exp.finalize(&opts, &[rows]).unwrap();
        let groups = std::fs::read_to_string(opts.out_dir.join("fig6_groups.csv")).unwrap();
        assert!(groups.contains("NaN"), "{groups}");
        assert!(groups.contains("0,0,NaN,0"), "{groups}");
        let reg = std::fs::read_to_string(opts.out_dir.join("fig6_regression.csv")).unwrap();
        assert!(reg.contains("clean,0.5"), "{reg}");
        assert!(!reg.contains("poisoned_b10"), "{reg}");
        assert!(reg.contains("scatter_clean_low"), "{reg}");
    }
}
