//! Fig. 4 (a–h) as a runner experiment — the headline τ_as-vs-budget
//! grid. Cells are `(panel, method, target-sample)` triples, the finest
//! independent unit: every method-cell of a panel re-derives the same
//! target set from the shared per-panel seed stream, so method columns
//! stay comparable while all `panels × methods × samples` attacks run
//! concurrently.

use crate::artifact::{dec_curve, enc_curve};
use crate::experiments::corrupt;
use crate::runner::{CellCtx, DatasetSpec, Experiment};
use crate::{average_padded, f4, sample_from_pool, target_pool, BenchError, ExpOptions};
use ba_core::{
    AttackConfig, AttackError, AttackOutcome, BinarizedAttack, ContinuousA, GradMaxSearch,
    StructuralAttack,
};
use ba_datasets::Dataset;
use ba_oddball::OddBall;

/// One τ_as panel: a dataset at a concrete scale, a target-set size, and
/// the budget as a fraction of the panel's edge count.
#[derive(Debug, Clone)]
pub struct Fig4Panel {
    /// Panel label (figure sub-caption).
    pub label: String,
    /// Dataset + scale the panel runs on.
    pub spec: DatasetSpec,
    /// Targets per sample (10 or 30 in the paper).
    pub num_targets: usize,
    /// Budget as a fraction of the panel's edge count.
    pub budget_frac: f64,
}

/// The attack method a cell runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig4Method {
    /// The proposed BinarizedAttack.
    Binarized,
    /// The greedy GradMaxSearch baseline.
    GradMax,
    /// The full-relaxation ContinuousA baseline.
    Continuous,
}

impl Fig4Method {
    /// CSV column suffix / progress label.
    pub fn column(&self) -> &'static str {
        match self {
            Fig4Method::Binarized => "binarized",
            Fig4Method::GradMax => "gradmax",
            Fig4Method::Continuous => "continuousA",
        }
    }
}

/// The Fig. 4 grid experiment. All knobs are public so the determinism
/// suite can shrink it to a seconds-scale instance.
#[derive(Debug, Clone)]
pub struct Fig4Experiment {
    /// Experiment name (artifact dir, seed-derivation domain).
    pub name: String,
    /// CSV artifact filename.
    pub csv_name: String,
    /// The panels (paper: eight).
    pub panels: Vec<Fig4Panel>,
    /// The methods (paper: all three).
    pub methods: Vec<Fig4Method>,
    /// Target-set resamples per panel.
    pub samples: usize,
    /// AScore ranking pool size targets are drawn from (paper: 50).
    pub pool: usize,
    /// BinarizedAttack PGD iterations.
    pub bin_iters: usize,
    /// BinarizedAttack λ grid.
    pub bin_lambdas: Vec<f64>,
    /// ContinuousA PGD iterations.
    pub cont_iters: usize,
}

impl Fig4Experiment {
    /// The paper's eight-panel grid at the profile `opts` selects
    /// (quick: half-scale datasets; `--paper`: Table-I scale).
    pub fn standard(opts: &ExpOptions) -> Self {
        let scale = |d: Dataset| {
            if opts.paper {
                DatasetSpec::full(d)
            } else {
                DatasetSpec::half(d)
            }
        };
        let panel = |label: &str, d: Dataset, num_targets: usize, budget_frac: f64| Fig4Panel {
            label: label.to_string(),
            spec: scale(d),
            num_targets,
            budget_frac,
        };
        let (bin_iters, bin_lambdas, cont_iters) = if opts.paper {
            (400, vec![0.002, 0.008, 0.03], 50)
        } else {
            (300, vec![0.002, 0.02], 30)
        };
        Self {
            name: "fig4".to_string(),
            csv_name: "fig4.csv".to_string(),
            panels: vec![
                panel("ER", Dataset::Er, 10, 0.003),
                panel("BA", Dataset::Ba, 10, 0.02),
                panel("Blogcatalog-10", Dataset::Blogcatalog, 10, 0.008),
                panel("Blogcatalog-30", Dataset::Blogcatalog, 30, 0.02),
                panel("Bitcoin-Alpha-10", Dataset::BitcoinAlpha, 10, 0.0175),
                panel("Bitcoin-Alpha-30", Dataset::BitcoinAlpha, 30, 0.04),
                panel("Wikivote-10", Dataset::Wikivote, 10, 0.0175),
                panel("Wikivote-30", Dataset::Wikivote, 30, 0.04),
            ],
            methods: vec![
                Fig4Method::Binarized,
                Fig4Method::GradMax,
                Fig4Method::Continuous,
            ],
            samples: opts.samples,
            pool: 50,
            bin_iters,
            bin_lambdas,
            cont_iters,
        }
    }

    /// A seconds-scale instance: two tiny panels, all three methods,
    /// two target samples — 12 cells. The shared grid for everything
    /// that pins the orchestrator's byte-identity contract: the
    /// workspace determinism tests, the distributed tracker/peer tests,
    /// and the CI smoke (registry name `det`). `name` keys the artifact
    /// store and every derived seed stream, so differently-named
    /// instances never collide in one output directory.
    pub fn tiny(name: &str) -> Self {
        Self {
            name: name.to_string(),
            csv_name: format!("{name}.csv"),
            panels: vec![
                Fig4Panel {
                    label: "ER".to_string(),
                    spec: DatasetSpec::scaled(Dataset::Er, 150, 550),
                    num_targets: 4,
                    budget_frac: 0.012,
                },
                Fig4Panel {
                    label: "BA".to_string(),
                    spec: DatasetSpec::scaled(Dataset::Ba, 150, 450),
                    num_targets: 4,
                    budget_frac: 0.015,
                },
            ],
            methods: vec![
                Fig4Method::Binarized,
                Fig4Method::GradMax,
                Fig4Method::Continuous,
            ],
            samples: 2,
            pool: 20,
            bin_iters: 40,
            bin_lambdas: vec![0.02],
            cont_iters: 8,
        }
    }

    fn cell_index(&self, panel: usize, method: usize, sample: usize) -> usize {
        (panel * self.methods.len() + method) * self.samples + sample
    }

    fn decompose(&self, cell: usize) -> (usize, usize, usize) {
        let sample = cell % self.samples;
        let rest = cell / self.samples;
        (rest / self.methods.len(), rest % self.methods.len(), sample)
    }

    /// Experiment-local dataset index of a panel (panels on the same
    /// spec share a substrate).
    fn panel_ds(&self, panel: usize) -> usize {
        let specs = self.datasets();
        specs
            .iter()
            .position(|&s| s == self.panels[panel].spec)
            // ba-lint: allow(panic-path) -- datasets() is built by inserting every panel's spec, so the position always exists; a miss is a logic bug worth crashing on
            .expect("panel spec present")
    }
}

impl Experiment for Fig4Experiment {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn config_fingerprint(&self) -> String {
        format!("{self:?}")
    }

    fn artifacts(&self) -> Vec<String> {
        vec![self.csv_name.clone()]
    }

    fn datasets(&self) -> Vec<DatasetSpec> {
        let mut specs: Vec<DatasetSpec> = Vec::new();
        for p in &self.panels {
            if !specs.contains(&p.spec) {
                specs.push(p.spec);
            }
        }
        specs
    }

    fn num_cells(&self) -> usize {
        self.panels.len() * self.methods.len() * self.samples
    }

    fn cell_dataset(&self, cell: usize) -> usize {
        self.panel_ds(self.decompose(cell).0)
    }

    fn cell_label(&self, cell: usize) -> String {
        let (p, m, s) = self.decompose(cell);
        format!("{}/{}/s{s}", self.panels[p].label, self.methods[m].column())
    }

    fn run_cell(&self, cell: usize, ctx: &mut CellCtx<'_, '_>) -> Vec<String> {
        let (p, mi, s) = self.decompose(cell);
        let panel = &self.panels[p];
        let ds = self.panel_ds(p);
        let g = ctx.graph(ds);
        let edges = g.num_edges();
        let budget = ((edges as f64 * panel.budget_frac).round() as usize).max(4);
        // The target sample is shared by every method-cell of this
        // (panel, sample): it depends on the panel/sample indices only.
        let pool = target_pool(ctx.model(ds), self.pool);
        let tseed = ctx.seed_for("targets", &[p as u64, s as u64]);
        let targets = sample_from_pool(&pool, panel.num_targets, tseed);

        let mut rows = vec![format!(
            "meta,nodes={},edges={edges},budget={budget}",
            g.num_nodes()
        )];
        let cfg = AttackConfig::default();
        let inner_threads = ctx.inner_threads();
        let outcome: Result<AttackOutcome, AttackError> =
            ctx.session(ds, &targets)
                .and_then(|session| match self.methods[mi] {
                    Fig4Method::Binarized => BinarizedAttack::new(cfg)
                        .with_iterations(self.bin_iters)
                        .with_lambdas(self.bin_lambdas.clone())
                        .attack_with_session(session, budget),
                    Fig4Method::GradMax => {
                        GradMaxSearch::new(cfg).attack_with_session(session, budget)
                    }
                    Fig4Method::Continuous => ContinuousA::new(cfg)
                        .with_iterations(self.cont_iters)
                        .with_threads(inner_threads)
                        .attack_with_session(session, budget),
                });
        // Attack errors and degenerate-refit curve errors both fail the
        // cell gracefully: the reason rides in the record row (newlines
        // are impossible in these Display impls), the mean curve simply
        // skips the sample, and no worker panics.
        let curve = outcome.map_err(|e| e.to_string()).and_then(|outcome| {
            outcome
                .ascore_curve_with_clean(ctx.csr(ds), ctx.model(ds), &targets, &OddBall::default())
                .map_err(|e| e.to_string())
        });
        match curve {
            Ok(scores) => {
                let curve: Vec<f64> = (0..scores.len())
                    .map(|b| AttackOutcome::tau_as(&scores, b))
                    .collect();
                rows.push(enc_curve(&curve));
            }
            Err(reason) => {
                eprintln!(
                    "warning: {} failed on {}/s{s}: {reason}",
                    self.methods[mi].column(),
                    panel.label
                );
                rows.push(format!("failed,{reason}"));
            }
        }
        rows
    }

    fn finalize(&self, opts: &ExpOptions, cells: &[Vec<String>]) -> Result<(), BenchError> {
        println!(
            "FIG 4: tau_as vs edges changed (%) — mean over {} target samples",
            self.samples
        );
        let mut csv = Vec::new();
        for (p, panel) in self.panels.iter().enumerate() {
            let meta = meta_fields(&cells[self.cell_index(p, 0, 0)][0]);
            let (nodes, edges, budget) = (meta("nodes"), meta("edges"), meta("budget"));
            // Mean τ_as curve per method over its sample-cells.
            let mut mean_curves: Vec<Vec<f64>> = Vec::with_capacity(self.methods.len());
            for mi in 0..self.methods.len() {
                let mut curves: Vec<Vec<f64>> = Vec::new();
                for s in 0..self.samples {
                    let payload = &cells[self.cell_index(p, mi, s)][1];
                    if payload.starts_with("failed") {
                        continue;
                    }
                    curves.push(dec_curve(payload).ok_or_else(|| {
                        corrupt(&self.name, format!("curve payload of {}/s{s}", panel.label))
                    })?);
                }
                mean_curves.push(average_padded(&curves, budget + 1));
            }

            println!(
                "\n=== {} (n={nodes}, m={edges}, budget={budget} = {:.2}% edges) ===",
                panel.label,
                100.0 * budget as f64 / edges as f64
            );
            print!("{:>10}", "edges(%)");
            for m in &self.methods {
                print!("  {:>14}", m.column());
            }
            println!();
            let step = (budget / 8).max(1);
            for b in (0..=budget).step_by(step) {
                let pct = 100.0 * b as f64 / edges as f64;
                print!("{pct:>10.3}");
                let mut csv_row = format!("{},{b},{pct:.5}", panel.label);
                for curve in &mean_curves {
                    let (shown, raw) = if curve.is_empty() {
                        ("n/a".to_string(), f64::NAN)
                    } else {
                        let v = curve[b.min(curve.len() - 1)];
                        (f4(v), v)
                    };
                    print!("  {shown:>14}");
                    csv_row.push_str(&format!(",{raw}"));
                }
                println!();
                csv.push(csv_row);
            }
        }
        let mut header = "panel,budget,edges_pct".to_string();
        for m in &self.methods {
            header.push_str(&format!(",tau_{}", m.column()));
        }
        opts.write_csv(&self.csv_name, &header, &csv)?;
        Ok(())
    }
}

/// Parses a `meta,k=v,...` row into a `usize` field lookup.
fn meta_fields(row: &str) -> impl Fn(&str) -> usize + '_ {
    move |key: &str| {
        row.split(',')
            .filter_map(|kv| kv.split_once('='))
            .find(|(k, _)| *k == key)
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or_else(|| panic!("meta field {key} missing in {row:?}"))
    }
}
