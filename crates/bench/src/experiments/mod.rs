//! Runner-ported paper experiments.
//!
//! Each submodule implements [`crate::runner::Experiment`] for one
//! figure/table: the grid decomposition into cells, the per-cell record
//! encoding (exact-bits floats, see [`crate::artifact`]), and the
//! index-ordered merge into the printed report + CSV artifacts. The
//! thin binaries (`fig4`, `fig5`, `fig6`, `table3`, `table4`) construct
//! these and hand them to an [`crate::runner::ExperimentRunner`];
//! `run_all` pools all five into one suite so their cells share the
//! worker pool and dataset substrates.

pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod table3;
pub mod table4;

/// A [`crate::BenchError::Corrupt`] for experiment `exp`: a committed
/// cell record that no longer decodes at merge time.
pub(crate) fn corrupt(exp: &str, detail: impl Into<String>) -> crate::BenchError {
    crate::BenchError::Corrupt {
        experiment: exp.to_string(),
        detail: detail.into(),
    }
}

/// Decodes one exact-bits float field of a cell record, naming the
/// field and raw payload on failure.
pub(crate) fn dec_field(exp: &str, what: &str, s: &str) -> Result<f64, crate::BenchError> {
    crate::artifact::dec_f64(s).ok_or_else(|| corrupt(exp, format!("{what}: {s:?}")))
}

pub use fig4::{Fig4Experiment, Fig4Method, Fig4Panel};
pub use fig5::Fig5Experiment;
pub use fig6::Fig6Experiment;
pub use table3::Table3Experiment;
pub use table4::Table4Experiment;
