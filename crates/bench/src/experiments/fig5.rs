//! Fig. 5 as a runner experiment — the three single-target Wikivote
//! case studies (add-only / delete-only / add+delete). One cell per
//! case: the cases attack different targets under different op-kind
//! constraints, so they are fully independent.

use crate::runner::{CellCtx, DatasetSpec, Experiment};
use crate::{target_pool, BenchError, ExpOptions};
use ba_core::{AttackConfig, BinarizedAttack, EdgeOpKind, StructuralAttack};
use ba_datasets::Dataset;
use ba_graph::{DeltaOverlay, EditableGraph};
use ba_oddball::OddBall;

const CASES: [(&str, EdgeOpKind); 3] = [
    ("case1_add_edges", EdgeOpKind::AddOnly),
    ("case2_delete_edges", EdgeOpKind::DeleteOnly),
    ("case3_add_delete", EdgeOpKind::Both),
];

/// The Fig. 5 case-study experiment.
#[derive(Debug, Clone)]
pub struct Fig5Experiment {
    /// BinarizedAttack PGD iterations.
    pub iterations: usize,
    /// Edge budget per case.
    pub budget: usize,
}

impl Fig5Experiment {
    /// Paper configuration (400 iterations, budget 25).
    pub fn standard(_opts: &ExpOptions) -> Self {
        Self {
            iterations: 400,
            budget: 25,
        }
    }
}

impl Experiment for Fig5Experiment {
    fn name(&self) -> String {
        "fig5".to_string()
    }

    fn config_fingerprint(&self) -> String {
        format!("{self:?}")
    }

    fn artifacts(&self) -> Vec<String> {
        vec!["fig5.csv".to_string()]
    }

    fn datasets(&self) -> Vec<DatasetSpec> {
        vec![DatasetSpec::full(Dataset::Wikivote)]
    }

    fn num_cells(&self) -> usize {
        CASES.len()
    }

    fn cell_dataset(&self, _cell: usize) -> usize {
        0
    }

    fn cell_label(&self, cell: usize) -> String {
        CASES[cell].0.to_string()
    }

    fn run_cell(&self, cell: usize, ctx: &mut CellCtx<'_, '_>) -> Vec<String> {
        let (case, kind) = CASES[cell];
        let g = ctx.graph(0);
        let model = ctx.model(0);
        // Distinct targets from the shared top-6 ranking, as in the
        // paper's three case studies.
        let target = target_pool(model, 6)[cell];
        let cfg = AttackConfig {
            op_kind: kind,
            ..AttackConfig::default()
        };
        // Attack and refit errors fail this case's cell gracefully (the
        // fig6 convention): the reason rides in the record row and
        // finalize reports the failed case instead of panicking a
        // worker.
        let outcome = match ctx.session(0, &[target]).and_then(|session| {
            BinarizedAttack::new(cfg)
                .with_iterations(self.iterations)
                .attack_with_session(session, self.budget)
        }) {
            Ok(outcome) => outcome,
            Err(e) => {
                eprintln!("warning: fig5 {case} attack failed: {e}");
                return vec![format!("failed,{case},{e}")];
            }
        };
        let b = outcome.max_budget();
        let mut poisoned = DeltaOverlay::new(ctx.csr(0));
        poisoned.apply_ops(outcome.ops(b));
        let model_after = match OddBall::default().fit(&poisoned) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("warning: fig5 {case} poisoned refit failed: {e}");
                return vec![format!("failed,{case},{e}")];
            }
        };
        let feats_b = model.features();
        let feats_a = model_after.features();
        let adds = outcome.ops(b).iter().filter(|op| op.added).count();
        let dels = outcome.ops(b).len() - adds;
        vec![
            format!("meta,{},{}", g.num_nodes(), g.num_edges()),
            format!(
                "{:>18} {:>7} {:>9.3} {:>9.3} {:>7.0} {:>7.0} {:>7.0} {:>7.0} {:>6} {:>6}",
                case,
                target,
                model.score(target),
                model_after.score(target),
                feats_b.n[target as usize],
                feats_b.e[target as usize],
                feats_a.n[target as usize],
                feats_a.e[target as usize],
                adds,
                dels
            ),
            format!(
                "{},{},{:.5},{:.5},{},{},{},{},{},{}",
                case,
                target,
                model.score(target),
                model_after.score(target),
                feats_b.n[target as usize],
                feats_b.e[target as usize],
                feats_a.n[target as usize],
                feats_a.e[target as usize],
                adds,
                dels
            ),
        ]
    }

    fn finalize(&self, opts: &ExpOptions, cells: &[Vec<String>]) -> Result<(), BenchError> {
        // A failed case ships no table row: the reason was recorded in
        // its cell, the healthy cases still print and land in the CSV.
        let ok = |rows: &&Vec<String>| !rows[0].starts_with("failed,");
        let mut meta = cells
            .iter()
            .find(ok)
            .map(|rows| rows[0].split(',').skip(1))
            .into_iter()
            .flatten();
        println!(
            "FIG 5: single-target case studies (Wikivote-like, n={}, m={})",
            meta.next().unwrap_or("?"),
            meta.next().unwrap_or("?")
        );
        println!(
            "{:>18} {:>7} {:>9} {:>9} {:>7} {:>7} {:>7} {:>7} {:>6} {:>6}",
            "case", "target", "S_before", "S_after", "N_b", "E_b", "N_a", "E_a", "#add", "#del"
        );
        let mut csv = Vec::new();
        for rows in cells {
            if let Some(reason) = rows[0].strip_prefix("failed,") {
                eprintln!("warning: fig5 case unavailable: {reason}");
                continue;
            }
            println!("{}", rows[1]);
            csv.push(rows[2].clone());
        }
        opts.write_csv(
            "fig5.csv",
            "case,target,score_before,score_after,n_before,e_before,n_after,e_after,adds,deletes",
            &csv,
        )?;
        println!("\n(paper anchors: 6.05->0.69 add-only, 8.4->0.29 delete-only, 5.34->0.42 both)");
        Ok(())
    }
}
