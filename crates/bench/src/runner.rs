//! The deterministic parallel experiment orchestrator.
//!
//! Every paper figure/table is a grid of independent *cells* — dataset ×
//! method × target-sample — that the seed binaries used to walk
//! serially. [`ExperimentRunner`] fans the cells of one or more
//! [`Experiment`]s out across a `std::thread::scope` worker pool while
//! guaranteeing the merged output is **byte-identical at any
//! `--threads` value**:
//!
//! * **Cell-indexed RNG streams.** Every random choice inside a cell is
//!   seeded by [`derive_seed`] from `(experiment name, cell index, base
//!   seed)` — never from worker identity, wall-clock, or completion
//!   order.
//! * **Shared frozen substrates.** Each dataset is built once and frozen
//!   into a [`CsrGraph`] (plus a fitted OddBall model for target
//!   sampling); cells borrow it read-only. Workers keep one
//!   [`AttackSession`] per substrate alive across cells via
//!   [`AttackSession::retarget`], so no per-cell `O(n + m)` rebuilds.
//! * **Ordered merge.** Workers claim cells from a shared queue
//!   (dynamic load balancing), but results are slotted by cell index and
//!   handed to [`Experiment::finalize`] in index order.
//! * **Durable artifacts.** Each finished cell is committed atomically
//!   under `<out>/.cells/<experiment>/` with a JSON manifest
//!   ([`crate::artifact`]); `--resume` replays only missing cells and
//!   merges the same bytes a fresh run would (cells always round-trip
//!   through their on-disk encoding).
//!
//! The determinism contract is enforced by `tests/determinism.rs` at the
//! workspace root.

use crate::artifact::{CellStore, Manifest};
use crate::{BenchError, ExpOptions};
use ba_core::{AttackError, AttackSession};
use ba_datasets::Dataset;
use ba_graph::{CsrGraph, Graph, NodeId};
use ba_oddball::{OddBall, OddBallModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One SplitMix64 scramble step.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Derives an independent RNG seed from a textual tag and integer parts
/// (FNV-1a over the tag, SplitMix64-mixed with each part). The one seed
/// derivation the orchestrator permits: streams depend only on *what* a
/// cell is, never on *where* or *when* it runs.
pub fn derive_seed(tag: &str, parts: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in tag.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    for &p in parts {
        h = splitmix64(h ^ p);
    }
    splitmix64(h)
}

/// A concrete dataset build an experiment's cells run against: the
/// Table-I dataset plus the node/edge scale. Specs are deduplicated
/// across a suite, so `fig4` and `fig5` share one frozen Wikivote
/// substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DatasetSpec {
    /// Which Table-I dataset.
    pub dataset: Dataset,
    /// Nodes to build.
    pub nodes: usize,
    /// Target edge count.
    pub edges: usize,
}

impl DatasetSpec {
    /// Full paper (Table-I) scale.
    pub fn full(dataset: Dataset) -> Self {
        let (nodes, edges) = dataset.paper_statistics();
        Self {
            dataset,
            nodes,
            edges,
        }
    }

    /// Half scale — the quick-profile size `fig4` uses.
    pub fn half(dataset: Dataset) -> Self {
        let (n, m) = dataset.paper_statistics();
        Self {
            dataset,
            nodes: n / 2,
            edges: m / 2,
        }
    }

    /// An explicit scale (tests use tiny graphs).
    pub fn scaled(dataset: Dataset, nodes: usize, edges: usize) -> Self {
        Self {
            dataset,
            nodes,
            edges,
        }
    }

    /// Builds the graph for this spec at the given base seed.
    pub fn build(&self, seed: u64) -> Graph {
        self.dataset.build_scaled(self.nodes, self.edges, seed)
    }
}

/// A dataset substrate shared (read-only) by every cell and worker: the
/// built graph, its frozen CSR form, and a fitted OddBall model so
/// target sampling's score pass runs once per dataset instead of once
/// per cell.
#[derive(Debug)]
pub struct PreparedDataset {
    /// The spec this substrate was built from.
    pub spec: DatasetSpec,
    /// The mutable-representation graph (GAL/ReFeX pipelines take it).
    pub graph: Graph,
    /// The frozen substrate sessions and overlays run on.
    pub csr: CsrGraph,
    /// OddBall fitted on the clean substrate.
    pub model: OddBallModel,
}

impl PreparedDataset {
    fn build(spec: DatasetSpec, seed: u64) -> Self {
        let graph = spec.build(seed);
        let csr = CsrGraph::from(&graph);
        let model = OddBall::default()
            .fit(&csr)
            .unwrap_or_else(|e| panic!("OddBall fit on {:?}: {e}", spec.dataset.name()));
        Self {
            spec,
            graph,
            csr,
            model,
        }
    }
}

/// The frozen dataset substrates of one suite run, built at most once
/// each. The in-process pool pre-builds the specs its pending cells
/// declare (in parallel when the pool is parallel); a distributed peer
/// builds lazily on first touch instead, because it cannot know which
/// cells the tracker will lease it. Builds are pure functions of
/// `(spec, seed)`, so eager and lazy construction are interchangeable.
pub struct SubstratePool {
    specs: Vec<DatasetSpec>,
    seed: u64,
    slots: Vec<OnceLock<PreparedDataset>>,
}

impl SubstratePool {
    /// An empty pool over `specs` at `seed`. Nothing is built yet.
    pub fn new(specs: Vec<DatasetSpec>, seed: u64) -> Self {
        let slots = specs.iter().map(|_| OnceLock::new()).collect();
        Self { specs, seed, slots }
    }

    /// The deduplicated specs, indexed by global substrate id.
    pub fn specs(&self) -> &[DatasetSpec] {
        &self.specs
    }

    /// The substrate for a global spec index, building it on first use
    /// (`OnceLock` blocks concurrent callers until the build commits).
    pub fn get(&self, global: usize) -> &PreparedDataset {
        self.slots[global].get_or_init(|| PreparedDataset::build(self.specs[global], self.seed))
    }

    /// Pre-builds the flagged specs, overlapping them across threads
    /// when `parallel`. Slot order keeps the result deterministic.
    pub fn build_eager(&self, needed: &[bool], parallel: bool) {
        if parallel {
            std::thread::scope(|scope| {
                for (global, &need) in needed.iter().enumerate() {
                    if need {
                        scope.spawn(move || {
                            self.get(global);
                        });
                    }
                }
            });
        } else {
            for (global, &need) in needed.iter().enumerate() {
                if need {
                    self.get(global);
                }
            }
        }
    }
}

/// A deterministically cell-decomposable experiment.
///
/// Implementations must keep `run_cell` a pure function of `(cell,
/// substrates, derived seeds)`: no global state, no iteration-order
/// dependence on other cells. Everything a cell learns must be encoded
/// into its returned record rows (newline-free strings), because on
/// `--resume` those rows are reloaded from disk in place of re-running
/// the cell, and [`Experiment::finalize`] must merge both byte-
/// identically.
pub trait Experiment: Sync {
    /// Stable name: artifact directory, manifest, and seed-derivation
    /// domain.
    fn name(&self) -> String;

    /// A string covering **every** configuration knob that changes cell
    /// payloads (iteration counts, λ grids, budgets, panel specs, …).
    /// It is folded into the manifest fingerprint, so `--resume` never
    /// adopts cells computed under a different configuration.
    /// `format!("{self:?}")` is the usual implementation.
    fn config_fingerprint(&self) -> String;

    /// The dataset substrates cells reference (by index into this vec).
    fn datasets(&self) -> Vec<DatasetSpec>;

    /// Total number of cells.
    fn num_cells(&self) -> usize;

    /// The experiment-local dataset index `cell` runs against. The
    /// runner builds only the substrates pending cells declare here, so
    /// a cell must not touch any other dataset through its `CellCtx`.
    fn cell_dataset(&self, cell: usize) -> usize;

    /// Short human label for progress lines.
    fn cell_label(&self, cell: usize) -> String;

    /// Executes one cell, returning its record rows. Rows must be
    /// non-empty and newline-free (the artifact store's record format).
    fn run_cell(&self, cell: usize, ctx: &mut CellCtx<'_, '_>) -> Vec<String>;

    /// The artifact filenames [`Experiment::finalize`] writes into the
    /// output directory. When the experiment fails mid-grid, the runner
    /// deletes these so a stale file from an earlier run can never ship
    /// as this run's result.
    fn artifacts(&self) -> Vec<String>;

    /// Merges all cells' rows — presented in cell-index order, whether
    /// computed or reloaded — into the final report and CSV artifacts.
    /// Fails on artifact IO errors or cell records that no longer
    /// decode (a truncated or hand-edited store).
    fn finalize(&self, opts: &ExpOptions, cells: &[Vec<String>]) -> Result<(), BenchError>;
}

/// Per-worker reusable attack sessions, keyed by global substrate index.
/// One per in-process pool worker; one per distributed peer process.
/// `BTreeMap` keeps the runner free of randomized-iteration containers
/// (determinism rule R2); it holds a handful of entries, so the log-n
/// lookup is irrelevant.
#[derive(Default)]
pub(crate) struct SessionCache<'p> {
    map: BTreeMap<usize, AttackSession<'p>>,
}

/// What a cell sees while it runs: the shared substrates, its derived
/// seed streams, and the worker's session cache.
pub struct CellCtx<'p, 'w> {
    exp_name: &'w str,
    cell: usize,
    base_seed: u64,
    inner_threads: usize,
    pool: &'p SubstratePool,
    ds_map: &'w [usize],
    sessions: &'w mut SessionCache<'p>,
}

impl<'p> CellCtx<'p, '_> {
    /// The cell's own RNG seed, derived from
    /// `(experiment, cell index, base seed)`.
    pub fn cell_seed(&self) -> u64 {
        derive_seed(self.exp_name, &[self.cell as u64, self.base_seed])
    }

    /// The cell's own RNG stream.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.cell_seed())
    }

    /// A seed stream shared *across* cells of this experiment (e.g. the
    /// target sample that several method-cells of one panel must agree
    /// on). Depends only on the experiment name, the tag/parts, and the
    /// base seed.
    pub fn seed_for(&self, tag: &str, parts: &[u64]) -> u64 {
        let mut all = vec![self.base_seed];
        all.extend_from_slice(parts);
        derive_seed(&format!("{}/{}", self.exp_name, tag), &all)
    }

    /// The prepared substrate for an experiment-local dataset index.
    /// Substrates declared via [`Experiment::cell_dataset`] are built
    /// ahead of the pool; an undeclared one is built lazily here (the
    /// build is a pure function of `(spec, seed)`, so results are
    /// unaffected — only the warm-up overlap is lost).
    pub fn dataset(&self, ds: usize) -> &'p PreparedDataset {
        self.pool.get(self.ds_map[ds])
    }

    /// The built graph.
    pub fn graph(&self, ds: usize) -> &'p Graph {
        &self.dataset(ds).graph
    }

    /// The frozen CSR substrate.
    pub fn csr(&self, ds: usize) -> &'p CsrGraph {
        &self.dataset(ds).csr
    }

    /// OddBall fitted once on the clean substrate.
    pub fn model(&self, ds: usize) -> &'p OddBallModel {
        &self.dataset(ds).model
    }

    /// Worker threads attack internals may use (1 when the pool itself
    /// is parallel, so cells don't oversubscribe the machine; 0 =
    /// autodetect when the pool is serial).
    pub fn inner_threads(&self) -> usize {
        self.inner_threads
    }

    /// This worker's reusable session on dataset `ds`, re-pointed at
    /// `targets`. The first use on a worker builds the session (one
    /// `O(n + m)` feature pass); every later cell pays only
    /// `retarget`'s `O(dirty rows)`.
    pub fn session(
        &mut self,
        ds: usize,
        targets: &[NodeId],
    ) -> Result<&mut AttackSession<'p>, AttackError> {
        let global = self.ds_map[ds];
        let csr = &self.pool.get(global).csr;
        match self.sessions.map.entry(global) {
            std::collections::btree_map::Entry::Occupied(o) => {
                let session = o.into_mut();
                session.retarget(targets)?;
                Ok(session)
            }
            std::collections::btree_map::Entry::Vacant(v) => Ok(v.insert(
                // One transposition table per worker session: it is
                // keyed by (edge set ⊕ target set), so it survives the
                // retargets between cells and stays useful across the
                // whole sweep. Memoization is result-transparent —
                // cell fingerprints are unchanged.
                AttackSession::new(csr, targets)?
                    .with_threads(self.inner_threads)
                    .with_memo(),
            )),
        }
    }
}

/// Per-experiment orchestration state inside a suite run.
pub(crate) struct ExpState {
    pub(crate) store: CellStore,
    pub(crate) manifest: Mutex<Manifest>,
    /// Offset of this experiment's cell 0 in the flat result vector.
    pub(crate) offset: usize,
    pub(crate) num_cells: usize,
    /// Set when one of the experiment's cells panicked; the experiment
    /// is then skipped at finalize so the rest of the suite survives
    /// (the legacy `run_all` likewise warned and continued past a
    /// failed child binary).
    pub(crate) failed: std::sync::atomic::AtomicBool,
}

/// The manifest fingerprint of one experiment under one option set: the
/// common options plus every experiment knob, hashed compact. Shared by
/// the in-process runner, the tracker, and the peer handshake — resume
/// must never adopt cells from a different configuration, and a peer
/// must never compute cells for one.
pub fn exp_fingerprint(exp: &dyn Experiment, opts: &ExpOptions) -> String {
    format!(
        "seed={},samples={},paper={},cells={},cfg={:016x}",
        opts.seed,
        opts.samples,
        opts.paper,
        exp.num_cells(),
        derive_seed(&exp.config_fingerprint(), &[])
    )
}

/// The pure, store-free shape of a suite: deduplicated substrate specs,
/// per-experiment local→global dataset maps, flat cell offsets, and the
/// handshake fingerprint. A function of `(exps, opts)` only, so the
/// tracker and every peer — which must never touch the tracker's
/// artifact store — derive identical layouts independently.
pub struct SuiteLayout {
    /// Deduplicated substrate specs, indexed by global substrate id.
    pub specs: Vec<DatasetSpec>,
    /// Per-experiment map: local dataset index → global substrate id.
    pub maps: Vec<Vec<usize>>,
    /// Flat index of each experiment's cell 0.
    pub offsets: Vec<usize>,
    /// Total cells across the suite.
    pub total: usize,
    /// Suite-level handshake fingerprint: the per-experiment manifest
    /// fingerprints joined in suite order. A peer whose layout
    /// fingerprint differs from the tracker's is rejected at Hello.
    pub fingerprint: String,
}

impl SuiteLayout {
    /// Derives the layout of `exps` under `opts`.
    pub fn build(exps: &[&dyn Experiment], opts: &ExpOptions) -> Self {
        let mut specs: Vec<DatasetSpec> = Vec::new();
        let mut maps: Vec<Vec<usize>> = Vec::with_capacity(exps.len());
        for exp in exps {
            let map = exp
                .datasets()
                .into_iter()
                .map(|spec| {
                    specs.iter().position(|s| *s == spec).unwrap_or_else(|| {
                        specs.push(spec);
                        specs.len() - 1
                    })
                })
                .collect();
            maps.push(map);
        }
        let mut offsets = Vec::with_capacity(exps.len());
        let mut total = 0;
        for exp in exps {
            offsets.push(total);
            total += exp.num_cells();
        }
        let fingerprints: Vec<String> =
            exps.iter().map(|exp| exp_fingerprint(*exp, opts)).collect();
        Self {
            specs,
            maps,
            offsets,
            total,
            fingerprint: fingerprints.join("|"),
        }
    }

    /// Maps a flat suite-wide cell index to `(experiment, local cell)`.
    pub fn split_flat(&self, flat: usize) -> Option<(usize, usize)> {
        if flat >= self.total {
            return None;
        }
        let ei = self.offsets.iter().rposition(|&o| o <= flat)?;
        Some((ei, flat - self.offsets[ei]))
    }
}

/// Everything a suite run resolves before any cell executes: the
/// store-free [`SuiteLayout`] plus artifact stores with resume-adopted
/// rows and the flat pending-cell list. Built identically by
/// [`ExperimentRunner`] and the distributed tracker, so both merge the
/// same bytes.
pub(crate) struct SuitePlan {
    pub(crate) layout: SuiteLayout,
    pub(crate) states: Vec<ExpState>,
    /// `(experiment index, local cell)` pairs still to compute.
    pub(crate) pending: Vec<(usize, usize)>,
    pub(crate) results: Vec<OnceLock<Vec<String>>>,
}

impl SuitePlan {
    /// Resolves stores, manifests, and resumable cells for `exps`.
    ///
    /// With `resume`, a manifest whose fingerprint matches adopts every
    /// committed cell — **including row files the manifest does not
    /// list yet**. The cell row files are the crash-recovery log: each
    /// is committed by atomic rename *before* its manifest update, so a
    /// crash between the two leaves a valid row the manifest merely
    /// lags behind on. Rows always round-trip through their on-disk
    /// encoding, so adopted cells merge the same bytes a fresh run
    /// would. A fingerprint mismatch still invalidates the whole store.
    pub(crate) fn build(
        exps: &[&dyn Experiment],
        opts: &ExpOptions,
        resume: bool,
    ) -> std::io::Result<Self> {
        std::fs::create_dir_all(&opts.out_dir)?;
        let layout = SuiteLayout::build(exps, opts);
        let results: Vec<OnceLock<Vec<String>>> =
            (0..layout.total).map(|_| OnceLock::new()).collect();
        let mut states: Vec<ExpState> = Vec::with_capacity(exps.len());
        let mut pending: Vec<(usize, usize)> = Vec::new();
        for (ei, exp) in exps.iter().enumerate() {
            let name = exp.name();
            let num_cells = exp.num_cells();
            let offset = layout.offsets[ei];
            let fingerprint = exp_fingerprint(*exp, opts);
            let store = CellStore::open(&opts.out_dir, &name)?;
            let mut manifest = Manifest::new(&name, &fingerprint, num_cells);
            if resume {
                if let Some(prev) = Manifest::load(&store.manifest_path()) {
                    if prev.fingerprint == fingerprint && prev.num_cells == num_cells {
                        // Adopt every cell whose rows reload, whether
                        // the manifest lists it or only its row file
                        // landed (crash between row commit and
                        // manifest update).
                        for cell in 0..num_cells {
                            if let Some(rows) = store.read_cell(cell) {
                                // ba-lint: allow(panic-path) -- slots were allocated fresh above and this loop visits each cell once; a double set is a logic bug worth crashing on
                                results[offset + cell].set(rows).expect("fresh slot");
                                manifest.completed.insert(cell);
                            }
                        }
                        eprintln!(
                            "[runner] {name}: resuming {} of {num_cells} cells from manifest",
                            manifest.completed.len()
                        );
                    } else {
                        eprintln!("[runner] {name}: manifest fingerprint mismatch; starting fresh");
                    }
                }
            }
            if manifest.completed.is_empty() {
                store.clear()?;
            }
            manifest.save(&store.manifest_path())?;
            for cell in 0..num_cells {
                if !manifest.completed.contains(&cell) {
                    pending.push((ei, cell));
                }
            }
            states.push(ExpState {
                store,
                manifest: Mutex::new(manifest),
                offset,
                num_cells,
                failed: std::sync::atomic::AtomicBool::new(false),
            });
        }
        Ok(Self {
            layout,
            states,
            pending,
            results,
        })
    }

    /// Commits one computed cell: row file (atomic rename), manifest
    /// update, and the in-memory merge slot. Safe from any thread.
    pub(crate) fn commit(&self, ei: usize, cell: usize, rows: Vec<String>) -> std::io::Result<()> {
        let state = &self.states[ei];
        state.store.write_cell(cell, &rows)?;
        {
            // ba-lint: allow(panic-path) -- a poisoned manifest lock means another worker already panicked mid-commit; propagating that panic is the correct escalation
            let mut m = state.manifest.lock().expect("manifest lock");
            m.completed.insert(cell);
            m.save(&state.store.manifest_path())?;
        }
        self.results[state.offset + cell]
            .set(rows)
            // ba-lint: allow(panic-path) -- the pending list is deduplicated and resume-adopted cells are never pending, so a second set is a logic bug worth crashing on
            .expect("cell slot set twice");
        Ok(())
    }

    /// Records a failed cell: the experiment is marked failed (skipped
    /// at finalize, committed cells kept for `--resume`) and the slot
    /// is filled so the other experiments can still merge.
    pub(crate) fn mark_failed(&self, ei: usize, cell: usize) {
        let state = &self.states[ei];
        state.failed.store(true, Ordering::Relaxed);
        self.results[state.offset + cell].set(Vec::new()).ok();
    }

    /// Ordered merge: every non-failed experiment sees its cells
    /// `0..n` in index order regardless of completion order, cache
    /// hits, or which worker (thread or remote process) computed them.
    /// Failed experiments have their stale artifacts deleted instead.
    /// Returns `false` if any experiment failed; `Err` on artifact IO
    /// or record-decode failures inside a finalize.
    pub(crate) fn merge_and_finalize(
        &self,
        exps: &[&dyn Experiment],
        opts: &ExpOptions,
    ) -> Result<bool, BenchError> {
        let mut all_ok = true;
        for (ei, exp) in exps.iter().enumerate() {
            let state = &self.states[ei];
            if state.failed.load(Ordering::Relaxed) {
                // Drop any stale artifact a previous run left behind so
                // a failed experiment never ships old data.
                for artifact in exp.artifacts() {
                    let _ = std::fs::remove_file(opts.out_dir.join(artifact));
                }
                eprintln!(
                    "warning: [{}] skipped finalize after a cell failure; \
                     re-run with --resume to retry only the failed cells",
                    exp.name()
                );
                all_ok = false;
                continue;
            }
            let rows: Vec<Vec<String>> = (0..state.num_cells)
                .map(|c| {
                    self.results[state.offset + c]
                        .get()
                        // ba-lint: allow(panic-path) -- by the time the worker scope has joined, every pending cell has either committed or marked its experiment failed; an empty slot is a logic bug worth crashing on
                        .expect("all cells resolved")
                        .clone()
                })
                .collect();
            exp.finalize(opts, &rows)?;
        }
        Ok(all_ok)
    }
}

/// The invariant part of a worker's cell executions: which experiment,
/// under which seed and thread budget, against which substrates.
pub(crate) struct CellEnv<'p, 'w> {
    pub(crate) exp: &'w dyn Experiment,
    pub(crate) exp_name: &'w str,
    pub(crate) base_seed: u64,
    pub(crate) inner_threads: usize,
    pub(crate) pool: &'p SubstratePool,
    pub(crate) ds_map: &'w [usize],
}

/// Runs one cell under a panic guard. On panic the cell's session is
/// evicted from the worker cache (only it can be mid-edit) and the
/// panic payload is returned as the error message.
pub(crate) fn run_cell_guarded<'p>(
    env: &CellEnv<'p, '_>,
    cell: usize,
    sessions: &mut SessionCache<'p>,
) -> Result<Vec<String>, String> {
    let outcome = {
        let mut ctx = CellCtx {
            exp_name: env.exp_name,
            cell,
            base_seed: env.base_seed,
            inner_threads: env.inner_threads,
            pool: env.pool,
            ds_map: env.ds_map,
            sessions: &mut *sessions,
        };
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            env.exp.run_cell(cell, &mut ctx)
        }))
    };
    outcome.map_err(|payload| {
        sessions.map.remove(&env.ds_map[env.exp.cell_dataset(cell)]);
        if let Some(msg) = payload.downcast_ref::<&str>() {
            (*msg).to_string()
        } else if let Some(msg) = payload.downcast_ref::<String>() {
            msg.clone()
        } else {
            "cell panicked".to_string()
        }
    })
}

/// The work-distributing, artifact-writing runner. See the module docs
/// for the determinism contract.
pub struct ExperimentRunner {
    /// Resolved worker count (≥ 1).
    pub threads: usize,
    /// Whether to reuse committed cells from a previous interrupted run.
    pub resume: bool,
    /// Base seed (threaded into every derived stream).
    pub base_seed: u64,
}

impl ExperimentRunner {
    /// Builds a runner from parsed experiment options.
    pub fn new(opts: &ExpOptions) -> Self {
        let threads = if opts.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            opts.threads
        };
        Self {
            threads,
            resume: opts.resume,
            base_seed: opts.seed,
        }
    }

    /// Runs a single experiment end to end.
    pub fn run(&self, exp: &dyn Experiment, opts: &ExpOptions) -> Result<(), BenchError> {
        self.run_suite(&[exp], opts)
    }

    /// Runs several experiments as one pooled cell grid: substrates are
    /// deduplicated across experiments and all cells share the worker
    /// pool, then each experiment finalizes in order. Fails on artifact
    /// IO errors; a *cell* failure only skips that experiment's
    /// finalize (see `SuitePlan::mark_failed`).
    pub fn run_suite(&self, exps: &[&dyn Experiment], opts: &ExpOptions) -> Result<(), BenchError> {
        let t0 = Instant::now();
        let plan = SuitePlan::build(exps, opts, self.resume)?;

        // The pool: workers claim cells off a shared queue. Inner
        // (gradient/matmul) parallelism is folded to 1 thread whenever
        // the pool itself is parallel.
        let workers = self.threads.min(plan.pending.len()).max(1);
        let inner_threads = if workers > 1 { 1 } else { 0 };
        let cached = plan.layout.total - plan.pending.len();
        eprintln!(
            "[runner] {} cell(s) across {} experiment(s): {} to run, {} cached, {} worker(s)",
            plan.layout.total,
            exps.len(),
            plan.pending.len(),
            cached,
            workers
        );
        // Substrates are only needed by live cells: build exactly the
        // ones pending cells declare via cell_dataset. A fully-cached
        // resume therefore skips dataset building entirely. Builds are
        // independent and seeded, so a parallel pool overlaps them
        // instead of idling the workers through a serial prefix.
        let pool = SubstratePool::new(plan.layout.specs.clone(), self.base_seed);
        let mut needed = vec![false; pool.specs().len()];
        for &(ei, cell) in &plan.pending {
            needed[plan.layout.maps[ei][exps[ei].cell_dataset(cell)]] = true;
        }
        if needed.iter().any(|&n| n) {
            eprintln!(
                "[runner] preparing {} of {} dataset substrate(s) (seed {})",
                needed.iter().filter(|&&n| n).count(),
                pool.specs().len(),
                self.base_seed
            );
        }
        pool.build_eager(&needed, workers > 1);
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut sessions = SessionCache::default();
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&(ei, cell)) = plan.pending.get(k) else {
                            break;
                        };
                        let exp = exps[ei];
                        let name = exp.name();
                        let cell_t0 = Instant::now();
                        // A panicking cell fails its *experiment*, not
                        // the suite: the slot is filled so the merge
                        // can proceed for the other experiments, and
                        // this experiment is skipped at finalize. Its
                        // committed cells stay on disk for --resume.
                        let env = CellEnv {
                            exp,
                            exp_name: &name,
                            base_seed: self.base_seed,
                            inner_threads,
                            pool: &pool,
                            ds_map: &plan.layout.maps[ei],
                        };
                        match run_cell_guarded(&env, cell, &mut sessions) {
                            // A commit failure is an unwritable artifact
                            // store: fail the experiment (like a cell
                            // panic) instead of panicking the worker, so
                            // the other experiments still merge.
                            Ok(rows) => match plan.commit(ei, cell, rows) {
                                Ok(()) => {
                                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                                    eprintln!(
                                        "[{name} {finished}/{}] {} ({:.1}s)",
                                        plan.pending.len(),
                                        exp.cell_label(cell),
                                        cell_t0.elapsed().as_secs_f64()
                                    );
                                }
                                Err(e) => {
                                    plan.mark_failed(ei, cell);
                                    eprintln!(
                                        "warning: [{name}] cell {} commit failed ({e}); \
                                         {name} will not finalize",
                                        exp.cell_label(cell)
                                    );
                                }
                            },
                            Err(_) => {
                                plan.mark_failed(ei, cell);
                                eprintln!(
                                    "warning: [{name}] cell {} panicked; {name} will not finalize",
                                    exp.cell_label(cell)
                                );
                            }
                        }
                    }
                });
            }
        });

        plan.merge_and_finalize(exps, opts)?;
        eprintln!(
            "[runner] {} cell(s) ({} cached) in {:.1}s on {} worker thread(s)",
            plan.layout.total,
            cached,
            t0.elapsed().as_secs_f64(),
            workers
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_stable_and_sensitive() {
        let a = derive_seed("fig4", &[0, 7]);
        assert_eq!(a, derive_seed("fig4", &[0, 7]));
        assert_ne!(a, derive_seed("fig4", &[1, 7]));
        assert_ne!(a, derive_seed("fig4", &[0, 8]));
        assert_ne!(a, derive_seed("fig5", &[0, 7]));
    }

    #[test]
    fn dataset_specs_dedup_by_value() {
        let a = DatasetSpec::full(Dataset::Wikivote);
        let b = DatasetSpec::full(Dataset::Wikivote);
        let c = DatasetSpec::half(Dataset::Wikivote);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    struct Flagged {
        name: &'static str,
        panic_on: Option<usize>,
        finalized: std::sync::atomic::AtomicBool,
    }

    impl Experiment for Flagged {
        fn name(&self) -> String {
            self.name.to_string()
        }
        fn config_fingerprint(&self) -> String {
            format!("{}-v1", self.name)
        }
        fn artifacts(&self) -> Vec<String> {
            vec![format!("{}.csv", self.name)]
        }
        fn datasets(&self) -> Vec<DatasetSpec> {
            vec![DatasetSpec::scaled(Dataset::Er, 40, 90)]
        }
        fn num_cells(&self) -> usize {
            2
        }
        fn cell_dataset(&self, _cell: usize) -> usize {
            0
        }
        fn cell_label(&self, cell: usize) -> String {
            format!("cell{cell}")
        }
        fn run_cell(&self, cell: usize, _ctx: &mut CellCtx<'_, '_>) -> Vec<String> {
            if self.panic_on == Some(cell) {
                panic!("deliberate test panic");
            }
            vec![format!("{}:{cell}", self.name)]
        }
        fn finalize(&self, _opts: &ExpOptions, cells: &[Vec<String>]) -> Result<(), BenchError> {
            assert_eq!(cells.len(), 2);
            self.finalized
                .store(true, std::sync::atomic::Ordering::Relaxed);
            Ok(())
        }
    }

    /// A panicking cell fails only its own experiment; the rest of the
    /// suite still finalizes and the runner does not propagate.
    #[test]
    fn cell_panic_is_isolated_per_experiment() {
        let dir = std::env::temp_dir().join("ba_runner_panic_test");
        let _ = std::fs::remove_dir_all(&dir);
        let opts = ExpOptions {
            out_dir: dir.clone(),
            threads: 2,
            ..ExpOptions::default()
        };
        let bad = Flagged {
            name: "panicky",
            panic_on: Some(1),
            finalized: std::sync::atomic::AtomicBool::new(false),
        };
        let good = Flagged {
            name: "healthy",
            panic_on: None,
            finalized: std::sync::atomic::AtomicBool::new(false),
        };
        // A stale artifact from an earlier run must not survive a
        // failed re-run.
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("panicky.csv"), "stale,data\n").unwrap();
        ExperimentRunner::new(&opts)
            .run_suite(&[&bad, &good], &opts)
            .unwrap();
        assert!(!bad.finalized.load(std::sync::atomic::Ordering::Relaxed));
        assert!(good.finalized.load(std::sync::atomic::Ordering::Relaxed));
        assert!(
            !dir.join("panicky.csv").exists(),
            "stale artifact of the failed experiment survived"
        );
        // The bad experiment's good cell stays committed for --resume.
        let store = CellStore::open(&dir, "panicky").unwrap();
        assert_eq!(store.read_cell(0).unwrap(), vec!["panicky:0"]);
        assert_eq!(store.read_cell(1), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prepared_dataset_substrate_is_consistent() {
        let spec = DatasetSpec::scaled(Dataset::Er, 120, 500);
        let p = PreparedDataset::build(spec, 11);
        assert_eq!(p.graph.num_nodes(), 120);
        assert_eq!(ba_graph::GraphView::num_edges(&p.csr), p.graph.num_edges());
        // Model was fitted on the same substrate.
        assert_eq!(p.model.scores().len(), 120);
    }
}
