//! One schema for every `BENCH_*.json` perf-trend artifact.
//!
//! The perf-gate binaries (`grad_bench`, `eval_bench`, `stream_bench`,
//! `serve_bench`) each measure different things, but the CI trend
//! pipeline wants to plot them uniformly: a bench name, a commit, and a
//! flat list of `(metric, value, unit)` triples. [`BenchReport`] is
//! that record; [`BenchReport::write_if_requested`] is the shared
//! `--json PATH` handling every gate binary routes through, replacing
//! the per-binary hand-rolled format strings.
//!
//! ```json
//! {
//!   "schema": 1,
//!   "bench": "stream",
//!   "commit": "4f2a…",
//!   "metrics": [
//!     {"metric": "engine_events_per_sec", "value": 254000.0, "unit": "events/s"},
//!     {"metric": "speedup", "value": 10.2, "unit": "x"}
//!   ]
//! }
//! ```
//!
//! The commit comes from `GITHUB_SHA` (set by Actions) or the
//! `BA_BENCH_COMMIT` override, else `"unknown"` — the emitting binary
//! stays deterministic for a fixed environment.

use crate::artifact::write_atomic;
use std::path::Path;

/// One measured quantity.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchMetric {
    /// Metric name, e.g. `"sustained_qps"`.
    pub metric: String,
    /// Measured value.
    pub value: f64,
    /// Unit label, e.g. `"qps"`, `"s"`, `"x"`, `"count"`.
    pub unit: String,
}

/// A uniformly-shaped bench record destined for `BENCH_<name>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    bench: String,
    metrics: Vec<BenchMetric>,
}

impl BenchReport {
    /// Starts an empty report for the bench called `bench`.
    pub fn new(bench: &str) -> Self {
        Self {
            bench: bench.to_string(),
            metrics: Vec::new(),
        }
    }

    /// Appends one `(metric, value, unit)` triple (builder-style).
    pub fn metric(mut self, metric: &str, value: f64, unit: &str) -> Self {
        self.metrics.push(BenchMetric {
            metric: metric.to_string(),
            value,
            unit: unit.to_string(),
        });
        self
    }

    /// The metrics recorded so far.
    pub fn metrics(&self) -> &[BenchMetric] {
        &self.metrics
    }

    /// Renders the shared JSON schema. Non-finite values are emitted as
    /// `null` (bare `NaN`/`inf` are not valid JSON).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\":1,\"bench\":\"");
        out.push_str(&escape(&self.bench));
        out.push_str("\",\"commit\":\"");
        out.push_str(&escape(&commit()));
        out.push_str("\",\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"metric\":\"");
            out.push_str(&escape(&m.metric));
            out.push_str("\",\"value\":");
            out.push_str(&json_number(m.value));
            out.push_str(",\"unit\":\"");
            out.push_str(&escape(&m.unit));
            out.push_str("\"}");
        }
        out.push_str("]}\n");
        out
    }

    /// Shared `--json PATH` handling: when the flag is present in
    /// `args`, writes [`BenchReport::to_json`] atomically to `PATH` and
    /// logs it — the machine-readable half of the CI perf-trend
    /// artifacts.
    pub fn write_if_requested(&self, args: &[String]) -> std::io::Result<()> {
        if let Some(path) = args
            .iter()
            .position(|a| a == "--json")
            .and_then(|i| args.get(i + 1))
        {
            write_atomic(Path::new(path), &self.to_json())?;
            eprintln!("[json] wrote {path}");
        }
        Ok(())
    }
}

/// The commit the bench ran at, for the trend axis.
fn commit() -> String {
    std::env::var("BA_BENCH_COMMIT")
        .or_else(|_| std::env::var("GITHUB_SHA"))
        .unwrap_or_else(|_| "unknown".to_string())
}

/// JSON number rendering: shortest round-trip decimal for finite
/// values, `null` otherwise.
fn json_number(x: f64) -> String {
    if x.is_finite() {
        let s = format!("{x}");
        // `1` and `1e300` are valid JSON numbers as Rust prints them;
        // nothing else to normalise.
        s
    } else {
        "null".to_string()
    }
}

/// Minimal JSON string escaping (the names we emit are plain ASCII,
/// but a stray quote must not produce a malformed artifact).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_shape_is_stable() {
        std::env::set_var("BA_BENCH_COMMIT", "deadbeef");
        let json = BenchReport::new("demo")
            .metric("speedup", 10.25, "x")
            .metric("events", 4000.0, "count")
            .to_json();
        assert_eq!(
            json,
            "{\"schema\":1,\"bench\":\"demo\",\"commit\":\"deadbeef\",\"metrics\":[\
             {\"metric\":\"speedup\",\"value\":10.25,\"unit\":\"x\"},\
             {\"metric\":\"events\",\"value\":4000,\"unit\":\"count\"}]}\n"
        );
        std::env::remove_var("BA_BENCH_COMMIT");
    }

    #[test]
    fn non_finite_values_become_null() {
        let json = BenchReport::new("demo")
            .metric("bad", f64::NAN, "x")
            .to_json();
        assert!(json.contains("\"value\":null"));
    }

    #[test]
    fn strings_are_escaped() {
        let json = BenchReport::new("we\"ird")
            .metric("a\\b", 1.0, "x")
            .to_json();
        assert!(json.contains("we\\\"ird"));
        assert!(json.contains("a\\\\b"));
    }
}
