//! # ba-bench
//!
//! Experiment harness for the BinarizedAttack reproduction: one binary
//! per paper table/figure (see DESIGN.md §5 for the index) plus Criterion
//! micro-benchmarks. This library holds the shared plumbing: CLI flags,
//! target sampling (paper Sec. VIII-A3), attack-curve averaging, CSV
//! emission under `target/experiments/`, and — since the orchestrator
//! rework — the deterministic parallel [`runner`] with its durable
//! [`artifact`] layer and the runner-ported [`experiments`].

pub mod artifact;
pub mod distrib;
pub mod experiments;
pub mod graphstore;
pub mod report;
pub mod runner;

use ba_core::{AttackOutcome, StructuralAttack};
use ba_graph::{Graph, GraphView, NodeId};
use ba_oddball::{OddBall, OddBallModel};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::io::Write;
use std::path::PathBuf;

/// Common experiment options parsed from `std::env::args`.
///
/// Flags: `--paper` (full Table-I scale; default is a faster `quick`
/// profile), `--seed N`, `--samples N`, `--out DIR`, `--threads N`
/// (worker pool size; `0` = all cores, the default), `--resume`
/// (replay committed cells from an interrupted run's manifest).
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Full paper-scale run (1000-node graphs, 5 target samples, paper
    /// budgets) vs the quick profile.
    pub paper: bool,
    /// Base RNG seed.
    pub seed: u64,
    /// Target-set resamples (paper uses 5).
    pub samples: usize,
    /// Output directory for CSV artefacts.
    pub out_dir: PathBuf,
    /// Orchestrator worker threads (`0` = autodetect). Output is
    /// byte-identical at any value — see [`runner`].
    pub threads: usize,
    /// Resume an interrupted run from its cell manifest instead of
    /// recomputing completed cells.
    pub resume: bool,
}

impl Default for ExpOptions {
    fn default() -> Self {
        Self {
            paper: false,
            seed: 0xedc0de,
            samples: 3,
            out_dir: PathBuf::from("target/experiments"),
            threads: 0,
            resume: false,
        }
    }
}

/// Harness-level failure: artifact/CSV IO, or a committed cell record
/// that no longer decodes at merge time. The runner surfaces it so the
/// thin experiment binaries can exit non-zero with context instead of
/// panicking a worker (lint rule `panic-path`).
#[derive(Debug)]
pub enum BenchError {
    /// Filesystem failure in the CSV/artifact layer.
    Io(std::io::Error),
    /// A cell record failed to decode on merge (truncated or hand-edited
    /// artifact store); `--resume` after deleting the store recomputes.
    Corrupt {
        /// Experiment whose record is bad.
        experiment: String,
        /// Which field failed to decode, and its raw payload.
        detail: String,
    },
}

impl std::fmt::Display for BenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchError::Io(e) => write!(f, "artifact io: {e}"),
            BenchError::Corrupt { experiment, detail } => {
                write!(f, "corrupt {experiment} cell record: {detail}")
            }
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Io(e) => Some(e),
            BenchError::Corrupt { .. } => None,
        }
    }
}

impl From<std::io::Error> for BenchError {
    fn from(e: std::io::Error) -> Self {
        BenchError::Io(e)
    }
}

impl ExpOptions {
    /// Parses options from the process arguments.
    pub fn from_args() -> Self {
        let mut opts = Self::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--paper" => {
                    opts.paper = true;
                    opts.samples = 5;
                }
                "--seed" => {
                    i += 1;
                    opts.seed = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(opts.seed);
                }
                "--samples" => {
                    i += 1;
                    opts.samples = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(opts.samples);
                }
                "--out" => {
                    i += 1;
                    if let Some(dir) = args.get(i) {
                        opts.out_dir = PathBuf::from(dir);
                    }
                }
                "--threads" => {
                    i += 1;
                    opts.threads = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(opts.threads);
                }
                "--resume" => {
                    opts.resume = true;
                }
                other => eprintln!("warning: unknown flag {other}"),
            }
            i += 1;
        }
        opts
    }

    /// Writes a CSV artefact, creating the output directory on demand.
    pub fn write_csv(&self, name: &str, header: &str, rows: &[String]) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.out_dir)?;
        let path = self.out_dir.join(name);
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
        writeln!(f, "{header}")?;
        for row in rows {
            writeln!(f, "{row}")?;
        }
        f.flush()?;
        println!("[csv] wrote {}", path.display());
        Ok(())
    }
}

/// The top-`pool` AScore ranking of a fitted model — the candidate pool
/// target sampling draws from. Hoisted out of the per-seed path so one
/// OddBall score pass per dataset (the runner fits it on the shared
/// frozen `CsrGraph`) serves every `(seed, sample)` cell, instead of
/// refitting inside each panel loop.
pub fn target_pool(model: &OddBallModel, pool: usize) -> Vec<NodeId> {
    model.top_k(pool).into_iter().map(|(i, _)| i).collect()
}

/// Samples `count` targets from a precomputed AScore pool (sorted ids).
pub fn sample_from_pool(pool: &[NodeId], count: usize, seed: u64) -> Vec<NodeId> {
    let mut top = pool.to_vec();
    let mut rng = StdRng::seed_from_u64(seed);
    top.shuffle(&mut rng);
    top.truncate(count);
    top.sort_unstable();
    top
}

/// Samples `count` target nodes from the top-`pool` AScore ranking, as
/// the paper does ("sampling 10 or 30 target nodes from the top-50 nodes
/// based on AScore rankings", Sec. VIII-A3). One-shot convenience over
/// [`target_pool`] + [`sample_from_pool`]; grid experiments should fit
/// the model once per dataset and use those directly.
pub fn sample_targets<V: GraphView + ?Sized>(
    g: &V,
    count: usize,
    pool: usize,
    seed: u64,
) -> Vec<NodeId> {
    let model = OddBall::default()
        .fit(g)
        // ba-lint: allow(panic-path) -- sampling precedes every attack; a detector that cannot fit the clean graph voids the whole experiment, so abort with context
        .expect("OddBall fit for target sampling");
    sample_from_pool(&target_pool(&model, pool), count, seed)
}

/// One attack's τ_as curve: `curve[b] = τ_as` after budget `b`
/// (`curve[0] = 0`). Fails when a budget's poisoned graph degenerates
/// the detector refit ([`ba_core::CurveError`] names the budget).
pub fn tau_curve(
    outcome: &AttackOutcome,
    g0: &Graph,
    targets: &[NodeId],
) -> Result<Vec<f64>, ba_core::CurveError> {
    let scores = outcome.ascore_curve(g0, targets, &OddBall::default())?;
    Ok((0..scores.len())
        .map(|b| AttackOutcome::tau_as(&scores, b))
        .collect())
}

/// Runs one attack over several target samples and averages the τ_as
/// curves point-wise (shorter curves are padded with their final value,
/// mirroring "attack saturated").
pub fn mean_tau_curve(
    attack: &dyn StructuralAttack,
    g0: &Graph,
    target_sets: &[Vec<NodeId>],
    budget: usize,
) -> Vec<f64> {
    let mut curves: Vec<Vec<f64>> = Vec::new();
    for targets in target_sets {
        match attack.attack(g0, targets, budget) {
            Ok(outcome) => match tau_curve(&outcome, g0, targets) {
                Ok(curve) => curves.push(curve),
                Err(e) => eprintln!(
                    "warning: {} curve evaluation failed on one sample: {e}",
                    attack.name()
                ),
            },
            Err(e) => eprintln!("warning: {} failed on one sample: {e}", attack.name()),
        }
    }
    average_padded(&curves, budget + 1)
}

/// Point-wise average of curves, padding each with its last value up to
/// `len`. Returns an empty vector when no curves succeeded.
pub fn average_padded(curves: &[Vec<f64>], len: usize) -> Vec<f64> {
    if curves.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0.0; len];
    for curve in curves {
        for (b, slot) in out.iter_mut().enumerate() {
            let v = if curve.is_empty() {
                0.0
            } else {
                curve[b.min(curve.len() - 1)]
            };
            *slot += v;
        }
    }
    for v in &mut out {
        *v /= curves.len() as f64;
    }
    out
}

/// Pretty-prints a fixed-width table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (cell, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{cell:>w$}  ", w = w));
    }
    println!("{line}");
}

/// Formats a float with 4 decimals for table output.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_core::{GradMaxSearch, RandomAttack};
    use ba_graph::generators;

    fn planted(seed: u64) -> Graph {
        let mut g = generators::erdos_renyi(120, 0.05, seed);
        generators::attach_isolated(&mut g, seed + 1);
        generators::plant_near_clique(&mut g, &(0..8).collect::<Vec<_>>(), 1.0, seed + 2);
        g
    }

    #[test]
    fn sample_targets_from_top_pool() {
        let g = planted(3);
        let targets = sample_targets(&g, 5, 20, 7);
        assert_eq!(targets.len(), 5);
        let model = OddBall::default().fit(&g).unwrap();
        let top20: Vec<NodeId> = model.top_k(20).into_iter().map(|(i, _)| i).collect();
        for t in &targets {
            assert!(top20.contains(t), "target {t} not in top-20");
        }
        // Deterministic.
        assert_eq!(targets, sample_targets(&g, 5, 20, 7));
        assert_ne!(targets, sample_targets(&g, 5, 20, 8));
    }

    #[test]
    fn target_sampling_hoisted_pool_matches_per_seed_path() {
        // The orchestrator computes the AScore pool once per dataset on
        // the frozen CSR substrate; the legacy path refits per seed on
        // the mutable graph. Both must sample identical targets.
        let g = ba_datasets::Dataset::Er.build_scaled(250, 1200, 42);
        let csr = ba_graph::CsrGraph::from(&g);
        let model = OddBall::default().fit(&csr).unwrap();
        let pool = target_pool(&model, 50);
        for seed in [42, 7, 1000] {
            assert_eq!(
                sample_from_pool(&pool, 10, seed),
                sample_targets(&g, 10, 50, seed),
                "seed {seed}"
            );
        }
        // Regression pin: the exact ids for seed 42. A change here means
        // either the RNG stream, the OddBall ranking, or the generator
        // changed — all of which silently shift every paper figure.
        assert_eq!(
            sample_from_pool(&pool, 10, 42),
            vec![66, 77, 104, 125, 136, 145, 199, 224, 225, 233]
        );
    }

    #[test]
    fn average_padded_handles_uneven_curves() {
        let curves = vec![vec![0.0, 1.0], vec![0.0, 3.0, 5.0]];
        let avg = average_padded(&curves, 4);
        assert_eq!(avg, vec![0.0, 2.0, 3.0, 3.0]);
        assert!(average_padded(&[], 3).is_empty());
    }

    #[test]
    fn mean_tau_curve_runs_attacks() {
        let g = planted(9);
        let t1 = sample_targets(&g, 2, 10, 1);
        let t2 = sample_targets(&g, 2, 10, 2);
        let curve = mean_tau_curve(&GradMaxSearch::default(), &g, &[t1, t2], 5);
        assert_eq!(curve.len(), 6);
        assert_eq!(curve[0], 0.0);
        assert!(curve[5] > 0.0, "greedy attack had no effect: {curve:?}");
    }

    #[test]
    fn random_attack_curve_weaker_than_greedy() {
        let g = planted(11);
        let sets: Vec<Vec<NodeId>> = (0..2).map(|i| sample_targets(&g, 2, 10, i)).collect();
        let greedy = mean_tau_curve(&GradMaxSearch::default(), &g, &sets, 8);
        let random = mean_tau_curve(&RandomAttack::default(), &g, &sets, 8);
        assert!(
            greedy[8] > random[8],
            "greedy {} vs random {}",
            greedy[8],
            random[8]
        );
    }
}
