//! Chunked on-disk store for compacted CSR graphs — the out-of-core leg
//! of the million-node substrate (DESIGN.md §13).
//!
//! A [`ba_graph::CsrGraph32`] is split into fixed-size node ranges and
//! written as one text file per range plus a JSON manifest, all through
//! the same atomic-rename codec the experiment artifact layer uses
//! ([`crate::artifact::write_atomic`], with the manifest's `edge_hash`
//! in the exact 16-hex-digit bit encoding of [`crate::artifact`]). The
//! layout lets a consumer walk a graph far larger than it wants resident
//! one chunk at a time ([`read_chunk_rows`]), while the full reader
//! ([`read_chunked`]) reassembles and *verifies*: it replays every edge
//! through [`ba_graph::compact::from_edge_stream`], so a reloaded graph
//! is bit-identical to the one written — offsets, columns, and Zobrist
//! edge hash — or the read fails loudly.
//!
//! ## Layout
//!
//! ```text
//! <dir>/graphstore.json   {"schema":1,"num_nodes":…,"num_edges":…,
//!                          "chunk_rows":…,"num_chunks":…,
//!                          "edge_hash":"<016x>"}
//! <dir>/chunk_00000.rows  one line per node in [0, chunk_rows):
//! <dir>/chunk_00001.rows  space-separated sorted neighbour ids
//! …
//! ```
//!
//! Rows store both edge directions (plain CSR), so chunk files are
//! self-contained: a chunk consumer sees every neighbour of its nodes
//! without touching other chunks.

use std::io;
use std::path::{Path, PathBuf};

use ba_graph::compact::{from_edge_stream, CompactError};
use ba_graph::{zobrist, CsrGraph32, GraphView, NodeId};

use crate::artifact::{json_str_field, json_usize_field, write_atomic};

/// Manifest of a chunked graph store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphStoreMeta {
    /// Node count.
    pub num_nodes: usize,
    /// Undirected edge count.
    pub num_edges: usize,
    /// Nodes per chunk (the last chunk may be shorter).
    pub chunk_rows: usize,
    /// Number of chunk files.
    pub num_chunks: usize,
    /// Zobrist edge-set hash of the stored graph.
    pub edge_hash: u64,
}

impl GraphStoreMeta {
    /// Node range `[lo, hi)` covered by chunk `k`.
    pub fn chunk_bounds(&self, k: usize) -> (usize, usize) {
        let lo = (k * self.chunk_rows).min(self.num_nodes);
        let hi = ((k + 1) * self.chunk_rows).min(self.num_nodes);
        (lo, hi)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"schema\":1,\"num_nodes\":{},\"num_edges\":{},\"chunk_rows\":{},\
             \"num_chunks\":{},\"edge_hash\":\"{:016x}\"}}\n",
            self.num_nodes, self.num_edges, self.chunk_rows, self.num_chunks, self.edge_hash
        )
    }

    fn from_json(text: &str) -> Option<Self> {
        if json_usize_field(text, "schema")? != 1 {
            return None;
        }
        Some(Self {
            num_nodes: json_usize_field(text, "num_nodes")?,
            num_edges: json_usize_field(text, "num_edges")?,
            chunk_rows: json_usize_field(text, "chunk_rows")?,
            num_chunks: json_usize_field(text, "num_chunks")?,
            edge_hash: u64::from_str_radix(&json_str_field(text, "edge_hash")?, 16).ok()?,
        })
    }
}

/// A chunked read failed: filesystem error, malformed store, or a
/// reassembled graph that does not match its manifest.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(io::Error),
    /// Manifest or chunk contents do not decode / do not match.
    Corrupt(String),
    /// The reassembled edge stream failed CSR validation.
    Compact(CompactError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "graph store io: {e}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt graph store: {msg}"),
            StoreError::Compact(e) => write!(f, "graph store reassembly: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Compact(e) => Some(e),
            StoreError::Corrupt(_) => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CompactError> for StoreError {
    fn from(e: CompactError) -> Self {
        StoreError::Compact(e)
    }
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("graphstore.json")
}

fn chunk_path(dir: &Path, k: usize) -> PathBuf {
    dir.join(format!("chunk_{k:05}.rows"))
}

/// Writes `g` to `dir` as `ceil(n / chunk_rows)` chunk files plus a
/// manifest, each committed by atomic rename. Peak transient memory is
/// one chunk's text, not the whole serialisation.
pub fn write_chunked(dir: &Path, g: &CsrGraph32, chunk_rows: usize) -> io::Result<GraphStoreMeta> {
    assert!(chunk_rows >= 1, "chunk_rows must be >= 1");
    std::fs::create_dir_all(dir)?;
    let n = g.num_nodes();
    let meta = GraphStoreMeta {
        num_nodes: n,
        num_edges: g.num_edges(),
        chunk_rows,
        num_chunks: n.div_ceil(chunk_rows),
        edge_hash: g.edge_hash(),
    };
    let mut buf = String::new();
    for k in 0..meta.num_chunks {
        let (lo, hi) = meta.chunk_bounds(k);
        buf.clear();
        for u in lo..hi {
            let row = g.neighbors_sorted(u as NodeId);
            for (idx, &v) in row.iter().enumerate() {
                if idx > 0 {
                    buf.push(' ');
                }
                // Decimal, not hex: node ids are small integers and the
                // file stays greppable; exactness only matters for the
                // f64 metrics, whose codec the manifest hash reuses.
                buf.push_str(&v.to_string());
            }
            buf.push('\n');
        }
        write_atomic(&chunk_path(dir, k), &buf)?;
    }
    // Manifest last: its presence marks the store complete.
    write_atomic(&manifest_path(dir), &meta.to_json())?;
    Ok(meta)
}

/// Loads the store manifest.
pub fn read_meta(dir: &Path) -> Result<GraphStoreMeta, StoreError> {
    let text = std::fs::read_to_string(manifest_path(dir))?;
    GraphStoreMeta::from_json(&text)
        .ok_or_else(|| StoreError::Corrupt(format!("unreadable manifest {text:?}")))
}

/// Reads one chunk's adjacency rows (nodes `meta.chunk_bounds(k)`),
/// without touching the rest of the store. This is the out-of-core
/// access path: resident memory is one chunk, whatever the graph size.
pub fn read_chunk_rows(
    dir: &Path,
    meta: &GraphStoreMeta,
    k: usize,
) -> Result<Vec<Vec<NodeId>>, StoreError> {
    let (lo, hi) = meta.chunk_bounds(k);
    let text = std::fs::read_to_string(chunk_path(dir, k))?;
    let mut rows = Vec::with_capacity(hi - lo);
    for line in text.lines() {
        let mut row = Vec::new();
        for tok in line.split_ascii_whitespace() {
            let v: NodeId = tok
                .parse()
                .map_err(|_| StoreError::Corrupt(format!("bad node id {tok:?} in chunk {k}")))?;
            row.push(v);
        }
        rows.push(row);
    }
    if rows.len() != hi - lo {
        return Err(StoreError::Corrupt(format!(
            "chunk {k} holds {} rows, expected {}",
            rows.len(),
            hi - lo
        )));
    }
    Ok(rows)
}

/// Reassembles the full graph and verifies it against the manifest.
///
/// Every `u < v` pair from the chunk rows is replayed through
/// [`from_edge_stream`] — which re-validates endpoints, row order, and
/// recomputes the Zobrist hash from scratch — and the result must match
/// the manifest's edge count and hash exactly. A store written by
/// [`write_chunked`] therefore round-trips byte-for-byte (pinned by
/// proptest), and any mutation of the files fails the read.
pub fn read_chunked(dir: &Path) -> Result<CsrGraph32, StoreError> {
    let meta = read_meta(dir)?;
    // One pass over the chunks collects the upper-triangle edges (in
    // row-major order — row-monotone for the cursor-fill builder: node
    // u's smaller neighbours arrive while scanning their rows, then its
    // larger ones from its own row, all ascending) and the raw column
    // array for post-build verification.
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(meta.num_edges);
    let mut stored_cols: Vec<NodeId> = Vec::with_capacity(2 * meta.num_edges);
    for k in 0..meta.num_chunks {
        let (lo, _) = meta.chunk_bounds(k);
        for (i, row) in read_chunk_rows(dir, &meta, k)?.iter().enumerate() {
            let u = (lo + i) as NodeId;
            for &v in row.iter().filter(|&&v| v > u) {
                edges.push((u, v));
            }
            stored_cols.extend_from_slice(row);
        }
    }
    if edges.len() != meta.num_edges {
        return Err(StoreError::Corrupt(format!(
            "store holds {} upper-triangle edges, manifest says {}",
            edges.len(),
            meta.num_edges
        )));
    }
    let g = from_edge_stream(meta.num_nodes, || edges.iter().copied())?;
    // The rebuilt CSR's column array is derived from the upper-triangle
    // edges alone; equality with the stored rows proves the store was
    // symmetric and per-row sorted, i.e. exactly what write_chunked
    // emits.
    if g.cols() != stored_cols.as_slice() {
        return Err(StoreError::Corrupt(
            "stored rows are not the symmetric closure of their upper-triangle edges".to_string(),
        ));
    }
    if g.edge_hash() != meta.edge_hash {
        return Err(StoreError::Corrupt(format!(
            "edge hash {:016x} does not match manifest {:016x}",
            g.edge_hash(),
            meta.edge_hash
        )));
    }
    Ok(g)
}

/// Folds a graph statistic chunk-by-chunk without assembling the CSR:
/// returns `(max_degree, sum_of_degrees, hash_of_upper_edges)`. Used by
/// `large_bench` to demonstrate — and test — that the store supports
/// out-of-core consumers whose answers match the in-memory graph.
pub fn fold_degree_stats(dir: &Path) -> Result<(usize, usize, u64), StoreError> {
    let meta = read_meta(dir)?;
    let (mut max_deg, mut deg_sum, mut hash) = (0usize, 0usize, 0u64);
    for k in 0..meta.num_chunks {
        let (lo, _) = meta.chunk_bounds(k);
        for (i, row) in read_chunk_rows(dir, &meta, k)?.iter().enumerate() {
            let u = (lo + i) as NodeId;
            max_deg = max_deg.max(row.len());
            deg_sum += row.len();
            for &v in row.iter().filter(|&&v| v > u) {
                hash ^= zobrist::edge_key(u, v);
            }
        }
    }
    Ok((max_deg, deg_sum, hash))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_graph::{generators, CsrGraph};

    fn temp_store(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ba_graphstore_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let dir = temp_store("roundtrip");
        let wide = CsrGraph::from(&generators::barabasi_albert(700, 4, 19));
        let narrow = CsrGraph32::from_csr(&wide).unwrap();
        let meta = write_chunked(&dir, &narrow, 128).unwrap();
        assert_eq!(meta.num_chunks, 6);
        assert_eq!(read_meta(&dir).unwrap(), meta);
        let back = read_chunked(&dir).unwrap();
        assert_eq!(back, narrow, "store round-trip changed the CSR");
        assert_eq!(back.promote(), wide);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chunked_fold_matches_in_memory_stats() {
        let dir = temp_store("fold");
        let g = CsrGraph32::from_view(&generators::erdos_renyi(400, 0.03, 5)).unwrap();
        write_chunked(&dir, &g, 37).unwrap();
        let (max_deg, deg_sum, hash) = fold_degree_stats(&dir).unwrap();
        let expect_max = (0..400).map(|u| g.degree(u)).max().unwrap();
        assert_eq!(max_deg, expect_max);
        assert_eq!(deg_sum, 2 * g.num_edges());
        assert_eq!(hash, g.edge_hash());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_store_fails_loudly() {
        let dir = temp_store("tamper");
        let g = CsrGraph32::from_view(&generators::barabasi_albert(120, 3, 2)).unwrap();
        let meta = write_chunked(&dir, &g, 50).unwrap();
        // Flip one neighbour id in the middle chunk.
        let path = chunk_path(&dir, 1);
        let text = std::fs::read_to_string(&path).unwrap();
        let tampered = text.replacen(' ', " 9 ", 1);
        std::fs::write(&path, tampered).unwrap();
        assert!(
            read_chunked(&dir).is_err(),
            "tampered chunk passed verification"
        );
        // Truncated chunk: row count mismatch.
        std::fs::write(&path, "").unwrap();
        match read_chunked(&dir) {
            Err(StoreError::Corrupt(msg)) => assert!(msg.contains("rows"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // Bad manifest hash.
        let mut bad = meta.clone();
        bad.edge_hash ^= 1;
        write_atomic(&manifest_path(&dir), &bad.to_json()).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_and_single_chunk_stores() {
        let dir = temp_store("empty");
        let g = CsrGraph32::from_view(&ba_graph::Graph::new(0)).unwrap();
        let meta = write_chunked(&dir, &g, 1000).unwrap();
        assert_eq!(meta.num_chunks, 0);
        assert_eq!(read_chunked(&dir).unwrap(), g);
        let one = CsrGraph32::from_view(&generators::erdos_renyi(30, 0.2, 1)).unwrap();
        let meta = write_chunked(&dir, &one, 1000).unwrap();
        assert_eq!(meta.num_chunks, 1);
        assert_eq!(read_chunked(&dir).unwrap(), one);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
