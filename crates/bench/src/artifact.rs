//! Durable experiment artifacts: per-cell row files committed by atomic
//! rename, plus a JSON manifest recording which cells completed.
//!
//! The orchestrator ([`crate::runner`]) writes each finished cell's
//! records to `<out>/.cells/<experiment>/cell_NNNN.rows` via a temp
//! file followed by `rename`, then updates `manifest.json` the same
//! way. A crash therefore never leaves a half-written cell visible, and
//! `--resume` replays only the missing cells. The manifest carries a
//! config fingerprint (seed / samples / profile / cell count); a
//! mismatch invalidates the whole store so stale cells can never leak
//! into a differently-configured run.
//!
//! Record payloads are opaque experiment-defined lines. Floating-point
//! values inside them should use the exact bit-level codec
//! ([`enc_f64`] / [`dec_f64`]) so a resumed run merges byte-identical
//! artifacts to a fresh one.

use std::collections::BTreeSet;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Exact, locale-free `f64` encoding: the IEEE-754 bit pattern in hex.
/// `dec_f64(&enc_f64(x)) == Some(x)` for every value including NaNs.
pub fn enc_f64(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Inverse of [`enc_f64`].
pub fn dec_f64(s: &str) -> Option<f64> {
    u64::from_str_radix(s.trim(), 16).ok().map(f64::from_bits)
}

/// Encodes a curve as `;`-joined exact floats.
pub fn enc_curve(curve: &[f64]) -> String {
    curve
        .iter()
        .map(|&x| enc_f64(x))
        .collect::<Vec<_>>()
        .join(";")
}

/// Inverse of [`enc_curve`]. Empty string decodes to an empty curve.
pub fn dec_curve(s: &str) -> Option<Vec<f64>> {
    if s.is_empty() {
        return Some(Vec::new());
    }
    s.split(';').map(dec_f64).collect()
}

/// Writes `contents` to `path` atomically: temp file in the same
/// directory, flush, then rename over the destination.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// The per-experiment cell artifact directory.
#[derive(Debug, Clone)]
pub struct CellStore {
    dir: PathBuf,
}

impl CellStore {
    /// Opens (creating on demand) `<out_dir>/.cells/<experiment>`.
    pub fn open(out_dir: &Path, experiment: &str) -> io::Result<Self> {
        let dir = out_dir.join(".cells").join(experiment);
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the manifest file.
    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest.json")
    }

    /// Path of a cell's committed row file.
    pub fn cell_path(&self, cell: usize) -> PathBuf {
        self.dir.join(format!("cell_{cell:04}.rows"))
    }

    /// Commits a cell's rows atomically. Rows must be non-empty and
    /// newline-free (`\n` is the record separator and an empty row
    /// would be dropped by the reader) — enforced here, in release
    /// builds too, so an ill-formed row can never silently break the
    /// resume byte-identity contract.
    pub fn write_cell(&self, cell: usize, rows: &[String]) -> io::Result<()> {
        assert!(
            rows.iter().all(|r| !r.is_empty() && !r.contains('\n')),
            "cell rows must be non-empty and newline-free"
        );
        let mut buf = String::new();
        for row in rows {
            buf.push_str(row);
            buf.push('\n');
        }
        write_atomic(&self.cell_path(cell), &buf)
    }

    /// Reads a committed cell's rows; `None` if the file is absent.
    pub fn read_cell(&self, cell: usize) -> Option<Vec<String>> {
        let text = std::fs::read_to_string(self.cell_path(cell)).ok()?;
        Some(text.lines().map(str::to_string).collect())
    }

    /// Deletes every committed cell and the manifest (fresh-run reset).
    pub fn clear(&self) -> io::Result<()> {
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.is_file() {
                std::fs::remove_file(path)?;
            }
        }
        Ok(())
    }
}

/// Completion record for one experiment run: which cells are committed,
/// under which configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Experiment name (sanity cross-check against the store path).
    pub experiment: String,
    /// Run-configuration fingerprint; resume requires an exact match.
    pub fingerprint: String,
    /// Total cells the experiment decomposes into.
    pub num_cells: usize,
    /// Cells whose row files are committed.
    pub completed: BTreeSet<usize>,
}

impl Manifest {
    /// A fresh manifest with no completed cells.
    pub fn new(experiment: &str, fingerprint: &str, num_cells: usize) -> Self {
        Self {
            experiment: experiment.to_string(),
            fingerprint: fingerprint.to_string(),
            num_cells,
            completed: BTreeSet::new(),
        }
    }

    /// Serialises to JSON (the only JSON this workspace emits, so it is
    /// hand-rolled rather than pulling in a serde_json dependency the
    /// offline build cannot fetch).
    pub fn to_json(&self) -> String {
        let completed: Vec<String> = self.completed.iter().map(|c| c.to_string()).collect();
        format!(
            "{{\"experiment\":\"{}\",\"fingerprint\":\"{}\",\"num_cells\":{},\"completed\":[{}]}}\n",
            escape(&self.experiment),
            escape(&self.fingerprint),
            self.num_cells,
            completed.join(",")
        )
    }

    /// Parses the JSON emitted by [`Manifest::to_json`]. Returns `None`
    /// on any malformed input (the caller then falls back to a fresh
    /// run — a corrupt manifest must never poison a resume).
    pub fn from_json(text: &str) -> Option<Self> {
        let experiment = json_str_field(text, "experiment")?;
        let fingerprint = json_str_field(text, "fingerprint")?;
        let num_cells = json_usize_field(text, "num_cells")?;
        let completed = json_usize_array(text, "completed")?;
        Some(Self {
            experiment,
            fingerprint,
            num_cells,
            completed,
        })
    }

    /// Loads a manifest from disk; `None` if absent or malformed.
    pub fn load(path: &Path) -> Option<Self> {
        Self::from_json(&std::fs::read_to_string(path).ok()?)
    }

    /// Saves the manifest atomically.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        write_atomic(path, &self.to_json())
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn unescape(s: &str) -> String {
    s.replace("\\\"", "\"").replace("\\\\", "\\")
}

/// Extracts `"key":"value"` from a flat JSON object (no nested quotes
/// beyond the escapes [`escape`] produces). Shared with the
/// [`crate::graphstore`] manifest, which reuses this codec.
pub(crate) fn json_str_field(text: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = text.find(&pat)? + pat.len();
    let rest = &text[start..];
    let mut end = 0;
    let bytes = rest.as_bytes();
    while end < bytes.len() {
        match bytes[end] {
            b'\\' => end += 2,
            b'"' => return Some(unescape(&rest[..end])),
            _ => end += 1,
        }
    }
    None
}

pub(crate) fn json_usize_field(text: &str, key: &str) -> Option<usize> {
    let pat = format!("\"{key}\":");
    let start = text.find(&pat)? + pat.len();
    let digits: String = text[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

fn json_usize_array(text: &str, key: &str) -> Option<BTreeSet<usize>> {
    let pat = format!("\"{key}\":[");
    let start = text.find(&pat)? + pat.len();
    let end = text[start..].find(']')? + start;
    let body = text[start..end].trim();
    if body.is_empty() {
        return Some(BTreeSet::new());
    }
    body.split(',').map(|s| s.trim().parse().ok()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_codec_is_exact() {
        for x in [
            0.0,
            -0.0,
            1.5,
            -3.25e-17,
            f64::NAN,
            f64::INFINITY,
            f64::MIN_POSITIVE,
            std::f64::consts::PI,
        ] {
            let back = dec_f64(&enc_f64(x)).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
        assert_eq!(dec_f64("zz"), None);
    }

    #[test]
    fn curve_codec_roundtrip() {
        let curve = vec![0.0, 0.1 + 0.2, -7.5e300];
        assert_eq!(dec_curve(&enc_curve(&curve)).unwrap(), curve);
        assert_eq!(dec_curve("").unwrap(), Vec::<f64>::new());
        assert_eq!(dec_curve("bogus"), None);
    }

    #[test]
    fn manifest_json_roundtrip() {
        let mut m = Manifest::new("fig4", "seed=7,samples=3,paper=false,cells=24", 24);
        m.completed.extend([0, 3, 17]);
        let parsed = Manifest::from_json(&m.to_json()).unwrap();
        assert_eq!(parsed, m);
        // Empty completed set too.
        let empty = Manifest::new("x\"y", "fp", 1);
        assert_eq!(Manifest::from_json(&empty.to_json()).unwrap(), empty);
        // Garbage is rejected, not misparsed.
        assert_eq!(Manifest::from_json("{nonsense"), None);
    }

    #[test]
    fn cell_store_commit_and_reload() {
        let dir = std::env::temp_dir().join("ba_artifact_test");
        let _ = std::fs::remove_dir_all(&dir);
        let store = CellStore::open(&dir, "unit").unwrap();
        assert_eq!(store.read_cell(0), None);
        store
            .write_cell(0, &["a,1".to_string(), "b,2".to_string()])
            .unwrap();
        assert_eq!(store.read_cell(0).unwrap(), vec!["a,1", "b,2"]);
        // Ill-formed rows are rejected loudly instead of corrupting the
        // resume round-trip.
        for bad in ["", "x\ny"] {
            let result = std::panic::catch_unwind(|| store.write_cell(1, &[bad.to_string()]));
            assert!(result.is_err(), "row {bad:?} accepted");
        }
        // No stray temp file survives the commit.
        assert!(!store.cell_path(0).with_extension("tmp").exists());
        store.clear().unwrap();
        assert_eq!(store.read_cell(0), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
