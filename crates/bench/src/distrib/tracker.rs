//! The tracker: the coordinator of a distributed suite run.
//!
//! A [`Tracker`] binds a TCP listener over a `SuitePlan` and hands
//! out cell leases to connecting peers (one thread per connection,
//! the same shape as `ba-serve`'s front door). All distribution state
//! lives in the pure [`LeaseTable`]; the tracker adds only wiring:
//!
//! * **Handshake gating** — a peer whose locally derived
//!   [`crate::runner::SuiteLayout`] fingerprint differs is rejected before it can
//!   compute a single cell for the wrong configuration.
//! * **Crash recovery via the artifact store** — accepted rows are
//!   committed through `SuitePlan::commit` (row file before manifest,
//!   both atomic renames), so a tracker restarted with `--resume`
//!   adopts every landed cell, marks it completed in the lease table,
//!   and re-leases only the rest. A re-leased cell whose row already
//!   landed comes back as `Duplicate` and is never recomputed or
//!   double-merged.
//! * **Failure detection** — a severed peer connection releases its
//!   leases immediately; a silent stall is caught by the lease timeout
//!   (peers heartbeat at `lease_ms / 3` to stay ahead of it).
//! * **Deterministic merge** — completed rows land in the same
//!   cell-index-ordered merge the in-process runner uses, so the final
//!   CSVs are byte-identical to a single-machine `--threads 1` run at
//!   any fleet size, any interleaving, and any number of mid-run
//!   crashes.

use crate::distrib::lease::{ClaimOutcome, CompleteOutcome, LeaseTable};
use crate::distrib::proto::{decode_peer, encode_tracker, PeerMsg, TrackerMsg};
use crate::runner::{Experiment, SuitePlan};
use crate::ExpOptions;
use ba_net::frame::{read_frame, write_frame};
use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Tracker tuning knobs.
#[derive(Debug, Clone)]
pub struct TrackerConfig {
    /// Lease duration in milliseconds: a worker silent for this long
    /// loses its cell to re-leasing.
    pub lease_ms: u64,
    /// Back-off a peer is told to sleep when nothing is pending.
    pub poll_ms: u64,
    /// Abort the run when cells are pending but no worker has been
    /// connected for this long (guards CI against a dead fleet).
    /// `0` disables the watchdog.
    pub idle_abort_ms: u64,
    /// Fault injection: the named peer is reported through the
    /// first-lease hook (see [`Tracker::serve_with_hook`]) immediately
    /// after its first lease frame is written — the CLI uses this to
    /// kill a spawned worker process deterministically mid-cell.
    pub kill_peer: Option<String>,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        Self {
            lease_ms: 10_000,
            poll_ms: 30,
            idle_abort_ms: 120_000,
            kill_peer: None,
        }
    }
}

/// What happened during a distributed run — the counters the
/// fault-injection tests assert on.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TrackerReport {
    /// Cells adopted from the artifact store before serving.
    pub adopted: usize,
    /// Cells whose rows were accepted from peers this run.
    pub computed: u64,
    /// Leases handed out (≥ `computed` when anything was re-leased).
    pub leases: u64,
    /// Leases re-pended because a peer connection dropped.
    pub releases: u64,
    /// Leases re-pended because their deadline passed.
    pub expirations: u64,
    /// Completions for already-completed cells (acknowledged, dropped).
    pub duplicates: u64,
    /// Completions under a superseded epoch (dropped).
    pub stales: u64,
    /// Peers refused at handshake (fingerprint mismatch).
    pub rejected: u64,
    /// Whether every experiment finalized (no cell failures).
    pub all_ok: bool,
}

/// Called with the peer's name right after its first lease frame is
/// written — the deterministic mid-cell point for fault injection.
pub type FirstLeaseHook = Box<dyn Fn(&str) + Send + Sync>;

/// A bound, not-yet-serving tracker. Binding first lets the caller
/// learn the resolved port (e.g. `127.0.0.1:0`) before spawning the
/// peers that must connect to it.
pub struct Tracker {
    listener: TcpListener,
    local_addr: SocketAddr,
}

/// Everything the connection threads share.
struct Shared<'a, 'b> {
    plan: &'a SuitePlan,
    exps: &'a [&'b dyn Experiment],
    table: Mutex<LeaseTable>,
    cfg: &'a TrackerConfig,
    hook: Option<&'a FirstLeaseHook>,
    local_addr: SocketAddr,
    t0: Instant,
    stop: AtomicBool,
    aborted: AtomicBool,
    next_worker: AtomicU64,
    active_workers: AtomicU64,
    ever_connected: AtomicBool,
    computed: AtomicU64,
    leases: AtomicU64,
    releases: AtomicU64,
    expirations: AtomicU64,
    duplicates: AtomicU64,
    stales: AtomicU64,
    rejected: AtomicU64,
}

impl Shared<'_, '_> {
    /// Milliseconds since serving began — the lease table's clock.
    fn now_ms(&self) -> u64 {
        self.t0.elapsed().as_millis() as u64
    }

    /// Signals shutdown and wakes the accept loop (which blocks in
    /// `accept`) with a throwaway self-connection.
    fn request_stop(&self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.local_addr);
        }
    }
}

impl Tracker {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port).
    pub fn bind(addr: &str) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Self {
            listener,
            local_addr,
        })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serves the suite to completion and finalizes the merge.
    pub fn serve(
        self,
        exps: &[&dyn Experiment],
        opts: &ExpOptions,
        cfg: &TrackerConfig,
    ) -> io::Result<TrackerReport> {
        self.serve_with_hook(exps, opts, cfg, None)
    }

    /// [`Tracker::serve`] with a fault-injection hook: when
    /// `cfg.kill_peer` names a peer, `hook` is called with that name
    /// right after its first lease frame is written (the peer is then
    /// guaranteed to be holding a live lease, so killing it exercises
    /// the re-lease path deterministically).
    pub fn serve_with_hook(
        self,
        exps: &[&dyn Experiment],
        opts: &ExpOptions,
        cfg: &TrackerConfig,
        hook: Option<FirstLeaseHook>,
    ) -> io::Result<TrackerReport> {
        let plan = SuitePlan::build(exps, opts, opts.resume)?;
        let total = plan.layout.total;
        let adopted = total - plan.pending.len();

        let mut table = LeaseTable::new(total, cfg.lease_ms);
        let mut is_pending = vec![false; total];
        for &(ei, cell) in &plan.pending {
            is_pending[plan.layout.offsets[ei] + cell] = true;
        }
        for (flat, pending) in is_pending.iter().enumerate() {
            if !pending {
                table.mark_completed(flat);
            }
        }

        // Readiness line: scripts and tests wait for it (the listener
        // is already bound, so a peer racing this line merely queues in
        // the accept backlog).
        eprintln!(
            "[tracker] listening on {} ({} cell(s): {} to lease, {adopted} adopted)",
            self.local_addr,
            total,
            plan.pending.len()
        );

        let shared = Shared {
            plan: &plan,
            exps,
            table: Mutex::new(table),
            cfg,
            hook: hook.as_ref(),
            local_addr: self.local_addr,
            t0: Instant::now(),
            stop: AtomicBool::new(false),
            aborted: AtomicBool::new(false),
            next_worker: AtomicU64::new(1),
            active_workers: AtomicU64::new(0),
            ever_connected: AtomicBool::new(false),
            computed: AtomicU64::new(0),
            leases: AtomicU64::new(0),
            releases: AtomicU64::new(0),
            expirations: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
            stales: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        };

        std::thread::scope(|scope| {
            // Expiry / watchdog thread: re-pends timed-out leases and
            // stops the run when every cell completed (the completing
            // connection also stops it — this is the backstop for a
            // fully-adopted resume with nothing to lease).
            scope.spawn(|| {
                let tick = (cfg.lease_ms / 4).clamp(5, 250);
                let mut idle_since = Instant::now();
                loop {
                    if shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(tick));
                    let now = shared.now_ms();
                    let (expired, done) = {
                        // ba-lint: allow(panic-path) -- a poisoned lock means another thread already panicked; propagating that panic is the correct escalation
                        let mut table = shared.table.lock().expect("lease table");
                        (table.expire(now), table.all_done())
                    };
                    for cell in &expired {
                        eprintln!("[tracker] lease on cell {cell} expired; re-leasing");
                    }
                    shared
                        .expirations
                        .fetch_add(expired.len() as u64, Ordering::Relaxed);
                    if done {
                        shared.request_stop();
                        break;
                    }
                    // Dead-fleet watchdog: pending cells but no worker.
                    if shared.active_workers.load(Ordering::SeqCst) > 0 {
                        idle_since = Instant::now();
                    } else if cfg.idle_abort_ms > 0
                        && idle_since.elapsed().as_millis() as u64 > cfg.idle_abort_ms
                    {
                        eprintln!(
                            "[tracker] no worker connected for {}ms with cells pending; aborting",
                            cfg.idle_abort_ms
                        );
                        shared.aborted.store(true, Ordering::SeqCst);
                        shared.request_stop();
                        break;
                    }
                }
            });

            // Accept loop, on the scope's own thread.
            let mut conns: Vec<(std::thread::ScopedJoinHandle<'_, ()>, TcpStream)> = Vec::new();
            for stream in self.listener.incoming() {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let Ok(socket) = stream.try_clone() else {
                    continue;
                };
                let shared = &shared;
                let handle = scope.spawn(move || {
                    let socket = stream.try_clone().ok();
                    serve_peer(stream, shared);
                    // The accept loop holds another clone, so dropping
                    // `stream` alone would not send the FIN.
                    if let Some(socket) = socket {
                        let _ = socket.shutdown(Shutdown::Both);
                    }
                });
                conns.push((handle, socket));
                conns.retain(|(h, _)| !h.is_finished());
            }
            // Grace period: peers that just received `Done` (or are
            // about to claim and receive it) disconnect on their own;
            // only then sever whatever is left (a hung peer's thread
            // would otherwise block the scope join forever).
            let grace = Instant::now();
            while grace.elapsed().as_millis() < 2_000 && conns.iter().any(|(h, _)| !h.is_finished())
            {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            for (_, socket) in &conns {
                let _ = socket.shutdown(Shutdown::Both);
            }
        });

        if shared.aborted.load(Ordering::SeqCst) {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "tracker aborted: cells pending but no worker connected",
            ));
        }

        let all_ok = plan
            .merge_and_finalize(exps, opts)
            .map_err(io::Error::other)?;
        let report = TrackerReport {
            adopted,
            computed: shared.computed.load(Ordering::Relaxed),
            leases: shared.leases.load(Ordering::Relaxed),
            releases: shared.releases.load(Ordering::Relaxed),
            expirations: shared.expirations.load(Ordering::Relaxed),
            duplicates: shared.duplicates.load(Ordering::Relaxed),
            stales: shared.stales.load(Ordering::Relaxed),
            rejected: shared.rejected.load(Ordering::Relaxed),
            all_ok,
        };
        eprintln!(
            "[tracker] run complete: {} computed, {adopted} adopted, \
             {} re-leased ({} dropped conns, {} timeouts), {} duplicate(s), {} stale",
            report.computed,
            report.releases + report.expirations,
            report.releases,
            report.expirations,
            report.duplicates,
            report.stales
        );
        Ok(report)
    }
}

/// Runs one peer connection to completion. All exits release the
/// worker's outstanding leases; errors are logged, not propagated — a
/// dying peer is an expected event, and its cells simply re-lease.
fn serve_peer(stream: TcpStream, shared: &Shared<'_, '_>) {
    stream.set_nodelay(true).ok();
    let Ok(clone) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(clone);
    let mut writer = BufWriter::new(stream);

    // Handshake: Hello carrying a matching fingerprint, or nothing.
    let (name, worker) = match read_frame(&mut reader) {
        Ok(Some(payload)) => match decode_peer(&payload) {
            Ok(PeerMsg::Hello { name, fingerprint }) => {
                if fingerprint != shared.plan.layout.fingerprint {
                    shared.rejected.fetch_add(1, Ordering::Relaxed);
                    eprintln!("[tracker] rejected {name}: suite fingerprint mismatch");
                    let reject = TrackerMsg::Reject {
                        reason: "suite fingerprint mismatch".into(),
                    };
                    let _ = write_frame(&mut writer, &encode_tracker(&reject));
                    return;
                }
                let worker = shared.next_worker.fetch_add(1, Ordering::Relaxed);
                let welcome = TrackerMsg::Welcome {
                    worker,
                    // Three heartbeats per lease window: one lost frame
                    // never expires a live worker.
                    heartbeat_ms: (shared.cfg.lease_ms / 3).max(1),
                };
                if write_frame(&mut writer, &encode_tracker(&welcome)).is_err() {
                    return;
                }
                eprintln!("[tracker] {name} connected as worker {worker}");
                (name, worker)
            }
            Ok(_) | Err(_) => return, // not a handshake; drop silently
        },
        // The shutdown wake-up connection and port scans land here.
        Ok(None) | Err(_) => return,
    };

    shared.ever_connected.store(true, Ordering::SeqCst);
    shared.active_workers.fetch_add(1, Ordering::SeqCst);
    let mut first_lease = true;
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(payload)) => payload,
            Ok(None) => {
                // Clean close: the peer is done (post-`Done`) or chose
                // to leave; either way its leases go back in the pool.
                release(shared, worker, &name);
                break;
            }
            Err(e) => {
                eprintln!("[tracker] {name} (worker {worker}) dropped mid-frame: {e}");
                release(shared, worker, &name);
                break;
            }
        };
        let msg = match decode_peer(&payload) {
            Ok(msg) => msg,
            Err(e) => {
                eprintln!("[tracker] {name} sent a malformed message ({e}); disconnecting");
                release(shared, worker, &name);
                break;
            }
        };
        let reply = match msg {
            PeerMsg::Claim => {
                let outcome = {
                    // ba-lint: allow(panic-path) -- a poisoned lock means another thread already panicked; propagating that panic is the correct escalation
                    let mut table = shared.table.lock().expect("lease table");
                    table.claim(worker, shared.now_ms())
                };
                match outcome {
                    ClaimOutcome::Lease { cell, epoch } => {
                        shared.leases.fetch_add(1, Ordering::Relaxed);
                        let lease = TrackerMsg::Lease {
                            cell: cell as u64,
                            epoch,
                        };
                        if write_frame(&mut writer, &encode_tracker(&lease)).is_err() {
                            release(shared, worker, &name);
                            break;
                        }
                        // Fault injection: the lease frame is on the
                        // wire, so the peer dies provably mid-cell.
                        if first_lease {
                            first_lease = false;
                            if shared.cfg.kill_peer.as_deref() == Some(name.as_str()) {
                                if let Some(hook) = shared.hook {
                                    eprintln!(
                                        "[tracker] injected kill of {name} after first lease \
                                         (cell {cell})"
                                    );
                                    hook(&name);
                                }
                            }
                        }
                        continue;
                    }
                    ClaimOutcome::Wait => TrackerMsg::Wait {
                        poll_ms: shared.cfg.poll_ms,
                    },
                    ClaimOutcome::Done => {
                        let _ = write_frame(&mut writer, &encode_tracker(&TrackerMsg::Done));
                        release(shared, worker, &name);
                        break;
                    }
                }
            }
            PeerMsg::Complete { cell, epoch, rows } => {
                let status = settle(shared, cell, epoch);
                if status == CompleteOutcome::Accepted {
                    accept_rows(shared, cell as usize, Ok(rows), &name);
                }
                TrackerMsg::Ack { status }
            }
            PeerMsg::Failed {
                cell,
                epoch,
                reason,
            } => {
                let status = settle(shared, cell, epoch);
                if status == CompleteOutcome::Accepted {
                    accept_rows(shared, cell as usize, Err(reason), &name);
                }
                TrackerMsg::Ack { status }
            }
            PeerMsg::Heartbeat { cell, epoch } => {
                // ba-lint: allow(panic-path) -- a poisoned lock means another thread already panicked; propagating that panic is the correct escalation
                let mut table = shared.table.lock().expect("lease table");
                table.heartbeat(cell as usize, epoch, shared.now_ms());
                continue; // fire-and-forget: no reply frame
            }
            PeerMsg::Hello { .. } => {
                eprintln!("[tracker] {name} re-sent Hello mid-session; disconnecting");
                release(shared, worker, &name);
                break;
            }
        };
        if write_frame(&mut writer, &encode_tracker(&reply)).is_err() {
            release(shared, worker, &name);
            break;
        }
    }
    shared.active_workers.fetch_sub(1, Ordering::SeqCst);
}

/// Runs a completion/failure report through the lease table and bumps
/// the outcome counters.
fn settle(shared: &Shared<'_, '_>, cell: u64, epoch: u64) -> CompleteOutcome {
    let status = {
        // ba-lint: allow(panic-path) -- a poisoned lock means another thread already panicked; propagating that panic is the correct escalation
        let mut table = shared.table.lock().expect("lease table");
        table.complete(cell as usize, epoch)
    };
    match status {
        CompleteOutcome::Accepted => {}
        CompleteOutcome::Duplicate => {
            shared.duplicates.fetch_add(1, Ordering::Relaxed);
        }
        CompleteOutcome::Stale => {
            shared.stales.fetch_add(1, Ordering::Relaxed);
        }
    }
    status
}

/// Lands an accepted cell result: commit (rows) or experiment failure
/// (panic reason), progress line, and the all-done stop check.
fn accept_rows(
    shared: &Shared<'_, '_>,
    flat: usize,
    rows: Result<Vec<String>, String>,
    from: &str,
) {
    // Defensive against a buggy peer: an out-of-range flat index is
    // dropped with a warning instead of panicking the tracker.
    let Some((ei, cell)) = shared.plan.layout.split_flat(flat) else {
        eprintln!("warning: [tracker] {from} reported out-of-range cell {flat}; ignoring");
        return;
    };
    let exp = shared.exps[ei];
    let name = exp.name();
    match rows {
        // A commit failure is an unwritable artifact store: fail the
        // experiment (like a remote panic) instead of panicking the
        // tracker, so the other experiments still merge.
        Ok(rows) => match shared.plan.commit(ei, cell, rows) {
            Ok(()) => {
                let done = shared.computed.fetch_add(1, Ordering::Relaxed) + 1;
                eprintln!(
                    "[tracker {done}] {name} {} from {from}",
                    exp.cell_label(cell)
                );
            }
            Err(e) => {
                shared.plan.mark_failed(ei, cell);
                eprintln!(
                    "warning: [{name}] cell {} commit failed ({e}); \
                     {name} will not finalize",
                    exp.cell_label(cell)
                );
            }
        },
        Err(reason) => {
            shared.plan.mark_failed(ei, cell);
            eprintln!(
                "warning: [{name}] cell {} panicked on {from} ({reason}); \
                 {name} will not finalize",
                exp.cell_label(cell)
            );
        }
    }
    let done = {
        // ba-lint: allow(panic-path) -- a poisoned lock means another thread already panicked; propagating that panic is the correct escalation
        let table = shared.table.lock().expect("lease table");
        table.all_done()
    };
    if done {
        shared.request_stop();
    }
}

/// Re-pends every cell the worker still holds and logs the re-lease.
fn release(shared: &Shared<'_, '_>, worker: u64, name: &str) {
    let released = {
        // ba-lint: allow(panic-path) -- a poisoned lock means another thread already panicked; propagating that panic is the correct escalation
        let mut table = shared.table.lock().expect("lease table");
        table.release_worker(worker)
    };
    if !released.is_empty() {
        eprintln!(
            "[tracker] {name} (worker {worker}) released {} lease(s) {released:?}; re-leasing",
            released.len()
        );
        shared
            .releases
            .fetch_add(released.len() as u64, Ordering::Relaxed);
    }
}
