//! The tracker ↔ peer message protocol.
//!
//! Messages travel one per [`ba_net::frame`] frame, encoded with the
//! shared [`ba_net::wire`] primitives: a tag byte followed by the
//! variant's fields. Rows ride as the same newline-free record strings
//! the artifact store persists, so a row that crossed the wire merges
//! byte-identically to one computed in-process.
//!
//! The conversation: a peer opens with [`PeerMsg::Hello`] carrying the
//! suite fingerprint it derived locally; the tracker answers
//! [`TrackerMsg::Welcome`] (or [`TrackerMsg::Reject`] on mismatch —
//! a peer must never compute cells for a configuration it does not
//! have). Then the peer loops [`PeerMsg::Claim`] →
//! [`TrackerMsg::Lease`]/[`TrackerMsg::Wait`]/[`TrackerMsg::Done`],
//! reporting each cell with [`PeerMsg::Complete`] (or
//! [`PeerMsg::Failed`]) and receiving [`TrackerMsg::Ack`].
//! [`PeerMsg::Heartbeat`] frames are fire-and-forget — the tracker
//! sends no reply, so the peer's reply stream stays aligned with its
//! request stream even though heartbeats interleave from another
//! thread.

use crate::distrib::lease::CompleteOutcome;
use ba_net::wire::{WireDecodeError, WireReader, WireWriter};

/// Protocol decode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The payload violated the wire primitives.
    Wire(WireDecodeError),
    /// The leading tag byte named no known message.
    UnknownTag(u8),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Wire(e) => write!(f, "malformed message: {e}"),
            ProtoError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<WireDecodeError> for ProtoError {
    fn from(e: WireDecodeError) -> Self {
        ProtoError::Wire(e)
    }
}

/// Messages a peer sends to the tracker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeerMsg {
    /// Handshake: the peer's display name and its locally derived suite
    /// fingerprint.
    Hello {
        /// Display name for tracker logs (e.g. `peer-0`).
        name: String,
        /// [`crate::runner::SuiteLayout`] fingerprint.
        fingerprint: String,
    },
    /// Request the next cell lease.
    Claim,
    /// A finished cell's rows, under the lease's epoch.
    Complete {
        /// Flat suite-wide cell index.
        cell: u64,
        /// The epoch the lease was granted at.
        epoch: u64,
        /// The cell's record rows (newline-free).
        rows: Vec<String>,
    },
    /// The cell panicked on this peer; the tracker fails its experiment
    /// exactly as the in-process runner would.
    Failed {
        /// Flat suite-wide cell index.
        cell: u64,
        /// The epoch the lease was granted at.
        epoch: u64,
        /// The panic payload.
        reason: String,
    },
    /// Keep-alive for a long-running cell. No reply.
    Heartbeat {
        /// Flat suite-wide cell index.
        cell: u64,
        /// The epoch the lease was granted at.
        epoch: u64,
    },
}

const P_HELLO: u8 = 1;
const P_CLAIM: u8 = 2;
const P_COMPLETE: u8 = 3;
const P_FAILED: u8 = 4;
const P_HEARTBEAT: u8 = 5;

/// Encodes a peer message.
pub fn encode_peer(msg: &PeerMsg) -> Vec<u8> {
    let mut w = WireWriter::new();
    match msg {
        PeerMsg::Hello { name, fingerprint } => {
            w.put_u8(P_HELLO).put_str(name).put_str(fingerprint);
        }
        PeerMsg::Claim => {
            w.put_u8(P_CLAIM);
        }
        PeerMsg::Complete { cell, epoch, rows } => {
            w.put_u8(P_COMPLETE)
                .put_u64(*cell)
                .put_u64(*epoch)
                .put_str_list(rows);
        }
        PeerMsg::Failed {
            cell,
            epoch,
            reason,
        } => {
            w.put_u8(P_FAILED)
                .put_u64(*cell)
                .put_u64(*epoch)
                .put_str(reason);
        }
        PeerMsg::Heartbeat { cell, epoch } => {
            w.put_u8(P_HEARTBEAT).put_u64(*cell).put_u64(*epoch);
        }
    }
    w.finish()
}

/// Decodes a peer message, rejecting trailing bytes.
pub fn decode_peer(payload: &[u8]) -> Result<PeerMsg, ProtoError> {
    let mut r = WireReader::new(payload);
    let msg = match r.u8()? {
        P_HELLO => PeerMsg::Hello {
            name: r.str()?,
            fingerprint: r.str()?,
        },
        P_CLAIM => PeerMsg::Claim,
        P_COMPLETE => PeerMsg::Complete {
            cell: r.u64()?,
            epoch: r.u64()?,
            rows: r.str_list()?,
        },
        P_FAILED => PeerMsg::Failed {
            cell: r.u64()?,
            epoch: r.u64()?,
            reason: r.str()?,
        },
        P_HEARTBEAT => PeerMsg::Heartbeat {
            cell: r.u64()?,
            epoch: r.u64()?,
        },
        tag => return Err(ProtoError::UnknownTag(tag)),
    };
    r.finish()?;
    Ok(msg)
}

/// Messages the tracker sends to a peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrackerMsg {
    /// Handshake accepted: the peer's worker id and the heartbeat
    /// interval it must keep while holding a lease.
    Welcome {
        /// Tracker-assigned worker id.
        worker: u64,
        /// Heartbeat interval in milliseconds.
        heartbeat_ms: u64,
    },
    /// Handshake refused (fingerprint mismatch); the peer must exit.
    Reject {
        /// Human-readable refusal.
        reason: String,
    },
    /// A cell lease.
    Lease {
        /// Flat suite-wide cell index.
        cell: u64,
        /// The lease's epoch; the peer echoes it on completion.
        epoch: u64,
    },
    /// Nothing pending right now; poll again after `poll_ms`.
    Wait {
        /// Suggested back-off in milliseconds.
        poll_ms: u64,
    },
    /// Every cell is completed; the peer should close cleanly.
    Done,
    /// Receipt for a `Complete`/`Failed` report.
    Ack {
        /// What the lease table decided.
        status: CompleteOutcome,
    },
}

const T_WELCOME: u8 = 1;
const T_REJECT: u8 = 2;
const T_LEASE: u8 = 3;
const T_WAIT: u8 = 4;
const T_DONE: u8 = 5;
const T_ACK: u8 = 6;

const ACK_ACCEPTED: u8 = 0;
const ACK_DUPLICATE: u8 = 1;
const ACK_STALE: u8 = 2;

/// Encodes a tracker message.
pub fn encode_tracker(msg: &TrackerMsg) -> Vec<u8> {
    let mut w = WireWriter::new();
    match msg {
        TrackerMsg::Welcome {
            worker,
            heartbeat_ms,
        } => {
            w.put_u8(T_WELCOME).put_u64(*worker).put_u64(*heartbeat_ms);
        }
        TrackerMsg::Reject { reason } => {
            w.put_u8(T_REJECT).put_str(reason);
        }
        TrackerMsg::Lease { cell, epoch } => {
            w.put_u8(T_LEASE).put_u64(*cell).put_u64(*epoch);
        }
        TrackerMsg::Wait { poll_ms } => {
            w.put_u8(T_WAIT).put_u64(*poll_ms);
        }
        TrackerMsg::Done => {
            w.put_u8(T_DONE);
        }
        TrackerMsg::Ack { status } => {
            w.put_u8(T_ACK).put_u8(match status {
                CompleteOutcome::Accepted => ACK_ACCEPTED,
                CompleteOutcome::Duplicate => ACK_DUPLICATE,
                CompleteOutcome::Stale => ACK_STALE,
            });
        }
    }
    w.finish()
}

/// Decodes a tracker message, rejecting trailing bytes.
pub fn decode_tracker(payload: &[u8]) -> Result<TrackerMsg, ProtoError> {
    let mut r = WireReader::new(payload);
    let msg = match r.u8()? {
        T_WELCOME => TrackerMsg::Welcome {
            worker: r.u64()?,
            heartbeat_ms: r.u64()?,
        },
        T_REJECT => TrackerMsg::Reject { reason: r.str()? },
        T_LEASE => TrackerMsg::Lease {
            cell: r.u64()?,
            epoch: r.u64()?,
        },
        T_WAIT => TrackerMsg::Wait { poll_ms: r.u64()? },
        T_DONE => TrackerMsg::Done,
        T_ACK => TrackerMsg::Ack {
            status: match r.u8()? {
                ACK_ACCEPTED => CompleteOutcome::Accepted,
                ACK_DUPLICATE => CompleteOutcome::Duplicate,
                ACK_STALE => CompleteOutcome::Stale,
                tag => return Err(ProtoError::UnknownTag(tag)),
            },
        },
        tag => return Err(ProtoError::UnknownTag(tag)),
    };
    r.finish()?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peer_messages_roundtrip() {
        let msgs = [
            PeerMsg::Hello {
                name: "peer-0".into(),
                fingerprint: "seed=42|cfg=abc".into(),
            },
            PeerMsg::Claim,
            PeerMsg::Complete {
                cell: 7,
                epoch: 3,
                rows: vec!["meta,nodes=10".into(), "curve,0;1".into()],
            },
            PeerMsg::Failed {
                cell: 7,
                epoch: 3,
                reason: "deliberate test panic".into(),
            },
            PeerMsg::Heartbeat { cell: 7, epoch: 3 },
        ];
        for msg in &msgs {
            assert_eq!(&decode_peer(&encode_peer(msg)).unwrap(), msg);
        }
    }

    #[test]
    fn tracker_messages_roundtrip() {
        let msgs = [
            TrackerMsg::Welcome {
                worker: 2,
                heartbeat_ms: 500,
            },
            TrackerMsg::Reject {
                reason: "fingerprint mismatch".into(),
            },
            TrackerMsg::Lease { cell: 11, epoch: 4 },
            TrackerMsg::Wait { poll_ms: 50 },
            TrackerMsg::Done,
            TrackerMsg::Ack {
                status: CompleteOutcome::Accepted,
            },
            TrackerMsg::Ack {
                status: CompleteOutcome::Duplicate,
            },
            TrackerMsg::Ack {
                status: CompleteOutcome::Stale,
            },
        ];
        for msg in &msgs {
            assert_eq!(&decode_tracker(&encode_tracker(msg)).unwrap(), msg);
        }
    }

    #[test]
    fn unknown_tags_and_truncation_are_rejected() {
        assert_eq!(decode_peer(&[99]), Err(ProtoError::UnknownTag(99)));
        assert_eq!(decode_tracker(&[99]), Err(ProtoError::UnknownTag(99)));
        let bytes = encode_peer(&PeerMsg::Complete {
            cell: 1,
            epoch: 1,
            rows: vec!["row".into()],
        });
        for cut in 0..bytes.len() {
            assert!(decode_peer(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_peer(&PeerMsg::Claim);
        bytes.push(0);
        assert_eq!(
            decode_peer(&bytes),
            Err(ProtoError::Wire(WireDecodeError::Trailing(1)))
        );
    }
}
