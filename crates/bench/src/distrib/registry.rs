//! Suite registry: experiment suites by name.
//!
//! The tracker and every peer must construct the *same* experiment
//! objects from nothing but a name and the shared [`ExpOptions`] —
//! they are separate processes (possibly separate machines), so the
//! suite cannot be passed by reference. The fingerprint handshake then
//! verifies the constructions really did agree.

use crate::experiments::{
    Fig4Experiment, Fig5Experiment, Fig6Experiment, Table3Experiment, Table4Experiment,
};
use crate::runner::Experiment;
use crate::ExpOptions;

/// The registered suite names, for `--help` text and error messages.
pub const SUITE_NAMES: &[&str] = &["fig4", "fig5", "fig6", "table3", "table4", "all", "det"];

/// Builds the named experiment suite. `all` is the five-figure grid
/// `run_all` pools; `det` is the seconds-scale deterministic fig4
/// instance the determinism tests and the CI tracker/peer smoke use.
/// Returns `None` for unknown names.
pub fn suite_by_name(name: &str, opts: &ExpOptions) -> Option<Vec<Box<dyn Experiment>>> {
    Some(match name {
        "fig4" => vec![Box::new(Fig4Experiment::standard(opts))],
        "fig5" => vec![Box::new(Fig5Experiment::standard(opts))],
        "fig6" => vec![Box::new(Fig6Experiment::standard(opts))],
        "table3" => vec![Box::new(Table3Experiment::standard(opts))],
        "table4" => vec![Box::new(Table4Experiment::standard(opts))],
        "all" => vec![
            Box::new(Fig4Experiment::standard(opts)),
            Box::new(Fig5Experiment::standard(opts)),
            Box::new(Fig6Experiment::standard(opts)),
            Box::new(Table3Experiment::standard(opts)),
            Box::new(Table4Experiment::standard(opts)),
        ],
        "det" => vec![Box::new(Fig4Experiment::tiny("det"))],
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_name_builds() {
        let opts = ExpOptions::default();
        for name in SUITE_NAMES {
            let suite = suite_by_name(name, &opts).unwrap_or_else(|| panic!("{name} missing"));
            assert!(!suite.is_empty(), "{name} built an empty suite");
        }
        assert!(suite_by_name("fig99", &opts).is_none());
    }

    #[test]
    fn suite_construction_is_fingerprint_stable() {
        // Tracker and peer construct independently; their layouts must
        // agree or the handshake would reject every worker.
        use crate::runner::SuiteLayout;
        let opts = ExpOptions::default();
        for name in SUITE_NAMES {
            let a = suite_by_name(name, &opts).unwrap();
            let b = suite_by_name(name, &opts).unwrap();
            let refs_a: Vec<&dyn Experiment> = a.iter().map(|e| e.as_ref()).collect();
            let refs_b: Vec<&dyn Experiment> = b.iter().map(|e| e.as_ref()).collect();
            assert_eq!(
                SuiteLayout::build(&refs_a, &opts).fingerprint,
                SuiteLayout::build(&refs_b, &opts).fingerprint,
                "{name} fingerprint unstable"
            );
        }
    }
}
