//! The peer: a worker process (or thread) in a distributed suite run.
//!
//! [`run_peer`] connects to a tracker, proves it is configured for the
//! same suite (the [`SuiteLayout`] fingerprint handshake), then loops
//! claim → compute → report until the tracker says `Done`. Cells run
//! through the exact same `run_cell_guarded` path as the in-process
//! pool — same derived seed streams, same memoized per-substrate
//! [`AttackSession`](ba_core::AttackSession) reuse — so a row computed
//! here is byte-identical to one computed anywhere else.
//!
//! Substrates build **lazily**: a peer cannot know which cells the
//! tracker will lease it, so its [`SubstratePool`] builds each dataset
//! on first touch. Builds are pure functions of `(spec, seed)`, making
//! lazy peers and the runner's eager pre-build interchangeable.
//!
//! While a cell is running, a background thread heartbeats the lease at
//! the tracker-assigned interval. The heartbeat shares the frame writer
//! behind a mutex with the claim loop, and heartbeat frames get no
//! reply — so the reply stream the claim loop reads stays perfectly
//! aligned with the requests it writes.

use crate::distrib::proto::{decode_tracker, encode_peer, PeerMsg, ProtoError, TrackerMsg};
use crate::runner::{
    run_cell_guarded, CellEnv, Experiment, SessionCache, SubstratePool, SuiteLayout,
};
use crate::ExpOptions;
use ba_net::frame::{read_frame, write_frame, FrameError};
use std::io::{self, BufReader, BufWriter};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Peer identity and connection settings.
#[derive(Debug, Clone)]
pub struct PeerConfig {
    /// Tracker address (`host:port`).
    pub addr: String,
    /// Display name sent in the handshake (shows up in tracker logs
    /// and selects this peer for `--kill-peer` fault injection).
    pub name: String,
    /// How long to keep retrying the initial connect — peers routinely
    /// start before the tracker's listener is up.
    pub connect_timeout_ms: u64,
}

impl PeerConfig {
    /// A peer `name` pointed at `addr` with default connect retries.
    pub fn new(addr: &str, name: &str) -> Self {
        Self {
            addr: addr.to_string(),
            name: name.to_string(),
            connect_timeout_ms: 5_000,
        }
    }
}

/// What this peer did, for logs and test assertions.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PeerReport {
    /// Cells computed and accepted by the tracker.
    pub computed: u64,
    /// Cells computed but already landed elsewhere (acknowledged,
    /// dropped by the tracker).
    pub duplicates: u64,
    /// Cells computed under a superseded lease (dropped).
    pub stales: u64,
}

/// Why a peer gave up.
#[derive(Debug)]
pub enum PeerError {
    /// Connecting or talking to the tracker failed.
    Io(io::Error),
    /// A frame was severed or rejected.
    Frame(FrameError),
    /// A frame decoded to garbage.
    Proto(ProtoError),
    /// The tracker refused the handshake (fingerprint mismatch).
    Rejected(String),
    /// The tracker broke the protocol (wrong reply, early close).
    Protocol(String),
}

impl std::fmt::Display for PeerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PeerError::Io(e) => write!(f, "io error: {e}"),
            PeerError::Frame(e) => write!(f, "framing error: {e}"),
            PeerError::Proto(e) => write!(f, "protocol decode error: {e}"),
            PeerError::Rejected(reason) => write!(f, "tracker rejected handshake: {reason}"),
            PeerError::Protocol(what) => write!(f, "tracker broke protocol: {what}"),
        }
    }
}

impl std::error::Error for PeerError {}

impl From<io::Error> for PeerError {
    fn from(e: io::Error) -> Self {
        PeerError::Io(e)
    }
}

impl From<FrameError> for PeerError {
    fn from(e: FrameError) -> Self {
        PeerError::Frame(e)
    }
}

impl From<ProtoError> for PeerError {
    fn from(e: ProtoError) -> Self {
        PeerError::Proto(e)
    }
}

/// Connects with retries: tracker and peers race at startup, so refused
/// connections within the window are normal.
fn connect(cfg: &PeerConfig) -> io::Result<TcpStream> {
    let deadline = Instant::now() + Duration::from_millis(cfg.connect_timeout_ms);
    loop {
        match TcpStream::connect(&cfg.addr) {
            Ok(stream) => return Ok(stream),
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Writes one peer frame under the shared writer lock (claim loop and
/// heartbeat thread interleave whole frames, never bytes).
fn send(writer: &Mutex<BufWriter<TcpStream>>, msg: &PeerMsg) -> io::Result<()> {
    // ba-lint: allow(panic-path) -- a poisoned lock means another thread already panicked; propagating that panic is the correct escalation
    let mut w = writer.lock().expect("peer writer");
    write_frame(&mut *w, &encode_peer(msg))
}

/// Reads the next tracker reply; an early close is a protocol error
/// (the tracker always says `Done` before hanging up on a live peer).
fn recv(reader: &mut BufReader<TcpStream>) -> Result<TrackerMsg, PeerError> {
    match read_frame(reader)? {
        Some(payload) => Ok(decode_tracker(&payload)?),
        None => Err(PeerError::Protocol("closed before Done".into())),
    }
}

/// Runs one peer to completion: handshake, then claim → compute →
/// report until `Done`. `exps` and `opts` must match the tracker's —
/// the fingerprint handshake enforces it.
pub fn run_peer(
    exps: &[&dyn Experiment],
    opts: &ExpOptions,
    cfg: &PeerConfig,
) -> Result<PeerReport, PeerError> {
    let layout = SuiteLayout::build(exps, opts);
    let stream = connect(cfg)?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let writer = Mutex::new(BufWriter::new(stream));

    send(
        &writer,
        &PeerMsg::Hello {
            name: cfg.name.clone(),
            fingerprint: layout.fingerprint.clone(),
        },
    )?;
    let heartbeat_ms = match recv(&mut reader)? {
        TrackerMsg::Welcome { heartbeat_ms, .. } => heartbeat_ms,
        TrackerMsg::Reject { reason } => return Err(PeerError::Rejected(reason)),
        other => return Err(PeerError::Protocol(format!("{other:?} instead of Welcome"))),
    };

    // Lazy substrate pool + per-process session cache: the first cell
    // on each dataset pays the build, every later one only retargets.
    let pool = SubstratePool::new(layout.specs.clone(), opts.seed);
    let mut sessions = SessionCache::default();
    let mut report = PeerReport::default();

    // The heartbeat thread extends whichever lease the claim loop is
    // currently computing. It only ever *writes* (heartbeats get no
    // reply), so the claim loop's reply stream stays request-aligned.
    let current: Mutex<Option<(u64, u64)>> = Mutex::new(None);
    let stop = AtomicBool::new(false);
    let result = std::thread::scope(|scope| {
        scope.spawn(|| {
            let step = Duration::from_millis(heartbeat_ms.clamp(1, 20));
            let mut since_beat = Duration::ZERO;
            loop {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(step);
                since_beat += step;
                if since_beat.as_millis() as u64 <= heartbeat_ms {
                    continue;
                }
                since_beat = Duration::ZERO;
                // ba-lint: allow(panic-path) -- a poisoned lock means another thread already panicked; propagating that panic is the correct escalation
                let lease = *current.lock().expect("current lease");
                if let Some((cell, epoch)) = lease {
                    if send(&writer, &PeerMsg::Heartbeat { cell, epoch }).is_err() {
                        break; // the claim loop will surface the error
                    }
                }
            }
        });

        let loop_result = (|| -> Result<(), PeerError> {
            loop {
                send(&writer, &PeerMsg::Claim)?;
                match recv(&mut reader)? {
                    TrackerMsg::Lease { cell, epoch } => {
                        // ba-lint: allow(panic-path) -- a poisoned lock means another thread already panicked; propagating that panic is the correct escalation
                        *current.lock().expect("current lease") = Some((cell, epoch));
                        let (ei, local) = layout.split_flat(cell as usize).ok_or_else(|| {
                            PeerError::Protocol(format!("lease for out-of-range cell {cell}"))
                        })?;
                        let exp = exps[ei];
                        let exp_name = exp.name();
                        // inner_threads = 1: parallelism comes from the
                        // fleet, and cells are scheduling-invariant.
                        let env = CellEnv {
                            exp,
                            exp_name: &exp_name,
                            base_seed: opts.seed,
                            inner_threads: 1,
                            pool: &pool,
                            ds_map: &layout.maps[ei],
                        };
                        let outcome = run_cell_guarded(&env, local, &mut sessions);
                        let msg = match outcome {
                            Ok(rows) => PeerMsg::Complete { cell, epoch, rows },
                            Err(reason) => PeerMsg::Failed {
                                cell,
                                epoch,
                                reason,
                            },
                        };
                        send(&writer, &msg)?;
                        let ack = recv(&mut reader)?;
                        // ba-lint: allow(panic-path) -- a poisoned lock means another thread already panicked; propagating that panic is the correct escalation
                        *current.lock().expect("current lease") = None;
                        match ack {
                            TrackerMsg::Ack { status } => {
                                use crate::distrib::lease::CompleteOutcome as A;
                                match status {
                                    A::Accepted => report.computed += 1,
                                    A::Duplicate => report.duplicates += 1,
                                    A::Stale => report.stales += 1,
                                }
                                eprintln!(
                                    "[peer {}] {exp_name} {} -> {status:?}",
                                    cfg.name,
                                    exp.cell_label(local)
                                );
                            }
                            other => {
                                return Err(PeerError::Protocol(format!(
                                    "{other:?} instead of Ack"
                                )))
                            }
                        }
                    }
                    TrackerMsg::Wait { poll_ms } => {
                        std::thread::sleep(Duration::from_millis(poll_ms.clamp(1, 1_000)));
                    }
                    TrackerMsg::Done => return Ok(()),
                    other => {
                        return Err(PeerError::Protocol(format!(
                            "{other:?} instead of Lease/Wait/Done"
                        )))
                    }
                }
            }
        })();
        stop.store(true, Ordering::SeqCst);
        loop_result
    });
    result?;
    eprintln!(
        "[peer {}] done: {} computed, {} duplicate(s), {} stale",
        cfg.name, report.computed, report.duplicates, report.stales
    );
    Ok(report)
}
