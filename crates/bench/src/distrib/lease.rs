//! The cell-lease state machine — the tracker's core, kept pure.
//!
//! A [`LeaseTable`] tracks every flat cell of a suite through
//! `Pending → Leased → Completed`. It owns no clock, no socket, and no
//! store: time is a caller-supplied `u64` tick (the tracker passes
//! milliseconds since start; the proptests pass arbitrary integers), so
//! every interleaving of claim / complete / heartbeat / timeout /
//! crash is replayable deterministically in isolation.
//!
//! **Epochs make completion exactly-once.** Each lease bumps the cell's
//! epoch counter, and a completion is [`CompleteOutcome::Accepted`]
//! only when it carries the *current* epoch of a not-yet-completed
//! cell. Everything the distributed merge relies on follows:
//!
//! * a worker that dies mid-cell times out, the cell re-pends (same
//!   epoch) and re-leases (bumped epoch) — never lost;
//! * a worker that merely *stalled* past its timeout can still land its
//!   row, as long as no rival claimed the cell in between (the epoch
//!   survives `expire`, so its completion still matches);
//! * once a rival holds the bumped epoch, the stalled worker's late row
//!   is [`CompleteOutcome::Stale`] and is discarded unmerged;
//! * a re-delivered completion for a finished cell is
//!   [`CompleteOutcome::Duplicate`] — acknowledged so the sender moves
//!   on, never merged twice.

/// A cell's lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// Not leased to anyone.
    Pending,
    /// Leased to `worker` until `deadline` (exclusive).
    Leased { worker: u64, deadline: u64 },
    /// Rows landed; the cell is done forever.
    Completed,
}

/// One cell's slot: its lifecycle state plus the epoch counter that
/// makes completions exactly-once.
#[derive(Debug, Clone, Copy)]
struct Slot {
    state: SlotState,
    /// Bumped on every lease. A completion must present the current
    /// value to be accepted.
    epoch: u64,
}

/// Outcome of a worker's claim request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimOutcome {
    /// The worker now holds `cell` at `epoch` until its deadline.
    Lease {
        /// Flat suite-wide cell index.
        cell: usize,
        /// The lease's epoch; completions must echo it.
        epoch: u64,
    },
    /// Nothing is pending right now, but outstanding leases could still
    /// expire back into the queue — poll again.
    Wait,
    /// Every cell is completed; the worker can exit.
    Done,
}

/// Outcome of a completion (or failure report) for `(cell, epoch)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompleteOutcome {
    /// First completion at the current epoch: the rows are the cell's
    /// result, exactly once.
    Accepted,
    /// The cell was already completed; acknowledge and discard.
    Duplicate,
    /// The epoch is not current (a rival re-claimed the cell after this
    /// worker's lease expired): discard the rows.
    Stale,
}

/// The lease table over a suite's flat cell index space.
#[derive(Debug)]
pub struct LeaseTable {
    slots: Vec<Slot>,
    timeout: u64,
    completed: usize,
}

impl LeaseTable {
    /// A table of `cells` pending cells whose leases last `timeout`
    /// ticks. `timeout` is clamped to at least 1 so a lease can never
    /// expire at the instant it is granted.
    pub fn new(cells: usize, timeout: u64) -> Self {
        Self {
            slots: vec![
                Slot {
                    state: SlotState::Pending,
                    epoch: 0,
                };
                cells
            ],
            timeout: timeout.max(1),
            completed: 0,
        }
    }

    /// Marks a cell completed outside the lease protocol — used for
    /// cells the tracker adopted from the artifact store on resume.
    /// Idempotent; releases any outstanding lease on the cell.
    pub fn mark_completed(&mut self, cell: usize) {
        if self.slots[cell].state != SlotState::Completed {
            self.slots[cell].state = SlotState::Completed;
            self.completed += 1;
        }
    }

    /// Leases the lowest pending cell to `worker`.
    pub fn claim(&mut self, worker: u64, now: u64) -> ClaimOutcome {
        if self.all_done() {
            return ClaimOutcome::Done;
        }
        for (cell, slot) in self.slots.iter_mut().enumerate() {
            if slot.state == SlotState::Pending {
                slot.epoch += 1;
                slot.state = SlotState::Leased {
                    worker,
                    deadline: now + self.timeout,
                };
                return ClaimOutcome::Lease {
                    cell,
                    epoch: slot.epoch,
                };
            }
        }
        ClaimOutcome::Wait
    }

    /// Processes a completion (or failure report) for `(cell, epoch)`.
    /// Exactly one call per cell ever returns
    /// [`CompleteOutcome::Accepted`].
    pub fn complete(&mut self, cell: usize, epoch: u64) -> CompleteOutcome {
        let Some(slot) = self.slots.get_mut(cell) else {
            return CompleteOutcome::Stale;
        };
        if slot.state == SlotState::Completed {
            return CompleteOutcome::Duplicate;
        }
        // A Pending cell with a matching epoch is a lease that expired
        // but was not re-claimed yet: the original worker finished
        // late, and its result is still the only candidate — accept.
        if slot.epoch == epoch {
            slot.state = SlotState::Completed;
            self.completed += 1;
            CompleteOutcome::Accepted
        } else {
            CompleteOutcome::Stale
        }
    }

    /// Extends the lease on `(cell, epoch)` to `now + timeout`. Returns
    /// `false` (ignored) when the lease is no longer current.
    pub fn heartbeat(&mut self, cell: usize, epoch: u64, now: u64) -> bool {
        let Some(slot) = self.slots.get_mut(cell) else {
            return false;
        };
        match slot.state {
            SlotState::Leased { worker, .. } if slot.epoch == epoch => {
                slot.state = SlotState::Leased {
                    worker,
                    deadline: now + self.timeout,
                };
                true
            }
            _ => false,
        }
    }

    /// Re-pends every lease whose deadline has passed, returning the
    /// expired cells. Epochs are *not* bumped here — only a re-claim
    /// bumps, so a late completion from the expired worker stays
    /// acceptable until someone else takes the cell over.
    pub fn expire(&mut self, now: u64) -> Vec<usize> {
        let mut expired = Vec::new();
        for (cell, slot) in self.slots.iter_mut().enumerate() {
            if let SlotState::Leased { deadline, .. } = slot.state {
                if deadline <= now {
                    slot.state = SlotState::Pending;
                    expired.push(cell);
                }
            }
        }
        expired
    }

    /// Re-pends every cell leased to `worker` — the immediate path when
    /// a peer's connection drops, so its cells re-lease without waiting
    /// out the timeout. Returns the released cells.
    pub fn release_worker(&mut self, worker: u64) -> Vec<usize> {
        let mut released = Vec::new();
        for (cell, slot) in self.slots.iter_mut().enumerate() {
            if let SlotState::Leased { worker: w, .. } = slot.state {
                if w == worker {
                    slot.state = SlotState::Pending;
                    released.push(cell);
                }
            }
        }
        released
    }

    /// Completed-cell count.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Whether every cell is completed.
    pub fn all_done(&self) -> bool {
        self.completed == self.slots.len()
    }

    /// Total cells.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the table has no cells at all.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_complete_lifecycle() {
        let mut t = LeaseTable::new(2, 100);
        let ClaimOutcome::Lease { cell, epoch } = t.claim(1, 0) else {
            panic!("expected lease");
        };
        assert_eq!((cell, epoch), (0, 1));
        assert_eq!(t.complete(0, 1), CompleteOutcome::Accepted);
        assert_eq!(t.complete(0, 1), CompleteOutcome::Duplicate);
        let ClaimOutcome::Lease { cell, epoch } = t.claim(1, 0) else {
            panic!("expected lease");
        };
        // Epochs are per-cell: cell 1's first lease is its epoch 1.
        assert_eq!((cell, epoch), (1, 1));
        // The other cell is leased out, not pending: wait, not done.
        assert_eq!(t.claim(2, 0), ClaimOutcome::Wait);
        assert_eq!(t.complete(1, 1), CompleteOutcome::Accepted);
        assert_eq!(t.claim(2, 0), ClaimOutcome::Done);
        assert!(t.all_done());
    }

    #[test]
    fn expired_lease_releases_then_stale_on_reclaim() {
        let mut t = LeaseTable::new(1, 10);
        assert!(matches!(t.claim(1, 0), ClaimOutcome::Lease { .. }));
        assert!(t.expire(5).is_empty(), "deadline not reached");
        assert_eq!(t.expire(10), vec![0]);
        // Expired but un-reclaimed: the original epoch still lands.
        let mut u = t;
        assert_eq!(u.complete(0, 1), CompleteOutcome::Accepted);

        // Re-claimed: the original epoch is now stale.
        let mut t = LeaseTable::new(1, 10);
        t.claim(1, 0);
        t.expire(10);
        assert!(matches!(
            t.claim(2, 11),
            ClaimOutcome::Lease { cell: 0, epoch: 2 }
        ));
        assert_eq!(t.complete(0, 1), CompleteOutcome::Stale);
        assert_eq!(t.complete(0, 2), CompleteOutcome::Accepted);
    }

    #[test]
    fn heartbeat_extends_only_current_lease() {
        let mut t = LeaseTable::new(1, 10);
        t.claim(1, 0);
        assert!(t.heartbeat(0, 1, 8));
        // Extended to 18: not expired at 10.
        assert!(t.expire(10).is_empty());
        assert_eq!(t.expire(18), vec![0]);
        // No longer leased: heartbeat is ignored.
        assert!(!t.heartbeat(0, 1, 20));
    }

    #[test]
    fn release_worker_repends_only_its_cells() {
        let mut t = LeaseTable::new(3, 100);
        t.claim(1, 0);
        t.claim(2, 0);
        t.claim(1, 0);
        assert_eq!(t.release_worker(1), vec![0, 2]);
        // Cell 1 (worker 2) is untouched; cells 0 and 2 re-lease with
        // bumped epochs.
        assert!(matches!(
            t.claim(3, 1),
            ClaimOutcome::Lease { cell: 0, epoch: 2 }
        ));
        assert_eq!(t.complete(1, 1), CompleteOutcome::Accepted);
    }

    #[test]
    fn adopted_cells_skip_the_protocol() {
        let mut t = LeaseTable::new(2, 100);
        t.mark_completed(0);
        t.mark_completed(0);
        assert_eq!(t.completed(), 1);
        assert!(matches!(t.claim(1, 0), ClaimOutcome::Lease { cell: 1, .. }));
        assert_eq!(t.complete(0, 0), CompleteOutcome::Duplicate);
    }
}
