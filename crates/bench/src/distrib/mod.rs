//! Tracker/peer distributed orchestration.
//!
//! Scales the deterministic cell orchestrator past one process: a
//! [`Tracker`] hands out cell leases over TCP (the same `ba-net`
//! framing the scoring service speaks) and worker peers ([`run_peer`])
//! claim, compute, and stream rows back. The design splits into layers
//! so each is testable alone:
//!
//! * [`lease`] — the pure, clock-free lease state machine
//!   (exactly-once completion under any interleaving; proptested in
//!   isolation);
//! * [`proto`] — the framed message codec (roundtrip-pinned);
//! * [`tracker`] — TCP serving, artifact-store crash recovery, fault
//!   counters;
//! * [`peer`] — the worker loop over the runner's own
//!   `run_cell_guarded` path, with lazy substrates and heartbeats;
//! * [`registry`] — suite-by-name construction, so separate processes
//!   agree on what they are running (verified by the fingerprint
//!   handshake).
//!
//! The headline contract, pinned by `tests/distrib.rs`, the CLI's
//! process-level tests, and the CI smoke: a localhost fleet at **any**
//! peer count — including one with a worker killed mid-cell and a
//! connection severed mid-frame — produces merged CSVs byte-identical
//! to a single-machine `--threads 1` run.

pub mod lease;
pub mod peer;
pub mod proto;
pub mod registry;
pub mod tracker;

pub use lease::{ClaimOutcome, CompleteOutcome, LeaseTable};
pub use peer::{run_peer, PeerConfig, PeerError, PeerReport};
pub use proto::{decode_peer, decode_tracker, encode_peer, encode_tracker, PeerMsg, TrackerMsg};
pub use registry::{suite_by_name, SUITE_NAMES};
pub use tracker::{FirstLeaseHook, Tracker, TrackerConfig, TrackerReport};
