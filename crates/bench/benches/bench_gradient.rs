//! Criterion benches for the analytic gradient engine — the inner loop
//! of every attack. The headline comparison (sparse assembly vs the
//! retired dense path, with the ≥5× gate) lives in the `grad_bench`
//! binary; these benches track the individual kernels.

use ba_bench::sample_targets;
use ba_core::{
    assemble_pair_grads, correction_map, dense_pair_gradient, node_grads, pair_grad,
    CandidateScope, Candidates,
};
use ba_datasets::Dataset;
use ba_graph::egonet::egonet_features;
use ba_graph::CsrGraph;
use ba_linalg::Matrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_node_grads(c: &mut Criterion) {
    let mut group = c.benchmark_group("node_grads");
    for d in [Dataset::Er, Dataset::Wikivote] {
        let g = d.build(7);
        let feats = egonet_features(&g);
        let targets = sample_targets(&g, 10, 50, 1);
        group.bench_with_input(BenchmarkId::from_parameter(d.name()), &(), |b, _| {
            b.iter(|| black_box(node_grads(&feats.n, &feats.e, &targets).unwrap()));
        });
    }
    group.finish();
}

fn bench_correction_map(c: &mut Criterion) {
    let mut group = c.benchmark_group("correction_map");
    for d in [Dataset::Er, Dataset::Wikivote] {
        let g = d.build(7);
        let feats = egonet_features(&g);
        let targets = sample_targets(&g, 10, 50, 1);
        let ng = node_grads(&feats.n, &feats.e, &targets).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(d.name()), &(), |b, _| {
            b.iter(|| black_box(correction_map(&g, &ng.g_e)));
        });
    }
    group.finish();
}

fn bench_single_pair_grad(c: &mut Criterion) {
    let g = Dataset::Wikivote.build(7);
    let feats = egonet_features(&g);
    let targets = sample_targets(&g, 10, 50, 1);
    let ng = node_grads(&feats.n, &feats.e, &targets).unwrap();
    c.bench_function("pair_grad_sparse", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..50u32 {
                acc += pair_grad(&g, &ng, i, i + 50);
            }
            black_box(acc)
        })
    });
}

/// The attack hot loop's backward pass: assemble G_ij for every
/// candidate pair over the CSR substrate (strategy auto-selected).
fn bench_sparse_assembly(c: &mut Criterion) {
    let mut group = c.benchmark_group("assemble_pair_grads");
    for d in [Dataset::Er, Dataset::Wikivote] {
        let g = d.build(7);
        let csr = CsrGraph::from(&g);
        let feats = egonet_features(&g);
        let targets = sample_targets(&g, 10, 50, 1);
        let ng = node_grads(&feats.n, &feats.e, &targets).unwrap();
        let candidates = Candidates::build(CandidateScope::Full, &g, &targets);
        let mask = vec![true; candidates.len()];
        group.bench_with_input(BenchmarkId::from_parameter(d.name()), &(), |b, _| {
            b.iter(|| black_box(assemble_pair_grads(&csr, &ng, &candidates, &mask, 0)));
        });
    }
    group.finish();
}

fn bench_dense_gradient(c: &mut Criterion) {
    // Dense path at reduced scale (ContinuousA inner loop).
    let g = Dataset::Er.build_scaled(300, 900, 7);
    let a = Matrix::from_vec(300, 300, ba_graph::adjacency::to_row_major(&g));
    let feats = egonet_features(&g);
    let targets = sample_targets(&g, 5, 30, 1);
    let ng = node_grads(&feats.n, &feats.e, &targets).unwrap();
    let mut group = c.benchmark_group("dense_pair_gradient_n300");
    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| black_box(dense_pair_gradient(&a, &ng, t)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_node_grads,
    bench_correction_map,
    bench_single_pair_grad,
    bench_sparse_assembly,
    bench_dense_gradient
);
criterion_main!(benches);
