//! Criterion benches for the OddBall detector: feature extraction,
//! fitting (OLS / Huber / RANSAC), scoring at Table-I scale.

use ba_datasets::Dataset;
use ba_graph::egonet::egonet_features;
use ba_oddball::{OddBall, Regressor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_feature_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("egonet_features");
    for d in [Dataset::Er, Dataset::Ba, Dataset::Wikivote] {
        let g = d.build(7);
        group.bench_with_input(BenchmarkId::from_parameter(d.name()), &g, |b, g| {
            b.iter(|| black_box(egonet_features(g)));
        });
    }
    group.finish();
}

fn bench_fit(c: &mut Criterion) {
    let g = Dataset::Wikivote.build(7);
    let mut group = c.benchmark_group("oddball_fit");
    group.bench_function("ols", |b| {
        b.iter(|| black_box(OddBall::default().fit(&g).unwrap()))
    });
    group.bench_function("huber", |b| {
        b.iter(|| black_box(OddBall::new(Regressor::default_huber()).fit(&g).unwrap()))
    });
    group.bench_function("ransac", |b| {
        b.iter(|| black_box(OddBall::new(Regressor::default_ransac(3)).fit(&g).unwrap()))
    });
    group.finish();
}

fn bench_topk(c: &mut Criterion) {
    let g = Dataset::Ba.build(7);
    let model = OddBall::default().fit(&g).unwrap();
    c.bench_function("oddball_top50", |b| b.iter(|| black_box(model.top_k(50))));
}

criterion_group!(benches, bench_feature_extraction, bench_fit, bench_topk);
criterion_main!(benches);
