//! Criterion benches for the graph substrate: generation, sampling, and
//! the incremental egonet updater (the attacks' hot path).

use ba_graph::egonet::IncrementalEgonet;
use ba_graph::{generators, sample};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators_n1000");
    group.sample_size(20);
    group.bench_function("erdos_renyi", |b| {
        b.iter(|| black_box(generators::erdos_renyi(1000, 0.02, 7)))
    });
    group.bench_function("barabasi_albert", |b| {
        b.iter(|| black_box(generators::barabasi_albert(1000, 5, 7)))
    });
    group.bench_function("chung_lu", |b| {
        b.iter(|| black_box(generators::power_law_chung_lu(1000, 5000, 2.3, 7)))
    });
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let big = generators::barabasi_albert(10_000, 5, 3);
    c.bench_function("bfs_sample_1000_of_10000", |b| {
        b.iter(|| black_box(sample::bfs_sample(&big, 1000, 9)))
    });
}

fn bench_incremental_egonet(c: &mut Criterion) {
    let g0 = generators::barabasi_albert(1000, 5, 3);
    c.bench_function("incremental_egonet_100_toggles", |b| {
        b.iter(|| {
            let mut g = g0.clone();
            let mut inc = IncrementalEgonet::new(&g);
            for k in 0..100u32 {
                inc.toggle(&mut g, k % 997, (k * 7 + 1) % 997);
            }
            black_box(inc.features().e[0])
        })
    });
}

criterion_group!(
    benches,
    bench_generators,
    bench_sampling,
    bench_incremental_egonet
);
criterion_main!(benches);
