//! Criterion benches for the transfer-target systems: ReFeX extraction,
//! GAL training epochs, MLP training, t-SNE.

use ba_datasets::Dataset;
use ba_gad::{
    pipeline::oddball_labels, train_test_split, Gal, GalConfig, Mlp, MlpConfig, Refex, RefexConfig,
    TsneConfig,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_refex(c: &mut Criterion) {
    let g = Dataset::Wikivote.build(7);
    let mut group = c.benchmark_group("refex_extract_n1012");
    group.sample_size(10);
    group.bench_function("default", |b| {
        b.iter(|| black_box(Refex::extract(&g, RefexConfig::default())))
    });
    group.finish();
}

fn bench_gal_training(c: &mut Criterion) {
    let g = Dataset::BitcoinAlpha.build_scaled(400, 900, 7);
    let labels = oddball_labels(&g, 0.1);
    let (train, _) = train_test_split(g.num_nodes(), 0.7, 3);
    let mut group = c.benchmark_group("gal_train_n400");
    group.sample_size(10);
    group.bench_function("20_epochs", |b| {
        let cfg = GalConfig {
            epochs: 20,
            ..GalConfig::default()
        };
        b.iter(|| black_box(Gal::train(&g, &labels, &train, cfg)))
    });
    group.finish();
}

fn bench_mlp_and_tsne(c: &mut Criterion) {
    let g = Dataset::BitcoinAlpha.build_scaled(400, 900, 7);
    let labels = oddball_labels(&g, 0.1);
    let emb = Refex::extract(&g, RefexConfig::default()).embedding;
    let train: Vec<usize> = (0..280).collect();
    let mut group = c.benchmark_group("heads_n400");
    group.sample_size(10);
    group.bench_function("mlp_train_100_epochs", |b| {
        let cfg = MlpConfig {
            epochs: 100,
            ..MlpConfig::default()
        };
        b.iter(|| black_box(Mlp::train(&emb, &labels, &train, cfg)))
    });
    group.bench_function("tsne_120_nodes", |b| {
        let sub = ba_linalg::Matrix::from_fn(120, emb.cols(), |i, j| emb[(i, j)]);
        let cfg = TsneConfig {
            iterations: 100,
            ..TsneConfig::default()
        };
        b.iter(|| black_box(ba_gad::tsne(&sub, cfg)))
    });
    group.finish();
}

criterion_group!(benches, bench_refex, bench_gal_training, bench_mlp_and_tsne);
criterion_main!(benches);
