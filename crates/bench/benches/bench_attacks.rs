//! Criterion benches for full attack runs at reduced scale: per-method
//! wall time is itself a claim of the paper (GradMaxSearch does B full
//! gradient scans; BinarizedAttack amortises over the λ sweep).

use ba_bench::sample_targets;
use ba_core::{
    AttackConfig, BinarizedAttack, CliqueBreaker, ContinuousA, GradMaxSearch, RandomAttack,
    StructuralAttack,
};
use ba_datasets::Dataset;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_attacks(c: &mut Criterion) {
    let g = Dataset::BitcoinAlpha.build_scaled(300, 700, 7);
    let targets = sample_targets(&g, 5, 30, 1);
    let budget = 10;
    let mut group = c.benchmark_group("attack_n300_b10");
    group.sample_size(10);
    group.bench_function("binarized", |b| {
        let attack = BinarizedAttack::new(AttackConfig::default())
            .with_iterations(40)
            .with_lambdas(vec![0.01, 0.05]);
        b.iter(|| black_box(attack.attack(&g, &targets, budget).unwrap()))
    });
    group.bench_function("gradmax", |b| {
        let attack = GradMaxSearch::default();
        b.iter(|| black_box(attack.attack(&g, &targets, budget).unwrap()))
    });
    group.bench_function("continuousA", |b| {
        let attack = ContinuousA::default().with_iterations(15).with_threads(4);
        b.iter(|| black_box(attack.attack(&g, &targets, budget).unwrap()))
    });
    group.bench_function("random", |b| {
        let attack = RandomAttack::default();
        b.iter(|| black_box(attack.attack(&g, &targets, budget).unwrap()))
    });
    group.bench_function("cliquebreaker", |b| {
        let attack = CliqueBreaker::default();
        b.iter(|| black_box(attack.attack(&g, &targets, budget).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_attacks);
criterion_main!(benches);
