//! Property tests for the lease state machine in isolation.
//!
//! A random interpreter drives a [`LeaseTable`] through arbitrary
//! interleavings of claim / complete / heartbeat / timeout / crash /
//! duplicate-delivery, then drains it to completion. The distributed
//! merge is only correct if three invariants hold under *every*
//! interleaving:
//!
//! 1. no cell is ever lost (the drain always terminates with every cell
//!    completed),
//! 2. no cell is ever accepted twice (exactly one `Accepted` per cell,
//!    ever — re-deliveries are `Duplicate` or `Stale`),
//! 3. progress is monotone (the completed count never decreases and
//!    `Done` is only reported when all cells are completed).

use ba_bench::distrib::{ClaimOutcome, CompleteOutcome, LeaseTable};
use proptest::prelude::*;
use std::collections::HashSet;

/// A worker's belief that it holds `(cell, epoch)`. Beliefs survive
/// lease expiry on purpose: a stalled worker does not know its lease
/// lapsed and will still try to complete — the table must sort the
/// late-but-first from the late-and-overtaken.
#[derive(Debug, Clone, Copy)]
struct Belief {
    worker: u64,
    cell: usize,
    epoch: u64,
}

/// Interpreter state shared by the properties.
struct Harness {
    table: LeaseTable,
    now: u64,
    timeout: u64,
    cells: usize,
    beliefs: Vec<Belief>,
    /// Every (cell, epoch) completion ever sent — replayed for
    /// duplicate-delivery coverage.
    sent: Vec<(usize, u64)>,
    /// Cells whose completion was `Accepted`. Inserting twice is the
    /// double-merge bug this whole subsystem exists to prevent.
    accepted: HashSet<usize>,
    max_completed_seen: usize,
}

impl Harness {
    fn new(cells: usize, timeout: u64, adopted: &[usize]) -> Self {
        let mut table = LeaseTable::new(cells, timeout);
        let mut accepted = HashSet::new();
        for &c in adopted {
            table.mark_completed(c);
            accepted.insert(c);
        }
        Self {
            table,
            now: 0,
            timeout,
            cells,
            beliefs: Vec::new(),
            sent: Vec::new(),
            accepted,
            max_completed_seen: 0,
        }
    }

    /// Applies one op decoded from `code`; returns Err on an invariant
    /// violation.
    fn step(&mut self, code: u64) -> Result<(), TestCaseError> {
        let worker = (code >> 8) % 4;
        match code % 6 {
            // Claim for a random worker.
            0 => match self.table.claim(worker, self.now) {
                ClaimOutcome::Lease { cell, epoch } => {
                    self.beliefs.push(Belief {
                        worker,
                        cell,
                        epoch,
                    });
                }
                ClaimOutcome::Done => {
                    prop_assert!(
                        self.table.all_done(),
                        "Done reported with {}/{} completed",
                        self.table.completed(),
                        self.cells
                    );
                }
                ClaimOutcome::Wait => {}
            },
            // A believing worker completes (it may be long expired).
            1 => {
                if !self.beliefs.is_empty() {
                    let b = self
                        .beliefs
                        .swap_remove((code >> 16) as usize % self.beliefs.len());
                    self.complete(b.cell, b.epoch)?;
                }
            }
            // Re-deliver a past completion verbatim.
            2 => {
                if !self.sent.is_empty() {
                    let (cell, epoch) = self.sent[(code >> 16) as usize % self.sent.len()];
                    let out = self.table.complete(cell, epoch);
                    prop_assert!(
                        out != CompleteOutcome::Accepted,
                        "re-delivered completion for cell {cell} epoch {epoch} was Accepted again"
                    );
                }
            }
            // Heartbeat a random belief (possibly a dead lease).
            3 => {
                if !self.beliefs.is_empty() {
                    let b = self.beliefs[(code >> 16) as usize % self.beliefs.len()];
                    self.table.heartbeat(b.cell, b.epoch, self.now);
                }
            }
            // Time passes; expired leases re-pend.
            4 => {
                self.now += (code >> 16) % (2 * self.timeout) + 1;
                self.table.expire(self.now);
            }
            // A worker crashes: its leases release, its beliefs die
            // with the process (it will never send those completions).
            _ => {
                self.table.release_worker(worker);
                self.beliefs.retain(|b| b.worker != worker);
            }
        }
        let done = self.table.completed();
        prop_assert!(
            done >= self.max_completed_seen,
            "completed count went backwards: {} -> {done}",
            self.max_completed_seen
        );
        self.max_completed_seen = done;
        Ok(())
    }

    fn complete(&mut self, cell: usize, epoch: u64) -> Result<(), TestCaseError> {
        self.sent.push((cell, epoch));
        match self.table.complete(cell, epoch) {
            CompleteOutcome::Accepted => {
                prop_assert!(
                    self.accepted.insert(cell),
                    "cell {cell} accepted twice (second time at epoch {epoch})"
                );
            }
            CompleteOutcome::Duplicate => {
                prop_assert!(
                    self.accepted.contains(&cell),
                    "Duplicate for cell {cell} that was never accepted"
                );
            }
            CompleteOutcome::Stale => {}
        }
        Ok(())
    }

    /// A fresh worker drains the table: no script, just claim/complete
    /// until `Done`. Must terminate with every cell completed exactly
    /// once no matter what the random prefix did.
    fn drain(&mut self) -> Result<(), TestCaseError> {
        let budget = 4 * self.cells + 8;
        for _ in 0..=budget {
            self.now += self.timeout + 1;
            self.table.expire(self.now);
            match self.table.claim(u64::MAX, self.now) {
                ClaimOutcome::Lease { cell, epoch } => self.complete(cell, epoch)?,
                ClaimOutcome::Wait => {}
                ClaimOutcome::Done => {
                    prop_assert!(self.table.all_done());
                    prop_assert_eq!(
                        self.accepted.len(),
                        self.cells,
                        "drained table but {} of {} cells were accepted",
                        self.accepted.len(),
                        self.cells
                    );
                    // Still Done on a re-ask, and still duplicate-safe.
                    prop_assert_eq!(self.table.claim(0, self.now), ClaimOutcome::Done);
                    return Ok(());
                }
            }
        }
        prop_assert!(
            false,
            "drain did not terminate within {budget} steps ({}/{} completed)",
            self.table.completed(),
            self.cells
        );
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariants 1–3 under arbitrary interleavings from a clean table.
    #[test]
    fn random_interleavings_never_lose_or_double_merge(
        cells in 1usize..12,
        timeout in 1u64..40,
        script in proptest::collection::vec(0u64..u64::MAX, 0..160),
    ) {
        let mut h = Harness::new(cells, timeout, &[]);
        for code in script {
            h.step(code)?;
        }
        h.drain()?;
    }

    /// Same invariants when a prefix of cells was adopted from the
    /// artifact store on resume: adopted cells are never re-leased and
    /// the drain completes exactly the remainder.
    #[test]
    fn adopted_cells_compose_with_random_interleavings(
        cells in 1usize..12,
        adopt_every in 1usize..4,
        timeout in 1u64..40,
        script in proptest::collection::vec(0u64..u64::MAX, 0..120),
    ) {
        let adopted: Vec<usize> = (0..cells).step_by(adopt_every).collect();
        let mut h = Harness::new(cells, timeout, &adopted);
        for code in script {
            h.step(code)?;
        }
        // Completions can never target adopted cells with Accepted: the
        // harness seeded them into `accepted`, so a second Accepted
        // would have tripped the double-merge assert inside step().
        h.drain()?;
    }
}
