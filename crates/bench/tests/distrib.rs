//! Integration tests for the tracker/peer orchestration, all on
//! localhost with in-process trackers and peers:
//!
//! * fleet byte-identity — 1- and 3-peer fleets (the latter with a
//!   connection severed mid-frame) merge CSV and cell record files
//!   byte-identical to the single-machine `--threads 1` runner;
//! * a scripted peer drives the protocol by hand through the stale /
//!   duplicate / heartbeat edges the honest [`run_peer`] never hits;
//! * tracker restart from a half-written manifest adopts every row
//!   file from the crash-recovery log and merges the same bytes,
//!   while a fingerprint mismatch invalidates the store;
//! * a peer with a mismatched fingerprint is rejected at Hello.

use ba_bench::distrib::{
    decode_tracker, encode_peer, run_peer, CompleteOutcome, PeerConfig, PeerError, PeerMsg,
    Tracker, TrackerConfig, TrackerMsg, TrackerReport,
};
use ba_bench::experiments::Fig4Experiment;
use ba_bench::runner::{
    derive_seed, CellCtx, DatasetSpec, Experiment, ExperimentRunner, SuiteLayout,
};
use ba_bench::{BenchError, ExpOptions};
use ba_datasets::Dataset;
use ba_net::frame::{read_frame, write_frame};
use std::io::Write;
use std::net::TcpStream;
use std::path::{Path, PathBuf};

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ba_distrib").join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn opts_in(dir: &Path, seed: u64) -> ExpOptions {
    ExpOptions {
        paper: false,
        seed,
        samples: 2,
        out_dir: dir.to_path_buf(),
        threads: 1,
        resume: false,
    }
}

/// CSV plus all cell record files of one experiment, in index order.
fn artifact_bytes(dir: &Path, exp_name: &str, cells: usize) -> (Vec<u8>, Vec<Vec<u8>>) {
    let csv = std::fs::read(dir.join(format!("{exp_name}.csv"))).expect("csv artifact");
    let rows = (0..cells)
        .map(|c| {
            std::fs::read(
                dir.join(".cells")
                    .join(exp_name)
                    .join(format!("cell_{c:04}.rows")),
            )
            .unwrap_or_else(|e| panic!("cell {c} missing: {e}"))
        })
        .collect();
    (csv, rows)
}

/// Serves `exp` to a fleet of `peers` in-process peers and returns the
/// tracker's report. With `sever`, a raw connection additionally
/// promises a 64-byte frame, sends half of it, and drops — the tracker
/// must shrug it off.
fn run_fleet(
    exp: &Fig4Experiment,
    dir: &Path,
    peers: usize,
    seed: u64,
    sever: bool,
) -> TrackerReport {
    let opts = opts_in(dir, seed);
    let tracker = Tracker::bind("127.0.0.1:0").expect("bind tracker");
    let addr = tracker.local_addr();
    let cfg = TrackerConfig::default();
    std::thread::scope(|s| {
        let server = s.spawn(|| {
            let refs: Vec<&dyn Experiment> = vec![exp];
            tracker.serve(&refs, &opts, &cfg).expect("tracker serve")
        });
        if sever {
            let mut raw = TcpStream::connect(addr).expect("raw connect");
            raw.write_all(&64u64.to_le_bytes()).unwrap();
            raw.write_all(b"only half a frame").unwrap();
            drop(raw);
        }
        let workers: Vec<_> = (0..peers)
            .map(|k| {
                let opts = opts_in(dir, seed);
                s.spawn(move || {
                    let refs: Vec<&dyn Experiment> = vec![exp];
                    let cfg = PeerConfig::new(&addr.to_string(), &format!("p{k}"));
                    run_peer(&refs, &opts, &cfg).expect("peer run")
                })
            })
            .collect();
        let computed: u64 = workers
            .into_iter()
            .map(|w| w.join().unwrap().computed)
            .sum();
        let report = server.join().unwrap();
        assert_eq!(computed, report.computed, "tracker and peers disagree");
        report
    })
}

#[test]
fn fleet_merges_byte_identical_to_single_thread_runner() {
    let name = "dfleet";
    let exp = Fig4Experiment::tiny(name);
    let cells = exp.panels.len() * exp.methods.len() * exp.samples;

    let ref_dir = fresh_dir("fleet_ref");
    let opts = opts_in(&ref_dir, 42);
    ExperimentRunner::new(&opts)
        .run(&exp, &opts)
        .expect("runner");
    let reference = artifact_bytes(&ref_dir, name, cells);
    assert!(!reference.0.is_empty());

    for (peers, sever) in [(1usize, false), (3, true)] {
        let dir = fresh_dir(&format!("fleet_{peers}"));
        let report = run_fleet(&exp, &dir, peers, 42, sever);
        assert!(report.all_ok);
        assert_eq!(report.computed as usize, cells);
        assert_eq!(report.adopted, 0);
        let fleet = artifact_bytes(&dir, name, cells);
        assert_eq!(
            fleet.0, reference.0,
            "CSV differs between --threads 1 and a {peers}-peer fleet"
        );
        assert_eq!(
            fleet.1, reference.1,
            "cell record files differ between --threads 1 and a {peers}-peer fleet"
        );
    }
}

/// A trivially fast experiment for protocol-edge tests: each cell's
/// single row is a pure function of `(name, cell, seed)`, so a scripted
/// peer can fabricate byte-exact rows without a `CellCtx`.
#[derive(Debug)]
struct MiniExp {
    name: String,
    cells: usize,
}

impl MiniExp {
    fn row(&self, cell: usize, base_seed: u64) -> String {
        format!(
            "cell={cell} seed={:016x}",
            derive_seed(&self.name, &[cell as u64, base_seed])
        )
    }
}

impl Experiment for MiniExp {
    fn name(&self) -> String {
        self.name.clone()
    }
    fn config_fingerprint(&self) -> String {
        format!("{self:?}")
    }
    fn datasets(&self) -> Vec<DatasetSpec> {
        vec![DatasetSpec::scaled(Dataset::Er, 60, 120)]
    }
    fn num_cells(&self) -> usize {
        self.cells
    }
    fn cell_dataset(&self, _cell: usize) -> usize {
        0
    }
    fn cell_label(&self, cell: usize) -> String {
        format!("cell {cell}")
    }
    fn run_cell(&self, cell: usize, ctx: &mut CellCtx<'_, '_>) -> Vec<String> {
        assert!(ctx.graph(0).num_nodes() > 0, "substrate not built");
        vec![format!("cell={cell} seed={:016x}", ctx.cell_seed())]
    }
    fn artifacts(&self) -> Vec<String> {
        vec![format!("{}.csv", self.name)]
    }
    fn finalize(&self, opts: &ExpOptions, cells: &[Vec<String>]) -> Result<(), BenchError> {
        let rows: Vec<String> = cells
            .iter()
            .enumerate()
            .flat_map(|(i, c)| c.iter().map(move |r| format!("{i},{r}")))
            .collect();
        opts.write_csv(&format!("{}.csv", self.name), "cell,record", &rows)?;
        Ok(())
    }
}

/// One frame out, one frame back.
fn exchange(stream: &mut TcpStream, msg: &PeerMsg) -> TrackerMsg {
    write_frame(stream, &encode_peer(msg)).expect("send frame");
    let payload = read_frame(stream)
        .expect("read frame")
        .expect("tracker closed early");
    decode_tracker(&payload).expect("decode reply")
}

#[test]
fn scripted_peer_exercises_stale_duplicate_and_heartbeat() {
    let exp = MiniExp {
        name: "dscript".to_string(),
        cells: 3,
    };
    let dir = fresh_dir("script");
    let opts = opts_in(&dir, 7);

    // Reference bytes from the in-process runner, in a separate dir.
    let ref_dir = fresh_dir("script_ref");
    let ref_opts = opts_in(&ref_dir, 7);
    ExperimentRunner::new(&ref_opts)
        .run(&exp, &ref_opts)
        .expect("runner");
    let ref_csv = std::fs::read(ref_dir.join("dscript.csv")).unwrap();

    let refs: Vec<&dyn Experiment> = vec![&exp];
    let fingerprint = SuiteLayout::build(&refs, &opts).fingerprint;
    let tracker = Tracker::bind("127.0.0.1:0").unwrap();
    let addr = tracker.local_addr();
    // Short leases so the script can outlive one without a long sleep.
    let cfg = TrackerConfig {
        lease_ms: 150,
        ..TrackerConfig::default()
    };

    let report = std::thread::scope(|s| {
        let server = s.spawn(|| {
            let refs: Vec<&dyn Experiment> = vec![&exp];
            tracker.serve(&refs, &opts, &cfg).expect("tracker serve")
        });

        let mut c = TcpStream::connect(addr).expect("connect");
        let hello = PeerMsg::Hello {
            name: "scripted".to_string(),
            fingerprint: fingerprint.clone(),
        };
        assert!(matches!(
            exchange(&mut c, &hello),
            TrackerMsg::Welcome { .. }
        ));

        // Claim cell 0, then sit past the lease deadline. A heartbeat
        // gets no reply, so the next exchange must stay aligned.
        let TrackerMsg::Lease { cell, epoch } = exchange(&mut c, &PeerMsg::Claim) else {
            panic!("expected first lease");
        };
        assert_eq!((cell, epoch), (0, 1));
        write_frame(&mut c, &encode_peer(&PeerMsg::Heartbeat { cell, epoch })).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(600));

        // The expired cell re-leases (to us — we are the only worker)
        // with a bumped epoch; the superseded epoch is now Stale.
        let TrackerMsg::Lease {
            cell: re_cell,
            epoch: re_epoch,
        } = exchange(&mut c, &PeerMsg::Claim)
        else {
            panic!("expected re-lease of the expired cell");
        };
        assert_eq!((re_cell, re_epoch), (0, 2));
        let rows = vec![exp.row(0, opts.seed)];
        let stale = PeerMsg::Complete {
            cell: 0,
            epoch: 1,
            rows: rows.clone(),
        };
        assert!(matches!(
            exchange(&mut c, &stale),
            TrackerMsg::Ack {
                status: CompleteOutcome::Stale
            }
        ));
        let good = PeerMsg::Complete {
            cell: 0,
            epoch: 2,
            rows: rows.clone(),
        };
        assert!(matches!(
            exchange(&mut c, &good),
            TrackerMsg::Ack {
                status: CompleteOutcome::Accepted
            }
        ));
        // Redelivered verbatim: acknowledged as Duplicate, not merged
        // twice.
        assert!(matches!(
            exchange(&mut c, &good),
            TrackerMsg::Ack {
                status: CompleteOutcome::Duplicate
            }
        ));

        // Finish the rest honestly.
        loop {
            match exchange(&mut c, &PeerMsg::Claim) {
                TrackerMsg::Lease { cell, epoch } => {
                    let msg = PeerMsg::Complete {
                        cell,
                        epoch,
                        rows: vec![exp.row(cell as usize, opts.seed)],
                    };
                    assert!(matches!(
                        exchange(&mut c, &msg),
                        TrackerMsg::Ack {
                            status: CompleteOutcome::Accepted
                        }
                    ));
                }
                TrackerMsg::Wait { poll_ms } => {
                    std::thread::sleep(std::time::Duration::from_millis(poll_ms.max(1)));
                }
                TrackerMsg::Done => break,
                other => panic!("unexpected reply: {other:?}"),
            }
        }
        drop(c);
        server.join().unwrap()
    });

    assert!(report.all_ok);
    assert_eq!(report.duplicates, 1);
    assert_eq!(report.stales, 1);
    assert!(report.expirations >= 1);
    let fleet_csv = std::fs::read(dir.join("dscript.csv")).unwrap();
    assert_eq!(
        fleet_csv, ref_csv,
        "scripted fleet CSV differs from the in-process runner"
    );
}

#[test]
fn tracker_restart_adopts_crash_log_rows_and_rejects_mismatch() {
    let exp = MiniExp {
        name: "dresume".to_string(),
        cells: 6,
    };
    let dir = fresh_dir("resume");

    // Complete run as the reference.
    let mini_fleet = |dir: &Path, seed: u64, resume: bool| {
        let mut opts = opts_in(dir, seed);
        opts.resume = resume;
        let tracker = Tracker::bind("127.0.0.1:0").unwrap();
        let addr = tracker.local_addr();
        let cfg = TrackerConfig::default();
        std::thread::scope(|s| {
            let server = s.spawn(|| {
                let refs: Vec<&dyn Experiment> = vec![&exp];
                tracker.serve(&refs, &opts, &cfg).expect("tracker serve")
            });
            let opts = {
                let mut o = opts_in(dir, seed);
                o.resume = resume;
                o
            };
            let refs: Vec<&dyn Experiment> = vec![&exp];
            run_peer(&refs, &opts, &PeerConfig::new(&addr.to_string(), "solo")).expect("peer");
            server.join().unwrap()
        })
    };
    let first = mini_fleet(&dir, 11, false);
    assert_eq!((first.adopted, first.computed), (0, 6));
    let ref_csv = std::fs::read(dir.join("dresume.csv")).unwrap();

    // Crash simulation: the manifest lags the row files (rows commit by
    // atomic rename *before* the manifest update). Keep every row file
    // but rewind the manifest to two entries and delete the CSV.
    let store_dir = dir.join(".cells").join("dresume");
    let manifest_path = store_dir.join("manifest.json");
    let mut manifest = ba_bench::artifact::Manifest::load(&manifest_path).expect("manifest");
    assert_eq!(manifest.completed.len(), 6);
    manifest.completed = manifest.completed.iter().copied().take(2).collect();
    manifest.save(&manifest_path).unwrap();
    std::fs::remove_file(dir.join("dresume.csv")).unwrap();

    // Restart with --resume: every row file is adopted from the crash
    // log — nothing recomputes — and the merge is byte-identical.
    let second = mini_fleet(&dir, 11, true);
    assert_eq!(
        (second.adopted, second.computed),
        (6, 0),
        "row files present on disk must be adopted, not recomputed"
    );
    assert_eq!(std::fs::read(dir.join("dresume.csv")).unwrap(), ref_csv);

    // A different seed changes the fingerprint: the store is invalid,
    // everything recomputes, and the artifact legitimately differs.
    let third = mini_fleet(&dir, 12, true);
    assert_eq!((third.adopted, third.computed), (0, 6));
    assert_ne!(std::fs::read(dir.join("dresume.csv")).unwrap(), ref_csv);
}

#[test]
fn mismatched_fingerprint_peer_is_rejected_at_hello() {
    let exp = MiniExp {
        name: "dreject".to_string(),
        cells: 2,
    };
    let dir = fresh_dir("reject");
    let opts = opts_in(&dir, 5);
    let tracker = Tracker::bind("127.0.0.1:0").unwrap();
    let addr = tracker.local_addr();
    let cfg = TrackerConfig::default();

    let report = std::thread::scope(|s| {
        let server = s.spawn(|| {
            let refs: Vec<&dyn Experiment> = vec![&exp];
            tracker.serve(&refs, &opts, &cfg).expect("tracker serve")
        });

        // Wrong seed → wrong suite fingerprint → rejected at Hello.
        let refs: Vec<&dyn Experiment> = vec![&exp];
        let wrong = opts_in(&dir, 6);
        match run_peer(
            &refs,
            &wrong,
            &PeerConfig::new(&addr.to_string(), "impostor"),
        ) {
            Err(PeerError::Rejected(reason)) => {
                assert!(reason.contains("fingerprint"), "unhelpful reason: {reason}")
            }
            other => panic!("expected rejection, got {other:?}"),
        }

        // A matching peer still completes the suite afterwards.
        let right = opts_in(&dir, 5);
        run_peer(&refs, &right, &PeerConfig::new(&addr.to_string(), "honest")).expect("peer");
        server.join().unwrap()
    });
    assert!(report.all_ok);
    assert_eq!(report.rejected, 1);
    assert_eq!(report.computed, 2);
}
