//! ReFeX (paper Sec. VI-A2): Recursive Feature eXtraction.
//!
//! Pipeline (Henderson et al., KDD'11, as summarised in the paper):
//!
//! 1. **Local features** — node degree.
//! 2. **Egonet features** — `N`, `E` (exactly OddBall's features) plus
//!    the number of edges leaving the egonet.
//! 3. **Recursion** — for `r` rounds, append the mean and sum over each
//!    node's neighbours of every current feature.
//! 4. **Pruning via vertical logarithmic binning** — each feature column
//!    is mapped to log-binned ranks (fraction `p` of nodes in bin 0, `p`
//!    of the rest in bin 1, …); columns whose binned vectors disagree on
//!    no more than a tolerance are duplicates and dropped.
//! 5. **Binary embeddings** — the surviving binned columns are expanded
//!    into binary indicator digits.

use ba_graph::{Graph, NodeId};
use ba_linalg::Matrix;

/// ReFeX hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct RefexConfig {
    /// Recursion depth (each round multiplies feature count by 3).
    pub rounds: usize,
    /// Vertical-binning fraction `p` (paper/ReFeX default 0.5).
    pub bin_fraction: f64,
    /// Max disagreeing nodes (as a fraction) for two binned columns to be
    /// considered duplicates.
    pub prune_tolerance: f64,
}

impl Default for RefexConfig {
    fn default() -> Self {
        Self {
            rounds: 2,
            bin_fraction: 0.5,
            prune_tolerance: 0.0,
        }
    }
}

/// A fitted ReFeX embedding.
#[derive(Debug, Clone)]
pub struct Refex {
    /// Binary embedding matrix, `n × d_bits`.
    pub embedding: Matrix,
    /// Number of retained (non-duplicate) binned columns.
    pub retained_columns: usize,
}

impl Refex {
    /// Runs the full ReFeX pipeline on a graph.
    pub fn extract(g: &Graph, cfg: RefexConfig) -> Refex {
        let base = base_features(g);
        let recursed = recurse(g, base, cfg.rounds);
        let binned: Vec<Vec<usize>> = (0..recursed.cols())
            .map(|j| vertical_log_bin(&recursed.col(j), cfg.bin_fraction))
            .collect();
        let keep = prune_duplicates(&binned, cfg.prune_tolerance);
        let retained: Vec<&Vec<usize>> = keep.iter().map(|&j| &binned[j]).collect();
        let embedding = to_binary(&retained, g.num_nodes());
        Refex {
            embedding,
            retained_columns: retained.len(),
        }
    }
}

/// Local + egonet features: `[degree, E, boundary]`.
fn base_features(g: &Graph) -> Matrix {
    let n = g.num_nodes();
    let feats = ba_graph::egonet::egonet_features(g);
    let mut x = Matrix::zeros(n, 3);
    for i in 0..n as NodeId {
        let deg = feats.n[i as usize];
        let e = feats.e[i as usize];
        // Boundary edges: edges from egonet members to the outside =
        // Σ_{v ∈ ego} deg(v) − 2·E (every internal edge consumes two
        // endpoint slots).
        let ego_degree_sum: f64 = g
            .neighbors(i)
            .iter()
            .map(|&v| g.degree(v) as f64)
            .sum::<f64>()
            + deg;
        let boundary = (ego_degree_sum - 2.0 * e).max(0.0);
        x[(i as usize, 0)] = deg;
        x[(i as usize, 1)] = e;
        x[(i as usize, 2)] = boundary;
    }
    x
}

/// One recursion round appends, for every feature column, the mean and
/// sum of that feature over each node's neighbours.
fn recurse(g: &Graph, mut x: Matrix, rounds: usize) -> Matrix {
    let n = g.num_nodes();
    for _ in 0..rounds {
        let d = x.cols();
        let mut next = Matrix::zeros(n, d * 3);
        for i in 0..n {
            for j in 0..d {
                next[(i, j)] = x[(i, j)];
            }
        }
        for i in 0..n as NodeId {
            let nbrs = g.neighbors(i);
            let deg = nbrs.len() as f64;
            for j in 0..d {
                let sum: f64 = nbrs.iter().map(|&v| x[(v as usize, j)]).sum();
                let mean = if deg > 0.0 { sum / deg } else { 0.0 };
                next[(i as usize, d + j)] = mean;
                next[(i as usize, 2 * d + j)] = sum;
            }
        }
        x = next;
    }
    x
}

/// Vertical logarithmic binning of one feature column: the lowest
/// `p`-fraction of nodes get bin 0, the next `p`-fraction of the rest
/// bin 1, and so on. Ties are ranked stably by node id.
fn vertical_log_bin(col: &[f64], p: f64) -> Vec<usize> {
    assert!(
        (0.0..1.0).contains(&p) && p > 0.0,
        "bin fraction must be in (0,1)"
    );
    let n = col.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| col[a].total_cmp(&col[b]).then(a.cmp(&b)));
    let mut bins = vec![0usize; n];
    let mut remaining = n;
    let mut start = 0usize;
    let mut bin = 0usize;
    while remaining > 0 {
        let take = ((remaining as f64 * p).ceil() as usize)
            .max(1)
            .min(remaining);
        for &node in &order[start..start + take] {
            bins[node] = bin;
        }
        start += take;
        remaining -= take;
        bin += 1;
    }
    bins
}

/// Keeps the first column of every duplicate group: columns whose binned
/// values differ on at most `tol`-fraction of nodes are duplicates.
fn prune_duplicates(binned: &[Vec<usize>], tol: f64) -> Vec<usize> {
    let mut keep: Vec<usize> = Vec::new();
    for (j, col) in binned.iter().enumerate() {
        let dup = keep.iter().any(|&k| {
            let other = &binned[k];
            let diff = col.iter().zip(other).filter(|(a, b)| a != b).count();
            (diff as f64) <= tol * col.len() as f64
        });
        if !dup {
            keep.push(j);
        }
    }
    keep
}

/// Expands binned columns into binary digit indicators.
fn to_binary(cols: &[&Vec<usize>], n: usize) -> Matrix {
    // Bits per column = ceil(log2(max_bin + 1)), at least 1.
    let widths: Vec<usize> = cols
        .iter()
        .map(|c| {
            let max = c.iter().copied().max().unwrap_or(0);
            (usize::BITS - max.leading_zeros()).max(1) as usize
        })
        .collect();
    let total: usize = widths.iter().sum();
    let mut out = Matrix::zeros(n, total.max(1));
    let mut offset = 0;
    for (c, &w) in cols.iter().zip(&widths) {
        for i in 0..n {
            let v = c[i];
            for bit in 0..w {
                out[(i, offset + bit)] = ((v >> bit) & 1) as f64;
            }
        }
        offset += w;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_graph::generators;

    #[test]
    fn vertical_binning_fractions() {
        let col: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let bins = vertical_log_bin(&col, 0.5);
        // First 8 values -> bin 0, next 4 -> bin 1, next 2 -> bin 2, ...
        assert_eq!(bins[0], 0);
        assert_eq!(bins[7], 0);
        assert_eq!(bins[8], 1);
        assert_eq!(bins[11], 1);
        assert_eq!(bins[12], 2);
        assert_eq!(bins[13], 2);
        assert_eq!(bins[14], 3);
        assert_eq!(bins[15], 4);
    }

    #[test]
    fn binning_is_monotone() {
        let col = [5.0, 1.0, 3.0, 9.0, 7.0, 2.0, 8.0, 0.0];
        let bins = vertical_log_bin(&col, 0.5);
        for i in 0..col.len() {
            for j in 0..col.len() {
                if col[i] < col[j] {
                    assert!(bins[i] <= bins[j], "monotonicity violated");
                }
            }
        }
    }

    #[test]
    fn duplicate_columns_pruned() {
        let a = vec![0, 0, 1, 1];
        let b = vec![0, 0, 1, 1]; // duplicate of a
        let c = vec![1, 1, 0, 0];
        let keep = prune_duplicates(&[a, b, c], 0.0);
        assert_eq!(keep, vec![0, 2]);
    }

    #[test]
    fn binary_expansion_widths() {
        let col = vec![0usize, 1, 2, 3, 4];
        let m = to_binary(&[&col], 5);
        assert_eq!(m.cols(), 3); // max bin 4 needs 3 bits
        assert_eq!(m.row(3), &[1.0, 1.0, 0.0]); // 3 = 0b011
        assert_eq!(m.row(4), &[0.0, 0.0, 1.0]); // 4 = 0b100
    }

    #[test]
    fn extraction_shapes_and_determinism() {
        let g = generators::barabasi_albert(150, 3, 7);
        let r1 = Refex::extract(&g, RefexConfig::default());
        let r2 = Refex::extract(&g, RefexConfig::default());
        assert_eq!(r1.embedding, r2.embedding);
        assert_eq!(r1.embedding.rows(), 150);
        assert!(
            r1.retained_columns >= 3,
            "pruned too much: {}",
            r1.retained_columns
        );
        // Binary values only.
        for &v in r1.embedding.as_slice() {
            assert!(v == 0.0 || v == 1.0);
        }
    }

    #[test]
    fn hub_differs_from_leaf_in_embedding() {
        let mut g = generators::erdos_renyi(100, 0.04, 9);
        generators::attach_isolated(&mut g, 10);
        generators::plant_near_star(&mut g, 0, 50, 11);
        let r = Refex::extract(&g, RefexConfig::default());
        // The star centre's embedding must differ from a typical node's.
        let hub = r.embedding.row(0);
        let other = r.embedding.row(57);
        assert_ne!(hub, other);
    }

    #[test]
    fn recursion_grows_features() {
        let g = generators::erdos_renyi(30, 0.2, 13);
        let base = base_features(&g);
        assert_eq!(base.cols(), 3);
        let rec = recurse(&g, base, 2);
        assert_eq!(rec.cols(), 27);
    }
}
