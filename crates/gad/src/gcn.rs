//! GCN plumbing: the symmetric-normalised adjacency
//! `Â = D̃^{-1/2} (A + I) D̃^{-1/2}` (Kipf & Welling) in sparse CSR form,
//! and the structural input features the graphs provide (our datasets
//! carry no exogenous node attributes, so we use the standard structural
//! feature fallback; recorded as a substitution in DESIGN.md).

use ba_graph::{CsrGraph, Graph, NodeId};
use ba_linalg::Matrix;

/// Sparse symmetric-normalised adjacency with self-loops.
#[derive(Debug, Clone)]
pub struct NormAdj {
    n: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl NormAdj {
    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sparse product `Â · X` for a dense `n × d` matrix.
    pub fn matmul(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.rows(), self.n, "feature row count mismatch");
        let d = x.cols();
        let mut out = Matrix::zeros(self.n, d);
        for i in 0..self.n {
            let row = &mut vec![0.0; d];
            for k in self.indptr[i]..self.indptr[i + 1] {
                let j = self.indices[k] as usize;
                let w = self.values[k];
                let xr = x.row(j);
                for (acc, &v) in row.iter_mut().zip(xr) {
                    *acc += w * v;
                }
            }
            out.row_mut(i).copy_from_slice(row);
        }
        out
    }
}

/// Builds `Â = D̃^{-1/2}(A + I)D̃^{-1/2}` from a graph.
pub fn normalized_adjacency(g: &Graph) -> NormAdj {
    let n = g.num_nodes();
    let csr = CsrGraph::from(g);
    // Degrees with self-loop.
    let dinv_sqrt: Vec<f64> = (0..n as NodeId)
        .map(|u| 1.0 / ((g.degree(u) as f64 + 1.0).sqrt()))
        .collect();
    let (offsets, cols) = (csr.offsets(), csr.cols());
    let mut indptr = Vec::with_capacity(n + 1);
    let mut indices = Vec::with_capacity(cols.len() + n);
    let mut values = Vec::with_capacity(cols.len() + n);
    indptr.push(0);
    for i in 0..n {
        // Self-loop entry first (sorted order not required for matmul).
        indices.push(i as u32);
        values.push(dinv_sqrt[i] * dinv_sqrt[i]);
        for &col in &cols[offsets[i]..offsets[i + 1]] {
            let j = col as usize;
            indices.push(j as u32);
            values.push(dinv_sqrt[i] * dinv_sqrt[j]);
        }
        indptr.push(indices.len());
    }
    NormAdj {
        n,
        indptr,
        indices,
        values,
    }
}

/// Structural input features per node: `[deg, ln(1+deg), E, ln(1+E),
/// clustering, ln(1+triangles)]`, column-standardised. These are exactly
/// the quantities OddBall-style detectors exploit, and give the GCN a
/// fair chance at the anomaly task without exogenous attributes.
pub fn structural_features(g: &Graph) -> Matrix {
    let n = g.num_nodes();
    let feats = ba_graph::egonet::egonet_features(g);
    let mut x = Matrix::zeros(n, 6);
    for i in 0..n {
        let deg = feats.n[i];
        let e = feats.e[i];
        let tri = (e - deg).max(0.0);
        let clustering = ba_graph::metrics::local_clustering(g, i as NodeId);
        x[(i, 0)] = deg;
        x[(i, 1)] = (1.0 + deg).ln();
        x[(i, 2)] = e;
        x[(i, 3)] = (1.0 + e).ln();
        x[(i, 4)] = clustering;
        x[(i, 5)] = (1.0 + tri).ln();
    }
    standardize_columns(&mut x);
    x
}

/// Standardises each column to zero mean / unit variance (no-op for
/// constant columns).
pub fn standardize_columns(x: &mut Matrix) {
    let (n, d) = (x.rows(), x.cols());
    for j in 0..d {
        let mut mean = 0.0;
        for i in 0..n {
            mean += x[(i, j)];
        }
        mean /= n as f64;
        let mut var = 0.0;
        for i in 0..n {
            let c = x[(i, j)] - mean;
            var += c * c;
        }
        var /= n as f64;
        let sd = var.sqrt();
        if sd < 1e-12 {
            continue;
        }
        for i in 0..n {
            x[(i, j)] = (x[(i, j)] - mean) / sd;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_graph::generators;

    #[test]
    fn norm_adj_rows_match_dense_formula() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let norm = normalized_adjacency(&g);
        // Dense reference.
        let n = 4;
        let mut dense = vec![vec![0.0; n]; n];
        for (i, row) in dense.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        for (u, v) in g.edges() {
            dense[u as usize][v as usize] = 1.0;
            dense[v as usize][u as usize] = 1.0;
        }
        let deg: Vec<f64> = (0..n).map(|i| dense[i].iter().sum()).collect();
        let x = Matrix::identity(n);
        let out = norm.matmul(&x);
        for i in 0..n {
            for j in 0..n {
                let expected = dense[i][j] / (deg[i].sqrt() * deg[j].sqrt());
                assert!(
                    (out[(i, j)] - expected).abs() < 1e-12,
                    "({i},{j}): {} vs {expected}",
                    out[(i, j)]
                );
            }
        }
    }

    #[test]
    fn norm_adj_fixed_point_eigenvector() {
        // Â = D̃^{-1/2}(A+I)D̃^{-1/2} has eigenvalue 1 with eigenvector
        // v = D̃^{1/2}·1: Âv = D̃^{-1/2}(A+I)·1 = D̃^{-1/2}·d̃ = v.
        let g = generators::erdos_renyi(50, 0.1, 3);
        let norm = normalized_adjacency(&g);
        let v = Matrix::from_fn(50, 1, |i, _| ((g.degree(i as u32) as f64) + 1.0).sqrt());
        let av = norm.matmul(&v);
        for i in 0..50 {
            assert!(
                (av[(i, 0)] - v[(i, 0)]).abs() < 1e-9,
                "node {i}: {} vs {}",
                av[(i, 0)],
                v[(i, 0)]
            );
        }
    }

    #[test]
    fn structural_features_standardised() {
        let g = generators::barabasi_albert(100, 3, 5);
        let x = structural_features(&g);
        assert_eq!(x.cols(), 6);
        for j in 0..x.cols() {
            let col = x.col(j);
            let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
            assert!(mean.abs() < 1e-9, "column {j} mean {mean}");
        }
    }

    #[test]
    fn standardize_handles_constant_column() {
        let mut x = Matrix::filled(5, 2, 3.0);
        standardize_columns(&mut x);
        // Constant columns are left untouched (not NaN).
        for i in 0..5 {
            assert_eq!(x[(i, 0)], 3.0);
        }
    }
}
