//! Exact (O(n²)) t-SNE, used to project the penultimate MLP features to
//! 2-D for the Figs. 8–9 scatterplots. The paper's test sets have a few
//! hundred nodes, where the exact algorithm is fast and has no
//! approximation knobs to tune.

use ba_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// t-SNE hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TsneConfig {
    /// Target perplexity (effective neighbourhood size).
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub lr: f64,
    /// Early-exaggeration factor applied for the first quarter of the
    /// iterations.
    pub exaggeration: f64,
    /// RNG seed for the initial layout.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        Self {
            perplexity: 30.0,
            iterations: 400,
            lr: 100.0,
            exaggeration: 12.0,
            seed: 0x75e,
        }
    }
}

/// Embeds the rows of `x` (`n × d`) into 2-D. Returns an `n × 2` matrix.
pub fn tsne(x: &Matrix, cfg: TsneConfig) -> Matrix {
    let n = x.rows();
    assert!(n >= 3, "t-SNE needs at least 3 points");
    let d = x.cols();
    // Pairwise squared distances.
    let mut d2 = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let mut acc = 0.0;
            let (ri, rj) = (x.row(i), x.row(j));
            for k in 0..d {
                let diff = ri[k] - rj[k];
                acc += diff * diff;
            }
            d2[i * n + j] = acc;
            d2[j * n + i] = acc;
        }
    }
    // Per-point precision via binary search on perplexity.
    let target_entropy = cfg.perplexity.max(2.0).ln();
    let mut p = vec![0.0f64; n * n];
    for i in 0..n {
        let mut beta = 1.0f64;
        let mut beta_min = f64::NEG_INFINITY;
        let mut beta_max = f64::INFINITY;
        for _ in 0..50 {
            // Row distribution at this beta.
            let mut sum = 0.0;
            let mut sum_dp = 0.0;
            for j in 0..n {
                if j == i {
                    continue;
                }
                let pij = (-beta * d2[i * n + j]).exp();
                sum += pij;
                sum_dp += pij * d2[i * n + j];
            }
            if sum <= 0.0 {
                break;
            }
            let entropy = beta * sum_dp / sum + sum.ln();
            let diff = entropy - target_entropy;
            if diff.abs() < 1e-5 {
                break;
            }
            if diff > 0.0 {
                beta_min = beta;
                beta = if beta_max.is_finite() {
                    (beta + beta_max) / 2.0
                } else {
                    beta * 2.0
                };
            } else {
                beta_max = beta;
                beta = if beta_min.is_finite() {
                    (beta + beta_min) / 2.0
                } else {
                    beta / 2.0
                };
            }
        }
        let mut sum = 0.0;
        for j in 0..n {
            if j != i {
                let v = (-beta * d2[i * n + j]).exp();
                p[i * n + j] = v;
                sum += v;
            }
        }
        if sum > 0.0 {
            for j in 0..n {
                p[i * n + j] /= sum;
            }
        }
    }
    // Symmetrise.
    let mut pj = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            pj[i * n + j] = ((p[i * n + j] + p[j * n + i]) / (2.0 * n as f64)).max(1e-12);
        }
    }

    // Initial layout: small Gaussian noise.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut y = vec![0.0f64; n * 2];
    for v in &mut y {
        *v = rng.gen_range(-1e-2..1e-2);
    }
    let mut velocity = vec![0.0f64; n * 2];
    let mut grad = vec![0.0f64; n * 2];
    let mut q = vec![0.0f64; n * n];

    let exag_until = cfg.iterations / 4;
    for iter in 0..cfg.iterations {
        let exag = if iter < exag_until {
            cfg.exaggeration
        } else {
            1.0
        };
        // Student-t affinities.
        let mut qsum = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = y[2 * i] - y[2 * j];
                let dy = y[2 * i + 1] - y[2 * j + 1];
                let w = 1.0 / (1.0 + dx * dx + dy * dy);
                q[i * n + j] = w;
                q[j * n + i] = w;
                qsum += 2.0 * w;
            }
        }
        // Gradient: 4 Σ_j (exag·p_ij − q_ij) w_ij (y_i − y_j).
        grad.fill(0.0);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let w = q[i * n + j];
                let qij = (w / qsum).max(1e-12);
                let coeff = 4.0 * (exag * pj[i * n + j] - qij) * w;
                let dx = y[2 * i] - y[2 * j];
                let dy = y[2 * i + 1] - y[2 * j + 1];
                grad[2 * i] += coeff * dx;
                grad[2 * i + 1] += coeff * dy;
            }
        }
        // Momentum gradient descent.
        let momentum = if iter < exag_until { 0.5 } else { 0.8 };
        for k in 0..2 * n {
            velocity[k] = momentum * velocity[k] - cfg.lr * grad[k];
            y[k] += velocity[k];
        }
        // Re-centre.
        let (mut cx, mut cy) = (0.0, 0.0);
        for i in 0..n {
            cx += y[2 * i];
            cy += y[2 * i + 1];
        }
        cx /= n as f64;
        cy /= n as f64;
        for i in 0..n {
            y[2 * i] -= cx;
            y[2 * i + 1] -= cy;
        }
    }
    Matrix::from_fn(n, 2, |i, j| y[2 * i + j])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated Gaussian blobs in 10-D.
    fn blob_data(n_per: usize) -> (Matrix, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(9);
        let n = n_per * 2;
        let mut x = Matrix::zeros(n, 10);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let pos = i < n_per;
            let center = if pos { 5.0 } else { -5.0 };
            for j in 0..10 {
                x[(i, j)] = center + rng.gen_range(-1.0..1.0);
            }
            labels.push(pos);
        }
        (x, labels)
    }

    #[test]
    fn separated_blobs_stay_separated() {
        let (x, labels) = blob_data(40);
        let cfg = TsneConfig {
            iterations: 250,
            perplexity: 15.0,
            ..TsneConfig::default()
        };
        let y = tsne(&x, cfg);
        // Compare mean intra-cluster vs inter-cluster 2-D distance.
        let dist = |a: usize, b: usize| -> f64 {
            let dx = y[(a, 0)] - y[(b, 0)];
            let dy = y[(a, 1)] - y[(b, 1)];
            (dx * dx + dy * dy).sqrt()
        };
        let n = y.rows();
        let (mut intra, mut inter, mut ni, mut ne) = (0.0, 0.0, 0.0, 0.0);
        for a in 0..n {
            for b in (a + 1)..n {
                if labels[a] == labels[b] {
                    intra += dist(a, b);
                    ni += 1.0;
                } else {
                    inter += dist(a, b);
                    ne += 1.0;
                }
            }
        }
        let intra_avg = intra / ni;
        let inter_avg = inter / ne;
        assert!(
            inter_avg > 1.5 * intra_avg,
            "clusters not separated: intra {intra_avg}, inter {inter_avg}"
        );
    }

    #[test]
    fn output_shape_and_determinism() {
        let (x, _) = blob_data(15);
        let cfg = TsneConfig {
            iterations: 60,
            ..TsneConfig::default()
        };
        let a = tsne(&x, cfg);
        let b = tsne(&x, cfg);
        assert_eq!(a.rows(), 30);
        assert_eq!(a.cols(), 2);
        assert_eq!(a, b);
    }

    #[test]
    fn output_is_centred() {
        let (x, _) = blob_data(20);
        let cfg = TsneConfig {
            iterations: 50,
            ..TsneConfig::default()
        };
        let y = tsne(&x, cfg);
        let mean_x: f64 = (0..y.rows()).map(|i| y[(i, 0)]).sum::<f64>() / y.rows() as f64;
        assert!(mean_x.abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least 3 points")]
    fn too_few_points_panics() {
        let x = Matrix::zeros(2, 3);
        tsne(&x, TsneConfig::default());
    }
}
