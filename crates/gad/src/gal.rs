//! GAL (paper Sec. VI-A1): a two-layer GCN trained with the
//! class-distribution-aware margin loss of Eq. (9),
//!
//! ```text
//! L(u) = E_{u+, u−} max{0, g(u,u−) − g(u,u+) + Δ_yu},  Δ_y = C / n_y^{¼}
//! ```
//!
//! where `g(u,u') = f(u)ᵀ f(u')` and `f` is the GCN. The margin is larger
//! for the minority (anomaly) class, which is GAL's mechanism for the
//! class-imbalance inherent to anomaly detection.

use crate::gcn::{normalized_adjacency, structural_features, NormAdj};
use crate::nn::{glorot, relu, relu_backward, seeded_rng, Adam};
use ba_graph::{Graph, NodeId};
use ba_linalg::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;

/// GAL hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct GalConfig {
    /// Hidden width of the first GCN layer.
    pub hidden: usize,
    /// Embedding dimension (second layer output).
    pub embed: usize,
    /// Margin constant `C` in `Δ_y = C / n_y^{¼}`.
    pub margin_c: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Triplets sampled per anchor per epoch.
    pub samples_per_anchor: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GalConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            embed: 16,
            margin_c: 1.0,
            epochs: 120,
            lr: 0.01,
            samples_per_anchor: 2,
            seed: 0x9a1,
        }
    }
}

/// A trained GAL model: the GCN weights plus the graph operator it was
/// trained against.
#[derive(Debug, Clone)]
pub struct Gal {
    cfg: GalConfig,
    w1: Matrix,
    w2: Matrix,
    norm: NormAdj,
    features: Matrix,
}

impl Gal {
    /// Trains GAL on `g` using `labels` restricted to `train_nodes`
    /// (paper: GAL is supervised; labels come from OddBall scores in the
    /// transfer pipeline).
    pub fn train(g: &Graph, labels: &[bool], train_nodes: &[NodeId], cfg: GalConfig) -> Gal {
        assert_eq!(labels.len(), g.num_nodes(), "label count mismatch");
        assert!(!train_nodes.is_empty(), "no training nodes");
        let norm = normalized_adjacency(g);
        let features = structural_features(g);
        let d_in = features.cols();
        let mut rng = seeded_rng(cfg.seed);
        let mut w1 = glorot(d_in, cfg.hidden, &mut rng);
        let mut w2 = glorot(cfg.hidden, cfg.embed, &mut rng);
        let mut opt1 = Adam::new(d_in, cfg.hidden, cfg.lr);
        let mut opt2 = Adam::new(cfg.hidden, cfg.embed, cfg.lr);

        // Class pools within the training set.
        let pos: Vec<NodeId> = train_nodes
            .iter()
            .copied()
            .filter(|&u| labels[u as usize])
            .collect();
        let neg: Vec<NodeId> = train_nodes
            .iter()
            .copied()
            .filter(|&u| !labels[u as usize])
            .collect();
        // Degenerate single-class training data: keep the random init
        // (the pipeline guards against this, but don't panic).
        if pos.is_empty() || neg.is_empty() {
            return Gal {
                cfg,
                w1,
                w2,
                norm,
                features,
            };
        }
        // Margins Δ_y = C / n_y^{1/4}.
        let delta_pos = cfg.margin_c / (pos.len() as f64).powf(0.25);
        let delta_neg = cfg.margin_c / (neg.len() as f64).powf(0.25);

        let ax = norm.matmul(&features); // cached: Â X
        let mut anchors: Vec<NodeId> = train_nodes.to_vec();
        for _epoch in 0..cfg.epochs {
            // Forward.
            let pre1 = ax.matmul(&w1); // n × hidden
            let h1 = relu(&pre1);
            let ah1 = norm.matmul(&h1);
            let emb = ah1.matmul(&w2); // n × embed

            // Margin-loss gradient w.r.t. embeddings, from sampled triplets.
            let mut d_emb = Matrix::zeros(emb.rows(), emb.cols());
            anchors.shuffle(&mut rng);
            let mut active = 0usize;
            for &u in &anchors {
                let (same_pool, diff_pool, delta) = if labels[u as usize] {
                    (&pos, &neg, delta_pos)
                } else {
                    (&neg, &pos, delta_neg)
                };
                if same_pool.len() < 2 {
                    continue;
                }
                for _ in 0..cfg.samples_per_anchor {
                    let upos = loop {
                        let c = same_pool[rng.gen_range(0..same_pool.len())];
                        if c != u {
                            break c;
                        }
                    };
                    let uneg = diff_pool[rng.gen_range(0..diff_pool.len())];
                    let (ui, pi, ni) = (u as usize, upos as usize, uneg as usize);
                    let g_pos: f64 = emb
                        .row(ui)
                        .iter()
                        .zip(emb.row(pi))
                        .map(|(a, b)| a * b)
                        .sum();
                    let g_neg: f64 = emb
                        .row(ui)
                        .iter()
                        .zip(emb.row(ni))
                        .map(|(a, b)| a * b)
                        .sum();
                    if g_neg - g_pos + delta <= 0.0 {
                        continue; // hinge inactive
                    }
                    active += 1;
                    // d/d f(u) = f(u−) − f(u+); d/d f(u−) = f(u); d/d f(u+) = −f(u)
                    for k in 0..emb.cols() {
                        let fu = emb[(ui, k)];
                        d_emb[(ui, k)] += emb[(ni, k)] - emb[(pi, k)];
                        d_emb[(ni, k)] += fu;
                        d_emb[(pi, k)] -= fu;
                    }
                }
            }
            if active == 0 {
                break; // all margins satisfied
            }
            // Normalise by the number of active triplets.
            d_emb.scale_mut(1.0 / active as f64);

            // Backward through the two GCN layers.
            let d_w2 = ah1.transpose().matmul(&d_emb);
            let d_ah1 = d_emb.matmul(&w2.transpose());
            let d_h1 = norm.matmul(&d_ah1); // Â is symmetric
            let d_pre1 = relu_backward(&d_h1, &pre1);
            let d_w1 = ax.transpose().matmul(&d_pre1);
            opt1.step(&mut w1, &d_w1);
            opt2.step(&mut w2, &d_w2);
        }
        Gal {
            cfg,
            w1,
            w2,
            norm,
            features,
        }
    }

    /// Embeds the graph the model was trained on.
    pub fn embed(&self) -> Matrix {
        let ax = self.norm.matmul(&self.features);
        let h1 = relu(&ax.matmul(&self.w1));
        self.norm.matmul(&h1).matmul(&self.w2)
    }

    /// Embeds a *different* graph with the trained weights (used to embed
    /// the poisoned graph with the clean-trained model in ablations; the
    /// main pipeline retrains, matching the paper's poisoning setting).
    pub fn embed_graph(&self, g: &Graph) -> Matrix {
        let norm = normalized_adjacency(g);
        let features = structural_features(g);
        let ax = norm.matmul(&features);
        let h1 = relu(&ax.matmul(&self.w1));
        norm.matmul(&h1).matmul(&self.w2)
    }

    /// The configuration used for training.
    pub fn config(&self) -> &GalConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_graph::generators;
    use ba_oddball::OddBall;

    fn labelled_graph(seed: u64) -> (Graph, Vec<bool>) {
        let mut g = generators::erdos_renyi(200, 0.04, seed);
        generators::attach_isolated(&mut g, seed + 1);
        let members: Vec<NodeId> = (0..12).collect();
        generators::plant_near_clique(&mut g, &members, 1.0, seed + 2);
        generators::plant_near_star(&mut g, 20, 40, seed + 3);
        let labels = OddBall::default().fit(&g).unwrap().labels_top_fraction(0.1);
        (g, labels)
    }

    #[test]
    fn embeddings_separate_classes() {
        let (g, labels) = labelled_graph(71);
        let train: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
        let cfg = GalConfig {
            epochs: 60,
            ..GalConfig::default()
        };
        let gal = Gal::train(&g, &labels, &train, cfg);
        let emb = gal.embed();
        // Mean within-class similarity must exceed cross-class similarity.
        let mut same = 0.0;
        let mut cross = 0.0;
        let mut same_n = 0.0;
        let mut cross_n = 0.0;
        let n = g.num_nodes();
        for i in (0..n).step_by(3) {
            for j in ((i + 1)..n).step_by(7) {
                let dot: f64 = emb.row(i).iter().zip(emb.row(j)).map(|(a, b)| a * b).sum();
                if labels[i] == labels[j] {
                    same += dot;
                    same_n += 1.0;
                } else {
                    cross += dot;
                    cross_n += 1.0;
                }
            }
        }
        let same_avg = same / same_n;
        let cross_avg = cross / cross_n;
        assert!(
            same_avg > cross_avg,
            "no separation: same {same_avg} vs cross {cross_avg}"
        );
    }

    #[test]
    fn training_is_deterministic() {
        let (g, labels) = labelled_graph(73);
        let train: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
        let cfg = GalConfig {
            epochs: 10,
            ..GalConfig::default()
        };
        let a = Gal::train(&g, &labels, &train, cfg).embed();
        let b = Gal::train(&g, &labels, &train, cfg).embed();
        assert_eq!(a, b);
    }

    #[test]
    fn single_class_training_does_not_panic() {
        let (g, _) = labelled_graph(75);
        let labels = vec![false; g.num_nodes()];
        let train: Vec<NodeId> = (0..50).collect();
        let cfg = GalConfig {
            epochs: 5,
            ..GalConfig::default()
        };
        let gal = Gal::train(&g, &labels, &train, cfg);
        let emb = gal.embed();
        assert_eq!(emb.rows(), g.num_nodes());
        assert!(emb.max_abs().is_finite());
    }

    #[test]
    fn embed_graph_applies_to_other_graph() {
        let (g, labels) = labelled_graph(77);
        let (g2, _) = labelled_graph(78);
        let train: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
        let cfg = GalConfig {
            epochs: 5,
            ..GalConfig::default()
        };
        let gal = Gal::train(&g, &labels, &train, cfg);
        let emb2 = gal.embed_graph(&g2);
        assert_eq!(emb2.rows(), g2.num_nodes());
        assert_eq!(emb2.cols(), cfg.embed);
    }
}
