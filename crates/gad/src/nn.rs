//! Tiny neural-network building blocks: seeded Glorot initialisation,
//! ReLU/sigmoid, and an Adam optimiser over `ba_linalg::Matrix`
//! parameters. Shared by the GCN (`gal`) and the MLP head (`mlp`).

use ba_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Glorot/Xavier-uniform initialisation of a `rows × cols` weight matrix.
pub fn glorot(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let limit = (6.0 / (rows + cols) as f64).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-limit..limit))
}

/// Convenience: a seeded RNG for deterministic training.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// ReLU applied element-wise, returning the activated copy.
pub fn relu(m: &Matrix) -> Matrix {
    m.map(|x| x.max(0.0))
}

/// Element-wise product with the ReLU mask of `pre` (backward pass):
/// `out = grad ⊙ 1[pre > 0]`.
pub fn relu_backward(grad: &Matrix, pre: &Matrix) -> Matrix {
    assert_eq!(grad.rows(), pre.rows());
    assert_eq!(grad.cols(), pre.cols());
    Matrix::from_fn(grad.rows(), grad.cols(), |i, j| {
        if pre[(i, j)] > 0.0 {
            grad[(i, j)]
        } else {
            0.0
        }
    })
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Adam optimiser state for one parameter matrix.
#[derive(Debug, Clone)]
pub struct Adam {
    m: Matrix,
    v: Matrix,
    t: usize,
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Stability epsilon.
    pub eps: f64,
}

impl Adam {
    /// Creates Adam state shaped like `param`.
    pub fn new(rows: usize, cols: usize, lr: f64) -> Self {
        Self {
            m: Matrix::zeros(rows, cols),
            v: Matrix::zeros(rows, cols),
            t: 0,
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// Applies one Adam update of `param` with gradient `grad`.
    pub fn step(&mut self, param: &mut Matrix, grad: &Matrix) {
        assert_eq!(param.rows(), grad.rows());
        assert_eq!(param.cols(), grad.cols());
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        let (m, v) = (self.m.as_mut_slice(), self.v.as_mut_slice());
        let g = grad.as_slice();
        let p = param.as_mut_slice();
        for i in 0..p.len() {
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g[i];
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g[i] * g[i];
            let mhat = m[i] / b1t;
            let vhat = v[i] / b2t;
            p[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glorot_within_limits_and_seeded() {
        let mut rng = seeded_rng(1);
        let w = glorot(10, 20, &mut rng);
        let limit = (6.0 / 30.0f64).sqrt();
        assert!(w.max_abs() <= limit);
        let mut rng2 = seeded_rng(1);
        assert_eq!(w, glorot(10, 20, &mut rng2));
    }

    #[test]
    fn relu_and_backward() {
        let pre = Matrix::from_rows(&[&[1.0, -2.0], &[0.0, 3.0]]);
        let act = relu(&pre);
        assert_eq!(act, Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 3.0]]));
        let grad = Matrix::filled(2, 2, 1.0);
        let back = relu_backward(&grad, &pre);
        assert_eq!(back, Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]));
    }

    #[test]
    fn sigmoid_stable_extremes() {
        assert!(sigmoid(100.0) > 0.999999);
        assert!(sigmoid(-100.0) < 1e-6);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
        assert!(sigmoid(-1000.0).is_finite());
    }

    #[test]
    fn adam_minimises_quadratic() {
        // Minimise ||W - T||² for a fixed target T.
        let target = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]]);
        let mut w = Matrix::zeros(2, 2);
        let mut opt = Adam::new(2, 2, 0.05);
        for _ in 0..600 {
            let grad = &w - &target; // d/dW ½||W-T||²
            opt.step(&mut w, &grad);
        }
        assert!((&w - &target).max_abs() < 1e-3, "w = {w:?}");
    }
}
