//! The transfer-attack methodology of paper Sec. VI-B, in four steps:
//!
//! 1. **Data pre-processing** — OddBall scores the clean graph; the top
//!    fraction of nodes get anomaly labels; nodes are split into train
//!    and test sets.
//! 2. **Target identification** — the GAD system (GAL or ReFeX + MLP) is
//!    trained on the clean graph; test nodes it predicts anomalous become
//!    the attack targets.
//! 3. **Graph poisoning** — `ba_core::BinarizedAttack` (designed for
//!    OddBall, black-box w.r.t. the GAD system) poisons the graph.
//! 4. **Evaluation** — the GAD system is retrained on the poisoned graph
//!    (poisoning setting); we report global AUC / F1 on the test set and
//!    the soft-label decrease `δ_B = (SL₀ − SL_B)/SL₀` on the targets.

use crate::gal::{Gal, GalConfig};
use crate::mlp::{Mlp, MlpConfig};
use crate::refex::{Refex, RefexConfig};
use ba_graph::{Graph, NodeId};
use ba_linalg::Matrix;
use ba_oddball::OddBall;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Which representation-learning GAD system to run.
#[derive(Debug, Clone, Copy)]
pub enum GadSystem {
    /// GAL: GCN embeddings with the anomaly margin loss.
    Gal(GalConfig),
    /// ReFeX: recursive structural binary embeddings.
    Refex(RefexConfig),
}

impl GadSystem {
    /// Short name for report tables.
    pub fn name(&self) -> &'static str {
        match self {
            GadSystem::Gal(_) => "GAL",
            GadSystem::Refex(_) => "ReFeX",
        }
    }

    /// Produces node embeddings for `g`. GAL is supervised (uses the
    /// labels on the training nodes); ReFeX is unsupervised.
    pub fn embed(&self, g: &Graph, labels: &[bool], train_nodes: &[NodeId]) -> Matrix {
        match self {
            GadSystem::Gal(cfg) => Gal::train(g, labels, train_nodes, *cfg).embed(),
            GadSystem::Refex(cfg) => Refex::extract(g, *cfg).embedding,
        }
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct TransferConfig {
    /// Fraction of nodes labelled anomalous by OddBall (step 1).
    pub label_fraction: f64,
    /// Fraction of nodes in the training split.
    pub train_fraction: f64,
    /// MLP head configuration.
    pub mlp: MlpConfig,
    /// RNG seed (split + heads).
    pub seed: u64,
}

impl Default for TransferConfig {
    fn default() -> Self {
        Self {
            label_fraction: 0.1,
            train_fraction: 0.7,
            mlp: MlpConfig::default(),
            seed: 0x7a5,
        }
    }
}

/// Evaluation artefacts for one (system, graph) pair.
#[derive(Debug, Clone)]
pub struct TransferOutcome {
    /// ROC AUC over the test nodes.
    pub auc: f64,
    /// F1 at threshold 0.5 over the test nodes.
    pub f1: f64,
    /// Soft labels (anomaly probabilities) of all nodes.
    pub soft_labels: Vec<f64>,
    /// Sum of soft labels over the designated target nodes.
    pub target_soft_sum: f64,
    /// Test nodes predicted anomalous (probability ≥ 0.5).
    pub predicted_anomalous: Vec<NodeId>,
    /// Penultimate MLP features of the *test* nodes (rows align with
    /// `test_nodes`), for the t-SNE plots.
    pub penultimate_test: Matrix,
    /// The test split used.
    pub test_nodes: Vec<NodeId>,
}

/// Deterministic train/test split of `0..n`.
pub fn train_test_split(n: usize, train_fraction: f64, seed: u64) -> (Vec<NodeId>, Vec<NodeId>) {
    let mut idx: Vec<NodeId> = (0..n as NodeId).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let cut = ((n as f64) * train_fraction).round() as usize;
    let train = idx[..cut].to_vec();
    let test = idx[cut..].to_vec();
    (train, test)
}

/// Step 1: OddBall labels for the clean graph.
pub fn oddball_labels(g: &Graph, fraction: f64) -> Vec<bool> {
    OddBall::default()
        .fit(g)
        // ba-lint: allow(panic-path) -- labelling precedes every pipeline stage; a detector that cannot fit the clean graph voids the run, so abort with context
        .expect("OddBall fit for labelling")
        .labels_top_fraction(fraction)
}

/// Steps 1–2 + 4 for a single graph: train the system, fit the MLP head,
/// and evaluate. `targets` selects whose soft labels are summed; pass the
/// clean-run `predicted_anomalous` when evaluating a poisoned graph.
pub fn evaluate_system(
    system: &GadSystem,
    g: &Graph,
    labels: &[bool],
    train_nodes: &[NodeId],
    test_nodes: &[NodeId],
    targets: &[NodeId],
    cfg: &TransferConfig,
) -> TransferOutcome {
    let emb = system.embed(g, labels, train_nodes);
    let train_idx: Vec<usize> = train_nodes.iter().map(|&u| u as usize).collect();
    let mlp = Mlp::train(&emb, labels, &train_idx, cfg.mlp);
    let soft = mlp.predict_proba(&emb);

    let test_scores: Vec<f64> = test_nodes.iter().map(|&u| soft[u as usize]).collect();
    let test_labels: Vec<bool> = test_nodes.iter().map(|&u| labels[u as usize]).collect();
    let auc = ba_stats::auc_roc(&test_scores, &test_labels);
    let f1 = ba_stats::f1_score(&test_scores, &test_labels, 0.5);
    let predicted_anomalous: Vec<NodeId> = test_nodes
        .iter()
        .copied()
        .filter(|&u| soft[u as usize] >= 0.5)
        .collect();
    let target_soft_sum: f64 = targets.iter().map(|&u| soft[u as usize]).sum();

    // Penultimate features of test nodes only (what Figs. 8–9 plot).
    let pen_all = mlp.penultimate(&emb);
    let penultimate_test = Matrix::from_fn(test_nodes.len(), pen_all.cols(), |r, c| {
        pen_all[(test_nodes[r] as usize, c)]
    });

    TransferOutcome {
        auc,
        f1,
        soft_labels: soft,
        target_soft_sum,
        predicted_anomalous,
        penultimate_test,
        test_nodes: test_nodes.to_vec(),
    }
}

/// Step 2 convenience: clean-graph run returning the identified targets
/// (test nodes predicted anomalous) together with the clean outcome.
pub fn identify_targets(
    system: &GadSystem,
    g: &Graph,
    labels: &[bool],
    train_nodes: &[NodeId],
    test_nodes: &[NodeId],
    cfg: &TransferConfig,
) -> (Vec<NodeId>, TransferOutcome) {
    // First pass with an empty target set to get predictions.
    let outcome = evaluate_system(system, g, labels, train_nodes, test_nodes, &[], cfg);
    let targets = outcome.predicted_anomalous.clone();
    // Re-derive the target soft sum for the identified targets.
    let target_soft_sum: f64 = targets
        .iter()
        .map(|&u| outcome.soft_labels[u as usize])
        .sum();
    let outcome = TransferOutcome {
        target_soft_sum,
        ..outcome
    };
    (targets, outcome)
}

/// The δ_B metric: decrease of the target soft-label sum relative to the
/// clean run.
pub fn delta_b(clean_soft_sum: f64, poisoned_soft_sum: f64) -> f64 {
    if clean_soft_sum == 0.0 {
        return 0.0;
    }
    (clean_soft_sum - poisoned_soft_sum) / clean_soft_sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_core::{AttackConfig, BinarizedAttack, StructuralAttack};
    use ba_graph::generators;

    fn test_graph(seed: u64) -> Graph {
        let mut g = generators::erdos_renyi(250, 0.03, seed);
        generators::attach_isolated(&mut g, seed + 1);
        generators::plant_near_clique(&mut g, &(0..12).collect::<Vec<_>>(), 1.0, seed + 2);
        generators::plant_near_star(&mut g, 20, 50, seed + 3);
        g
    }

    #[test]
    fn split_partitions_nodes() {
        let (train, test) = train_test_split(100, 0.7, 1);
        assert_eq!(train.len(), 70);
        assert_eq!(test.len(), 30);
        let mut all: Vec<NodeId> = train.iter().chain(test.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<NodeId>>());
        // Deterministic per seed.
        assert_eq!(train_test_split(100, 0.7, 1).0, train);
        assert_ne!(train_test_split(100, 0.7, 2).0, train);
    }

    #[test]
    fn refex_pipeline_detects_anomalies_cleanly() {
        let g = test_graph(81);
        let cfg = TransferConfig::default();
        let labels = oddball_labels(&g, cfg.label_fraction);
        let (train, test) = train_test_split(g.num_nodes(), cfg.train_fraction, cfg.seed);
        let system = GadSystem::Refex(RefexConfig::default());
        let outcome = evaluate_system(&system, &g, &labels, &train, &test, &[], &cfg);
        assert!(
            outcome.auc > 0.65,
            "ReFeX clean AUC too low: {}",
            outcome.auc
        );
        assert!(outcome.f1 > 0.3, "ReFeX clean F1 too low: {}", outcome.f1);
    }

    #[test]
    fn gal_pipeline_detects_anomalies_cleanly() {
        let g = test_graph(83);
        let cfg = TransferConfig::default();
        let labels = oddball_labels(&g, cfg.label_fraction);
        let (train, test) = train_test_split(g.num_nodes(), cfg.train_fraction, cfg.seed);
        let system = GadSystem::Gal(GalConfig {
            epochs: 60,
            ..GalConfig::default()
        });
        let outcome = evaluate_system(&system, &g, &labels, &train, &test, &[], &cfg);
        assert!(outcome.auc > 0.6, "GAL clean AUC too low: {}", outcome.auc);
    }

    #[test]
    fn transfer_attack_decreases_target_soft_labels_refex() {
        let g = test_graph(85);
        let cfg = TransferConfig::default();
        let labels = oddball_labels(&g, cfg.label_fraction);
        let (train, test) = train_test_split(g.num_nodes(), cfg.train_fraction, cfg.seed);
        let system = GadSystem::Refex(RefexConfig::default());
        let (targets, clean) = identify_targets(&system, &g, &labels, &train, &test, &cfg);
        assert!(
            !targets.is_empty(),
            "no targets identified on the clean graph"
        );

        // Step 3: poison with the OddBall-designed attack (black-box here).
        let attack = BinarizedAttack::new(AttackConfig::default())
            .with_iterations(60)
            .with_lambdas(vec![0.01, 0.05]);
        let budget = 20;
        let outcome = attack.attack(&g, &targets, budget).unwrap();
        let poisoned = outcome.poisoned_graph(&g, budget);

        // Step 4: the system is retrained on the poisoned graph against
        // the labels fixed during pre-processing (paper Sec. VI-B: labels
        // are assigned once, on the clean data; only the graph is
        // poisoned).
        let after = evaluate_system(&system, &poisoned, &labels, &train, &test, &targets, &cfg);
        let db = delta_b(clean.target_soft_sum, after.target_soft_sum);
        assert!(
            db > 0.05,
            "transfer attack ineffective: δ_B = {db} (clean {} → poisoned {})",
            clean.target_soft_sum,
            after.target_soft_sum
        );
        // Global accuracy should not collapse (targeted, unnoticeable).
        assert!(
            after.auc > clean.auc - 0.25,
            "AUC collapsed: {} → {}",
            clean.auc,
            after.auc
        );
    }

    #[test]
    fn delta_b_formula() {
        assert!((delta_b(10.0, 7.5) - 0.25).abs() < 1e-12);
        assert_eq!(delta_b(0.0, 1.0), 0.0);
    }
}
