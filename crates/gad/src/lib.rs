//! # ba-gad
//!
//! The representation-learning GAD systems used as **black-box transfer
//! targets** in paper Sec. VI, implemented from scratch on `ba-linalg`:
//!
//! * [`gal`] — **GAL** (Zhao et al. 2020): a two-layer GCN trained with
//!   the class-distribution-aware margin loss of paper Eq. (9)
//!   (`Δ_y = C / n_y^{1/4}`), producing node embeddings.
//! * [`refex`] — **ReFeX** (Henderson et al. 2011): recursive
//!   local + egonet feature aggregation, pruned and binarised through
//!   vertical logarithmic binning.
//! * [`mlp`] — the MLP classification head both systems feed (paper:
//!   "embeddings are fed into classifiers such as MLP"), with access to
//!   the penultimate hidden features visualised in Figs. 8–9.
//! * [`mod@tsne`] — exact t-SNE for the embedding scatterplots.
//! * [`pipeline`] — the four-step transfer-attack methodology of
//!   Sec. VI-B: data pre-processing (OddBall labelling), target
//!   identification, graph poisoning, and evaluation (AUC / F1 / soft
//!   labels δ_B).
//!
//! All training is deterministic given the config seeds.

pub mod gal;
pub mod gcn;
pub mod mlp;
pub mod nn;
pub mod pipeline;
pub mod refex;
pub mod tsne;

pub use gal::{Gal, GalConfig};
pub use gcn::{normalized_adjacency, structural_features, NormAdj};
pub use mlp::{Mlp, MlpConfig};
pub use pipeline::{
    evaluate_system, identify_targets, train_test_split, GadSystem, TransferConfig, TransferOutcome,
};
pub use refex::{Refex, RefexConfig};
pub use tsne::{tsne, TsneConfig};
