//! The MLP classification head (paper: embeddings "are then fed into
//! classifiers such as Multi-Layer Perceptron"). One hidden ReLU layer,
//! sigmoid output, binary cross-entropy, Adam. Exposes the penultimate
//! hidden activations for the t-SNE scatterplots of Figs. 8–9 and the
//! soft labels used for the δ_B metric.

use crate::nn::{glorot, relu, relu_backward, seeded_rng, sigmoid, Adam};
use ba_linalg::Matrix;

/// MLP hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct MlpConfig {
    /// Hidden width.
    pub hidden: usize,
    /// Training epochs (full-batch).
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Positive-class weight for the imbalanced BCE (anomalies are rare).
    pub pos_weight: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            hidden: 16,
            epochs: 300,
            lr: 0.02,
            pos_weight: 3.0,
            seed: 0x317,
        }
    }
}

/// A trained MLP binary classifier.
#[derive(Debug, Clone)]
pub struct Mlp {
    w1: Matrix,
    b1: Matrix,
    w2: Matrix,
    b2: f64,
}

impl Mlp {
    /// Trains on rows of `x` restricted to `train_idx` with boolean
    /// labels.
    pub fn train(x: &Matrix, labels: &[bool], train_idx: &[usize], cfg: MlpConfig) -> Mlp {
        assert_eq!(x.rows(), labels.len(), "label count mismatch");
        assert!(!train_idx.is_empty(), "empty training set");
        let d = x.cols();
        let mut rng = seeded_rng(cfg.seed);
        let mut w1 = glorot(d, cfg.hidden, &mut rng);
        let mut b1 = Matrix::zeros(1, cfg.hidden);
        let mut w2 = glorot(cfg.hidden, 1, &mut rng);
        let mut b2 = 0.0f64;
        let mut o_w1 = Adam::new(d, cfg.hidden, cfg.lr);
        let mut o_b1 = Adam::new(1, cfg.hidden, cfg.lr);
        let mut o_w2 = Adam::new(cfg.hidden, 1, cfg.lr);
        let mut o_b2 = Adam::new(1, 1, cfg.lr);
        let mut b2m = Matrix::zeros(1, 1);

        // Training submatrix.
        let m = train_idx.len();
        let xt = Matrix::from_fn(m, d, |r, c| x[(train_idx[r], c)]);
        let y: Vec<f64> = train_idx
            .iter()
            .map(|&i| if labels[i] { 1.0 } else { 0.0 })
            .collect();

        for _ in 0..cfg.epochs {
            // Forward.
            let mut pre1 = xt.matmul(&w1);
            for r in 0..m {
                for c in 0..cfg.hidden {
                    pre1[(r, c)] += b1[(0, c)];
                }
            }
            let h = relu(&pre1);
            let logits: Vec<f64> = (0..m)
                .map(|r| {
                    h.row(r)
                        .iter()
                        .zip(w2.col(0).iter())
                        .map(|(a, b)| a * b)
                        .sum::<f64>()
                        + b2
                })
                .collect();
            // Weighted BCE gradient on logits: w_i (σ(z) − y).
            let mut dz = Matrix::zeros(m, 1);
            let mut wsum = 0.0;
            for r in 0..m {
                let weight = if y[r] > 0.5 { cfg.pos_weight } else { 1.0 };
                dz[(r, 0)] = weight * (sigmoid(logits[r]) - y[r]);
                wsum += weight;
            }
            dz.scale_mut(1.0 / wsum);
            // Backward.
            let d_w2 = h.transpose().matmul(&dz);
            let d_b2 = dz.sum();
            let d_h = dz.matmul(&w2.transpose());
            let d_pre1 = relu_backward(&d_h, &pre1);
            let d_w1 = xt.transpose().matmul(&d_pre1);
            let mut d_b1 = Matrix::zeros(1, cfg.hidden);
            for r in 0..m {
                for c in 0..cfg.hidden {
                    d_b1[(0, c)] += d_pre1[(r, c)];
                }
            }
            o_w1.step(&mut w1, &d_w1);
            o_b1.step(&mut b1, &d_b1);
            o_w2.step(&mut w2, &d_w2);
            let d_b2m = Matrix::from_rows(&[&[d_b2]]);
            o_b2.step(&mut b2m, &d_b2m);
            b2 = b2m[(0, 0)];
        }
        Mlp { w1, b1, w2, b2 }
    }

    /// Penultimate hidden activations for all rows of `x` (`n × hidden`).
    pub fn penultimate(&self, x: &Matrix) -> Matrix {
        let mut pre1 = x.matmul(&self.w1);
        for r in 0..pre1.rows() {
            for c in 0..pre1.cols() {
                pre1[(r, c)] += self.b1[(0, c)];
            }
        }
        relu(&pre1)
    }

    /// Soft labels (anomaly probabilities) for all rows of `x`.
    pub fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        let h = self.penultimate(x);
        (0..x.rows())
            .map(|r| {
                let z: f64 = h
                    .row(r)
                    .iter()
                    .zip(self.w2.col(0).iter())
                    .map(|(a, b)| a * b)
                    .sum::<f64>()
                    + self.b2;
                sigmoid(z)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable blobs around (±2, ±2).
    fn blobs(n: usize) -> (Matrix, Vec<bool>) {
        let mut rng = seeded_rng(5);
        use rand::Rng;
        let mut x = Matrix::zeros(n, 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let pos = i % 4 == 0; // imbalanced 25% positive
            let cx = if pos { 2.0 } else { -2.0 };
            x[(i, 0)] = cx + rng.gen_range(-0.8..0.8);
            x[(i, 1)] = cx + rng.gen_range(-0.8..0.8);
            labels.push(pos);
        }
        (x, labels)
    }

    #[test]
    fn learns_separable_blobs() {
        let (x, labels) = blobs(200);
        let train: Vec<usize> = (0..150).collect();
        let mlp = Mlp::train(&x, &labels, &train, MlpConfig::default());
        let probs = mlp.predict_proba(&x);
        let mut correct = 0;
        for i in 150..200 {
            if (probs[i] >= 0.5) == labels[i] {
                correct += 1;
            }
        }
        assert!(correct >= 47, "only {correct}/50 test points correct");
    }

    #[test]
    fn auc_near_one_on_blobs() {
        let (x, labels) = blobs(200);
        let train: Vec<usize> = (0..150).collect();
        let mlp = Mlp::train(&x, &labels, &train, MlpConfig::default());
        let probs = mlp.predict_proba(&x);
        let test_scores: Vec<f64> = probs[150..].to_vec();
        let test_labels: Vec<bool> = labels[150..].to_vec();
        let auc = ba_stats::auc_roc(&test_scores, &test_labels);
        assert!(auc > 0.95, "AUC = {auc}");
    }

    #[test]
    fn penultimate_shape_and_nonnegativity() {
        let (x, labels) = blobs(80);
        let train: Vec<usize> = (0..80).collect();
        let cfg = MlpConfig {
            hidden: 7,
            epochs: 50,
            ..MlpConfig::default()
        };
        let mlp = Mlp::train(&x, &labels, &train, cfg);
        let h = mlp.penultimate(&x);
        assert_eq!(h.rows(), 80);
        assert_eq!(h.cols(), 7);
        for &v in h.as_slice() {
            assert!(v >= 0.0); // ReLU output
        }
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let (x, labels) = blobs(60);
        let train: Vec<usize> = (0..60).collect();
        let mlp = Mlp::train(
            &x,
            &labels,
            &train,
            MlpConfig {
                epochs: 30,
                ..MlpConfig::default()
            },
        );
        for p in mlp.predict_proba(&x) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn deterministic_training() {
        let (x, labels) = blobs(60);
        let train: Vec<usize> = (0..60).collect();
        let cfg = MlpConfig {
            epochs: 20,
            ..MlpConfig::default()
        };
        let a = Mlp::train(&x, &labels, &train, cfg).predict_proba(&x);
        let b = Mlp::train(&x, &labels, &train, cfg).predict_proba(&x);
        assert_eq!(a, b);
    }
}
