//! # ba-graph
//!
//! Graph substrate for the BinarizedAttack reproduction: a simple
//! undirected, unweighted graph (exactly the object OddBall and the
//! attacks operate on — paper Sec. III, `A ∈ {0,1}^{n×n}`), together with
//!
//! The substrate has two representations behind one read interface
//! ([`GraphView`]): the mutable [`Graph`] (sorted adjacency vectors) and
//! the frozen [`CsrGraph`] (contiguous offsets + column array) with its
//! copy-on-write [`DeltaOverlay`] for single-edge toggles — the attack
//! optimisers read through views and never rebuild the substrate.
//! On top of it:
//!
//! * random-graph generators (Erdős–Rényi, Barabási–Albert, power-law
//!   configuration graphs) and planted near-clique / near-star anomalies,
//! * BFS sampling of ~1000-node connected subgraphs (the paper's
//!   pre-processing of the real datasets),
//! * edge-list IO,
//! * egonet feature extraction `N_i = Σ_j A_ij`, `E_i = N_i + ½(A³)_ii`,
//!   both batch and incrementally under single-edge toggles (the greedy
//!   attack's hot loop), and
//! * graph statistics (degree distribution, clustering, components).
//!
//! ## Quick example
//!
//! ```
//! use ba_graph::{Graph, generators};
//! let g = generators::erdos_renyi(100, 0.05, 7);
//! let feats = ba_graph::egonet::egonet_features(&g);
//! assert_eq!(feats.n.len(), 100);
//! for i in 0..100 {
//!     // E_i >= N_i always: the spokes are part of the egonet.
//!     assert!(feats.e[i] >= feats.n[i]);
//! }
//! ```

pub mod adjacency;
pub mod csr;
pub mod egonet;
pub mod generators;
mod graph;
pub mod io;
pub mod metrics;
pub mod sample;
pub mod view;
pub mod zobrist;

pub use csr::{CsrGraph, DeltaOverlay, OverlayEdits};
pub use graph::{EdgeOp, Graph, NodeId};
pub use view::{EditableGraph, GraphView};
