//! # ba-graph
//!
//! Graph substrate for the BinarizedAttack reproduction: a simple
//! undirected, unweighted graph (exactly the object OddBall and the
//! attacks operate on — paper Sec. III, `A ∈ {0,1}^{n×n}`), together with
//!
//! The substrate has two representations behind one read interface
//! ([`GraphView`]): the mutable [`Graph`] (sorted adjacency vectors) and
//! the frozen [`CsrGraph`] (contiguous offsets + column array) with its
//! copy-on-write [`DeltaOverlay`] for single-edge toggles — the attack
//! optimisers read through views and never rebuild the substrate.
//! On top of it:
//!
//! * random-graph generators (Erdős–Rényi, Barabási–Albert, power-law
//!   configuration graphs) and planted near-clique / near-star anomalies,
//! * BFS sampling of ~1000-node connected subgraphs (the paper's
//!   pre-processing of the real datasets),
//! * edge-list IO,
//! * egonet feature extraction `N_i = Σ_j A_ij`, `E_i = N_i + ½(A³)_ii`,
//!   both batch and incrementally under single-edge toggles (the greedy
//!   attack's hot loop), and
//! * graph statistics (degree distribution, clustering, components).
//!
//! ## Quick example
//!
//! ```
//! use ba_graph::{Graph, generators};
//! let g = generators::erdos_renyi(100, 0.05, 7);
//! let feats = ba_graph::egonet::egonet_features(&g);
//! assert_eq!(feats.n.len(), 100);
//! for i in 0..100 {
//!     // E_i >= N_i always: the spokes are part of the egonet.
//!     assert!(feats.e[i] >= feats.n[i]);
//! }
//! ```
//!
//! ## Scaling
//!
//! For instances past ~10^5 nodes, the [`compact`] module provides a
//! u32-compacted CSR ([`CsrGraph32`]) built directly from streamed
//! generators ([`generators::erdos_renyi_stream`],
//! [`generators::barabasi_albert_stream`]) without materialising an
//! edge list; DESIGN.md §13 states the memory model and determinism
//! contract. Public-API documentation in this crate is enforced twice:
//! by `#![warn(missing_docs)]` below and by ba-lint's `missing-docs`
//! rule in CI.

#![warn(missing_docs)]

/// Dense adjacency-matrix helpers for small cross-check graphs.
pub mod adjacency;
/// u32-compacted CSR and the streamed two-pass builder (scale model,
/// DESIGN.md §13).
pub mod compact;
/// Frozen CSR representation and its copy-on-write delta overlay.
pub mod csr;
/// Egonet feature extraction, batch and incremental.
pub mod egonet;
/// Random-graph generators (in-memory and streamed) and anomaly
/// planting.
pub mod generators;
mod graph;
/// Edge-list reading and writing.
pub mod io;
/// Graph statistics: components, clustering, degree distributions.
pub mod metrics;
/// BFS subgraph sampling.
pub mod sample;
/// The read-only [`GraphView`] interface and sorted-merge kernels.
pub mod view;
/// Zobrist edge-set hashing.
pub mod zobrist;

pub use compact::{CompactError, CsrGraph32};
pub use csr::{CsrGraph, DeltaOverlay, OverlayEdits};
pub use graph::{EdgeOp, Graph, NodeId};
pub use view::{EditableGraph, GraphView};
