//! The read/edit abstraction over graph representations.
//!
//! Every consumer of graph structure in this workspace — egonet feature
//! extraction, OddBall fitting, the analytic attack gradient, metrics,
//! sampling — needs exactly four primitives: node count, degree, a
//! *sorted* neighbour slice, and edge membership. [`GraphView`] captures
//! them, and provides the sorted-merge kernels (common-neighbour count /
//! weighted sum, triangle count) on top, so the algorithms run unchanged
//! over the mutable [`Graph`](crate::Graph), the immutable
//! [`CsrGraph`](crate::CsrGraph), and the copy-on-write
//! [`DeltaOverlay`](crate::DeltaOverlay).
//!
//! [`EditableGraph`] is the matching mutation trait for the two
//! representations that support single-edge toggles (`Graph` and
//! `DeltaOverlay`); the incremental egonet updater is generic over both.

use crate::{EdgeOp, NodeId};

/// Read access to an undirected simple graph with sorted adjacency.
///
/// The contract every implementation upholds:
/// * `neighbors_sorted(u)` is strictly increasing and never contains `u`;
/// * symmetry: `v ∈ neighbors_sorted(u)` ⇔ `u ∈ neighbors_sorted(v)`;
/// * `degree(u) == neighbors_sorted(u).len()` and `num_edges` is half the
///   total adjacency length.
///
/// ```
/// use ba_graph::{CsrGraph, Graph, GraphView};
///
/// fn triangles_at<V: GraphView + ?Sized>(g: &V, u: u32) -> usize {
///     g.neighbors_sorted(u)
///         .iter()
///         .map(|&v| g.common_neighbors(u, v))
///         .sum::<usize>()
///         / 2
/// }
///
/// let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 2), (2, 3)]);
/// let csr = CsrGraph::from(&g);
/// // The same generic code runs over both representations.
/// assert_eq!(triangles_at(&g, 2), 1);
/// assert_eq!(triangles_at(&csr, 2), 1);
/// ```
pub trait GraphView {
    /// Number of nodes.
    fn num_nodes(&self) -> usize;

    /// Number of (undirected) edges.
    fn num_edges(&self) -> usize;

    /// The neighbours of `u` in strictly increasing order.
    fn neighbors_sorted(&self, u: NodeId) -> &[NodeId];

    /// Degree of node `u`.
    #[inline]
    fn degree(&self, u: NodeId) -> usize {
        self.neighbors_sorted(u).len()
    }

    /// Whether the edge `{u, v}` exists (binary search on the sorted
    /// neighbour slice of the lower-degree endpoint).
    #[inline]
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors_sorted(a).binary_search(&b).is_ok()
    }

    /// Number of common neighbours of `u` and `v` — equals `(A²)_uv` for
    /// a binary symmetric adjacency with zero diagonal. Sorted-merge scan
    /// in `O(deg(u) + deg(v))`.
    fn common_neighbors(&self, u: NodeId, v: NodeId) -> usize {
        let mut count = 0;
        merge_common(self.neighbors_sorted(u), self.neighbors_sorted(v), |_| {
            count += 1
        });
        count
    }

    /// Sum of `f(m)` over all common neighbours `m` of `u` and `v`, in
    /// increasing `m` — this is `(A·diag(w)·A)_uv` with `w_m = f(m)`, the
    /// second-order term of the analytic attack gradient.
    fn common_neighbor_sum(&self, u: NodeId, v: NodeId, mut f: impl FnMut(NodeId) -> f64) -> f64 {
        let mut sum = 0.0;
        merge_common(self.neighbors_sorted(u), self.neighbors_sorted(v), |m| {
            sum += f(m)
        });
        sum
    }

    /// Number of triangles through node `u` (= `(A³)_uu / 2`).
    fn triangles_at(&self, u: NodeId) -> usize {
        let nbrs = self.neighbors_sorted(u);
        let mut count = 0usize;
        for (ai, &a) in nbrs.iter().enumerate() {
            // Count each neighbour pair {a, b} with a < b once, walking
            // the intersection of nbrs(u) (suffix past a) with nbrs(a).
            let rest = &nbrs[ai + 1..];
            let others = self.neighbors_sorted(a);
            merge_common(rest, others, |_| count += 1);
        }
        count
    }

    /// Degree sequence as f64 (the attack's `N` feature vector).
    fn degrees_f64(&self) -> Vec<f64> {
        (0..self.num_nodes() as NodeId)
            .map(|u| self.degree(u) as f64)
            .collect()
    }

    /// `true` when deleting `{u, v}` leaves no endpoint isolated — the
    /// paper's attacks never create singleton nodes.
    #[inline]
    fn deletion_keeps_no_singletons(&self, u: NodeId, v: NodeId) -> bool {
        self.degree(u) > 1 && self.degree(v) > 1
    }

    /// Calls `f(u, v)` for every edge with `u < v`, in lexicographic
    /// order.
    fn for_each_edge(&self, mut f: impl FnMut(NodeId, NodeId)) {
        for u in 0..self.num_nodes() as NodeId {
            for &v in self.neighbors_sorted(u) {
                if v > u {
                    f(u, v);
                }
            }
        }
    }
}

/// Mutation access: single-edge toggles over an undirected simple graph.
/// Implemented by [`Graph`](crate::Graph) (in place) and
/// [`DeltaOverlay`](crate::DeltaOverlay) (copy-on-write over a frozen
/// CSR base).
pub trait EditableGraph: GraphView {
    /// Adds the edge `{u, v}`; returns `true` if it was new. Self-loops
    /// are rejected.
    fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool;

    /// Removes the edge `{u, v}`; returns `true` if it existed.
    fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool;

    /// Toggles the edge `{u, v}`; `None` for self-loops.
    fn toggle_edge(&mut self, u: NodeId, v: NodeId) -> Option<EdgeOp> {
        if u == v {
            return None;
        }
        if self.has_edge(u, v) {
            self.remove_edge(u, v);
            Some(EdgeOp::new(u, v, false))
        } else {
            self.add_edge(u, v);
            Some(EdgeOp::new(u, v, true))
        }
    }

    /// Applies a list of edge ops (as produced by an attack).
    ///
    /// # Panics
    /// Panics in debug builds if an op is inconsistent with the current
    /// state, since that indicates a corrupted attack result.
    fn apply_ops(&mut self, ops: &[EdgeOp]) {
        for op in ops {
            if op.added {
                let fresh = self.add_edge(op.u, op.v);
                debug_assert!(fresh, "op adds an existing edge {op:?}");
            } else {
                let existed = self.remove_edge(op.u, op.v);
                debug_assert!(existed, "op deletes a missing edge {op:?}");
            }
        }
    }
}

/// When one list is at least this many times longer than the other, the
/// intersection switches from the linear merge to galloping search: the
/// short list is scanned and each element binary-searched in the
/// remaining suffix of the long one. `O(short · log(long))` beats
/// `O(short + long)` exactly in the hub-vs-leaf pairs power-law graphs
/// are full of.
const GALLOP_RATIO: usize = 16;

/// Calls `f(m)` for every element of the intersection of two strictly
/// increasing slices, in increasing order. The shared kernel behind the
/// common-neighbour primitives; iteration order is part of the contract —
/// gradient sums must be bit-reproducible across representations, so
/// every strategy below emits the intersection in the same ascending
/// order (only the number of comparisons differs, never the output).
#[inline]
pub fn merge_common(a: &[NodeId], b: &[NodeId], mut f: impl FnMut(NodeId)) {
    if a.len().saturating_mul(GALLOP_RATIO) < b.len() {
        return gallop_common(a, b, &mut f);
    }
    if b.len().saturating_mul(GALLOP_RATIO) < a.len() {
        return gallop_common(b, a, &mut f);
    }
    // Balanced pair: branch-light linear merge. The mismatch arms
    // advance via comparison results instead of a three-way branch, so
    // the loop body stays short and mostly branch-predictable even on
    // near-random id interleavings.
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        if x == y {
            f(x);
            i += 1;
            j += 1;
        } else {
            i += (x < y) as usize;
            j += (y < x) as usize;
        }
    }
}

/// Intersection by galloping: `short` is scanned in order and each
/// element is binary-searched in the still-unconsumed suffix of `long`.
/// Emits ascending — identical output to the linear merge.
fn gallop_common(short: &[NodeId], long: &[NodeId], f: &mut impl FnMut(NodeId)) {
    let mut suffix = long;
    for &x in short {
        let pos = suffix.partition_point(|&y| y < x);
        suffix = &suffix[pos..];
        match suffix.first() {
            Some(&y) if y == x => {
                f(x);
                suffix = &suffix[1..];
            }
            Some(_) => {}
            None => break,
        }
    }
}

/// Fused intersection kernel for the pair-gradient engine: returns the
/// intersection size together with `Σ w[m]` over the common elements
/// `m`, accumulated in ascending `m` — the same order (and therefore
/// the same floating-point sum, bit for bit) as feeding
/// [`merge_common`] into a running total. One pass, no closure
/// indirection in the hot loop.
#[inline]
pub fn merge_count_weighted(a: &[NodeId], b: &[NodeId], w: &[f64]) -> (usize, f64) {
    let mut count = 0usize;
    let mut sum = 0.0f64;
    merge_common(a, b, |m| {
        count += 1;
        sum += w[m as usize];
    });
    (count, sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_common_intersections() {
        let mut out = Vec::new();
        merge_common(&[1, 3, 5, 7], &[2, 3, 4, 7, 9], |m| out.push(m));
        assert_eq!(out, vec![3, 7]);
        out.clear();
        merge_common(&[], &[1, 2], |m| out.push(m));
        assert!(out.is_empty());
    }

    /// Reference two-pointer intersection, kept branch-heavy on purpose:
    /// the production kernel (branch-light merge + galloping dispatch)
    /// must emit exactly this sequence.
    fn reference_intersection(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::new();
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    #[test]
    fn gallop_path_matches_linear_merge() {
        // Skewed enough (5 vs 1000, ratio > 16) to take the galloping
        // path in both argument orders.
        let short: Vec<NodeId> = vec![3, 40, 41, 500, 999];
        let long: Vec<NodeId> = (0..1000).collect();
        for (a, b) in [(&short, &long), (&long, &short)] {
            let mut got = Vec::new();
            merge_common(a, b, |m| got.push(m));
            assert_eq!(got, reference_intersection(a, b));
        }
        // Short list with elements past the end of the long one.
        let tail: Vec<NodeId> = vec![999, 1000, 2000];
        let mut got = Vec::new();
        merge_common(&tail, &long, |m| got.push(m));
        assert_eq!(got, vec![999]);
        // Disjoint skewed pair.
        let odd: Vec<NodeId> = (0..50).map(|k| 2 * k + 1).collect();
        let even: Vec<NodeId> = (0..2000).map(|k| 2 * k).collect();
        let mut got = Vec::new();
        merge_common(&odd, &even, |m| got.push(m));
        assert!(got.is_empty());
    }

    #[test]
    fn merge_count_weighted_matches_unfused() {
        let a: Vec<NodeId> = vec![0, 2, 5, 9, 11];
        let b: Vec<NodeId> = vec![1, 2, 3, 5, 11, 12];
        let w: Vec<f64> = (0..13).map(|k| 0.1 + k as f64 * 0.3).collect();
        let (count, sum) = merge_count_weighted(&a, &b, &w);
        let mut rcount = 0usize;
        let mut rsum = 0.0f64;
        merge_common(&a, &b, |m| {
            rcount += 1;
            rsum += w[m as usize];
        });
        assert_eq!(count, rcount);
        assert_eq!(sum.to_bits(), rsum.to_bits());
    }

    #[test]
    fn trait_kernels_on_graph() {
        // K4 minus one edge: check the provided methods through the trait.
        let g = crate::Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)]);
        assert_eq!(GraphView::common_neighbors(&g, 2, 3), 2); // via 0 and 1
        assert_eq!(GraphView::triangles_at(&g, 0), 2);
        assert!(GraphView::has_edge(&g, 3, 1));
        assert!(!GraphView::has_edge(&g, 2, 3));
        let s = GraphView::common_neighbor_sum(&g, 2, 3, |m| (m + 1) as f64);
        assert_eq!(s, 3.0); // m = 0 and m = 1
        let mut edges = Vec::new();
        g.for_each_edge(|u, v| edges.push((u, v)));
        assert_eq!(edges, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)]);
    }
}
