//! The read/edit abstraction over graph representations.
//!
//! Every consumer of graph structure in this workspace — egonet feature
//! extraction, OddBall fitting, the analytic attack gradient, metrics,
//! sampling — needs exactly four primitives: node count, degree, a
//! *sorted* neighbour slice, and edge membership. [`GraphView`] captures
//! them, and provides the sorted-merge kernels (common-neighbour count /
//! weighted sum, triangle count) on top, so the algorithms run unchanged
//! over the mutable [`Graph`](crate::Graph), the immutable
//! [`CsrGraph`](crate::CsrGraph), and the copy-on-write
//! [`DeltaOverlay`](crate::DeltaOverlay).
//!
//! [`EditableGraph`] is the matching mutation trait for the two
//! representations that support single-edge toggles (`Graph` and
//! `DeltaOverlay`); the incremental egonet updater is generic over both.

use crate::{EdgeOp, NodeId};

/// Read access to an undirected simple graph with sorted adjacency.
///
/// The contract every implementation upholds:
/// * `neighbors_sorted(u)` is strictly increasing and never contains `u`;
/// * symmetry: `v ∈ neighbors_sorted(u)` ⇔ `u ∈ neighbors_sorted(v)`;
/// * `degree(u) == neighbors_sorted(u).len()` and `num_edges` is half the
///   total adjacency length.
pub trait GraphView {
    /// Number of nodes.
    fn num_nodes(&self) -> usize;

    /// Number of (undirected) edges.
    fn num_edges(&self) -> usize;

    /// The neighbours of `u` in strictly increasing order.
    fn neighbors_sorted(&self, u: NodeId) -> &[NodeId];

    /// Degree of node `u`.
    #[inline]
    fn degree(&self, u: NodeId) -> usize {
        self.neighbors_sorted(u).len()
    }

    /// Whether the edge `{u, v}` exists (binary search on the sorted
    /// neighbour slice of the lower-degree endpoint).
    #[inline]
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors_sorted(a).binary_search(&b).is_ok()
    }

    /// Number of common neighbours of `u` and `v` — equals `(A²)_uv` for
    /// a binary symmetric adjacency with zero diagonal. Sorted-merge scan
    /// in `O(deg(u) + deg(v))`.
    fn common_neighbors(&self, u: NodeId, v: NodeId) -> usize {
        let mut count = 0;
        merge_common(self.neighbors_sorted(u), self.neighbors_sorted(v), |_| {
            count += 1
        });
        count
    }

    /// Sum of `f(m)` over all common neighbours `m` of `u` and `v`, in
    /// increasing `m` — this is `(A·diag(w)·A)_uv` with `w_m = f(m)`, the
    /// second-order term of the analytic attack gradient.
    fn common_neighbor_sum(&self, u: NodeId, v: NodeId, mut f: impl FnMut(NodeId) -> f64) -> f64 {
        let mut sum = 0.0;
        merge_common(self.neighbors_sorted(u), self.neighbors_sorted(v), |m| {
            sum += f(m)
        });
        sum
    }

    /// Number of triangles through node `u` (= `(A³)_uu / 2`).
    fn triangles_at(&self, u: NodeId) -> usize {
        let nbrs = self.neighbors_sorted(u);
        let mut count = 0usize;
        for (ai, &a) in nbrs.iter().enumerate() {
            // Count each neighbour pair {a, b} with a < b once, walking
            // the intersection of nbrs(u) (suffix past a) with nbrs(a).
            let rest = &nbrs[ai + 1..];
            let others = self.neighbors_sorted(a);
            merge_common(rest, others, |_| count += 1);
        }
        count
    }

    /// Degree sequence as f64 (the attack's `N` feature vector).
    fn degrees_f64(&self) -> Vec<f64> {
        (0..self.num_nodes() as NodeId)
            .map(|u| self.degree(u) as f64)
            .collect()
    }

    /// `true` when deleting `{u, v}` leaves no endpoint isolated — the
    /// paper's attacks never create singleton nodes.
    #[inline]
    fn deletion_keeps_no_singletons(&self, u: NodeId, v: NodeId) -> bool {
        self.degree(u) > 1 && self.degree(v) > 1
    }

    /// Calls `f(u, v)` for every edge with `u < v`, in lexicographic
    /// order.
    fn for_each_edge(&self, mut f: impl FnMut(NodeId, NodeId)) {
        for u in 0..self.num_nodes() as NodeId {
            for &v in self.neighbors_sorted(u) {
                if v > u {
                    f(u, v);
                }
            }
        }
    }
}

/// Mutation access: single-edge toggles over an undirected simple graph.
/// Implemented by [`Graph`](crate::Graph) (in place) and
/// [`DeltaOverlay`](crate::DeltaOverlay) (copy-on-write over a frozen
/// CSR base).
pub trait EditableGraph: GraphView {
    /// Adds the edge `{u, v}`; returns `true` if it was new. Self-loops
    /// are rejected.
    fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool;

    /// Removes the edge `{u, v}`; returns `true` if it existed.
    fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool;

    /// Toggles the edge `{u, v}`; `None` for self-loops.
    fn toggle_edge(&mut self, u: NodeId, v: NodeId) -> Option<EdgeOp> {
        if u == v {
            return None;
        }
        if self.has_edge(u, v) {
            self.remove_edge(u, v);
            Some(EdgeOp::new(u, v, false))
        } else {
            self.add_edge(u, v);
            Some(EdgeOp::new(u, v, true))
        }
    }

    /// Applies a list of edge ops (as produced by an attack).
    ///
    /// # Panics
    /// Panics in debug builds if an op is inconsistent with the current
    /// state, since that indicates a corrupted attack result.
    fn apply_ops(&mut self, ops: &[EdgeOp]) {
        for op in ops {
            if op.added {
                let fresh = self.add_edge(op.u, op.v);
                debug_assert!(fresh, "op adds an existing edge {op:?}");
            } else {
                let existed = self.remove_edge(op.u, op.v);
                debug_assert!(existed, "op deletes a missing edge {op:?}");
            }
        }
    }
}

/// Calls `f(m)` for every element of the intersection of two strictly
/// increasing slices, in increasing order. The shared kernel behind the
/// common-neighbour primitives; iteration order is part of the contract —
/// gradient sums must be bit-reproducible across representations.
#[inline]
pub fn merge_common(a: &[NodeId], b: &[NodeId], mut f: impl FnMut(NodeId)) {
    // Galloping would win on very skewed degree pairs; the plain merge is
    // branch-predictable and already O(deg_i + deg_j), which is what the
    // gradient-assembly complexity bound needs.
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                f(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_common_intersections() {
        let mut out = Vec::new();
        merge_common(&[1, 3, 5, 7], &[2, 3, 4, 7, 9], |m| out.push(m));
        assert_eq!(out, vec![3, 7]);
        out.clear();
        merge_common(&[], &[1, 2], |m| out.push(m));
        assert!(out.is_empty());
    }

    #[test]
    fn trait_kernels_on_graph() {
        // K4 minus one edge: check the provided methods through the trait.
        let g = crate::Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)]);
        assert_eq!(GraphView::common_neighbors(&g, 2, 3), 2); // via 0 and 1
        assert_eq!(GraphView::triangles_at(&g, 0), 2);
        assert!(GraphView::has_edge(&g, 3, 1));
        assert!(!GraphView::has_edge(&g, 2, 3));
        let s = GraphView::common_neighbor_sum(&g, 2, 3, |m| (m + 1) as f64);
        assert_eq!(s, 3.0); // m = 0 and m = 1
        let mut edges = Vec::new();
        g.for_each_edge(|u, v| edges.push((u, v)));
        assert_eq!(edges, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)]);
    }
}
