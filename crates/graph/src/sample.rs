//! Connected-subgraph sampling.
//!
//! The paper pre-processes each real dataset by "randomly sampling the
//! connected sub-graph with around 1000 nodes from the whole graph"
//! (Sec. VIII-A2). We implement this as a randomised BFS (snowball
//! sample) from a random seed node, which keeps the sample connected and
//! preserves local structure — exactly what the egonet features measure.

use crate::view::GraphView;
use crate::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Samples a connected subgraph of about `target` nodes by randomised BFS
/// from a random start, then induces the subgraph on the visited set.
/// Returns the compacted subgraph and the original ids of its nodes.
///
/// If the component containing the start node is smaller than `target`,
/// the whole component is returned.
pub fn bfs_sample<V: GraphView + ?Sized>(g: &V, target: usize, seed: u64) -> (Graph, Vec<NodeId>) {
    let n = g.num_nodes();
    assert!(n > 0, "cannot sample an empty graph");
    let target = target.min(n);
    let mut rng = StdRng::seed_from_u64(seed);
    // Start from a node of non-trivial degree so we don't strand in a tiny
    // component.
    let start = {
        let mut best = rng.gen_range(0..n) as NodeId;
        for _ in 0..16 {
            let cand = rng.gen_range(0..n) as NodeId;
            if g.degree(cand) > g.degree(best) {
                best = cand;
            }
        }
        best
    };
    let mut visited = vec![false; n];
    let mut order: Vec<NodeId> = Vec::with_capacity(target);
    let mut frontier: Vec<NodeId> = vec![start];
    visited[start as usize] = true;
    while let Some(u) = frontier.pop() {
        order.push(u);
        if order.len() >= target {
            break;
        }
        let mut nbrs: Vec<NodeId> = g
            .neighbors_sorted(u)
            .iter()
            .copied()
            .filter(|&v| !visited[v as usize])
            .collect();
        nbrs.shuffle(&mut rng);
        for v in nbrs {
            visited[v as usize] = true;
            frontier.push(v);
        }
        // Randomise expansion order across the frontier too.
        if frontier.len() > 1 {
            let last = frontier.len() - 1;
            let swap_with = rng.gen_range(0..=last);
            frontier.swap(last, swap_with);
        }
    }
    induce(g, &order)
}

/// Induces the subgraph on `nodes`, compacting ids to `0..nodes.len()`.
/// Returns the subgraph and the original id of each compact node.
pub fn induce<V: GraphView + ?Sized>(g: &V, nodes: &[NodeId]) -> (Graph, Vec<NodeId>) {
    let mut mapping: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    for (i, &u) in nodes.iter().enumerate() {
        let prev = mapping.insert(u, i as NodeId);
        assert!(prev.is_none(), "duplicate node {u} in induce()");
    }
    let mut sub = Graph::new(nodes.len());
    for (&orig_u, &cu) in &mapping {
        for &orig_v in g.neighbors_sorted(orig_u) {
            if orig_v > orig_u {
                if let Some(&cv) = mapping.get(&orig_v) {
                    sub.add_edge(cu, cv);
                }
            }
        }
    }
    (sub, nodes.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::metrics;

    #[test]
    fn sample_is_connected_and_sized() {
        let g = generators::barabasi_albert(3000, 4, 21);
        let (sub, orig) = bfs_sample(&g, 1000, 5);
        assert_eq!(sub.num_nodes(), 1000);
        assert_eq!(orig.len(), 1000);
        assert_eq!(metrics::connected_components(&sub), 1);
    }

    #[test]
    fn sample_of_small_component_returns_component() {
        // Two components: a triangle and a big path. Depending on the seed
        // the sample lands in one; ask for more nodes than the triangle has.
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (0, 2)]); // + isolated 3,4
        let (sub, _) = bfs_sample(&g, 10, 3);
        assert!(sub.num_nodes() <= 3 || metrics::connected_components(&sub) >= 1);
    }

    #[test]
    fn induce_keeps_internal_edges_only() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        let (sub, orig) = induce(&g, &[1, 2, 4]);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(orig, vec![1, 2, 4]);
        // Only the 1-2 edge is internal.
        assert_eq!(sub.num_edges(), 1);
        assert!(sub.has_edge(0, 1));
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn induce_rejects_duplicates() {
        let g = Graph::new(3);
        let _ = induce(&g, &[0, 0]);
    }

    #[test]
    fn sample_deterministic_per_seed() {
        let g = generators::erdos_renyi(500, 0.02, 1);
        let (a, _) = bfs_sample(&g, 200, 42);
        let (b, _) = bfs_sample(&g, 200, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn sample_preserves_degree_scale() {
        let g = generators::barabasi_albert(2000, 5, 8);
        let (sub, _) = bfs_sample(&g, 800, 9);
        let avg = metrics::average_degree(&sub);
        // Induced BFS samples lose boundary edges, but the average degree
        // should stay within a sane band of the original (10.0).
        assert!(avg > 2.0, "average degree collapsed: {avg}");
    }
}
