//! Egonet feature extraction (paper Sec. III / Eq. (5b)).
//!
//! For node `i`, OddBall's two critical features are
//!
//! * `N_i = Σ_j A_ij` — the number of one-hop neighbours, and
//! * `E_i = N_i + ½ (A³)_ii` — the number of edges inside the egonet:
//!   the `N_i` spokes plus the edges among the neighbours (each triangle
//!   through `i` contributes one such edge, and `(A³)_ii = 2·triangles`).
//!
//! Everything here is generic over [`GraphView`], so features come out of
//! the mutable [`Graph`](crate::Graph), the frozen
//! [`CsrGraph`](crate::CsrGraph), and the
//! [`DeltaOverlay`](crate::DeltaOverlay) identically. The incremental
//! updater maintains `(N, E)` under single-edge toggles in
//! `O(deg(u) + deg(v))` on any [`EditableGraph`]; the greedy attack flips
//! one edge per step, so recomputing all features from scratch there
//! would be quadratic.

use crate::view::{merge_common, EditableGraph, GraphView};
use crate::{EdgeOp, NodeId};

/// The `(N, E)` feature vectors of every node.
#[derive(Debug, Clone, PartialEq)]
pub struct EgonetFeatures {
    /// `N_i`: degree of node `i`.
    pub n: Vec<f64>,
    /// `E_i`: edges in the egonet of node `i` (spokes + neighbour edges).
    pub e: Vec<f64>,
}

impl EgonetFeatures {
    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.n.len()
    }

    /// `true` when there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.n.is_empty()
    }
}

/// Computes `(N_i, E_i)` for every node by sorted-merge triangle counting.
/// Complexity `O(Σ_u deg(u)²)` worst case, fast in practice on the sparse
/// graphs the paper evaluates.
pub fn egonet_features<V: GraphView + ?Sized>(g: &V) -> EgonetFeatures {
    let n_nodes = g.num_nodes();
    let mut n = vec![0.0; n_nodes];
    let mut e = vec![0.0; n_nodes];
    for u in 0..n_nodes as NodeId {
        let deg = g.degree(u) as f64;
        n[u as usize] = deg;
        e[u as usize] = deg + g.triangles_at(u) as f64;
    }
    EgonetFeatures { n, e }
}

/// Maintains egonet features incrementally while a graph is being edited.
///
/// The updater owns nothing: callers keep mutating the graph through
/// [`IncrementalEgonet::toggle`], which applies the edge flip and patches
/// the features of exactly the affected nodes (the two endpoints and
/// their common neighbours). Works on any [`EditableGraph`] — the
/// in-place [`Graph`](crate::Graph) or a
/// [`DeltaOverlay`](crate::DeltaOverlay) over a frozen CSR base.
#[derive(Debug, Clone)]
pub struct IncrementalEgonet {
    feats: EgonetFeatures,
}

impl IncrementalEgonet {
    /// Builds the initial features from `g`.
    pub fn new<V: GraphView + ?Sized>(g: &V) -> Self {
        Self {
            feats: egonet_features(g),
        }
    }

    /// Rebuilds the updater from precomputed features (used by attack
    /// sessions to restore the clean-graph state without re-extraction).
    pub fn from_features(feats: EgonetFeatures) -> Self {
        Self { feats }
    }

    /// Current features.
    pub fn features(&self) -> &EgonetFeatures {
        &self.feats
    }

    /// Toggles `{u, v}` in `g` and patches the features. Returns the op
    /// performed, or `None` for a self-loop.
    ///
    /// Feature deltas for toggling `{u,v}`:
    /// * `N_u`, `N_v` change by ±1;
    /// * `E_u` changes by ±1 (its own spoke) ± the number of common
    ///   neighbours (each common neighbour `m` forms/breaks a neighbour
    ///   edge `v–m`... precisely: edges among u's neighbours gained =
    ///   |nbrs(u) ∩ nbrs(v)| because `v` joins/leaves the egonet bringing
    ///   its edges to u's other neighbours); symmetrically for `E_v`;
    /// * for every common neighbour `m`, `E_m` changes by ±1 (the edge
    ///   `{u,v}` lies inside m's egonet).
    pub fn toggle<G: EditableGraph + ?Sized>(
        &mut self,
        g: &mut G,
        u: NodeId,
        v: NodeId,
    ) -> Option<EdgeOp> {
        self.toggle_with(g, u, v, |_| {})
    }

    /// [`IncrementalEgonet::toggle`] that additionally reports every
    /// node whose `(N, E)` row changed — the two endpoints and their
    /// common neighbours — to `on_dirty`. Consumers that mirror the
    /// features into derived state (the incremental detector refit in
    /// `ba-oddball`) patch exactly these rows instead of rescanning all
    /// `n`. A node may be reported more than once across consecutive
    /// toggles; callers that need a set should dedup.
    pub fn toggle_with<G: EditableGraph + ?Sized>(
        &mut self,
        g: &mut G,
        u: NodeId,
        v: NodeId,
        mut on_dirty: impl FnMut(NodeId),
    ) -> Option<EdgeOp> {
        if u == v {
            return None;
        }
        on_dirty(u);
        on_dirty(v);
        let adding = !g.has_edge(u, v);
        if adding {
            // Common neighbours *before* adding determine the new
            // neighbour-edges; compute first, then mutate.
            let mut commons: Vec<NodeId> = Vec::new();
            merge_common(g.neighbors_sorted(u), g.neighbors_sorted(v), |m| {
                commons.push(m)
            });
            g.add_edge(u, v);
            self.feats.n[u as usize] += 1.0;
            self.feats.n[v as usize] += 1.0;
            // Spoke for each endpoint:
            self.feats.e[u as usize] += 1.0;
            self.feats.e[v as usize] += 1.0;
            for &m in &commons {
                // Edge {u,v} is inside m's egonet; and m's edges to u/v are
                // now inside u's/v's egonets.
                on_dirty(m);
                self.feats.e[m as usize] += 1.0;
                self.feats.e[u as usize] += 1.0;
                self.feats.e[v as usize] += 1.0;
            }
            Some(EdgeOp::new(u, v, true))
        } else {
            g.remove_edge(u, v);
            // Common neighbours *after* removal = triangles that were broken.
            let mut commons: Vec<NodeId> = Vec::new();
            merge_common(g.neighbors_sorted(u), g.neighbors_sorted(v), |m| {
                commons.push(m)
            });
            self.feats.n[u as usize] -= 1.0;
            self.feats.n[v as usize] -= 1.0;
            self.feats.e[u as usize] -= 1.0;
            self.feats.e[v as usize] -= 1.0;
            for &m in &commons {
                on_dirty(m);
                self.feats.e[m as usize] -= 1.0;
                self.feats.e[u as usize] -= 1.0;
                self.feats.e[v as usize] -= 1.0;
            }
            Some(EdgeOp::new(u, v, false))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CsrGraph, DeltaOverlay, Graph};

    #[test]
    fn star_features() {
        // Star with centre 0 and 4 leaves: N_0 = 4, E_0 = 4 (no triangles);
        // leaves: N = 1, E = 1.
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
        let f = egonet_features(&g);
        assert_eq!(f.n[0], 4.0);
        assert_eq!(f.e[0], 4.0);
        for leaf in 1..5 {
            assert_eq!(f.n[leaf], 1.0);
            assert_eq!(f.e[leaf], 1.0);
        }
    }

    #[test]
    fn clique_features() {
        // K5: every node has N = 4 and its egonet is the whole K5 with
        // C(5,2) = 10 edges.
        let mut g = Graph::new(5);
        for u in 0..5 {
            for v in (u + 1)..5 {
                g.add_edge(u, v);
            }
        }
        let f = egonet_features(&g);
        for i in 0..5 {
            assert_eq!(f.n[i], 4.0);
            assert_eq!(f.e[i], 10.0);
        }
    }

    #[test]
    fn e_equals_n_plus_half_a3_diagonal() {
        // Cross-check against the paper's algebraic definition via the
        // dense adjacency cube on a small random-ish graph.
        let g = Graph::from_edges(
            6,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (3, 5),
                (1, 3),
            ],
        );
        let f = egonet_features(&g);
        let a = crate::adjacency::to_dense(&g);
        let a2 = a.matmul(&a);
        let a3 = a2.matmul(&a);
        for i in 0..6 {
            let expected = f.n[i] + 0.5 * a3[(i, i)];
            assert_eq!(f.e[i], expected, "node {i}");
        }
    }

    #[test]
    fn features_identical_across_representations() {
        let g = Graph::from_edges(7, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]);
        let csr = CsrGraph::from(&g);
        let ov = DeltaOverlay::new(&csr);
        let from_graph = egonet_features(&g);
        assert_eq!(from_graph, egonet_features(&csr));
        assert_eq!(from_graph, egonet_features(&ov));
    }

    #[test]
    fn incremental_matches_batch_on_edit_sequence() {
        let mut g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let mut inc = IncrementalEgonet::new(&g);
        let edits: &[(NodeId, NodeId)] = &[
            (0, 2), // add: closes triangle 0-1-2
            (0, 3), // add
            (1, 2), // delete
            (0, 2), // delete
            (2, 4), // add
            (2, 4), // delete again
            (5, 0), // add
        ];
        for &(u, v) in edits {
            inc.toggle(&mut g, u, v).unwrap();
            let batch = egonet_features(&g);
            assert_eq!(inc.features(), &batch, "after toggling ({u},{v})");
        }
    }

    #[test]
    fn incremental_on_overlay_matches_batch() {
        let base = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let csr = CsrGraph::from(&base);
        let mut ov = DeltaOverlay::new(&csr);
        let mut inc = IncrementalEgonet::new(&ov);
        for &(u, v) in &[(0u32, 2u32), (0, 3), (1, 2), (0, 2), (2, 4), (5, 0)] {
            inc.toggle(&mut ov, u, v).unwrap();
            assert_eq!(
                inc.features(),
                &egonet_features(&ov),
                "after toggling ({u},{v})"
            );
        }
    }

    #[test]
    fn toggle_reports_exactly_the_moved_rows() {
        let mut g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let mut inc = IncrementalEgonet::new(&g);
        let edits: &[(NodeId, NodeId)] = &[(0, 2), (0, 3), (1, 2), (0, 2), (2, 4), (5, 0)];
        for &(u, v) in edits {
            let before = inc.features().clone();
            let mut dirty: Vec<NodeId> = Vec::new();
            inc.toggle_with(&mut g, u, v, |m| dirty.push(m)).unwrap();
            dirty.sort_unstable();
            dirty.dedup();
            // Every row that moved is reported, and every unreported row
            // is untouched.
            let after = inc.features();
            for i in 0..g.num_nodes() {
                let moved = before.n[i] != after.n[i] || before.e[i] != after.e[i];
                if moved {
                    assert!(
                        dirty.contains(&(i as NodeId)),
                        "row {i} moved but was not reported after ({u},{v})"
                    );
                }
                if !dirty.contains(&(i as NodeId)) {
                    assert_eq!(before.n[i], after.n[i]);
                    assert_eq!(before.e[i], after.e[i]);
                }
            }
            // Endpoints are always reported.
            assert!(dirty.contains(&u) && dirty.contains(&v));
        }
    }

    #[test]
    fn toggle_with_self_loop_reports_nothing() {
        let mut g = Graph::from_edges(3, [(0, 1)]);
        let mut inc = IncrementalEgonet::new(&g);
        let mut dirty: Vec<NodeId> = Vec::new();
        assert!(inc.toggle_with(&mut g, 1, 1, |m| dirty.push(m)).is_none());
        assert!(dirty.is_empty());
    }

    #[test]
    fn incremental_ignores_self_loop() {
        let mut g = Graph::from_edges(3, [(0, 1)]);
        let mut inc = IncrementalEgonet::new(&g);
        assert!(inc.toggle(&mut g, 1, 1).is_none());
        assert_eq!(inc.features(), &egonet_features(&g));
    }

    #[test]
    fn triangle_add_updates_all_three() {
        let mut g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let mut inc = IncrementalEgonet::new(&g);
        inc.toggle(&mut g, 0, 2).unwrap();
        let f = inc.features();
        // All three nodes now have N=2, E=3 (triangle egonet).
        for i in 0..3 {
            assert_eq!(f.n[i], 2.0);
            assert_eq!(f.e[i], 3.0);
        }
    }
}
