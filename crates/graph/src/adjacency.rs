//! Conversions between the sparse graph substrate and dense adjacency
//! buffers.
//!
//! ## Boundary with `ba-linalg`
//!
//! Dense linear algebra belongs to `ba-linalg` (which is deliberately
//! *not* a dependency of `ba-graph`: the graph substrate sits at the
//! bottom of the crate DAG). Production code that needs dense products —
//! `ContinuousA`'s relaxed forward/backward passes, the purification
//! defense — exports a row-major buffer via
//! [`to_row_major`](crate::adjacency::to_row_major) and builds a
//! `ba_linalg::Matrix` from it. The tiny
//! [`DenseAdj`](crate::adjacency::DenseAdj) type here exists
//! only so `ba-graph`'s own tests can cross-check the sparse kernels
//! against the `A²`/`A³` definitions without a dependency cycle; its
//! matmul is accordingly compiled for tests only. CSR structure for
//! external kernels (e.g. the GCN propagation in `ba-gad`) comes from
//! [`crate::CsrGraph`].

use crate::view::GraphView;
use crate::{Graph, NodeId};

/// Minimal dense square matrix for adjacency algebra cross-checks in
/// tests. Not a general linear-algebra type — see the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseAdj {
    n: usize,
    data: Vec<f64>,
}

impl DenseAdj {
    /// Zero matrix of side `n`.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Side length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Entry setter.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// Naive dense product, for cross-checking sparse kernels in tests
    /// only (real dense work routes through `ba_linalg::par_matmul`).
    #[cfg(test)]
    pub(crate) fn matmul(&self, other: &DenseAdj) -> DenseAdj {
        assert_eq!(self.n, other.n);
        let n = self.n;
        let mut out = DenseAdj::zeros(n);
        for i in 0..n {
            for k in 0..n {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out.data[i * n + j] += aik * other.get(k, j);
                }
            }
        }
        out
    }

    /// The underlying row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }
}

impl std::ops::Index<(usize, usize)> for DenseAdj {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.n + j]
    }
}

/// Converts any graph view to its dense adjacency matrix.
pub fn to_dense<V: GraphView + ?Sized>(g: &V) -> DenseAdj {
    let n = g.num_nodes();
    let mut a = DenseAdj::zeros(n);
    g.for_each_edge(|u, v| {
        a.set(u as usize, v as usize, 1.0);
        a.set(v as usize, u as usize, 1.0);
    });
    a
}

/// Converts any graph view to a row-major dense buffer (for
/// `ba_linalg::Matrix::from_vec`).
pub fn to_row_major<V: GraphView + ?Sized>(g: &V) -> Vec<f64> {
    to_dense(g).into_vec()
}

/// Builds a graph back from a dense 0/1 matrix (entries ≥ `threshold`
/// become edges; the matrix is symmetrised by OR-ing `(i,j)` and
/// `(j,i)`).
pub fn from_dense_threshold(n: usize, data: &[f64], threshold: f64) -> Graph {
    assert_eq!(data.len(), n * n, "buffer size mismatch");
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if data[i * n + j] >= threshold || data[j * n + i] >= threshold {
                g.add_edge(i as NodeId, j as NodeId);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrGraph;

    #[test]
    fn dense_roundtrip() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]);
        let d = to_dense(&g);
        assert_eq!(d[(0, 1)], 1.0);
        assert_eq!(d[(1, 0)], 1.0);
        assert_eq!(d[(0, 2)], 0.0);
        let g2 = from_dense_threshold(4, &d.clone().into_vec(), 0.5);
        assert_eq!(g, g2);
    }

    #[test]
    fn dense_from_csr_matches() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (3, 1), (3, 2), (4, 0)]);
        let csr = CsrGraph::from(&g);
        assert_eq!(to_dense(&g), to_dense(&csr));
        assert_eq!(to_row_major(&g), to_row_major(&csr));
    }

    #[test]
    fn a_squared_diagonal_is_degree() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]);
        let a = to_dense(&g);
        let a2 = a.matmul(&a);
        for u in 0..4u32 {
            assert_eq!(a2[(u as usize, u as usize)], g.degree(u) as f64);
        }
    }

    #[test]
    fn a_squared_off_diagonal_is_common_neighbors() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (3, 1), (3, 2), (4, 0)]);
        let a = to_dense(&g);
        let a2 = a.matmul(&a);
        for u in 0..5u32 {
            for v in 0..5u32 {
                if u != v {
                    assert_eq!(
                        a2[(u as usize, v as usize)],
                        g.common_neighbors(u, v) as f64,
                        "pair ({u},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn from_dense_symmetrises() {
        // Asymmetric input: only (0,1) set, not (1,0).
        let mut data = vec![0.0; 9];
        data[1] = 1.0;
        let g = from_dense_threshold(3, &data, 0.5);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert_eq!(g.num_edges(), 1);
    }
}
