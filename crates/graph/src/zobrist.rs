//! Zobrist-style incremental edge-set hashing.
//!
//! The attack-search memoization layer (ba-core's transposition table)
//! needs a cheap, deterministic fingerprint of "which graph am I looking
//! at right now" that stays in sync with the [`DeltaOverlay`] as the
//! search toggles edges. The classic engine-search answer is Zobrist
//! hashing: assign every board feature a fixed random key and XOR the
//! keys of the *present* features. XOR is its own inverse, so a single
//! edge toggle updates the hash in O(1) — `h ^= edge_key(u, v)` both
//! adds and removes — and the hash of a state is independent of the
//! path that reached it.
//!
//! Here the features are undirected edges. Instead of a materialised
//! key table (n² entries for a dense pair space),
//! [`edge_key`](crate::zobrist::edge_key) derives
//! the key arithmetically from the canonical `(min, max)` endpoint pair
//! through the SplitMix64 finalizer — a fixed-seed, stateless function
//! of the pair, so keys never have to be stored, shipped, or
//! versioned: two processes, two runs, or two machines always agree.
//! SplitMix64's full-avalanche mixing stands in for the table of true
//! random keys; 64-bit collisions over the ≤10⁸-edge graphs this
//! workspace targets are vanishingly unlikely, and the memoization
//! layer additionally folds a per-candidate key on top before probing.
//!
//! The incremental maintenance lives in [`DeltaOverlay`]
//! ([`DeltaOverlay::delta_hash`] is the XOR of keys of toggled pairs,
//! [`DeltaOverlay::edge_set_hash`] folds in the frozen base's hash);
//! this module owns the key derivation and the from-scratch reference
//! [`edge_set_hash`](crate::zobrist::edge_set_hash) the property tests
//! pin the incremental path against.
//!
//! [`DeltaOverlay`]: crate::DeltaOverlay
//! [`DeltaOverlay::delta_hash`]: crate::DeltaOverlay::delta_hash
//! [`DeltaOverlay::edge_set_hash`]: crate::DeltaOverlay::edge_set_hash

use crate::view::GraphView;
use crate::NodeId;

/// Fixed seed folded into every edge key. Changing it changes every
/// hash, so it is part of the determinism contract: never bump it
/// casually.
pub const EDGE_KEY_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// The SplitMix64 finalizer: a full-avalanche bijection on `u64`
/// (Steele et al., "Fast splittable pseudorandom number generators").
/// Used here to turn a packed edge pair into a pseudo-random Zobrist
/// key without storing a key table.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The Zobrist key of the undirected edge `{u, v}`: a fixed-seed
/// SplitMix64 mix of the canonical `(min, max)` pair, so
/// `edge_key(u, v) == edge_key(v, u)` and keys are deterministic
/// across runs and machines. Self-loops carry no meaning in this
/// substrate; callers never fold them.
#[inline]
pub fn edge_key(u: NodeId, v: NodeId) -> u64 {
    debug_assert_ne!(u, v, "self-loops have no Zobrist key");
    let (a, b) = if u <= v { (u, v) } else { (v, u) };
    splitmix64(EDGE_KEY_SEED ^ (((a as u64) << 32) | b as u64))
}

/// From-scratch reference hash: XOR of [`edge_key`] over every edge of
/// `g`. The incremental overlay hash must always equal this on the
/// materialised edge set — that equivalence is what makes the
/// transposition table sound, and the proptests pin it.
pub fn edge_set_hash<V: GraphView + ?Sized>(g: &V) -> u64 {
    let mut h = 0u64;
    g.for_each_edge(|u, v| h ^= edge_key(u, v));
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn edge_key_is_symmetric_and_fixed() {
        assert_eq!(edge_key(3, 7), edge_key(7, 3));
        assert_ne!(edge_key(3, 7), edge_key(3, 8));
        // Pinned value: the key derivation is part of the determinism
        // contract, so a change here must be deliberate.
        assert_eq!(edge_key(0, 1), splitmix64(EDGE_KEY_SEED ^ 1));
    }

    #[test]
    fn hash_is_path_independent() {
        let mut g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3)]);
        let h0 = edge_set_hash(&g);
        // Toggle an edge on and off: the hash must return exactly.
        g.add_edge(0, 4);
        assert_eq!(edge_set_hash(&g), h0 ^ edge_key(0, 4));
        g.remove_edge(0, 4);
        assert_eq!(edge_set_hash(&g), h0);
        // Same edge set built in a different order hashes identically.
        let g2 = Graph::from_edges(5, [(2, 3), (0, 1), (1, 2)]);
        assert_eq!(edge_set_hash(&g2), h0);
    }

    #[test]
    fn empty_graph_hashes_to_zero() {
        assert_eq!(edge_set_hash(&Graph::new(4)), 0);
    }
}
