//! The frozen CSR substrate and its copy-on-write mutation overlay.
//!
//! Attack optimisers read graph structure millions of times per run
//! (every pair gradient is a sorted-merge over two adjacency lists) but
//! mutate it rarely (one edge toggle per greedy step, a handful per PGD
//! re-binarisation). [`CsrGraph`] serves the read side: one contiguous
//! `offsets`/`cols` pair, cache-friendly sorted neighbour slices, zero
//! per-node allocation. [`DeltaOverlay`] serves the write side: it
//! borrows a frozen `CsrGraph` and absorbs single-edge toggles by
//! materialising a private sorted copy of just the touched rows, so a
//! greedy attack never rebuilds the substrate and resetting to the clean
//! graph is O(dirty rows), not O(n + m).

use crate::view::{EditableGraph, GraphView};
use crate::zobrist::{edge_key, edge_set_hash};
use crate::{EdgeOp, Graph, NodeId};

/// Compressed-sparse-row adjacency: `cols[offsets[u]..offsets[u+1]]` is
/// the strictly increasing neighbour list of `u`. Immutable by design —
/// edits go through a [`DeltaOverlay`].
///
/// ```
/// use ba_graph::{CsrGraph, Graph, GraphView};
///
/// let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 2), (2, 3)]);
/// let csr = CsrGraph::from(&g);
/// assert_eq!(csr.num_edges(), 4);
/// assert_eq!(csr.neighbors_sorted(2), &[0, 1, 3]);
/// // The frozen form round-trips exactly.
/// assert_eq!(csr.to_graph(), g);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    cols: Vec<NodeId>,
    num_edges: usize,
    /// Zobrist hash of the edge set (see [`crate::zobrist`]), computed
    /// once at freeze time so overlays can report their state hash in
    /// O(1) per toggle.
    edge_hash: u64,
}

impl CsrGraph {
    /// Assembles a CSR from already-validated parts — the widening path
    /// out of [`crate::compact::CsrGraph32`]. Callers guarantee the
    /// offsets/cols invariants (length `n + 1`, monotone offsets,
    /// strictly increasing rows) and that `edge_hash` matches the edge
    /// set.
    pub(crate) fn from_raw_parts(
        offsets: Vec<usize>,
        cols: Vec<NodeId>,
        num_edges: usize,
        edge_hash: u64,
    ) -> Self {
        debug_assert_eq!(*offsets.last().unwrap_or(&0), cols.len());
        debug_assert_eq!(cols.len(), 2 * num_edges);
        Self {
            offsets,
            cols,
            num_edges,
            edge_hash,
        }
    }

    /// Builds the CSR structure from any graph view.
    pub fn from_view<V: GraphView + ?Sized>(g: &V) -> Self {
        let n = g.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut cols = Vec::with_capacity(2 * g.num_edges());
        offsets.push(0);
        for u in 0..n as NodeId {
            cols.extend_from_slice(g.neighbors_sorted(u));
            offsets.push(cols.len());
        }
        Self {
            offsets,
            cols,
            num_edges: g.num_edges(),
            edge_hash: edge_set_hash(g),
        }
    }

    /// Zobrist hash of this graph's edge set — the frozen half of
    /// [`DeltaOverlay::edge_set_hash`].
    #[inline]
    pub fn edge_hash(&self) -> u64 {
        self.edge_hash
    }

    /// Row pointer array, length `n + 1` (for external kernels, e.g. the
    /// GCN propagation in `ba-gad`).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Concatenated column indices, length `2m`.
    pub fn cols(&self) -> &[NodeId] {
        &self.cols
    }

    /// Materialises a mutable [`Graph`] with the same edge set.
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::new(self.num_nodes());
        self.for_each_edge(|u, v| {
            g.add_edge(u, v);
        });
        g
    }

    /// Splits the node space into `shards` contiguous ranges balanced by
    /// *cumulative degree* rather than node count. Returns `shards + 1`
    /// monotone boundaries with `bounds[0] == 0` and
    /// `bounds[shards] == n`; shard `k` owns nodes
    /// `bounds[k]..bounds[k + 1]` and carries close to `2m / shards`
    /// adjacency entries.
    ///
    /// Under power-law degree distributions (every BA-style dataset in
    /// this repo) equal-*count* ranges skew badly — the hub-heavy range
    /// can carry an order of magnitude more adjacency entries than the
    /// tail ranges — so sharded row work keyed on node ranges must use
    /// these boundaries to stay balanced. Boundaries depend only on the
    /// frozen degree sequence, never on thread timing, so any consumer
    /// stays deterministic. Some shards may be empty (e.g. more shards
    /// than nodes).
    pub fn degree_balanced_bounds(&self, shards: usize) -> Vec<usize> {
        let n = self.num_nodes();
        let shards = shards.max(1);
        let total = self.cols.len();
        let mut bounds = Vec::with_capacity(shards + 1);
        bounds.push(0);
        for k in 1..shards {
            // Smallest node index whose row starts at or past the k-th
            // equal slice of the adjacency array.
            let target = total * k / shards;
            let cut = self.offsets.partition_point(|&o| o < target).min(n);
            // ba-lint: allow(panic-path) -- bounds starts non-empty and only grows
            let prev = *bounds.last().expect("bounds non-empty");
            bounds.push(cut.max(prev));
        }
        bounds.push(n);
        bounds
    }
}

impl From<&Graph> for CsrGraph {
    fn from(g: &Graph) -> Self {
        Self::from_view(g)
    }
}

impl GraphView for CsrGraph {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.num_edges
    }

    #[inline]
    fn neighbors_sorted(&self, u: NodeId) -> &[NodeId] {
        &self.cols[self.offsets[u as usize]..self.offsets[u as usize + 1]]
    }
}

/// A set of single-edge toggles over a borrowed [`CsrGraph`].
///
/// Rows untouched by any toggle are served straight from the base CSR;
/// the first toggle on a row copies it into a private sorted `Vec` that
/// subsequent toggles patch in `O(deg)`. [`DeltaOverlay::reset`] drops
/// the patches, returning to the clean graph without rebuilding anything
/// — the operation attack loops perform once per λ / per budget
/// extraction.
///
/// ```
/// use ba_graph::{CsrGraph, DeltaOverlay, EditableGraph, Graph, GraphView};
///
/// let csr = CsrGraph::from(&Graph::from_edges(4, [(0, 1), (1, 2)]));
/// let mut ov = DeltaOverlay::new(&csr);
/// ov.toggle_edge(0, 3); // add
/// ov.toggle_edge(1, 2); // remove
/// assert!(ov.has_edge(0, 3) && !ov.has_edge(1, 2));
/// assert_eq!(ov.num_edges(), 2);
/// // Dropping the patches restores the clean base in O(dirty rows).
/// ov.reset();
/// assert_eq!(ov.to_graph(), csr.to_graph());
/// ```
#[derive(Debug, Clone)]
pub struct DeltaOverlay<'a> {
    base: &'a CsrGraph,
    /// Materialised rows, indexed by node (`None` = serve from the
    /// base). A plain index keeps row access off the hash path — the
    /// gradient assembly reads two rows per candidate pair.
    rows: Vec<Option<Vec<NodeId>>>,
    /// Nodes whose row has been materialised (for O(dirty) reset).
    dirty: Vec<NodeId>,
    num_edges: usize,
    /// XOR of [`edge_key`] over the pairs whose presence differs from
    /// the base — `0` when clean, updated in O(1) per toggle.
    delta_hash: u64,
}

/// The owned edit state of a [`DeltaOverlay`], detached from its base.
///
/// An overlay borrows its frozen base, so a struct cannot own both the
/// `CsrGraph` and a live overlay over it. Long-lived consumers (the
/// streaming engine in `ba-stream`) instead keep the base and an
/// `OverlayEdits`, re-attaching them with [`DeltaOverlay::attach`] for
/// the duration of each batch. The default value is the empty edit set,
/// valid against any base.
#[derive(Debug, Clone, Default)]
pub struct OverlayEdits {
    rows: Vec<Option<Vec<NodeId>>>,
    dirty: Vec<NodeId>,
    num_edges: usize,
    /// Delta hash carried through [`DeltaOverlay::detach`]; `None` for
    /// edit sets rebuilt from serialised rows ([`OverlayEdits::from_rows`]),
    /// where the base — and hence the diff — is unknown until
    /// [`DeltaOverlay::attach`] recomputes it.
    delta_hash: Option<u64>,
}

impl OverlayEdits {
    /// Number of rows that have diverged from the base.
    pub fn dirty_rows(&self) -> usize {
        self.dirty.len()
    }

    /// `true` when no row diverges from the base.
    pub fn is_clean(&self) -> bool {
        self.dirty.is_empty()
    }

    /// Edge count of these edits over `base` — `base`'s own count for
    /// the empty (never-attached) edit set.
    pub fn num_edges_over(&self, base: &CsrGraph) -> usize {
        if self.rows.is_empty() && self.dirty.is_empty() {
            base.num_edges()
        } else {
            self.num_edges
        }
    }

    /// The materialised (node, sorted neighbour row) pairs in ascending
    /// node order — the canonical serialisation the stream snapshot
    /// writes.
    pub fn dirty_rows_sorted(&self) -> Vec<(NodeId, &[NodeId])> {
        let mut nodes = self.dirty.clone();
        nodes.sort_unstable();
        nodes
            .into_iter()
            .map(|u| {
                (
                    u,
                    self.rows[u as usize]
                        .as_deref()
                        // ba-lint: allow(panic-path) -- u comes from the dirty list, and a node only enters dirty when its row slot is filled
                        .expect("dirty row is materialised"),
                )
            })
            .collect()
    }

    /// Rebuilds an edit set from its canonical serialisation: the total
    /// node count, the current edge count, and the materialised rows.
    pub fn from_rows(
        num_nodes: usize,
        num_edges: usize,
        dirty_rows: impl IntoIterator<Item = (NodeId, Vec<NodeId>)>,
    ) -> Self {
        let mut rows = vec![None; num_nodes];
        let mut dirty = Vec::new();
        for (u, row) in dirty_rows {
            debug_assert!(row.windows(2).all(|w| w[0] < w[1]), "row not sorted");
            if rows[u as usize].replace(row).is_none() {
                dirty.push(u);
            }
        }
        Self {
            rows,
            dirty,
            num_edges,
            delta_hash: None,
        }
    }
}

impl<'a> DeltaOverlay<'a> {
    /// A fresh overlay with no edits.
    pub fn new(base: &'a CsrGraph) -> Self {
        Self {
            base,
            rows: vec![None; base.num_nodes()],
            dirty: Vec::new(),
            num_edges: base.num_edges(),
            delta_hash: 0,
        }
    }

    /// Re-attaches detached edits to their base. An empty
    /// (default-constructed) edit set attaches to any base as a fresh
    /// overlay; a non-empty one must come from [`DeltaOverlay::detach`]
    /// against the *same* base (enforced by row count only — callers
    /// own the pairing).
    pub fn attach(base: &'a CsrGraph, edits: OverlayEdits) -> Self {
        if edits.rows.is_empty() && edits.dirty.is_empty() {
            return Self::new(base);
        }
        assert_eq!(
            edits.rows.len(),
            base.num_nodes(),
            "edits detached from a different base"
        );
        let delta_hash = edits
            .delta_hash
            .unwrap_or_else(|| recompute_delta_hash(base, &edits.rows, &edits.dirty));
        Self {
            base,
            rows: edits.rows,
            dirty: edits.dirty,
            num_edges: edits.num_edges,
            delta_hash,
        }
    }

    /// Splits the overlay into its owned edit state, releasing the
    /// borrow of the base. Inverse of [`DeltaOverlay::attach`].
    pub fn detach(self) -> OverlayEdits {
        OverlayEdits {
            rows: self.rows,
            dirty: self.dirty,
            num_edges: self.num_edges,
            delta_hash: Some(self.delta_hash),
        }
    }

    /// The frozen base graph.
    pub fn base(&self) -> &'a CsrGraph {
        self.base
    }

    /// Number of rows that have diverged from the base.
    pub fn dirty_rows(&self) -> usize {
        self.dirty.len()
    }

    /// XOR of [`edge_key`] over the pairs toggled relative to the base:
    /// `0` when clean, maintained in O(1) per edge edit. XOR's
    /// self-inverse property makes it path-independent — only the
    /// current symmetric difference matters, not how it was reached.
    #[inline]
    pub fn delta_hash(&self) -> u64 {
        self.delta_hash
    }

    /// Zobrist hash of the *current* edge set: the frozen base's hash
    /// with the toggled pairs folded in. Always equals
    /// [`edge_set_hash`] of the materialised edge set (pinned by
    /// proptest).
    #[inline]
    pub fn edge_set_hash(&self) -> u64 {
        self.base.edge_hash ^ self.delta_hash
    }

    /// Drops all edits, returning to the base edge set in
    /// `O(dirty rows)`.
    pub fn reset(&mut self) {
        for &u in &self.dirty {
            self.rows[u as usize] = None;
        }
        self.dirty.clear();
        self.num_edges = self.base.num_edges();
        self.delta_hash = 0;
    }

    /// Materialises a standalone [`Graph`] of the current edge set.
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::new(self.num_nodes());
        self.for_each_edge(|u, v| {
            g.add_edge(u, v);
        });
        g
    }

    /// Materialises the overlay back into a fresh frozen [`CsrGraph`].
    ///
    /// This is the *compaction* step of the streaming engine: once the
    /// dirty-row count crosses a threshold, overlay reads start paying
    /// for the indirection (and resets stop being cheap), so the edits
    /// are folded into a new base and the overlay starts clean again.
    /// Clean row *ranges* between consecutive dirty rows are copied
    /// from the base column array in single `extend_from_slice` spans,
    /// so compaction is a near-memcpy `O(n + m)` rather than a per-row
    /// walk; the result is byte-identical to rebuilding a CSR from the
    /// current edge set from scratch (`CsrGraph::from_view`).
    pub fn compact(&self) -> CsrGraph {
        let n = self.num_nodes();
        let mut dirty_sorted = self.dirty.clone();
        dirty_sorted.sort_unstable();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut cols = Vec::with_capacity(2 * self.num_edges);
        offsets.push(0);
        // `cursor` walks the node space; dirty rows interrupt the clean
        // spans served straight from the base.
        let mut cursor: usize = 0;
        let base_off = self.base.offsets();
        let base_cols = self.base.cols();
        let copy_clean_span = |cols: &mut Vec<NodeId>, offsets: &mut Vec<usize>, lo, hi| {
            if lo < hi {
                // ba-lint: allow(panic-path) -- offsets is seeded with a leading 0 before any span is copied, so last() always exists
                let shift = offsets.last().copied().expect("offsets non-empty") as isize
                    - base_off[lo] as isize;
                cols.extend_from_slice(&base_cols[base_off[lo]..base_off[hi]]);
                offsets.extend(
                    base_off[lo + 1..=hi]
                        .iter()
                        .map(|&o| (o as isize + shift) as usize),
                );
            }
        };
        for &d in &dirty_sorted {
            let d = d as usize;
            copy_clean_span(&mut cols, &mut offsets, cursor, d);
            // ba-lint: allow(panic-path) -- d iterates the dirty list, and a node only enters dirty when its row slot is filled
            let row = self.rows[d].as_deref().expect("dirty row is materialised");
            cols.extend_from_slice(row);
            offsets.push(cols.len());
            cursor = d + 1;
        }
        copy_clean_span(&mut cols, &mut offsets, cursor, n);
        CsrGraph {
            offsets,
            cols,
            num_edges: self.num_edges,
            // XOR-folding is set-associative, so the frozen hash of the
            // compacted graph is exactly base ⊕ delta — no rescan.
            edge_hash: self.base.edge_hash ^ self.delta_hash,
        }
    }

    /// Applies a batch of *consistent* edge ops (each add targets an
    /// absent edge, each delete a present one — as produced by netting a
    /// stream batch against the current state) with the row updates
    /// sharded across `shards` threads. Each shard owns a contiguous
    /// node range balanced by cumulative base degree
    /// ([`CsrGraph::degree_balanced_bounds`] — equal node *counts* skew
    /// badly under power-law degrees) and applies exactly the op
    /// endpoints that fall in it, so the resulting adjacency — and
    /// therefore everything downstream — is byte-identical at any shard
    /// count, including `1`.
    ///
    /// `shards == 0` autodetects from [`std::thread::available_parallelism`].
    ///
    /// # Panics
    /// Panics (debug builds) if an op is inconsistent with the current
    /// state; ops must be pre-netted by the caller.
    pub fn apply_ops_sharded(&mut self, ops: &[EdgeOp], shards: usize) {
        let n = self.num_nodes();
        let shards = if shards == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            shards
        };
        let adds = ops.iter().filter(|op| op.added).count();
        if shards <= 1 || ops.len() < 2 || n < 2 {
            for op in ops {
                if op.added {
                    let fresh = self.add_edge(op.u, op.v);
                    debug_assert!(fresh, "op adds an existing edge {op:?}");
                } else {
                    let existed = self.remove_edge(op.u, op.v);
                    debug_assert!(existed, "op deletes a missing edge {op:?}");
                }
            }
            return;
        }
        // Ops are pre-netted and consistent, so each one toggles exactly
        // one pair's presence: fold its key before fanning out (the
        // serial path above folds through add_edge/remove_edge).
        for op in ops {
            self.delta_hash ^= edge_key(op.u, op.v);
        }
        let base = self.base;
        // Shard boundaries follow the base's cumulative degree, so the
        // row-copy work (O(deg) per touched row) splits evenly even when
        // a few hubs hold most of the adjacency. Each node still lives
        // in exactly one shard — the only property byte-identity needs.
        let bounds = base.degree_balanced_bounds(shards);
        let newly_dirty: Vec<Vec<NodeId>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(shards);
            let mut rest: &mut [Option<Vec<NodeId>>] = &mut self.rows;
            for k in 0..shards {
                let (lo, hi) = (bounds[k], bounds[k + 1]);
                let (slice, tail) = rest.split_at_mut(hi - lo);
                rest = tail;
                if slice.is_empty() {
                    continue;
                }
                handles.push(scope.spawn(move || {
                    let mut newly: Vec<NodeId> = Vec::new();
                    for op in ops {
                        for (a, b) in [(op.u, op.v), (op.v, op.u)] {
                            let i = a as usize;
                            if i < lo || i >= hi {
                                continue;
                            }
                            let slot = &mut slice[i - lo];
                            if slot.is_none() {
                                *slot = Some(base.neighbors_sorted(a).to_vec());
                                newly.push(a);
                            }
                            // ba-lint: allow(panic-path) -- the branch above fills the slot when it is None, so it is Some here
                            let row = slot.as_mut().expect("just materialised");
                            match (row.binary_search(&b), op.added) {
                                (Err(pos), true) => row.insert(pos, b),
                                (Ok(pos), false) => {
                                    row.remove(pos);
                                }
                                (Ok(_), true) => {
                                    debug_assert!(false, "op adds an existing edge {op:?}")
                                }
                                (Err(_), false) => {
                                    debug_assert!(false, "op deletes a missing edge {op:?}")
                                }
                            }
                        }
                    }
                    newly
                }));
            }
            handles
                .into_iter()
                // ba-lint: allow(panic-path) -- a join Err means the shard worker panicked; re-raising preserves the original panic
                .map(|h| h.join().expect("shard worker"))
                .collect()
        });
        for mut newly in newly_dirty {
            // Rows freshly materialised by a shard were not dirty before
            // (shards only see rows they own, and each node lives in
            // exactly one shard), so this stays duplicate-free.
            self.dirty.append(&mut newly);
        }
        self.num_edges = self.num_edges + adds - (ops.len() - adds);
    }

    fn row_mut(&mut self, u: NodeId) -> &mut Vec<NodeId> {
        let slot = &mut self.rows[u as usize];
        if slot.is_none() {
            *slot = Some(self.base.neighbors_sorted(u).to_vec());
            self.dirty.push(u);
        }
        // ba-lint: allow(panic-path) -- the branch above fills the slot when it is None, so it is Some here
        slot.as_mut().expect("just materialised")
    }

    /// Inserts `v` into `u`'s row; `true` if it was absent.
    fn half_add(&mut self, u: NodeId, v: NodeId) -> bool {
        let row = self.row_mut(u);
        match row.binary_search(&v) {
            Ok(_) => false,
            Err(pos) => {
                row.insert(pos, v);
                true
            }
        }
    }

    /// Removes `v` from `u`'s row; `true` if it was present.
    fn half_remove(&mut self, u: NodeId, v: NodeId) -> bool {
        let row = self.row_mut(u);
        match row.binary_search(&v) {
            Ok(pos) => {
                row.remove(pos);
                true
            }
            Err(_) => false,
        }
    }
}

impl GraphView for DeltaOverlay<'_> {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.base.num_nodes()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.num_edges
    }

    #[inline]
    fn neighbors_sorted(&self, u: NodeId) -> &[NodeId] {
        match &self.rows[u as usize] {
            Some(row) => row,
            None => self.base.neighbors_sorted(u),
        }
    }
}

impl EditableGraph for DeltaOverlay<'_> {
    fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        assert!(
            (u as usize) < self.num_nodes() && (v as usize) < self.num_nodes(),
            "node id out of range"
        );
        if self.half_add(u, v) {
            self.half_add(v, u);
            self.num_edges += 1;
            self.delta_hash ^= edge_key(u, v);
            true
        } else {
            false
        }
    }

    fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v || (u as usize) >= self.num_nodes() || (v as usize) >= self.num_nodes() {
            return false;
        }
        if self.half_remove(u, v) {
            self.half_remove(v, u);
            self.num_edges -= 1;
            self.delta_hash ^= edge_key(u, v);
            true
        } else {
            false
        }
    }
}

/// Rebuilds the delta hash of deserialised edits by diffing each
/// materialised row against the base. Symmetric edits guarantee every
/// toggled pair `{u, v}` shows up as a diff in *both* endpoint rows, so
/// counting it only at the smaller endpoint folds each key exactly
/// once. O(Σ deg over dirty rows) — paid only on snapshot restore,
/// never on the toggle path.
fn recompute_delta_hash(base: &CsrGraph, rows: &[Option<Vec<NodeId>>], dirty: &[NodeId]) -> u64 {
    let mut h = 0u64;
    for &u in dirty {
        let cur = rows[u as usize]
            .as_deref()
            // ba-lint: allow(panic-path) -- u iterates the dirty list, and a node only enters dirty when its row slot is filled
            .expect("dirty row is materialised");
        let old = base.neighbors_sorted(u);
        // Walk the symmetric difference of two sorted rows.
        let (mut i, mut j) = (0, 0);
        let mut fold = |v: NodeId| {
            if v > u {
                h ^= edge_key(u, v);
            }
        };
        while i < cur.len() && j < old.len() {
            match cur[i].cmp(&old[j]) {
                std::cmp::Ordering::Less => {
                    fold(cur[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    fold(old[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        cur[i..].iter().chain(&old[j..]).for_each(|&v| fold(v));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeOp;

    fn sample() -> Graph {
        Graph::from_edges(6, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5)])
    }

    #[test]
    fn csr_matches_graph_view() {
        let g = sample();
        let csr = CsrGraph::from(&g);
        assert_eq!(csr.num_nodes(), g.num_nodes());
        assert_eq!(csr.num_edges(), g.num_edges());
        for u in 0..g.num_nodes() as NodeId {
            assert_eq!(csr.neighbors_sorted(u), g.neighbors_sorted(u));
            assert_eq!(csr.degree(u), g.degree(u));
        }
        assert!(csr.has_edge(2, 0));
        assert!(!csr.has_edge(0, 5));
        assert_eq!(csr.common_neighbors(0, 1), 1);
        assert_eq!(csr.to_graph(), g);
    }

    #[test]
    fn csr_offsets_shape() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let csr = CsrGraph::from(&g);
        assert_eq!(csr.offsets(), &[0, 1, 3, 4]);
        assert_eq!(csr.cols(), &[1, 0, 2, 1]);
    }

    #[test]
    fn overlay_toggles_and_resets() {
        let g = sample();
        let csr = CsrGraph::from(&g);
        let mut ov = DeltaOverlay::new(&csr);
        assert_eq!(ov.dirty_rows(), 0);

        let op = ov.toggle_edge(0, 3).unwrap();
        assert_eq!(op, EdgeOp::new(0, 3, true));
        assert!(ov.has_edge(0, 3));
        assert_eq!(ov.num_edges(), g.num_edges() + 1);
        assert_eq!(ov.dirty_rows(), 2);

        let op = ov.toggle_edge(0, 1).unwrap();
        assert_eq!(op, EdgeOp::new(0, 1, false));
        assert!(!ov.has_edge(1, 0));
        // Untouched rows still come from the base.
        assert_eq!(ov.neighbors_sorted(5), csr.neighbors_sorted(5));

        ov.reset();
        assert_eq!(ov.dirty_rows(), 0);
        assert_eq!(ov.num_edges(), g.num_edges());
        assert_eq!(ov.to_graph(), g);
    }

    #[test]
    fn overlay_self_loop_rejected() {
        let g = sample();
        let csr = CsrGraph::from(&g);
        let mut ov = DeltaOverlay::new(&csr);
        assert!(ov.toggle_edge(2, 2).is_none());
        assert!(!ov.add_edge(2, 2));
        assert_eq!(ov.num_edges(), g.num_edges());
    }

    #[test]
    fn overlay_apply_ops_matches_graph() {
        let g = sample();
        let csr = CsrGraph::from(&g);
        let ops = [
            EdgeOp::new(0, 3, true),
            EdgeOp::new(0, 1, false),
            EdgeOp::new(2, 5, true),
        ];
        let mut ov = DeltaOverlay::new(&csr);
        EditableGraph::apply_ops(&mut ov, &ops);
        assert_eq!(ov.to_graph(), g.with_ops(&ops));
    }

    #[test]
    fn compact_equals_from_scratch_rebuild() {
        let g = sample();
        let csr = CsrGraph::from(&g);
        let mut ov = DeltaOverlay::new(&csr);
        // No edits: compaction is an identical clone of the base.
        assert_eq!(ov.compact(), csr);
        for (u, v) in [(0u32, 3u32), (0, 1), (2, 5), (4, 5), (1, 5)] {
            ov.toggle_edge(u, v);
        }
        let compacted = ov.compact();
        let rebuilt = CsrGraph::from_view(&ov);
        assert_eq!(compacted, rebuilt);
        assert_eq!(compacted.num_edges(), ov.num_edges());
        assert_eq!(compacted.to_graph(), ov.to_graph());
    }

    #[test]
    fn detach_attach_roundtrip_preserves_state() {
        let g = sample();
        let csr = CsrGraph::from(&g);
        let mut ov = DeltaOverlay::new(&csr);
        ov.toggle_edge(0, 3);
        ov.toggle_edge(0, 1);
        let expected = ov.to_graph();
        let edits = ov.detach();
        assert_eq!(edits.dirty_rows(), 3);
        assert!(!edits.is_clean());
        let ov = DeltaOverlay::attach(&csr, edits);
        assert_eq!(ov.to_graph(), expected);
        assert_eq!(ov.num_edges(), expected.num_edges());
        // The default edit set attaches to any base as a fresh overlay.
        let fresh = DeltaOverlay::attach(&csr, OverlayEdits::default());
        assert_eq!(fresh.to_graph(), g);
    }

    #[test]
    fn overlay_edits_canonical_serialisation_roundtrip() {
        let g = sample();
        let csr = CsrGraph::from(&g);
        let mut ov = DeltaOverlay::new(&csr);
        for (u, v) in [(0u32, 3u32), (2, 5), (0, 1)] {
            ov.toggle_edge(u, v);
        }
        let (n, m) = (ov.num_nodes(), ov.num_edges());
        let expected = ov.to_graph();
        let edits = ov.detach();
        let rows: Vec<(NodeId, Vec<NodeId>)> = edits
            .dirty_rows_sorted()
            .into_iter()
            .map(|(u, r)| (u, r.to_vec()))
            .collect();
        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0), "rows not sorted");
        let restored = OverlayEdits::from_rows(n, m, rows);
        assert_eq!(DeltaOverlay::attach(&csr, restored).to_graph(), expected);
    }

    #[test]
    fn sharded_apply_matches_serial_at_any_shard_count() {
        let g = Graph::from_edges(
            10,
            [
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (8, 9),
            ],
        );
        let csr = CsrGraph::from(&g);
        let ops = [
            EdgeOp::new(0, 9, true),
            EdgeOp::new(1, 2, false),
            EdgeOp::new(3, 7, true),
            EdgeOp::new(8, 9, false),
            EdgeOp::new(2, 4, true),
        ];
        let mut serial = DeltaOverlay::new(&csr);
        EditableGraph::apply_ops(&mut serial, &ops);
        for shards in [0usize, 1, 2, 3, 8, 16] {
            let mut ov = DeltaOverlay::new(&csr);
            ov.apply_ops_sharded(&ops, shards);
            assert_eq!(ov.num_edges(), serial.num_edges(), "shards={shards}");
            for u in 0..10u32 {
                assert_eq!(
                    ov.neighbors_sorted(u),
                    serial.neighbors_sorted(u),
                    "row {u} at shards={shards}"
                );
            }
            assert_eq!(ov.dirty_rows(), serial.dirty_rows(), "shards={shards}");
            // Compaction of either overlay freezes the same bytes.
            assert_eq!(ov.compact(), serial.compact(), "shards={shards}");
        }
    }

    #[test]
    fn degree_balanced_bounds_bound_shard_edge_load_on_ba() {
        // The regression the cumulative-degree bucketing fixes: on a
        // power-law graph, equal node-count ranges skew, degree-balanced
        // ranges stay within 2x of each other.
        let g = crate::generators::barabasi_albert(2000, 5, 17);
        let csr = CsrGraph::from(&g);
        let off = csr.offsets();
        let n = csr.num_nodes();
        for shards in [2usize, 4, 8] {
            let bounds = csr.degree_balanced_bounds(shards);
            assert_eq!(bounds.len(), shards + 1);
            assert_eq!(bounds[0], 0);
            assert_eq!(bounds[shards], n);
            assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
            let loads: Vec<usize> = bounds.windows(2).map(|w| off[w[1]] - off[w[0]]).collect();
            let max = *loads.iter().max().unwrap();
            let min = *loads.iter().min().unwrap();
            assert!(min > 0, "empty shard at shards={shards}: {loads:?}");
            assert!(
                max <= 2 * min,
                "edge-load ratio > 2 at shards={shards}: {loads:?}"
            );
        }
        // The replaced strategy — equal node counts — violates the same
        // bound on this graph: BA hubs concentrate at low ids.
        let shards = 8usize;
        let chunk = n.div_ceil(shards);
        let naive: Vec<usize> = (0..shards)
            .map(|k| off[((k + 1) * chunk).min(n)] - off[(k * chunk).min(n)])
            .collect();
        let nmax = *naive.iter().max().unwrap();
        let nmin = *naive.iter().min().unwrap();
        assert!(
            nmax > 2 * nmin,
            "expected contiguous-range skew on BA, got {naive:?}"
        );
    }

    #[test]
    fn degree_balanced_bounds_degenerate_shapes() {
        // More shards than nodes, and an edgeless graph: bounds stay
        // monotone and cover the node space; empty shards are allowed.
        let g = Graph::from_edges(3, [(0, 1)]);
        let csr = CsrGraph::from(&g);
        let bounds = csr.degree_balanced_bounds(8);
        assert_eq!(bounds.len(), 9);
        assert_eq!(bounds[0], 0);
        assert_eq!(bounds[8], 3);
        assert!(bounds.windows(2).all(|w| w[0] <= w[1]));

        let empty = CsrGraph::from(&Graph::new(4));
        let b = empty.degree_balanced_bounds(3);
        assert_eq!(b[0], 0);
        assert_eq!(b[3], 4);
        assert!(b.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sharded_apply_is_byte_identical_on_ba_at_any_shard_count() {
        // End-to-end check of the degree-bucketed sharding on a graph
        // where the buckets are genuinely uneven in node count.
        let g = crate::generators::barabasi_albert(300, 3, 5);
        let csr = CsrGraph::from(&g);
        // Derive a consistent op batch from the graph itself: delete two
        // present edges, add one absent pair per region of the id space.
        let row0: Vec<NodeId> = csr.neighbors_sorted(0).to_vec();
        let mut ops = vec![
            EdgeOp::new(0, row0[0], false),
            EdgeOp::new(0, row0[1], false),
        ];
        for u in [0u32, 100, 200] {
            let v = (u + 1..300)
                .rev()
                .find(|&v| !csr.has_edge(u, v))
                .expect("some absent pair");
            ops.push(EdgeOp::new(u, v, true));
        }
        let mut serial = DeltaOverlay::new(&csr);
        EditableGraph::apply_ops(&mut serial, &ops);
        for shards in [2usize, 3, 5, 16, 300, 1000] {
            let mut ov = DeltaOverlay::new(&csr);
            ov.apply_ops_sharded(&ops, shards);
            assert_eq!(ov.compact(), serial.compact(), "shards={shards}");
            assert_eq!(ov.delta_hash(), serial.delta_hash(), "shards={shards}");
        }
    }

    #[test]
    fn incremental_hash_tracks_materialised_edge_set() {
        let g = sample();
        let csr = CsrGraph::from(&g);
        assert_eq!(csr.edge_hash(), edge_set_hash(&g));
        let mut ov = DeltaOverlay::new(&csr);
        assert_eq!(ov.delta_hash(), 0);
        assert_eq!(ov.edge_set_hash(), csr.edge_hash());
        for (u, v) in [(0u32, 3u32), (0, 1), (2, 5), (0, 3), (4, 5)] {
            ov.toggle_edge(u, v);
            assert_eq!(ov.edge_set_hash(), edge_set_hash(&ov), "after ({u},{v})");
        }
        // Compaction freezes the same hash a from-scratch rebuild gets.
        assert_eq!(
            ov.compact().edge_hash(),
            CsrGraph::from_view(&ov).edge_hash()
        );
        ov.reset();
        assert_eq!(ov.delta_hash(), 0);
        assert_eq!(ov.edge_set_hash(), csr.edge_hash());
    }

    #[test]
    fn sharded_apply_and_serial_agree_on_hash() {
        let g = sample();
        let csr = CsrGraph::from(&g);
        let ops = [
            EdgeOp::new(0, 3, true),
            EdgeOp::new(0, 1, false),
            EdgeOp::new(2, 5, true),
        ];
        let mut serial = DeltaOverlay::new(&csr);
        EditableGraph::apply_ops(&mut serial, &ops);
        let mut sharded = DeltaOverlay::new(&csr);
        sharded.apply_ops_sharded(&ops, 3);
        assert_eq!(serial.delta_hash(), sharded.delta_hash());
        assert_eq!(sharded.edge_set_hash(), edge_set_hash(&sharded));
    }

    #[test]
    fn hash_survives_detach_attach_and_row_serialisation() {
        let g = sample();
        let csr = CsrGraph::from(&g);
        let mut ov = DeltaOverlay::new(&csr);
        for (u, v) in [(0u32, 3u32), (0, 1), (2, 5)] {
            ov.toggle_edge(u, v);
        }
        let expected = ov.delta_hash();
        // detach/attach carries the hash verbatim.
        let edits = ov.detach();
        let ov = DeltaOverlay::attach(&csr, edits);
        assert_eq!(ov.delta_hash(), expected);
        // from_rows drops it; attach recomputes the identical value
        // from the row diff (the snapshot-restore path).
        let (n, m) = (ov.num_nodes(), ov.num_edges());
        let rows: Vec<(NodeId, Vec<NodeId>)> = ov
            .detach()
            .dirty_rows_sorted()
            .into_iter()
            .map(|(u, r)| (u, r.to_vec()))
            .collect();
        let restored = OverlayEdits::from_rows(n, m, rows);
        let ov = DeltaOverlay::attach(&csr, restored);
        assert_eq!(ov.delta_hash(), expected);
        assert_eq!(ov.edge_set_hash(), edge_set_hash(&ov));
    }

    #[test]
    fn overlay_rows_stay_sorted() {
        let g = sample();
        let csr = CsrGraph::from(&g);
        let mut ov = DeltaOverlay::new(&csr);
        for v in [5u32, 3, 4] {
            ov.toggle_edge(1, v);
        }
        let row = ov.neighbors_sorted(1);
        assert!(row.windows(2).all(|w| w[0] < w[1]), "row = {row:?}");
    }
}
