//! The frozen CSR substrate and its copy-on-write mutation overlay.
//!
//! Attack optimisers read graph structure millions of times per run
//! (every pair gradient is a sorted-merge over two adjacency lists) but
//! mutate it rarely (one edge toggle per greedy step, a handful per PGD
//! re-binarisation). [`CsrGraph`] serves the read side: one contiguous
//! `offsets`/`cols` pair, cache-friendly sorted neighbour slices, zero
//! per-node allocation. [`DeltaOverlay`] serves the write side: it
//! borrows a frozen `CsrGraph` and absorbs single-edge toggles by
//! materialising a private sorted copy of just the touched rows, so a
//! greedy attack never rebuilds the substrate and resetting to the clean
//! graph is O(dirty rows), not O(n + m).

use crate::view::{EditableGraph, GraphView};
use crate::{Graph, NodeId};

/// Compressed-sparse-row adjacency: `cols[offsets[u]..offsets[u+1]]` is
/// the strictly increasing neighbour list of `u`. Immutable by design —
/// edits go through a [`DeltaOverlay`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    cols: Vec<NodeId>,
    num_edges: usize,
}

impl CsrGraph {
    /// Builds the CSR structure from any graph view.
    pub fn from_view<V: GraphView + ?Sized>(g: &V) -> Self {
        let n = g.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut cols = Vec::with_capacity(2 * g.num_edges());
        offsets.push(0);
        for u in 0..n as NodeId {
            cols.extend_from_slice(g.neighbors_sorted(u));
            offsets.push(cols.len());
        }
        Self {
            offsets,
            cols,
            num_edges: g.num_edges(),
        }
    }

    /// Row pointer array, length `n + 1` (for external kernels, e.g. the
    /// GCN propagation in `ba-gad`).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Concatenated column indices, length `2m`.
    pub fn cols(&self) -> &[NodeId] {
        &self.cols
    }

    /// Materialises a mutable [`Graph`] with the same edge set.
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::new(self.num_nodes());
        self.for_each_edge(|u, v| {
            g.add_edge(u, v);
        });
        g
    }
}

impl From<&Graph> for CsrGraph {
    fn from(g: &Graph) -> Self {
        Self::from_view(g)
    }
}

impl GraphView for CsrGraph {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.num_edges
    }

    #[inline]
    fn neighbors_sorted(&self, u: NodeId) -> &[NodeId] {
        &self.cols[self.offsets[u as usize]..self.offsets[u as usize + 1]]
    }
}

/// A set of single-edge toggles over a borrowed [`CsrGraph`].
///
/// Rows untouched by any toggle are served straight from the base CSR;
/// the first toggle on a row copies it into a private sorted `Vec` that
/// subsequent toggles patch in `O(deg)`. [`DeltaOverlay::reset`] drops
/// the patches, returning to the clean graph without rebuilding anything
/// — the operation attack loops perform once per λ / per budget
/// extraction.
#[derive(Debug, Clone)]
pub struct DeltaOverlay<'a> {
    base: &'a CsrGraph,
    /// Materialised rows, indexed by node (`None` = serve from the
    /// base). A plain index keeps row access off the hash path — the
    /// gradient assembly reads two rows per candidate pair.
    rows: Vec<Option<Vec<NodeId>>>,
    /// Nodes whose row has been materialised (for O(dirty) reset).
    dirty: Vec<NodeId>,
    num_edges: usize,
}

impl<'a> DeltaOverlay<'a> {
    /// A fresh overlay with no edits.
    pub fn new(base: &'a CsrGraph) -> Self {
        Self {
            base,
            rows: vec![None; base.num_nodes()],
            dirty: Vec::new(),
            num_edges: base.num_edges(),
        }
    }

    /// The frozen base graph.
    pub fn base(&self) -> &'a CsrGraph {
        self.base
    }

    /// Number of rows that have diverged from the base.
    pub fn dirty_rows(&self) -> usize {
        self.dirty.len()
    }

    /// Drops all edits, returning to the base edge set in
    /// `O(dirty rows)`.
    pub fn reset(&mut self) {
        for &u in &self.dirty {
            self.rows[u as usize] = None;
        }
        self.dirty.clear();
        self.num_edges = self.base.num_edges();
    }

    /// Materialises a standalone [`Graph`] of the current edge set.
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::new(self.num_nodes());
        self.for_each_edge(|u, v| {
            g.add_edge(u, v);
        });
        g
    }

    fn row_mut(&mut self, u: NodeId) -> &mut Vec<NodeId> {
        let slot = &mut self.rows[u as usize];
        if slot.is_none() {
            *slot = Some(self.base.neighbors_sorted(u).to_vec());
            self.dirty.push(u);
        }
        slot.as_mut().expect("just materialised")
    }

    /// Inserts `v` into `u`'s row; `true` if it was absent.
    fn half_add(&mut self, u: NodeId, v: NodeId) -> bool {
        let row = self.row_mut(u);
        match row.binary_search(&v) {
            Ok(_) => false,
            Err(pos) => {
                row.insert(pos, v);
                true
            }
        }
    }

    /// Removes `v` from `u`'s row; `true` if it was present.
    fn half_remove(&mut self, u: NodeId, v: NodeId) -> bool {
        let row = self.row_mut(u);
        match row.binary_search(&v) {
            Ok(pos) => {
                row.remove(pos);
                true
            }
            Err(_) => false,
        }
    }
}

impl GraphView for DeltaOverlay<'_> {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.base.num_nodes()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.num_edges
    }

    #[inline]
    fn neighbors_sorted(&self, u: NodeId) -> &[NodeId] {
        match &self.rows[u as usize] {
            Some(row) => row,
            None => self.base.neighbors_sorted(u),
        }
    }
}

impl EditableGraph for DeltaOverlay<'_> {
    fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        assert!(
            (u as usize) < self.num_nodes() && (v as usize) < self.num_nodes(),
            "node id out of range"
        );
        if self.half_add(u, v) {
            self.half_add(v, u);
            self.num_edges += 1;
            true
        } else {
            false
        }
    }

    fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v || (u as usize) >= self.num_nodes() || (v as usize) >= self.num_nodes() {
            return false;
        }
        if self.half_remove(u, v) {
            self.half_remove(v, u);
            self.num_edges -= 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeOp;

    fn sample() -> Graph {
        Graph::from_edges(6, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5)])
    }

    #[test]
    fn csr_matches_graph_view() {
        let g = sample();
        let csr = CsrGraph::from(&g);
        assert_eq!(csr.num_nodes(), g.num_nodes());
        assert_eq!(csr.num_edges(), g.num_edges());
        for u in 0..g.num_nodes() as NodeId {
            assert_eq!(csr.neighbors_sorted(u), g.neighbors_sorted(u));
            assert_eq!(csr.degree(u), g.degree(u));
        }
        assert!(csr.has_edge(2, 0));
        assert!(!csr.has_edge(0, 5));
        assert_eq!(csr.common_neighbors(0, 1), 1);
        assert_eq!(csr.to_graph(), g);
    }

    #[test]
    fn csr_offsets_shape() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let csr = CsrGraph::from(&g);
        assert_eq!(csr.offsets(), &[0, 1, 3, 4]);
        assert_eq!(csr.cols(), &[1, 0, 2, 1]);
    }

    #[test]
    fn overlay_toggles_and_resets() {
        let g = sample();
        let csr = CsrGraph::from(&g);
        let mut ov = DeltaOverlay::new(&csr);
        assert_eq!(ov.dirty_rows(), 0);

        let op = ov.toggle_edge(0, 3).unwrap();
        assert_eq!(op, EdgeOp::new(0, 3, true));
        assert!(ov.has_edge(0, 3));
        assert_eq!(ov.num_edges(), g.num_edges() + 1);
        assert_eq!(ov.dirty_rows(), 2);

        let op = ov.toggle_edge(0, 1).unwrap();
        assert_eq!(op, EdgeOp::new(0, 1, false));
        assert!(!ov.has_edge(1, 0));
        // Untouched rows still come from the base.
        assert_eq!(ov.neighbors_sorted(5), csr.neighbors_sorted(5));

        ov.reset();
        assert_eq!(ov.dirty_rows(), 0);
        assert_eq!(ov.num_edges(), g.num_edges());
        assert_eq!(ov.to_graph(), g);
    }

    #[test]
    fn overlay_self_loop_rejected() {
        let g = sample();
        let csr = CsrGraph::from(&g);
        let mut ov = DeltaOverlay::new(&csr);
        assert!(ov.toggle_edge(2, 2).is_none());
        assert!(!ov.add_edge(2, 2));
        assert_eq!(ov.num_edges(), g.num_edges());
    }

    #[test]
    fn overlay_apply_ops_matches_graph() {
        let g = sample();
        let csr = CsrGraph::from(&g);
        let ops = [
            EdgeOp::new(0, 3, true),
            EdgeOp::new(0, 1, false),
            EdgeOp::new(2, 5, true),
        ];
        let mut ov = DeltaOverlay::new(&csr);
        EditableGraph::apply_ops(&mut ov, &ops);
        assert_eq!(ov.to_graph(), g.with_ops(&ops));
    }

    #[test]
    fn overlay_rows_stay_sorted() {
        let g = sample();
        let csr = CsrGraph::from(&g);
        let mut ov = DeltaOverlay::new(&csr);
        for v in [5u32, 3, 4] {
            ov.toggle_edge(1, v);
        }
        let row = ov.neighbors_sorted(1);
        assert!(row.windows(2).all(|w| w[0] < w[1]), "row = {row:?}");
    }
}
