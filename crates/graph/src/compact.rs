//! The u32-compacted CSR substrate for million-node graphs.
//!
//! [`CsrGraph`] stores its row-pointer array as `Vec<usize>` — 8 bytes
//! per node on 64-bit targets. At the 10^6–10^7-node scale the ROADMAP
//! targets, halving that to `u32` matters twice over: it cuts the
//! resident offsets array in half, and it fixes the on-disk chunk
//! format (`ba-bench`'s graph store) to one integer width on every
//! platform. A `u32` row pointer addresses up to `2m = u32::MAX`
//! adjacency entries — comfortably past 10^9 half-edges, i.e. half a
//! billion undirected edges — and the compaction path is *checked*:
//! [`CsrGraph32::from_csr`] returns [`CompactError::TooManyEdges`]
//! instead of truncating, and [`CsrGraph32::promote`] widens back to
//! the `usize` representation infallibly.
//!
//! [`from_edge_stream`](crate::compact::from_edge_stream) closes the
//! other memory gap: it builds the
//! compacted CSR directly from a restartable edge iterator in two
//! counting passes — degrees + hash first, column fill second — so the
//! full edge list is never materialised. Paired with the streamed
//! generators ([`crate::generators::erdos_renyi_stream`] /
//! [`crate::generators::barabasi_albert_stream`]) the peak resident
//! cost of building an `n`-node, `m`-edge graph is the final CSR plus
//! `O(n)` scratch, not the `O(m)` edge `Vec` the in-memory builders
//! temporarily hold. Bit-identity between every path (in-memory →
//! `CsrGraph` → `from_csr` vs streamed → [`CsrGraph32`]) is pinned by
//! the proptests in `tests/proptests.rs`.

use crate::view::GraphView;
use crate::zobrist::edge_key;
use crate::{CsrGraph, NodeId};

/// Why a graph could not be narrowed to the u32-compacted layout, or a
/// streamed build could not be completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompactError {
    /// The adjacency array needs more than `u32::MAX` entries, so u32
    /// row pointers cannot address it. Carries `2m`, the entry count.
    TooManyEdges(usize),
    /// A streamed edge was a self-loop or referenced a node `>= n`.
    BadEdge {
        /// First endpoint as emitted.
        u: NodeId,
        /// Second endpoint as emitted.
        v: NodeId,
    },
    /// The edge stream was not row-monotone: node `node`'s neighbour
    /// row came out unsorted (or contained a duplicate), which means
    /// the stream violated the sorted-row-order emission contract.
    UnsortedRow(NodeId),
    /// The stream's two passes disagreed — the edge-iterator factory is
    /// not restartable (the second pass saw a different edge count).
    NonRestartableStream {
        /// Edges counted by the first pass.
        first: usize,
        /// Edges seen by the second pass.
        second: usize,
    },
}

impl std::fmt::Display for CompactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompactError::TooManyEdges(entries) => write!(
                f,
                "adjacency needs {entries} entries; u32 offsets address at most {}",
                u32::MAX
            ),
            CompactError::BadEdge { u, v } => {
                write!(f, "streamed edge ({u}, {v}) is a self-loop or out of range")
            }
            CompactError::UnsortedRow(node) => write!(
                f,
                "row {node} came out unsorted; the edge stream is not row-monotone"
            ),
            CompactError::NonRestartableStream { first, second } => write!(
                f,
                "edge stream is not restartable: pass 1 saw {first} edges, pass 2 saw {second}"
            ),
        }
    }
}

impl std::error::Error for CompactError {}

/// Compressed-sparse-row adjacency with `u32` row pointers:
/// `cols[offsets[u]..offsets[u + 1]]` is the strictly increasing
/// neighbour list of `u`, exactly as in [`CsrGraph`], at half the
/// offsets footprint. Immutable; read through [`GraphView`], so every
/// downstream consumer (egonet features, the OddBall fit, the pair
/// gradients) is bit-identical on the two representations.
///
/// ```
/// use ba_graph::{compact::CsrGraph32, CsrGraph, Graph, GraphView};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
/// let wide = CsrGraph::from_view(&g);
/// let narrow = CsrGraph32::from_csr(&wide).unwrap();
/// assert_eq!(narrow.neighbors_sorted(1), wide.neighbors_sorted(1));
/// assert_eq!(narrow.promote(), wide); // widening is lossless
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph32 {
    offsets: Vec<u32>,
    cols: Vec<NodeId>,
    num_edges: usize,
    edge_hash: u64,
}

impl CsrGraph32 {
    /// Narrows a frozen [`CsrGraph`] to u32 row pointers. Fails with
    /// [`CompactError::TooManyEdges`] when the adjacency array exceeds
    /// `u32::MAX` entries — never truncates.
    pub fn from_csr(csr: &CsrGraph) -> Result<Self, CompactError> {
        let entries = csr.cols().len();
        if u32::try_from(entries).is_err() {
            return Err(CompactError::TooManyEdges(entries));
        }
        let offsets = csr.offsets().iter().map(|&o| o as u32).collect();
        Ok(Self {
            offsets,
            cols: csr.cols().to_vec(),
            num_edges: csr.num_edges(),
            edge_hash: csr.edge_hash(),
        })
    }

    /// Builds the compacted CSR from any graph view, via the same
    /// checked narrowing as [`CsrGraph32::from_csr`].
    pub fn from_view<V: GraphView + ?Sized>(g: &V) -> Result<Self, CompactError> {
        Self::from_csr(&CsrGraph::from_view(g))
    }

    /// Widens back to the `usize`-offset [`CsrGraph`]. Infallible: u32
    /// row pointers always fit in `usize`, and the column array is
    /// shared verbatim, so `promote` then [`CsrGraph32::from_csr`] is a
    /// bit-exact round trip.
    pub fn promote(&self) -> CsrGraph {
        CsrGraph::from_raw_parts(
            self.offsets.iter().map(|&o| o as usize).collect(),
            self.cols.clone(),
            self.num_edges,
            self.edge_hash,
        )
    }

    /// Zobrist hash of the edge set (see [`crate::zobrist`]) — equal to
    /// the wide representation's [`CsrGraph::edge_hash`] by
    /// construction.
    #[inline]
    pub fn edge_hash(&self) -> u64 {
        self.edge_hash
    }

    /// Row pointer array, length `n + 1`, in u32.
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Concatenated column indices, length `2m`.
    pub fn cols(&self) -> &[NodeId] {
        &self.cols
    }
}

impl GraphView for CsrGraph32 {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.num_edges
    }

    #[inline]
    fn neighbors_sorted(&self, u: NodeId) -> &[NodeId] {
        &self.cols[self.offsets[u as usize] as usize..self.offsets[u as usize + 1] as usize]
    }
}

/// Builds a [`CsrGraph32`] from a *restartable* edge stream without
/// materialising the edge list.
///
/// `make_edges` is called twice and must yield the identical sequence
/// of undirected edges both times (any order is accepted as long as
/// each node's incident edges arrive with monotonically increasing
/// other-endpoints — the *row-monotone* contract the streamed
/// generators guarantee; see `DESIGN.md` §13). Pass one counts degrees
/// and folds the Zobrist edge hash; pass two drops each half-edge into
/// its row cursor. Peak scratch is the `n + 1` cursor array — the
/// final CSR aside, nothing grows with `m`.
///
/// Every edge is validated (no self-loops, endpoints `< n`), the final
/// rows are checked strictly increasing, and a stream that yields
/// different edge counts across the two passes is reported as
/// [`CompactError::NonRestartableStream`] rather than producing a
/// corrupt graph.
pub fn from_edge_stream<I, F>(n: usize, make_edges: F) -> Result<CsrGraph32, CompactError>
where
    F: Fn() -> I,
    I: Iterator<Item = (NodeId, NodeId)>,
{
    // Pass 1: degrees, edge count, hash.
    let mut degree = vec![0u32; n];
    let mut num_edges = 0usize;
    let mut edge_hash = 0u64;
    for (u, v) in make_edges() {
        if u == v || u as usize >= n || v as usize >= n {
            return Err(CompactError::BadEdge { u, v });
        }
        degree[u as usize] += 1;
        degree[v as usize] += 1;
        num_edges += 1;
        edge_hash ^= edge_key(u, v);
    }
    let entries = 2 * num_edges;
    if u32::try_from(entries).is_err() {
        return Err(CompactError::TooManyEdges(entries));
    }

    // Prefix-sum the degrees into row pointers; reuse a copy as the
    // per-row write cursors for pass 2.
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0u32);
    let mut acc = 0u32;
    for &d in &degree {
        acc += d;
        offsets.push(acc);
    }
    drop(degree);
    let mut cursor: Vec<u32> = offsets[..n].to_vec();

    // Pass 2: fill both half-edges at their row cursors.
    let mut cols = vec![0 as NodeId; entries];
    let mut second = 0usize;
    for (u, v) in make_edges() {
        if u == v || u as usize >= n || v as usize >= n {
            return Err(CompactError::BadEdge { u, v });
        }
        second += 1;
        if second > num_edges {
            break;
        }
        cols[cursor[u as usize] as usize] = v;
        cursor[u as usize] += 1;
        cols[cursor[v as usize] as usize] = u;
        cursor[v as usize] += 1;
    }
    if second != num_edges {
        return Err(CompactError::NonRestartableStream {
            first: num_edges,
            second,
        });
    }

    // The row-monotone contract makes every row strictly increasing;
    // verify it in O(2m) so a misbehaving stream fails typed instead of
    // silently breaking the sorted-row invariant downstream.
    for u in 0..n {
        let row = &cols[offsets[u] as usize..offsets[u + 1] as usize];
        if row.windows(2).any(|w| w[0] >= w[1]) {
            return Err(CompactError::UnsortedRow(u as NodeId));
        }
    }

    Ok(CsrGraph32 {
        offsets,
        cols,
        num_edges,
        edge_hash,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::egonet::egonet_features;
    use crate::{generators, Graph};

    #[test]
    fn narrow_promote_round_trip_is_bit_exact() {
        let g = generators::barabasi_albert(500, 4, 9);
        let wide = CsrGraph::from_view(&g);
        let narrow = CsrGraph32::from_csr(&wide).unwrap();
        assert_eq!(narrow.num_nodes(), wide.num_nodes());
        assert_eq!(narrow.num_edges(), wide.num_edges());
        assert_eq!(narrow.edge_hash(), wide.edge_hash());
        assert_eq!(narrow.cols(), wide.cols());
        for u in 0..wide.num_nodes() as NodeId {
            assert_eq!(narrow.neighbors_sorted(u), wide.neighbors_sorted(u));
        }
        assert_eq!(narrow.promote(), wide);
    }

    #[test]
    fn downstream_features_identical_across_widths() {
        let g = generators::erdos_renyi(300, 0.03, 4);
        let wide = CsrGraph::from_view(&g);
        let narrow = CsrGraph32::from_csr(&wide).unwrap();
        assert_eq!(egonet_features(&narrow), egonet_features(&wide));
    }

    #[test]
    fn streamed_build_matches_in_memory_er() {
        let (n, p, seed) = (400usize, 0.02f64, 7u64);
        let streamed = from_edge_stream(n, || generators::erdos_renyi_stream(n, p, seed)).unwrap();
        let in_memory = CsrGraph::from_view(&generators::erdos_renyi(n, p, seed));
        assert_eq!(streamed, CsrGraph32::from_csr(&in_memory).unwrap());
        assert_eq!(streamed.edge_hash(), in_memory.edge_hash());
    }

    #[test]
    fn streamed_build_matches_in_memory_ba() {
        let (n, m, seed) = (600usize, 3usize, 13u64);
        let streamed =
            from_edge_stream(n, || generators::barabasi_albert_stream(n, m, seed)).unwrap();
        let in_memory = CsrGraph::from_view(&generators::barabasi_albert(n, m, seed));
        assert_eq!(streamed, CsrGraph32::from_csr(&in_memory).unwrap());
    }

    #[test]
    fn bad_edges_reported_typed() {
        let self_loop = from_edge_stream(4, || [(1u32, 1u32)].into_iter());
        assert_eq!(self_loop, Err(CompactError::BadEdge { u: 1, v: 1 }));
        let oob = from_edge_stream(4, || [(0u32, 9u32)].into_iter());
        assert_eq!(oob, Err(CompactError::BadEdge { u: 0, v: 9 }));
    }

    #[test]
    fn duplicate_edge_reported_as_unsorted_row() {
        let dup = from_edge_stream(4, || [(0u32, 1u32), (0, 1)].into_iter());
        assert_eq!(dup, Err(CompactError::UnsortedRow(0)));
    }

    #[test]
    fn non_restartable_stream_reported() {
        use std::cell::Cell;
        let calls = Cell::new(0usize);
        let err = from_edge_stream(4, || {
            calls.set(calls.get() + 1);
            if calls.get() == 1 {
                vec![(0u32, 1u32), (1, 2)].into_iter()
            } else {
                vec![(0u32, 1u32)].into_iter()
            }
        });
        assert_eq!(
            err,
            Err(CompactError::NonRestartableStream {
                first: 2,
                second: 1
            })
        );
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let empty = from_edge_stream(0, std::iter::empty).unwrap();
        assert_eq!(empty.num_nodes(), 0);
        assert_eq!(empty.num_edges(), 0);
        let edgeless = from_edge_stream(5, std::iter::empty).unwrap();
        assert_eq!(edgeless.num_nodes(), 5);
        assert_eq!(edgeless.promote(), CsrGraph::from_view(&Graph::new(5)));
    }
}
