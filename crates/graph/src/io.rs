//! Edge-list IO.
//!
//! The format is the standard SNAP-style edge list: one `u v` pair per
//! line, `#`-prefixed comment lines, whitespace separated. Node ids are
//! arbitrary non-negative integers and are compacted to `0..n` on load
//! (the mapping is returned so scores can be reported against original
//! ids). This lets users drop in the real Bitcoin-Alpha / Wikivote /
//! Blogcatalog files the paper uses.

use crate::{Graph, NodeId};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Why a line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseReason {
    /// The line had fewer than two whitespace-separated fields.
    MissingField,
    /// A field was not a non-negative integer node id.
    BadNodeId(String),
}

impl std::fmt::Display for ParseReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseReason::MissingField => write!(f, "expected two node ids"),
            ParseReason::BadNodeId(tok) => write!(f, "invalid node id {tok:?}"),
        }
    }
}

/// Errors raised while reading an edge list.
#[derive(Debug)]
pub enum IoError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// A line could not be parsed as `u v`.
    Parse {
        /// 1-based line number of the offending line.
        line_no: usize,
        /// The offending line (trimmed).
        line: String,
        /// What exactly failed on it.
        reason: ParseReason,
    },
    /// The file contained no edges.
    Empty,
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse {
                line_no,
                line,
                reason,
            } => {
                write!(f, "cannot parse line {line_no} ({reason}): {line:?}")
            }
            IoError::Empty => write!(f, "edge list is empty"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Result of loading an edge list: the compacted graph plus the original
/// node labels (index = compact id).
#[derive(Debug, Clone)]
pub struct LoadedGraph {
    /// The graph over compact ids `0..n`.
    pub graph: Graph,
    /// `labels[i]` is the original id of compact node `i`.
    pub labels: Vec<u64>,
}

/// Reads an edge list from any reader.
pub fn read_edge_list(reader: impl Read) -> Result<LoadedGraph, IoError> {
    let buf = BufReader::new(reader);
    let mut mapping: BTreeMap<u64, NodeId> = BTreeMap::new();
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let field = |parts: &mut std::str::SplitWhitespace<'_>| -> Result<u64, ParseReason> {
            let tok = parts.next().ok_or(ParseReason::MissingField)?;
            tok.parse()
                .map_err(|_| ParseReason::BadNodeId(tok.to_string()))
        };
        let (u, v) = match (field(&mut parts), field(&mut parts)) {
            (Ok(u), Ok(v)) => (u, v),
            (Err(reason), _) | (_, Err(reason)) => {
                return Err(IoError::Parse {
                    line_no: idx + 1,
                    line: trimmed.to_string(),
                    reason,
                });
            }
        };
        let intern = |x: u64, mapping: &mut BTreeMap<u64, NodeId>| -> NodeId {
            let next = mapping.len() as NodeId;
            *mapping.entry(x).or_insert(next)
        };
        let cu = intern(u, &mut mapping);
        let cv = intern(v, &mut mapping);
        edges.push((cu, cv));
    }
    if edges.is_empty() {
        return Err(IoError::Empty);
    }
    let n = mapping.len();
    let graph = Graph::from_edges(n, edges);
    let mut labels = vec![0u64; n];
    for (orig, compact) in mapping {
        labels[compact as usize] = orig;
    }
    Ok(LoadedGraph { graph, labels })
}

/// Reads an edge list from a file path.
pub fn load_edge_list(path: impl AsRef<Path>) -> Result<LoadedGraph, IoError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file)
}

/// Writes a graph as an edge list (compact ids).
pub fn write_edge_list(g: &Graph, writer: impl Write) -> std::io::Result<()> {
    let mut out = BufWriter::new(writer);
    writeln!(out, "# nodes {} edges {}", g.num_nodes(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(out, "{u} {v}")?;
    }
    out.flush()
}

/// Writes a graph to a file path.
pub fn save_edge_list(g: &Graph, path: impl AsRef<Path>) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(g, file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_buffer() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4), (0, 4)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let loaded = read_edge_list(&buf[..]).unwrap();
        // Ids are compacted in order of first appearance, so compare the
        // edge sets through the label mapping.
        assert_eq!(loaded.graph.num_edges(), g.num_edges());
        for (u, v) in loaded.graph.edges() {
            let (a, b) = (
                loaded.labels[u as usize] as NodeId,
                loaded.labels[v as usize] as NodeId,
            );
            assert!(g.has_edge(a, b), "edge ({a},{b}) missing from original");
        }
        let mut labels = loaded.labels.clone();
        labels.sort_unstable();
        assert_eq!(labels, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# a comment\n\n% another\n10 20\n20 30\n";
        let loaded = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(loaded.graph.num_nodes(), 3);
        assert_eq!(loaded.graph.num_edges(), 2);
        assert_eq!(loaded.labels, vec![10, 20, 30]);
    }

    #[test]
    fn non_contiguous_ids_compacted() {
        let text = "1000000 5\n5 42\n";
        let loaded = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(loaded.graph.num_nodes(), 3);
        assert!(loaded.graph.has_edge(0, 1));
        assert_eq!(loaded.labels[0], 1000000);
    }

    #[test]
    fn parse_error_reports_line_and_token() {
        let text = "1 2\nhello world\n";
        match read_edge_list(text.as_bytes()) {
            Err(e) => {
                let msg = e.to_string();
                assert!(msg.contains("line 2"), "message: {msg}");
                assert!(msg.contains("hello"), "message: {msg}");
                match e {
                    IoError::Parse {
                        line_no, reason, ..
                    } => {
                        assert_eq!(line_no, 2);
                        assert_eq!(reason, ParseReason::BadNodeId("hello".into()));
                    }
                    other => panic!("expected parse error, got {other:?}"),
                }
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn parse_error_missing_field() {
        let text = "1 2\n3 4\n5\n";
        match read_edge_list(text.as_bytes()) {
            Err(IoError::Parse {
                line_no, reason, ..
            }) => {
                assert_eq!(line_no, 3);
                assert_eq!(reason, ParseReason::MissingField);
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn parse_error_negative_id() {
        let text = "1 -2\n";
        match read_edge_list(text.as_bytes()) {
            Err(IoError::Parse {
                line_no,
                reason: ParseReason::BadNodeId(tok),
                ..
            }) => {
                assert_eq!(line_no, 1);
                assert_eq!(tok, "-2");
            }
            other => panic!("expected bad-node-id error, got {other:?}"),
        }
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(
            read_edge_list("# only comments\n".as_bytes()),
            Err(IoError::Empty)
        ));
    }

    #[test]
    fn duplicate_and_self_edges_ignored() {
        let text = "0 1\n1 0\n2 2\n1 2\n";
        let loaded = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(loaded.graph.num_edges(), 2);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("ba_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.edges");
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        save_edge_list(&g, &path).unwrap();
        let loaded = load_edge_list(&path).unwrap();
        assert_eq!(loaded.graph, g);
        std::fs::remove_file(path).ok();
    }
}
