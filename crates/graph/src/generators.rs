//! Random-graph generators and anomaly planting.
//!
//! The paper's synthetic datasets are Erdős–Rényi (`n = 1000`, `p = 0.02`)
//! and Barabási–Albert (`n = 1000`, `m = 5`). The real datasets are
//! substituted (see DESIGN.md §4) by heavy-tailed configuration-style
//! graphs with planted communities and planted near-clique / near-star
//! anomalies — the structural patterns OddBall flags (paper Fig. 2a).

use crate::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Erdős–Rényi `G(n, p)`: each of the `C(n,2)` pairs is an edge
/// independently with probability `p`. Deterministic given `seed`.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    // Geometric skipping would be faster for tiny p, but n ≈ 1000 keeps
    // the O(n²) loop at half a million draws — trivial.
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            if rng.gen::<f64>() < p {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Barabási–Albert preferential attachment with `m` edges per new node.
/// Starts from a star of `m + 1` nodes, then each arriving node attaches
/// to `m` distinct existing nodes chosen proportionally to degree.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m >= 1, "m must be >= 1");
    assert!(n > m, "need n > m");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    // Repeated-endpoint list: sampling an element uniformly is sampling a
    // node with probability proportional to degree.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m);
    for v in 1..=(m as NodeId) {
        g.add_edge(0, v);
        endpoints.push(0);
        endpoints.push(v);
    }
    for u in (m as NodeId + 1)..(n as NodeId) {
        let mut chosen = std::collections::BTreeSet::new();
        while chosen.len() < m {
            let pick = endpoints[rng.gen_range(0..endpoints.len())];
            if pick != u {
                chosen.insert(pick);
            }
        }
        for &v in &chosen {
            g.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    g
}

/// Streaming [`erdos_renyi`]: yields the same edge set as the in-memory
/// generator at the same `(n, p, seed)` — the RNG draw sequence is
/// replicated exactly, one `f64` draw per candidate pair in row-major
/// `(u, v)` order — without building a [`Graph`]. Edges come out in
/// lexicographic `(u, v)` order with `u < v`, which is *row-monotone*
/// (every node's incident edges appear with increasing other-endpoint),
/// the order [`crate::compact::from_edge_stream`] consumes with O(n)
/// scratch. Equivalence at matched seeds is pinned by proptest.
pub fn erdos_renyi_stream(n: usize, p: f64, seed: u64) -> ErdosRenyiStream {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    ErdosRenyiStream {
        rng: StdRng::seed_from_u64(seed),
        n: n as NodeId,
        p,
        u: 0,
        v: 1,
    }
}

/// Iterator state of [`erdos_renyi_stream`].
#[derive(Debug, Clone)]
pub struct ErdosRenyiStream {
    rng: StdRng,
    n: NodeId,
    p: f64,
    u: NodeId,
    v: NodeId,
}

impl Iterator for ErdosRenyiStream {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<(NodeId, NodeId)> {
        while self.u < self.n {
            while self.v < self.n {
                let v = self.v;
                self.v += 1;
                if self.rng.gen::<f64>() < self.p {
                    return Some((self.u, v));
                }
            }
            self.u += 1;
            self.v = self.u + 1;
        }
        None
    }
}

/// Streaming [`barabasi_albert`]: yields the same edge set as the
/// in-memory generator at the same `(n, m, seed)` — identical RNG draw
/// sequence, including the rejection loop over the repeated-endpoint
/// list — without building a [`Graph`]. Edges come out in arrival
/// order: the `m` initial star edges `(0, v)`, then each arriving
/// node's `m` attachments `(u, v)` with its targets `v` ascending.
/// That order is row-monotone (an arriving node's targets are all
/// smaller than it and sorted; later attachments to any node arrive
/// with increasing attacher id), so
/// [`crate::compact::from_edge_stream`] builds the compacted CSR from
/// it directly. Resident state is the `O(n·m)` endpoint list the model
/// itself requires — the `O(n)` adjacency `Vec`s of the in-memory
/// path are never allocated.
pub fn barabasi_albert_stream(n: usize, m: usize, seed: u64) -> BarabasiAlbertStream {
    assert!(m >= 1, "m must be >= 1");
    assert!(n > m, "need n > m");
    BarabasiAlbertStream {
        rng: StdRng::seed_from_u64(seed),
        n: n as NodeId,
        m,
        endpoints: Vec::with_capacity(2 * n * m),
        star_v: 1,
        u: m as NodeId + 1,
        emit_u: 0,
        chosen: Vec::with_capacity(m),
        pos: 0,
    }
}

/// Iterator state of [`barabasi_albert_stream`].
#[derive(Debug, Clone)]
pub struct BarabasiAlbertStream {
    rng: StdRng,
    n: NodeId,
    m: usize,
    /// Repeated-endpoint list — mirrors the in-memory generator, so
    /// uniform sampling from it is degree-proportional sampling.
    endpoints: Vec<NodeId>,
    /// Next star leaf to emit (`1..=m`), exhausted first.
    star_v: NodeId,
    /// Next node to attach once the current one's edges are drained.
    u: NodeId,
    /// The node whose attachments are currently being emitted.
    emit_u: NodeId,
    /// Current node's targets, ascending (drained via `pos`).
    chosen: Vec<NodeId>,
    pos: usize,
}

impl Iterator for BarabasiAlbertStream {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<(NodeId, NodeId)> {
        if (self.star_v as usize) <= self.m {
            let v = self.star_v;
            self.star_v += 1;
            self.endpoints.push(0);
            self.endpoints.push(v);
            return Some((0, v));
        }
        if self.pos >= self.chosen.len() {
            if self.u >= self.n {
                return None;
            }
            // Draw the next node's targets with exactly the in-memory
            // generator's rejection loop: the endpoint list holds every
            // edge emitted so far and none of this node's own, so the
            // gen_range bounds — and hence the stream — match draw for
            // draw.
            let mut set = std::collections::BTreeSet::new();
            while set.len() < self.m {
                let pick = self.endpoints[self.rng.gen_range(0..self.endpoints.len())];
                if pick != self.u {
                    set.insert(pick);
                }
            }
            self.chosen.clear();
            self.chosen.extend(set);
            for &v in &self.chosen {
                self.endpoints.push(self.u);
                self.endpoints.push(v);
            }
            self.pos = 0;
            self.emit_u = self.u;
            self.u += 1;
        }
        let v = self.chosen[self.pos];
        self.pos += 1;
        Some((self.emit_u, v))
    }
}

/// Heavy-tailed graph via a Chung–Lu style model: node weights follow a
/// power law with exponent `gamma`, and pair `{u,v}` is connected with
/// probability `min(1, w_u w_v / Σw)`. The expected edge count is then
/// rescaled towards `target_edges` by adjusting the weights.
pub fn power_law_chung_lu(n: usize, target_edges: usize, gamma: f64, seed: u64) -> Graph {
    assert!(gamma > 1.0, "power-law exponent must be > 1");
    let mut rng = StdRng::seed_from_u64(seed);
    // Weights w_i ∝ (i + i0)^{-1/(gamma-1)}, the standard static-model
    // construction for a degree power law with exponent gamma.
    let alpha = 1.0 / (gamma - 1.0);
    let mut w: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-alpha)).collect();
    let sum_w: f64 = w.iter().sum();
    // Rescale so that expected #edges ≈ target_edges:
    // E[m] = Σ_{u<v} w_u w_v / W ≈ W/2 after normalisation; set total
    // weight so (Σw)²/(2 Σw) = target ⇒ Σw = 2·target.
    let scale = (2.0 * target_edges as f64) / sum_w;
    for wi in &mut w {
        *wi *= scale;
    }
    let total: f64 = w.iter().sum();
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let p = (w[u] * w[v] / total).min(1.0);
            if rng.gen::<f64>() < p {
                g.add_edge(u as NodeId, v as NodeId);
            }
        }
    }
    g
}

/// Like [`power_law_chung_lu`] but with the node weights capped at
/// `max_weight` (≈ the maximum expected degree). Real social/voting
/// graphs sampled at ~1000 nodes rarely contain degree-400 monsters, and
/// uncapped Chung–Lu tails at `γ ≈ 2` routinely create them.
pub fn power_law_chung_lu_capped(
    n: usize,
    target_edges: usize,
    gamma: f64,
    max_weight: f64,
    seed: u64,
) -> Graph {
    assert!(gamma > 1.0, "power-law exponent must be > 1");
    assert!(max_weight > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let alpha = 1.0 / (gamma - 1.0);
    let mut w: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-alpha)).collect();
    let sum_w: f64 = w.iter().sum();
    let scale = (2.0 * target_edges as f64) / sum_w;
    for wi in &mut w {
        *wi = (*wi * scale).min(max_weight);
    }
    let total: f64 = w.iter().sum();
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let p = (w[u] * w[v] / total).min(1.0);
            if rng.gen::<f64>() < p {
                g.add_edge(u as NodeId, v as NodeId);
            }
        }
    }
    g
}

/// Triadic closure pass: repeatedly picks a random node with degree ≥ 2
/// and closes a random open wedge at it, until `edges_to_add` edges have
/// been added (or attempts are exhausted). Raises egonet density around
/// hubs, which keeps the power-law fit's slope honest — without it,
/// synthetic hubs are pathological below-the-line outliers that no
/// bounded attacker could ever fix.
pub fn triadic_closure(g: &mut Graph, edges_to_add: usize, seed: u64) -> usize {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.num_nodes() as NodeId;
    if n < 3 {
        return 0;
    }
    let mut added = 0usize;
    let mut attempts = 0usize;
    let max_attempts = edges_to_add.saturating_mul(50) + 100;
    while added < edges_to_add && attempts < max_attempts {
        attempts += 1;
        let m = rng.gen_range(0..n);
        let deg = g.degree(m);
        if deg < 2 {
            continue;
        }
        let pick = |rng: &mut StdRng, g: &Graph| -> NodeId {
            let k = rng.gen_range(0..g.degree(m));
            g.neighbors(m)[k]
        };
        let a = pick(&mut rng, g);
        let b = pick(&mut rng, g);
        if a != b && g.add_edge(a, b) {
            added += 1;
        }
    }
    added
}

/// Planted-partition community graph: `k` equal communities, intra-edge
/// probability `p_in`, inter-edge probability `p_out`.
pub fn planted_partition(n: usize, k: usize, p_in: f64, p_out: f64, seed: u64) -> Graph {
    assert!(k >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    let comm = |x: usize| x * k / n.max(1);
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if comm(u) == comm(v) { p_in } else { p_out };
            if rng.gen::<f64>() < p {
                g.add_edge(u as NodeId, v as NodeId);
            }
        }
    }
    g
}

/// Plants a near-clique among `members`: adds every missing pair with
/// probability `density`. Returns the number of edges added.
pub fn plant_near_clique(g: &mut Graph, members: &[NodeId], density: f64, seed: u64) -> usize {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut added = 0;
    for (idx, &u) in members.iter().enumerate() {
        for &v in &members[idx + 1..] {
            if !g.has_edge(u, v) && rng.gen::<f64>() < density && g.add_edge(u, v) {
                added += 1;
            }
        }
    }
    added
}

/// Plants a near-star: connects `center` to `spokes` random non-adjacent
/// nodes. Returns the number of edges added.
pub fn plant_near_star(g: &mut Graph, center: NodeId, spokes: usize, seed: u64) -> usize {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.num_nodes() as NodeId;
    let mut candidates: Vec<NodeId> = (0..n)
        .filter(|&v| v != center && !g.has_edge(center, v))
        .collect();
    candidates.shuffle(&mut rng);
    let mut added = 0;
    for &v in candidates.iter().take(spokes) {
        if g.add_edge(center, v) {
            added += 1;
        }
    }
    added
}

/// Degree-preserving randomisation via double-edge swaps: picks two
/// edges `{a,b}`, `{c,d}` and rewires them to `{a,d}`, `{c,b}` when that
/// creates no self-loop or multi-edge. `swaps` successful swaps are
/// performed (or the attempt budget runs out). This is the standard null
/// model for "is this structure more than its degree sequence" questions
/// — e.g. whether an attack's flips are detectable beyond degree effects.
pub fn degree_preserving_rewire(g: &mut Graph, swaps: usize, seed: u64) -> usize {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    if edges.len() < 2 {
        return 0;
    }
    let mut done = 0usize;
    let mut attempts = 0usize;
    let max_attempts = swaps.saturating_mul(20) + 100;
    while done < swaps && attempts < max_attempts {
        attempts += 1;
        let i = rng.gen_range(0..edges.len());
        let j = rng.gen_range(0..edges.len());
        if i == j {
            continue;
        }
        let (a, b) = edges[i];
        let (c, d) = edges[j];
        // Candidate rewiring {a,d}, {c,b}.
        if a == d || c == b || a == c || b == d {
            continue;
        }
        if g.has_edge(a, d) || g.has_edge(c, b) {
            continue;
        }
        g.remove_edge(a, b);
        g.remove_edge(c, d);
        g.add_edge(a, d);
        g.add_edge(c, b);
        edges[i] = if a < d { (a, d) } else { (d, a) };
        edges[j] = if c < b { (c, b) } else { (b, c) };
        done += 1;
    }
    done
}

/// Ensures the graph has no isolated nodes by attaching each one to a
/// random non-isolated node (or to the next node if the graph is empty).
/// The attacks assume no singletons exist in the clean graph.
pub fn attach_isolated(g: &mut Graph, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.num_nodes() as NodeId;
    if n < 2 {
        return;
    }
    for u in 0..n {
        if g.degree(u) == 0 {
            loop {
                let v = rng.gen_range(0..n);
                if v != u && g.add_edge(u, v) {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn er_edge_count_near_expectation() {
        let n = 400;
        let p = 0.05;
        let g = erdos_renyi(n, p, 1);
        let expected = p * (n * (n - 1) / 2) as f64;
        let m = g.num_edges() as f64;
        // 5 sigma tolerance on a binomial.
        let sigma = (expected * (1.0 - p)).sqrt();
        assert!(
            (m - expected).abs() < 5.0 * sigma,
            "m={m}, expected≈{expected}"
        );
    }

    #[test]
    fn er_deterministic_per_seed() {
        assert_eq!(erdos_renyi(100, 0.05, 9), erdos_renyi(100, 0.05, 9));
        assert_ne!(erdos_renyi(100, 0.05, 9), erdos_renyi(100, 0.05, 10));
    }

    #[test]
    fn ba_edge_count_exact() {
        let n = 300;
        let m = 5;
        let g = barabasi_albert(n, m, 2);
        // m initial star edges + m per arriving node.
        assert_eq!(g.num_edges(), m + (n - m - 1) * m);
        // Everyone has degree >= m except possibly early nodes which have more.
        for u in 0..n as NodeId {
            assert!(g.degree(u) >= 1);
        }
    }

    #[test]
    fn ba_is_connected_and_hubby() {
        let g = barabasi_albert(500, 3, 3);
        assert_eq!(metrics::connected_components(&g), 1);
        let max_deg = (0..500).map(|u| g.degree(u)).max().unwrap();
        // Preferential attachment must create hubs much larger than m.
        assert!(max_deg > 20, "max degree {max_deg} too small for BA");
    }

    #[test]
    fn chung_lu_heavy_tail() {
        let g = power_law_chung_lu(800, 2400, 2.3, 4);
        let m = g.num_edges();
        assert!(m > 1200 && m < 4800, "edge count {m} far from target 2400");
        let max_deg = (0..800).map(|u| g.degree(u)).max().unwrap();
        let mean_deg = 2.0 * m as f64 / 800.0;
        assert!(
            max_deg as f64 > 5.0 * mean_deg,
            "no heavy tail: max {max_deg}, mean {mean_deg}"
        );
    }

    #[test]
    fn planted_partition_assortative() {
        let g = planted_partition(200, 4, 0.2, 0.01, 5);
        // Count intra vs inter edges.
        let comm = |x: u32| (x as usize) * 4 / 200;
        let (mut intra, mut inter) = (0, 0);
        for (u, v) in g.edges() {
            if comm(u) == comm(v) {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > inter, "intra={intra} inter={inter}");
    }

    #[test]
    fn near_clique_raises_egonet_density() {
        let mut g = erdos_renyi(200, 0.02, 6);
        let members: Vec<NodeId> = (0..12).collect();
        let added = plant_near_clique(&mut g, &members, 0.9, 7);
        assert!(added > 30, "added only {added} edges");
        let f = crate::egonet::egonet_features(&g);
        // Member egonets should be much denser than E ≈ N.
        assert!(f.e[0] > 2.0 * f.n[0]);
    }

    #[test]
    fn near_star_raises_degree() {
        let mut g = erdos_renyi(300, 0.01, 8);
        let added = plant_near_star(&mut g, 5, 60, 9);
        assert!(added >= 55);
        assert!(g.degree(5) >= 55);
    }

    #[test]
    fn rewire_preserves_degrees_and_edge_count() {
        let mut g = barabasi_albert(200, 4, 15);
        let degrees_before: Vec<usize> = (0..200).map(|u| g.degree(u)).collect();
        let m_before = g.num_edges();
        let done = degree_preserving_rewire(&mut g, 300, 16);
        assert!(done > 200, "only {done} swaps succeeded");
        assert_eq!(g.num_edges(), m_before);
        let degrees_after: Vec<usize> = (0..200).map(|u| g.degree(u)).collect();
        assert_eq!(degrees_before, degrees_after);
    }

    #[test]
    fn rewire_destroys_planted_clique() {
        let mut g = erdos_renyi(150, 0.03, 17);
        attach_isolated(&mut g, 18);
        let members: Vec<NodeId> = (0..10).collect();
        plant_near_clique(&mut g, &members, 1.0, 19);
        let tri_before: usize = members.iter().map(|&u| g.triangles_at(u)).sum();
        degree_preserving_rewire(&mut g, 2000, 20);
        let tri_after: usize = members.iter().map(|&u| g.triangles_at(u)).sum();
        assert!(
            tri_after * 2 < tri_before,
            "clique structure survived rewiring: {tri_before} -> {tri_after}"
        );
    }

    #[test]
    fn rewire_on_tiny_graph_is_safe() {
        let mut g = Graph::from_edges(3, [(0, 1)]);
        assert_eq!(degree_preserving_rewire(&mut g, 10, 21), 0);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn triadic_closure_adds_requested_edges() {
        let mut g = barabasi_albert(300, 4, 22);
        let m0 = g.num_edges();
        let added = triadic_closure(&mut g, 100, 23);
        assert_eq!(added, 100);
        assert_eq!(g.num_edges(), m0 + 100);
        // Closure raises clustering.
        let cc = crate::metrics::average_clustering(&g);
        assert!(cc > 0.05, "clustering {cc} did not rise");
    }

    #[test]
    fn capped_chung_lu_respects_cap() {
        let g = power_law_chung_lu_capped(600, 2400, 2.2, 25.0, 24);
        let max_deg = (0..600).map(|u| g.degree(u)).max().unwrap();
        // Expected max degree ≈ cap; allow Poisson fluctuation.
        assert!(max_deg < 60, "max degree {max_deg} blew past the cap");
        let uncapped = power_law_chung_lu(600, 2400, 2.2, 24);
        let max_uncapped = (0..600).map(|u| uncapped.degree(u)).max().unwrap();
        assert!(max_uncapped > max_deg, "cap had no effect");
    }

    #[test]
    fn er_stream_replays_in_memory_edge_set() {
        let (n, p, seed) = (250, 0.03, 41);
        let g = erdos_renyi(n, p, seed);
        let mut streamed: Vec<(NodeId, NodeId)> = erdos_renyi_stream(n, p, seed).collect();
        assert_eq!(streamed.len(), g.num_edges());
        // Stream order is lexicographic, which is also the canonical
        // edge-list order.
        let sorted = {
            let mut s = streamed.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(streamed, sorted);
        streamed.retain(|&(u, v)| !g.has_edge(u, v));
        assert!(streamed.is_empty(), "stream emitted edges the graph lacks");
    }

    #[test]
    fn ba_stream_replays_in_memory_edge_set() {
        let (n, m, seed) = (400, 4, 42);
        let g = barabasi_albert(n, m, seed);
        let streamed: Vec<(NodeId, NodeId)> = barabasi_albert_stream(n, m, seed).collect();
        assert_eq!(streamed.len(), g.num_edges());
        let mut canon: Vec<(NodeId, NodeId)> = streamed
            .iter()
            .map(|&(u, v)| (u.min(v), u.max(v)))
            .collect();
        canon.sort_unstable();
        canon.dedup();
        assert_eq!(canon.len(), g.num_edges(), "stream repeated an edge");
        for &(u, v) in &canon {
            assert!(g.has_edge(u, v), "stream emitted absent edge ({u},{v})");
        }
    }

    #[test]
    fn attach_isolated_removes_singletons() {
        let mut g = Graph::new(50);
        g.add_edge(0, 1);
        attach_isolated(&mut g, 10);
        for u in 0..50 {
            assert!(g.degree(u) >= 1, "node {u} still isolated");
        }
    }
}
