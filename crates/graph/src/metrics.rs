//! Graph statistics: components, degree distribution, clustering.
//! Used for Table I reporting and for validating the synthetic stand-ins
//! against the real datasets' published statistics.
//!
//! All functions are generic over [`GraphView`], so they evaluate the
//! mutable [`Graph`](crate::Graph), the frozen
//! [`CsrGraph`](crate::CsrGraph), and a live
//! [`DeltaOverlay`](crate::DeltaOverlay) alike.

use crate::view::GraphView;
use crate::NodeId;

/// Number of connected components (BFS over all nodes).
pub fn connected_components<V: GraphView + ?Sized>(g: &V) -> usize {
    let n = g.num_nodes();
    let mut seen = vec![false; n];
    let mut components = 0;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        components += 1;
        seen[start] = true;
        queue.push_back(start as NodeId);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors_sorted(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    components
}

/// Size of the largest connected component.
pub fn largest_component_size<V: GraphView + ?Sized>(g: &V) -> usize {
    let n = g.num_nodes();
    let mut seen = vec![false; n];
    let mut best = 0;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut size = 1;
        seen[start] = true;
        queue.push_back(start as NodeId);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors_sorted(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    size += 1;
                    queue.push_back(v);
                }
            }
        }
        best = best.max(size);
    }
    best
}

/// Degree histogram: `hist[d]` = number of nodes with degree `d`.
pub fn degree_histogram<V: GraphView + ?Sized>(g: &V) -> Vec<usize> {
    let max_deg = (0..g.num_nodes() as NodeId)
        .map(|u| g.degree(u))
        .max()
        .unwrap_or(0);
    let mut hist = vec![0usize; max_deg + 1];
    for u in 0..g.num_nodes() as NodeId {
        hist[g.degree(u)] += 1;
    }
    hist
}

/// Average degree `2m / n`.
pub fn average_degree<V: GraphView + ?Sized>(g: &V) -> f64 {
    if g.num_nodes() == 0 {
        return 0.0;
    }
    2.0 * g.num_edges() as f64 / g.num_nodes() as f64
}

/// Local clustering coefficient of node `u`: fraction of neighbour pairs
/// that are themselves connected. Zero for degree < 2.
pub fn local_clustering<V: GraphView + ?Sized>(g: &V, u: NodeId) -> f64 {
    let d = g.degree(u);
    if d < 2 {
        return 0.0;
    }
    let tri = g.triangles_at(u) as f64;
    2.0 * tri / (d as f64 * (d as f64 - 1.0))
}

/// Mean local clustering coefficient.
pub fn average_clustering<V: GraphView + ?Sized>(g: &V) -> f64 {
    let n = g.num_nodes();
    if n == 0 {
        return 0.0;
    }
    (0..n as NodeId)
        .map(|u| local_clustering(g, u))
        .sum::<f64>()
        / n as f64
}

/// Maximum-likelihood estimate of a power-law degree exponent
/// (Clauset–Shalizi–Newman continuous approximation with `x_min`):
/// `γ̂ = 1 + n / Σ ln(d_i / (x_min − ½))` over degrees `d_i ≥ x_min`.
/// Returns `None` when fewer than 10 nodes reach `x_min`.
pub fn power_law_exponent_mle<V: GraphView + ?Sized>(g: &V, x_min: usize) -> Option<f64> {
    let x_min = x_min.max(1);
    let degrees: Vec<f64> = (0..g.num_nodes() as NodeId)
        .map(|u| g.degree(u) as f64)
        .filter(|&d| d >= x_min as f64)
        .collect();
    if degrees.len() < 10 {
        return None;
    }
    let denom: f64 = degrees
        .iter()
        .map(|&d| (d / (x_min as f64 - 0.5)).ln())
        .sum();
    Some(1.0 + degrees.len() as f64 / denom)
}

/// A compact statistics bundle (Table I row plus sanity fields).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of undirected edges.
    pub edges: usize,
    /// Mean degree.
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Mean local clustering coefficient.
    pub avg_clustering: f64,
    /// Connected components.
    pub components: usize,
}

/// Computes the full statistics bundle.
pub fn stats<V: GraphView + ?Sized>(g: &V) -> GraphStats {
    GraphStats {
        nodes: g.num_nodes(),
        edges: g.num_edges(),
        avg_degree: average_degree(g),
        max_degree: (0..g.num_nodes() as NodeId)
            .map(|u| g.degree(u))
            .max()
            .unwrap_or(0),
        avg_clustering: average_clustering(g),
        components: connected_components(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn components_of_disjoint_edges() {
        let g = Graph::from_edges(6, [(0, 1), (2, 3)]);
        assert_eq!(connected_components(&g), 4); // two pairs + two isolated
        assert_eq!(largest_component_size(&g), 2);
    }

    #[test]
    fn single_component_path() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(connected_components(&g), 1);
        assert_eq!(largest_component_size(&g), 4);
    }

    #[test]
    fn clustering_of_triangle_and_star() {
        let tri = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
        assert_eq!(local_clustering(&tri, 0), 1.0);
        let star = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        assert_eq!(local_clustering(&star, 0), 0.0);
        assert_eq!(local_clustering(&star, 1), 0.0); // degree 1
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3)]);
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), 5);
        assert_eq!(hist[3], 1); // the hub
        assert_eq!(hist[1], 3); // leaves
        assert_eq!(hist[0], 1); // isolated node 4
    }

    #[test]
    fn average_degree_formula() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(average_degree(&g), 1.5);
    }

    #[test]
    fn power_law_mle_reasonable_on_ba() {
        let g = crate::generators::barabasi_albert(2000, 4, 11);
        let gamma = power_law_exponent_mle(&g, 6).unwrap();
        // BA graphs have exponent ~3; accept a generous band.
        assert!(gamma > 2.0 && gamma < 4.5, "gamma = {gamma}");
    }

    #[test]
    fn stats_bundle_consistent() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0)]);
        let s = stats(&g);
        assert_eq!(s.nodes, 4);
        assert_eq!(s.edges, 3);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.components, 2);
    }
}
