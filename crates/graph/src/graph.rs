//! The core undirected simple graph type.

use crate::view::{EditableGraph, GraphView};
use serde::{Deserialize, Serialize};

/// Node identifier. Graphs in the paper's evaluation have ~1000 nodes, so
/// `u32` is ample and keeps adjacency lists compact.
pub type NodeId = u32;

/// An edge flip operation: which unordered pair, and whether the edge was
/// added or removed. Attack results are reported as lists of `EdgeOp`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EdgeOp {
    /// Smaller endpoint of the unordered pair.
    pub u: NodeId,
    /// Larger endpoint of the unordered pair.
    pub v: NodeId,
    /// `true` when the edge was added, `false` when deleted.
    pub added: bool,
}

impl EdgeOp {
    /// Creates an op, normalising the endpoint order.
    pub fn new(u: NodeId, v: NodeId, added: bool) -> Self {
        let (u, v) = if u <= v { (u, v) } else { (v, u) };
        Self { u, v, added }
    }
}

/// A simple (no self-loops, no multi-edges), undirected, unweighted graph.
///
/// Adjacency is stored as one sorted `Vec<NodeId>` per node: `O(log d)`
/// membership tests via binary search, deterministic iteration order
/// (important for reproducible attacks), contiguous neighbour slices for
/// the sorted-merge kernels, and `O(d)` insertion — cheap at the degrees
/// the paper's sparse graphs exhibit. Frozen read-optimised snapshots are
/// provided by [`crate::CsrGraph`]; both satisfy [`GraphView`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    adj: Vec<Vec<NodeId>>,
    num_edges: usize,
}

impl Graph {
    /// Creates an empty graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Builds a graph from an iterator of edges. Self-loops and duplicate
    /// edges are ignored.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        let mut g = Self::new(n);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of node `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj[u as usize].len()
    }

    /// Whether the edge `{u, v}` exists.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adj[u as usize].binary_search(&v).is_ok()
    }

    /// Neighbours of `u` in strictly increasing order.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.adj[u as usize]
    }

    /// Adds the edge `{u, v}`. Returns `true` if the edge was new.
    /// Self-loops are rejected (returns `false`).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        assert!(
            (u as usize) < self.adj.len() && (v as usize) < self.adj.len(),
            "node id out of range"
        );
        match self.adj[u as usize].binary_search(&v) {
            Ok(_) => false,
            Err(pos) => {
                self.adj[u as usize].insert(pos, v);
                let pos_v = self.adj[v as usize]
                    .binary_search(&u)
                    .expect_err("adjacency symmetry violated");
                self.adj[v as usize].insert(pos_v, u);
                self.num_edges += 1;
                true
            }
        }
    }

    /// Removes the edge `{u, v}`. Returns `true` if an edge was removed.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if (u as usize) >= self.adj.len() || (v as usize) >= self.adj.len() {
            return false;
        }
        match self.adj[u as usize].binary_search(&v) {
            Ok(pos) => {
                self.adj[u as usize].remove(pos);
                let pos_v = self.adj[v as usize]
                    .binary_search(&u)
                    // ba-lint: allow(panic-path) -- every mutation writes both endpoint rows, so a missing reverse edge is memory corruption worth crashing on
                    .expect("adjacency symmetry violated");
                self.adj[v as usize].remove(pos_v);
                self.num_edges -= 1;
                true
            }
            Err(_) => false,
        }
    }

    /// Toggles the edge `{u, v}` and returns the resulting [`EdgeOp`].
    /// No-op (returns `None`) for self-loops.
    pub fn toggle_edge(&mut self, u: NodeId, v: NodeId) -> Option<EdgeOp> {
        EditableGraph::toggle_edge(self, u, v)
    }

    /// Applies a list of edge ops (as produced by an attack) to the graph.
    ///
    /// # Panics
    /// Panics in debug builds if an op is inconsistent with the current
    /// state (adding an existing edge / deleting a missing one), since
    /// that indicates a corrupted attack result.
    pub fn apply_ops(&mut self, ops: &[EdgeOp]) {
        EditableGraph::apply_ops(self, ops)
    }

    /// Returns a new graph with the ops applied.
    pub fn with_ops(&self, ops: &[EdgeOp]) -> Graph {
        let mut g = self.clone();
        g.apply_ops(ops);
        g
    }

    /// Iterator over all edges as `(u, v)` with `u < v`, in sorted order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            let u = u as NodeId;
            nbrs.iter().filter(move |&&v| v > u).map(move |&v| (u, v))
        })
    }

    /// Number of common neighbours of `u` and `v` — this equals `(A²)_uv`
    /// for a binary symmetric adjacency with zero diagonal.
    pub fn common_neighbors(&self, u: NodeId, v: NodeId) -> usize {
        GraphView::common_neighbors(self, u, v)
    }

    /// Sum of `f(m)` over all common neighbours `m` of `u` and `v`.
    /// This is `(A·diag(w)·A)_uv` with `w_m = f(m)` — the second-order
    /// term of the analytic attack gradient.
    pub fn common_neighbor_sum(&self, u: NodeId, v: NodeId, f: impl FnMut(NodeId) -> f64) -> f64 {
        GraphView::common_neighbor_sum(self, u, v, f)
    }

    /// Number of triangles through node `u` (exactly `(A³)_uu / 2` for
    /// simple graphs).
    pub fn triangles_at(&self, u: NodeId) -> usize {
        GraphView::triangles_at(self, u)
    }

    /// Degree sequence as f64 (used by the attack's feature vectors).
    pub fn degrees_f64(&self) -> Vec<f64> {
        GraphView::degrees_f64(self)
    }

    /// Nodes with degree ≤ 1 would become singletons if their last edge
    /// were deleted; the paper's attacks avoid creating singletons.
    /// Returns `true` when deleting `{u, v}` is safe in that sense.
    pub fn deletion_keeps_no_singletons(&self, u: NodeId, v: NodeId) -> bool {
        GraphView::deletion_keeps_no_singletons(self, u, v)
    }

    /// Symmetric difference with another graph, as a set of edge ops that
    /// transform `self` into `other`.
    ///
    /// # Panics
    /// Panics if node counts differ.
    pub fn diff_ops(&self, other: &Graph) -> Vec<EdgeOp> {
        assert_eq!(self.num_nodes(), other.num_nodes(), "node count mismatch");
        let mut ops = Vec::new();
        for (u, v) in self.edges() {
            if !other.has_edge(u, v) {
                ops.push(EdgeOp::new(u, v, false));
            }
        }
        for (u, v) in other.edges() {
            if !self.has_edge(u, v) {
                ops.push(EdgeOp::new(u, v, true));
            }
        }
        ops
    }
}

impl GraphView for Graph {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.num_edges
    }

    #[inline]
    fn neighbors_sorted(&self, u: NodeId) -> &[NodeId] {
        &self.adj[u as usize]
    }

    #[inline]
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        Graph::has_edge(self, u, v)
    }
}

impl EditableGraph for Graph {
    fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        Graph::add_edge(self, u, v)
    }

    fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        Graph::remove_edge(self, u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn add_remove_roundtrip() {
        let mut g = Graph::new(4);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0), "duplicate (reversed) edge rejected");
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(1, 0));
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn self_loops_rejected() {
        let mut g = Graph::new(2);
        assert!(!g.add_edge(1, 1));
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.toggle_edge(1, 1), None);
    }

    #[test]
    fn degree_counts() {
        let g = triangle();
        for u in 0..3 {
            assert_eq!(g.degree(u), 2);
        }
    }

    #[test]
    fn neighbors_sorted_invariant() {
        let g = Graph::from_edges(5, [(4, 0), (4, 2), (4, 1), (4, 3), (1, 0)]);
        assert_eq!(g.neighbors(4), &[0, 1, 2, 3]);
        assert_eq!(g.neighbors(0), &[1, 4]);
    }

    #[test]
    fn edges_iterator_sorted_unique() {
        let g = Graph::from_edges(4, [(2, 1), (0, 3), (1, 0)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2)]);
    }

    #[test]
    fn toggle_flips_both_ways() {
        let mut g = Graph::new(3);
        let op = g.toggle_edge(0, 2).unwrap();
        assert_eq!(op, EdgeOp::new(0, 2, true));
        assert!(g.has_edge(0, 2));
        let op = g.toggle_edge(2, 0).unwrap();
        assert_eq!(op, EdgeOp::new(0, 2, false));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn common_neighbors_matches_a_squared() {
        // Path 0-1-2 plus edge 0-2: common neighbours of 0 and 2 is {1}.
        let g = triangle();
        assert_eq!(g.common_neighbors(0, 2), 1);
        let g2 = Graph::from_edges(4, [(0, 1), (1, 2), (0, 3), (3, 2)]);
        assert_eq!(g2.common_neighbors(0, 2), 2);
        assert_eq!(g2.common_neighbors(0, 1), 0);
    }

    #[test]
    fn common_neighbor_sum_weights() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 3), (3, 2)]);
        let s = g.common_neighbor_sum(0, 2, |m| m as f64 * 10.0);
        assert_eq!(s, 10.0 + 30.0); // common neighbours 1 and 3
    }

    #[test]
    fn triangle_counting() {
        let g = triangle();
        for u in 0..3 {
            assert_eq!(g.triangles_at(u), 1);
        }
        // K4 has 3 triangles through each node.
        let k4 = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        for u in 0..4 {
            assert_eq!(k4.triangles_at(u), 3);
        }
    }

    #[test]
    fn apply_and_diff_ops_roundtrip() {
        let g0 = triangle();
        let mut g1 = g0.clone();
        g1.remove_edge(0, 1);
        g1.add_edge(0, 1); // noop overall
        g1.toggle_edge(1, 2); // delete
        let ops = g0.diff_ops(&g1);
        assert_eq!(ops, vec![EdgeOp::new(1, 2, false)]);
        assert_eq!(g0.with_ops(&ops), g1);
    }

    #[test]
    fn singleton_guard() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        assert!(!g.deletion_keeps_no_singletons(0, 1)); // node 0 has degree 1
        let t = triangle();
        assert!(t.deletion_keeps_no_singletons(0, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut g = Graph::new(2);
        g.add_edge(0, 5);
    }
}
