//! Property-based tests for the graph substrate.

use ba_graph::egonet::{egonet_features, IncrementalEgonet};
use ba_graph::{
    generators, zobrist, CsrGraph, CsrGraph32, DeltaOverlay, EditableGraph, Graph, GraphView,
    NodeId,
};
use proptest::prelude::*;

/// Strategy: a random simple graph on up to `max_n` nodes.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n as NodeId, 0..n as NodeId), 0..n * 3)
            .prop_map(move |pairs| Graph::from_edges(n, pairs))
    })
}

proptest! {
    #[test]
    fn handshake_lemma(g in arb_graph(30)) {
        let degree_sum: usize = (0..g.num_nodes() as NodeId).map(|u| g.degree(u)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
    }

    #[test]
    fn adjacency_is_symmetric(g in arb_graph(30)) {
        for (u, v) in g.edges() {
            prop_assert!(g.has_edge(v, u));
        }
    }

    #[test]
    fn egonet_features_bounds(g in arb_graph(25)) {
        let f = egonet_features(&g);
        for i in 0..g.num_nodes() {
            let n_i = f.n[i];
            let e_i = f.e[i];
            // Spokes are part of the egonet: E >= N.
            prop_assert!(e_i >= n_i);
            // The egonet has N+1 nodes, so E <= C(N+1, 2).
            let max_e = (n_i + 1.0) * n_i / 2.0;
            prop_assert!(e_i <= max_e + 1e-9, "E={e_i} exceeds clique bound {max_e}");
        }
    }

    #[test]
    fn incremental_egonet_matches_batch(
        g in arb_graph(20),
        toggles in proptest::collection::vec((0u32..20, 0u32..20), 1..30),
    ) {
        let mut g = g;
        let n = g.num_nodes() as NodeId;
        let mut inc = IncrementalEgonet::new(&g);
        for (u, v) in toggles {
            let (u, v) = (u % n, v % n);
            inc.toggle(&mut g, u, v);
            prop_assert_eq!(inc.features(), &egonet_features(&g));
        }
    }

    #[test]
    fn toggle_twice_is_identity(g in arb_graph(20), u in 0u32..20, v in 0u32..20) {
        let mut g2 = g.clone();
        let n = g.num_nodes() as NodeId;
        let (u, v) = (u % n, v % n);
        g2.toggle_edge(u, v);
        g2.toggle_edge(u, v);
        prop_assert_eq!(g2, g);
    }

    #[test]
    fn diff_ops_transform(g1 in arb_graph(15), edits in proptest::collection::vec((0u32..15, 0u32..15), 0..20)) {
        let mut g2 = g1.clone();
        let n = g1.num_nodes() as NodeId;
        for (u, v) in edits {
            g2.toggle_edge(u % n, v % n);
        }
        let ops = g1.diff_ops(&g2);
        prop_assert_eq!(g1.with_ops(&ops), g2);
    }

    #[test]
    fn io_roundtrip(g in arb_graph(25)) {
        let mut buf = Vec::new();
        ba_graph::io::write_edge_list(&g, &mut buf).unwrap();
        if g.num_edges() > 0 {
            let loaded = ba_graph::io::read_edge_list(&buf[..]).unwrap();
            // Loaded graph drops isolated nodes (they never appear in the
            // list), so compare edge sets via labels.
            let mut orig_edges: Vec<(u64, u64)> = g
                .edges()
                .map(|(u, v)| (u as u64, v as u64))
                .collect();
            orig_edges.sort_unstable();
            let mut loaded_edges: Vec<(u64, u64)> = loaded
                .graph
                .edges()
                .map(|(u, v)| {
                    let (a, b) = (loaded.labels[u as usize], loaded.labels[v as usize]);
                    if a <= b { (a, b) } else { (b, a) }
                })
                .collect();
            loaded_edges.sort_unstable();
            prop_assert_eq!(orig_edges, loaded_edges);
        }
    }

    #[test]
    fn overlay_stays_equivalent_to_reference_under_toggles(
        g in arb_graph(20),
        toggles in proptest::collection::vec((0u32..20, 0u32..20), 1..40),
    ) {
        // Drive the same random edge-toggle sequence through the mutable
        // reference Graph and through CsrGraph + DeltaOverlay; every
        // observable (edge set, degrees, features, common-neighbour
        // kernels, metrics) must stay identical at every step.
        let mut reference = g.clone();
        let csr = CsrGraph::from(&g);
        let mut overlay = DeltaOverlay::new(&csr);
        let n = g.num_nodes() as NodeId;
        for (u, v) in toggles {
            let (u, v) = (u % n, v % n);
            let op_ref = reference.toggle_edge(u, v);
            let op_ov = overlay.toggle_edge(u, v);
            prop_assert_eq!(op_ref, op_ov);
            prop_assert_eq!(overlay.num_edges(), reference.num_edges());
            for w in 0..n {
                prop_assert_eq!(overlay.neighbors_sorted(w), reference.neighbors(w));
            }
            prop_assert_eq!(egonet_features(&overlay), egonet_features(&reference));
            prop_assert_eq!(
                overlay.common_neighbors(u, v),
                reference.common_neighbors(u, v)
            );
            prop_assert_eq!(overlay.to_graph(), reference.clone());
        }
        let stats_ref = ba_graph::metrics::stats(&reference);
        let stats_ov = ba_graph::metrics::stats(&overlay);
        prop_assert_eq!(stats_ref, stats_ov);
        // Resetting the overlay returns to the base graph exactly.
        overlay.reset();
        prop_assert_eq!(overlay.to_graph(), g);
    }

    #[test]
    fn csr_roundtrip_preserves_graph(g in arb_graph(30)) {
        let csr = CsrGraph::from(&g);
        prop_assert_eq!(csr.num_edges(), g.num_edges());
        prop_assert_eq!(csr.to_graph(), g);
    }

    #[test]
    fn er_seed_determinism(n in 10usize..60, seed in 0u64..50) {
        let p = 0.1;
        prop_assert_eq!(
            generators::erdos_renyi(n, p, seed),
            generators::erdos_renyi(n, p, seed)
        );
    }

    #[test]
    fn ba_always_connected(n in 10usize..80, m in 1usize..4, seed in 0u64..20) {
        let g = generators::barabasi_albert(n, m, seed);
        prop_assert_eq!(ba_graph::metrics::connected_components(&g), 1);
    }

    /// Streamed generators are draw-for-draw replays of the in-memory
    /// ones: at matched `(n, p/m, seed)` the compacted CSR built from
    /// the stream must be bit-identical (offsets, columns, hash) to the
    /// one compacted from the in-memory graph. Sizes up to 2000 nodes —
    /// past the star core, well into the preferential-attachment
    /// regime.
    #[test]
    fn streamed_er_bit_identical_to_in_memory(
        n in 2usize..2000,
        p_mille in 0u32..40,
        seed in 0u64..1000,
    ) {
        let p = p_mille as f64 / 1000.0;
        let dense = CsrGraph::from(&generators::erdos_renyi(n, p, seed));
        let streamed = ba_graph::compact::from_edge_stream(n, || {
            generators::erdos_renyi_stream(n, p, seed)
        }).unwrap();
        prop_assert_eq!(&streamed, &CsrGraph32::from_csr(&dense).unwrap());
        prop_assert_eq!(streamed.promote(), dense);
    }

    #[test]
    fn streamed_ba_bit_identical_to_in_memory(
        n in 8usize..2000,
        m in 1usize..6,
        seed in 0u64..1000,
    ) {
        let dense = CsrGraph::from(&generators::barabasi_albert(n, m, seed));
        let streamed = ba_graph::compact::from_edge_stream(n, || {
            generators::barabasi_albert_stream(n, m, seed)
        }).unwrap();
        prop_assert_eq!(&streamed, &CsrGraph32::from_csr(&dense).unwrap());
        prop_assert_eq!(streamed.promote(), dense);
    }

    /// Narrow/widen round-trip on arbitrary graphs: u32 compaction then
    /// promotion restores the exact CSR, and the narrow view serves the
    /// same reads.
    #[test]
    fn compact_promote_roundtrip(g in arb_graph(40)) {
        let wide = CsrGraph::from(&g);
        let narrow = CsrGraph32::from_csr(&wide).unwrap();
        prop_assert_eq!(narrow.edge_hash(), wide.edge_hash());
        for u in 0..g.num_nodes() as NodeId {
            prop_assert_eq!(narrow.neighbors_sorted(u), wide.neighbors_sorted(u));
        }
        prop_assert_eq!(narrow.promote(), wide);
    }

    /// The incremental Zobrist hash on the overlay must equal the
    /// from-scratch hash of the materialised edge set after every
    /// toggle, batch apply, reset, and compaction — over both ER and
    /// BA bases (script interpretation: `r` picks the base family).
    #[test]
    fn overlay_hash_matches_from_scratch(
        er in 0u8..2,
        seed in 0u64..30,
        script in proptest::collection::vec((0u32..24, 0u32..24, 0u8..10), 1..60),
    ) {
        let g = if er == 1 {
            generators::erdos_renyi(24, 0.12, seed)
        } else {
            generators::barabasi_albert(24, 2, seed)
        };
        let csr = CsrGraph::from(&g);
        prop_assert_eq!(csr.edge_hash(), zobrist::edge_set_hash(&g));
        let mut ov = DeltaOverlay::new(&csr);
        for (u, v, act) in script {
            match act {
                // Occasional reset: hash must restore to the base's.
                0 => {
                    ov.reset();
                    prop_assert_eq!(ov.delta_hash(), 0);
                }
                // Occasional sharded batch apply of one toggle.
                1 if u != v => {
                    let added = !ov.has_edge(u, v);
                    ov.apply_ops_sharded(&[ba_graph::EdgeOp::new(u, v, added)], 2);
                }
                _ => {
                    ov.toggle_edge(u, v);
                }
            }
            prop_assert_eq!(ov.edge_set_hash(), zobrist::edge_set_hash(&ov));
        }
        // Compaction freezes the incremental hash verbatim, and a
        // rebuilt CSR recomputes the identical value from scratch.
        prop_assert_eq!(ov.compact().edge_hash(), CsrGraph::from_view(&ov).edge_hash());
    }
}
