//! Property-based tests: tape gradients must match finite differences for
//! randomly generated compositions.

use ba_autodiff::{gradient_check, Tape};
use proptest::prelude::*;

proptest! {
    #[test]
    fn polynomial_gradients(x0 in -3.0..3.0f64, a in -2.0..2.0f64, b in -2.0..2.0f64) {
        let f = |x: &[f64]| a * x[0] * x[0] * x[0] + b * x[0] * x[0] + x[0];
        let tape = Tape::new();
        let x = tape.var(x0);
        let out = x * x * x * a + x * x * b + x;
        let g = out.backward();
        let worst = gradient_check(&f, &[g.wrt(x)], &[x0], 1e-5);
        prop_assert!(worst < 1e-5, "worst {worst}");
    }

    #[test]
    fn exp_ln_composites(x0 in 0.1..5.0f64, y0 in 0.1..5.0f64) {
        let f = |v: &[f64]| (v[0].ln() * v[1]).exp() + v[1] / v[0];
        let tape = Tape::new();
        let x = tape.var(x0);
        let y = tape.var(y0);
        let out = (x.ln() * y).exp() + y / x;
        let g = out.backward();
        let worst = gradient_check(&f, &[g.wrt(x), g.wrt(y)], &[x0, y0], 1e-6);
        prop_assert!(worst < 1e-4, "worst {worst}");
    }

    #[test]
    fn gradient_linearity(x0 in -2.0..2.0f64, s in -4.0..4.0f64) {
        // d(s·f)/dx = s · df/dx for f = x·exp(x)
        let tape = Tape::new();
        let x = tape.var(x0);
        let f = x * x.exp();
        let gf = f.backward().wrt(x);
        let tape2 = Tape::new();
        let x2 = tape2.var(x0);
        let sf = x2 * x2.exp() * s;
        let gsf = sf.backward().wrt(x2);
        prop_assert!((gsf - s * gf).abs() < 1e-9 * (1.0 + gsf.abs()));
    }

    #[test]
    fn sum_rule(x0 in -2.0..2.0f64) {
        // d(f+g) = df + dg with f = x², g = sin-like (use exp)
        let tape = Tape::new();
        let x = tape.var(x0);
        let total = x.sq() + x.exp();
        let g_total = total.backward().wrt(x);
        prop_assert!((g_total - (2.0 * x0 + x0.exp())).abs() < 1e-10);
    }

    #[test]
    fn min_max_partition(x0 in -5.0..5.0f64, y0 in -5.0..5.0f64) {
        // max(x,y) + min(x,y) = x + y, so gradients must each be exactly 1.
        let tape = Tape::new();
        let x = tape.var(x0);
        let y = tape.var(y0);
        let z = x.max(y) + x.min(y);
        let g = z.backward();
        prop_assert_eq!(g.wrt(x), 1.0);
        prop_assert_eq!(g.wrt(y), 1.0);
    }
}
