//! The tape (Wengert list) and the `Var` handle.

use std::cell::RefCell;

/// One recorded operation: up to two parents, with the local partial
/// derivative of the node's value with respect to each parent.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Node {
    pub parents: [usize; 2],
    pub partials: [f64; 2],
}

/// A reverse-mode autodiff tape. Create variables with [`Tape::var`],
/// combine them with the usual operators and the methods on [`Var`], then
/// call [`Var::backward`] on the scalar output.
///
/// The tape uses interior mutability so that `Var` can be `Copy` — this
/// keeps expression code looking like plain arithmetic.
#[derive(Debug, Default)]
pub struct Tape {
    nodes: RefCell<Vec<Node>>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes (leaves + intermediates).
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Registers a new leaf variable with the given value.
    pub fn var(&self, value: f64) -> Var<'_> {
        let index = self.push(Node {
            parents: [0, 0],
            partials: [0.0, 0.0],
        });
        Var {
            tape: self,
            index,
            value,
        }
    }

    /// Registers a constant. Constants are leaves too; their gradient is
    /// simply never read.
    pub fn constant(&self, value: f64) -> Var<'_> {
        self.var(value)
    }

    pub(crate) fn push(&self, node: Node) -> usize {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(node);
        nodes.len() - 1
    }

    pub(crate) fn unary(&self, parent: usize, partial: f64) -> usize {
        self.push(Node {
            parents: [parent, parent],
            partials: [partial, 0.0],
        })
    }

    pub(crate) fn binary(&self, p0: usize, d0: f64, p1: usize, d1: f64) -> usize {
        self.push(Node {
            parents: [p0, p1],
            partials: [d0, d1],
        })
    }
}

/// A differentiable scalar bound to a [`Tape`].
#[derive(Debug, Clone, Copy)]
pub struct Var<'t> {
    pub(crate) tape: &'t Tape,
    pub(crate) index: usize,
    /// The primal value.
    pub value: f64,
}

/// Gradient of one output with respect to every tape node.
#[derive(Debug, Clone)]
pub struct Grads {
    adjoints: Vec<f64>,
}

impl Grads {
    /// The derivative of the output with respect to `v`.
    pub fn wrt(&self, v: Var<'_>) -> f64 {
        self.adjoints[v.index]
    }
}

impl<'t> Var<'t> {
    /// Runs the reverse sweep from this node, producing the adjoint of
    /// every node on the tape (seeded with `∂self/∂self = 1`).
    pub fn backward(&self) -> Grads {
        let nodes = self.tape.nodes.borrow();
        let mut adjoints = vec![0.0; nodes.len()];
        adjoints[self.index] = 1.0;
        // The tape is topologically ordered by construction: children
        // always come after parents, so a single reverse pass suffices.
        for i in (0..=self.index).rev() {
            let adj = adjoints[i];
            if adj == 0.0 {
                continue;
            }
            let node = nodes[i];
            // Leaves have partials [0,0] pointing at themselves; the
            // updates below are then no-ops.
            adjoints[node.parents[0]] += node.partials[0] * adj;
            adjoints[node.parents[1]] += node.partials[1] * adj;
        }
        Grads { adjoints }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_gradient_is_one() {
        let tape = Tape::new();
        let x = tape.var(5.0);
        let g = x.backward();
        assert_eq!(g.wrt(x), 1.0);
    }

    #[test]
    fn unused_leaf_gradient_is_zero() {
        let tape = Tape::new();
        let x = tape.var(1.0);
        let y = tape.var(2.0);
        let z = x * x;
        let g = z.backward();
        assert_eq!(g.wrt(y), 0.0);
        assert_eq!(g.wrt(x), 2.0);
    }

    #[test]
    fn fan_out_accumulates() {
        // z = x*x + x → dz/dx = 2x + 1
        let tape = Tape::new();
        let x = tape.var(3.0);
        let z = x * x + x;
        let g = z.backward();
        assert_eq!(g.wrt(x), 7.0);
    }

    #[test]
    fn deep_chain() {
        // y = (((x+1)+1)...+1) 100 times; dy/dx = 1.
        let tape = Tape::new();
        let x = tape.var(0.0);
        let mut y = x;
        for _ in 0..100 {
            y = y + tape.constant(1.0);
        }
        assert_eq!(y.value, 100.0);
        assert_eq!(y.backward().wrt(x), 1.0);
    }

    #[test]
    fn tape_len_counts_nodes() {
        let tape = Tape::new();
        assert!(tape.is_empty());
        let x = tape.var(1.0);
        let _y = x * x;
        assert_eq!(tape.len(), 2);
    }
}
