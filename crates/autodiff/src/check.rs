//! Numeric gradient checking utilities.

/// Central finite difference of a scalar function at `x` along coordinate
/// `i`, with step `h`.
pub fn central_difference(f: &dyn Fn(&[f64]) -> f64, x: &[f64], i: usize, h: f64) -> f64 {
    let mut xp = x.to_vec();
    let mut xm = x.to_vec();
    xp[i] += h;
    xm[i] -= h;
    (f(&xp) - f(&xm)) / (2.0 * h)
}

/// Checks an analytic gradient against central differences on every
/// coordinate. Returns the worst absolute-or-relative discrepancy.
///
/// `tol` is advisory: the function does not panic; callers assert on the
/// returned value so test failures show the actual worst error.
pub fn gradient_check(f: &dyn Fn(&[f64]) -> f64, grad: &[f64], x: &[f64], h: f64) -> f64 {
    assert_eq!(grad.len(), x.len(), "gradient length mismatch");
    let mut worst = 0.0_f64;
    for (i, &gi) in grad.iter().enumerate() {
        let fd = central_difference(f, x, i, h);
        let denom = fd.abs().max(gi.abs()).max(1.0);
        worst = worst.max((fd - gi).abs() / denom);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tape;

    #[test]
    fn central_difference_quadratic() {
        let f = |x: &[f64]| x[0] * x[0] + 3.0 * x[1];
        let d0 = central_difference(&f, &[2.0, 5.0], 0, 1e-5);
        let d1 = central_difference(&f, &[2.0, 5.0], 1, 1e-5);
        assert!((d0 - 4.0).abs() < 1e-8);
        assert!((d1 - 3.0).abs() < 1e-8);
    }

    #[test]
    fn gradient_check_flags_wrong_gradient() {
        let f = |x: &[f64]| x[0] * x[0];
        let good = gradient_check(&f, &[4.0], &[2.0], 1e-5);
        let bad = gradient_check(&f, &[1.0], &[2.0], 1e-5);
        assert!(good < 1e-7);
        assert!(bad > 0.5);
    }

    #[test]
    fn tape_gradient_passes_check_on_composite() {
        // f(x, y) = exp(x·y) + ln(x+2) — compare tape vs finite diff.
        let x0 = [0.7, -0.3];
        let f = |x: &[f64]| (x[0] * x[1]).exp() + (x[0] + 2.0).ln();
        let tape = Tape::new();
        let x = tape.var(x0[0]);
        let y = tape.var(x0[1]);
        let out = (x * y).exp() + (x + 2.0).ln();
        let g = out.backward();
        let grad = [g.wrt(x), g.wrt(y)];
        let worst = gradient_check(&f, &grad, &x0, 1e-6);
        assert!(worst < 1e-7, "worst discrepancy {worst}");
    }
}
