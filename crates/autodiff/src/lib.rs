//! # ba-autodiff
//!
//! A small reverse-mode (tape-based) automatic-differentiation engine.
//!
//! ## Why this exists
//!
//! The BinarizedAttack objective is a *bi-level* function of the adjacency
//! matrix: the OLS regression parameters `(β0, β1)` are themselves
//! functions of every node's features (paper Eq. (5)). `ba-core`
//! differentiates it analytically (closed form through the normal
//! equations) for speed; this crate exists to *prove that derivation
//! correct*. The test-suite of `ba-core` rebuilds the full objective out
//! of [`Var`] operations — features, logs, the 2×2 normal-equation solve,
//! exponentials, the squared targets — runs `backward()`, and checks the
//! tape gradients against the closed form on many random graphs.
//!
//! The calibration note for this reproduction flags Rust's autodiff
//! ecosystem as thin; building the engine ourselves (≈ a few hundred
//! lines) was cheaper than fighting that.
//!
//! ## Example
//!
//! ```
//! use ba_autodiff::Tape;
//! let tape = Tape::new();
//! let x = tape.var(2.0);
//! let y = tape.var(3.0);
//! let z = (x * y + x.sin()).exp();   // z = e^{xy + sin x}
//! let grads = z.backward();
//! let dz_dx = grads.wrt(x);
//! let expected = (2.0f64 * 3.0 + 2.0f64.sin()).exp() * (3.0 + 2.0f64.cos());
//! assert!((dz_dx - expected).abs() < 1e-9);
//! ```

mod check;
mod ops;
mod tape;

pub use check::{central_difference, gradient_check};
pub use ops::sum;
pub use tape::{Grads, Tape, Var};
