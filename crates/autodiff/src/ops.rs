//! Arithmetic and transcendental operations on [`Var`].

use crate::tape::Var;
use std::ops::{Add, Div, Mul, Neg, Sub};

impl<'t> Add for Var<'t> {
    type Output = Var<'t>;
    fn add(self, rhs: Var<'t>) -> Var<'t> {
        let index = self.tape.binary(self.index, 1.0, rhs.index, 1.0);
        Var {
            tape: self.tape,
            index,
            value: self.value + rhs.value,
        }
    }
}

impl<'t> Sub for Var<'t> {
    type Output = Var<'t>;
    fn sub(self, rhs: Var<'t>) -> Var<'t> {
        let index = self.tape.binary(self.index, 1.0, rhs.index, -1.0);
        Var {
            tape: self.tape,
            index,
            value: self.value - rhs.value,
        }
    }
}

impl<'t> Mul for Var<'t> {
    type Output = Var<'t>;
    fn mul(self, rhs: Var<'t>) -> Var<'t> {
        let index = self
            .tape
            .binary(self.index, rhs.value, rhs.index, self.value);
        Var {
            tape: self.tape,
            index,
            value: self.value * rhs.value,
        }
    }
}

impl<'t> Div for Var<'t> {
    type Output = Var<'t>;
    fn div(self, rhs: Var<'t>) -> Var<'t> {
        let inv = 1.0 / rhs.value;
        let index = self
            .tape
            .binary(self.index, inv, rhs.index, -self.value * inv * inv);
        Var {
            tape: self.tape,
            index,
            value: self.value * inv,
        }
    }
}

impl<'t> Neg for Var<'t> {
    type Output = Var<'t>;
    fn neg(self) -> Var<'t> {
        let index = self.tape.unary(self.index, -1.0);
        Var {
            tape: self.tape,
            index,
            value: -self.value,
        }
    }
}

// Scalar-on-the-right convenience ops.
impl<'t> Add<f64> for Var<'t> {
    type Output = Var<'t>;
    fn add(self, rhs: f64) -> Var<'t> {
        let index = self.tape.unary(self.index, 1.0);
        Var {
            tape: self.tape,
            index,
            value: self.value + rhs,
        }
    }
}

impl<'t> Sub<f64> for Var<'t> {
    type Output = Var<'t>;
    fn sub(self, rhs: f64) -> Var<'t> {
        let index = self.tape.unary(self.index, 1.0);
        Var {
            tape: self.tape,
            index,
            value: self.value - rhs,
        }
    }
}

impl<'t> Mul<f64> for Var<'t> {
    type Output = Var<'t>;
    fn mul(self, rhs: f64) -> Var<'t> {
        let index = self.tape.unary(self.index, rhs);
        Var {
            tape: self.tape,
            index,
            value: self.value * rhs,
        }
    }
}

impl<'t> Div<f64> for Var<'t> {
    type Output = Var<'t>;
    fn div(self, rhs: f64) -> Var<'t> {
        let index = self.tape.unary(self.index, 1.0 / rhs);
        Var {
            tape: self.tape,
            index,
            value: self.value / rhs,
        }
    }
}

impl<'t> Var<'t> {
    /// Natural logarithm. The caller must keep the argument positive —
    /// the attack objective only ever takes logs of `N_i ≥ 1`, `E_i ≥ 1`.
    pub fn ln(self) -> Var<'t> {
        debug_assert!(self.value > 0.0, "ln of non-positive value {}", self.value);
        let index = self.tape.unary(self.index, 1.0 / self.value);
        Var {
            tape: self.tape,
            index,
            value: self.value.ln(),
        }
    }

    /// Exponential.
    pub fn exp(self) -> Var<'t> {
        let v = self.value.exp();
        let index = self.tape.unary(self.index, v);
        Var {
            tape: self.tape,
            index,
            value: v,
        }
    }

    /// Square.
    pub fn sq(self) -> Var<'t> {
        self * self
    }

    /// Power with a constant exponent.
    pub fn powf(self, p: f64) -> Var<'t> {
        let v = self.value.powf(p);
        let index = self.tape.unary(self.index, p * self.value.powf(p - 1.0));
        Var {
            tape: self.tape,
            index,
            value: v,
        }
    }

    /// Square root.
    pub fn sqrt(self) -> Var<'t> {
        self.powf(0.5)
    }

    /// Sine (used only by doc-examples/tests).
    pub fn sin(self) -> Var<'t> {
        let index = self.tape.unary(self.index, self.value.cos());
        Var {
            tape: self.tape,
            index,
            value: self.value.sin(),
        }
    }

    /// Absolute value, with the subgradient `sign(x)` at 0.
    pub fn abs(self) -> Var<'t> {
        let sign = if self.value >= 0.0 { 1.0 } else { -1.0 };
        let index = self.tape.unary(self.index, sign);
        Var {
            tape: self.tape,
            index,
            value: self.value.abs(),
        }
    }

    /// ReLU with subgradient 0 at the kink.
    pub fn relu(self) -> Var<'t> {
        let active = self.value > 0.0;
        let index = self.tape.unary(self.index, if active { 1.0 } else { 0.0 });
        Var {
            tape: self.tape,
            index,
            value: if active { self.value } else { 0.0 },
        }
    }

    /// Pairwise maximum (subgradient routes to the larger argument; ties
    /// route to `self`).
    pub fn max(self, rhs: Var<'t>) -> Var<'t> {
        if self.value >= rhs.value {
            let index = self.tape.binary(self.index, 1.0, rhs.index, 0.0);
            Var {
                tape: self.tape,
                index,
                value: self.value,
            }
        } else {
            let index = self.tape.binary(self.index, 0.0, rhs.index, 1.0);
            Var {
                tape: self.tape,
                index,
                value: rhs.value,
            }
        }
    }

    /// Pairwise minimum.
    pub fn min(self, rhs: Var<'t>) -> Var<'t> {
        if self.value <= rhs.value {
            let index = self.tape.binary(self.index, 1.0, rhs.index, 0.0);
            Var {
                tape: self.tape,
                index,
                value: self.value,
            }
        } else {
            let index = self.tape.binary(self.index, 0.0, rhs.index, 1.0);
            Var {
                tape: self.tape,
                index,
                value: rhs.value,
            }
        }
    }
}

/// Sums an iterator of `Var`s (returns `tape.constant(0.0)` when empty).
pub fn sum<'t>(tape: &'t crate::Tape, vars: impl IntoIterator<Item = Var<'t>>) -> Var<'t> {
    let mut it = vars.into_iter();
    match it.next() {
        None => tape.constant(0.0),
        Some(first) => it.fold(first, |acc, v| acc + v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tape;

    fn grad_of(f: impl Fn(Var<'_>) -> Var<'_>, x0: f64) -> f64 {
        let tape = Tape::new();
        let x = tape.var(x0);
        f(x).backward().wrt(x)
    }

    #[test]
    fn basic_arithmetic_partials() {
        assert_eq!(grad_of(|x| x + x, 1.0), 2.0);
        assert_eq!(grad_of(|x| x - x, 1.0), 0.0);
        assert_eq!(grad_of(|x| x * x * x, 2.0), 12.0);
        assert!((grad_of(|x| x / (x + 1.0), 1.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn scalar_ops() {
        assert_eq!(grad_of(|x| x * 3.0 + 1.0, 5.0), 3.0);
        assert_eq!(grad_of(|x| x / 4.0 - 2.0, 5.0), 0.25);
        assert_eq!(grad_of(|x| -x, 5.0), -1.0);
    }

    #[test]
    fn transcendental_partials() {
        assert!((grad_of(|x| x.ln(), 2.0) - 0.5).abs() < 1e-12);
        assert!((grad_of(|x| x.exp(), 1.0) - std::f64::consts::E).abs() < 1e-12);
        assert!((grad_of(|x| x.sqrt(), 4.0) - 0.25).abs() < 1e-12);
        assert!((grad_of(|x| x.powf(3.0), 2.0) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn abs_and_relu_subgradients() {
        assert_eq!(grad_of(|x| x.abs(), -2.0), -1.0);
        assert_eq!(grad_of(|x| x.abs(), 2.0), 1.0);
        assert_eq!(grad_of(|x| x.relu(), 2.0), 1.0);
        assert_eq!(grad_of(|x| x.relu(), -2.0), 0.0);
    }

    #[test]
    fn max_min_route_gradients() {
        let tape = Tape::new();
        let x = tape.var(3.0);
        let y = tape.var(5.0);
        let m = x.max(y);
        let g = m.backward();
        assert_eq!(g.wrt(x), 0.0);
        assert_eq!(g.wrt(y), 1.0);
        let m2 = x.min(y);
        let g2 = m2.backward();
        assert_eq!(g2.wrt(x), 1.0);
        assert_eq!(g2.wrt(y), 0.0);
    }

    #[test]
    fn sum_helper() {
        let tape = Tape::new();
        let xs: Vec<_> = (1..=4).map(|i| tape.var(i as f64)).collect();
        let s = sum(&tape, xs.iter().copied());
        assert_eq!(s.value, 10.0);
        let g = s.backward();
        for x in xs {
            assert_eq!(g.wrt(x), 1.0);
        }
        let empty = sum(&tape, std::iter::empty());
        assert_eq!(empty.value, 0.0);
    }

    #[test]
    fn composite_chain_rule() {
        // f(x) = ln(x² + 1) → f'(x) = 2x/(x²+1)
        let x0 = 1.5;
        let g = grad_of(|x| (x * x + 1.0).ln(), x0);
        assert!((g - 2.0 * x0 / (x0 * x0 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn oddball_score_shape_differentiable() {
        // The true anomaly score max/min * ln(|E-C|+1) — exercised end to
        // end through the tape.
        let tape = Tape::new();
        let e = tape.var(10.0);
        let c = tape.var(4.0);
        let ratio = e.max(c) / e.min(c);
        let score = ratio * ((e - c).abs() + 1.0).ln();
        assert!((score.value - 2.5 * 7.0f64.ln()).abs() < 1e-12);
        let g = score.backward();
        // Finite difference on E.
        let f = |ev: f64| (ev.max(4.0) / ev.min(4.0)) * ((ev - 4.0).abs() + 1.0).ln();
        let h = 1e-6;
        let fd = (f(10.0 + h) - f(10.0 - h)) / (2.0 * h);
        assert!((g.wrt(e) - fd).abs() < 1e-5);
    }
}
