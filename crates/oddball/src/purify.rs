//! Low-rank purification defence.
//!
//! The paper's related-work section points at Entezari et al. (WSDM'20):
//! structural attacks tend to be *high-frequency* perturbations, so
//! truncating the adjacency spectrum to its top-k components removes a
//! disproportionate share of adversarial edges. The paper leaves the
//! defence of structural poisoning as future work; this module
//! implements that natural candidate so the `defense` bench can test it
//! against BinarizedAttack.
//!
//! For a symmetric adjacency the truncated SVD coincides (up to signs)
//! with the truncated eigendecomposition, which `ba-linalg` computes by
//! power iteration with deflation. The reconstruction is re-binarised by
//! keeping the `m` largest entries (preserving the edge count).

use ba_graph::{Graph, NodeId};
use ba_linalg::{symmetric_topk, Matrix};

/// Configuration for the purification.
#[derive(Debug, Clone, Copy)]
pub struct PurifyConfig {
    /// Spectral rank to keep.
    pub rank: usize,
    /// Power-iteration sweeps per eigenpair.
    pub iterations: usize,
    /// Seed for the eigensolver starts.
    pub seed: u64,
}

impl Default for PurifyConfig {
    fn default() -> Self {
        Self {
            rank: 24,
            iterations: 120,
            seed: 0x10a,
        }
    }
}

/// Reconstructs the graph from its top-`rank` adjacency eigenpairs and
/// keeps the original number of edges (largest reconstructed entries,
/// excluding the diagonal).
pub fn low_rank_purify(g: &Graph, cfg: PurifyConfig) -> Graph {
    let n = g.num_nodes();
    if n == 0 || g.num_edges() == 0 {
        return g.clone();
    }
    let a = Matrix::from_vec(n, n, ba_graph::adjacency::to_row_major(g));
    let pairs = symmetric_topk(&a, cfg.rank.min(n), cfg.iterations, cfg.seed);
    // Reconstruct R = Σ λ v vᵀ lazily per entry would be O(n²k); build
    // the score list over the upper triangle directly.
    let mut scored: Vec<(f64, NodeId, NodeId)> = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            let mut r = 0.0;
            for (lambda, v) in &pairs {
                r += lambda * v[i] * v[j];
            }
            scored.push((r, i as NodeId, j as NodeId));
        }
    }
    let m = g.num_edges();
    scored.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut out = Graph::new(n);
    for &(_, i, j) in scored.iter().take(m) {
        out.add_edge(i, j);
    }
    out
}

/// Fraction of `g`'s edges that survive purification — a quick measure
/// of how much benign structure the defence destroys.
pub fn edge_retention(original: &Graph, purified: &Graph) -> f64 {
    if original.num_edges() == 0 {
        return 1.0;
    }
    let kept = original
        .edges()
        .filter(|&(u, v)| purified.has_edge(u, v))
        .count();
    kept as f64 / original.num_edges() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_graph::generators;

    #[test]
    fn preserves_edge_count_and_nodes() {
        let g = generators::erdos_renyi(80, 0.08, 3);
        let p = low_rank_purify(&g, PurifyConfig::default());
        assert_eq!(p.num_nodes(), g.num_nodes());
        assert_eq!(p.num_edges(), g.num_edges());
    }

    #[test]
    fn block_structure_survives_purification() {
        // Two dense communities: rank-2 structure, so even rank-4
        // purification should retain most intra-community edges.
        let g = generators::planted_partition(60, 2, 0.5, 0.02, 5);
        let p = low_rank_purify(
            &g,
            PurifyConfig {
                rank: 4,
                ..PurifyConfig::default()
            },
        );
        let retention = edge_retention(&g, &p);
        // A random intra-block edge set is not exactly low-rank, so exact
        // retention is impossible; but the bulk must survive, and the
        // purified graph must stay community-assortative.
        assert!(retention > 0.55, "retention {retention} too low");
        let comm = |x: NodeId| (x as usize) * 2 / 60;
        let intra = p.edges().filter(|&(u, v)| comm(u) == comm(v)).count();
        assert!(
            intra * 10 >= p.num_edges() * 9,
            "purified graph lost community structure"
        );
    }

    #[test]
    fn empty_graph_noop() {
        let g = Graph::new(5);
        let p = low_rank_purify(&g, PurifyConfig::default());
        assert_eq!(p, g);
    }

    #[test]
    fn deterministic() {
        let g = generators::barabasi_albert(60, 3, 7);
        let cfg = PurifyConfig::default();
        assert_eq!(low_rank_purify(&g, cfg), low_rank_purify(&g, cfg));
    }

    #[test]
    fn removes_some_adversarial_edges() {
        // Plant a community graph, then add "adversarial" random edges
        // between communities; purification should drop inter-community
        // noise at a higher rate than intra-community signal.
        let mut g = generators::planted_partition(60, 2, 0.4, 0.0, 9);
        let comm = |x: NodeId| (x as usize) * 2 / 60;
        let mut rng_state = 12345u64;
        let mut adversarial = Vec::new();
        while adversarial.len() < 25 {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let u = ((rng_state >> 20) % 60) as NodeId;
            let v = ((rng_state >> 40) % 60) as NodeId;
            if u != v && comm(u) != comm(v) && g.add_edge(u, v) {
                adversarial.push((u.min(v), u.max(v)));
            }
        }
        let p = low_rank_purify(
            &g,
            PurifyConfig {
                rank: 4,
                ..PurifyConfig::default()
            },
        );
        let adv_kept = adversarial
            .iter()
            .filter(|&&(u, v)| p.has_edge(u, v))
            .count() as f64
            / adversarial.len() as f64;
        let total_retention = edge_retention(&g, &p);
        assert!(
            adv_kept < total_retention,
            "adversarial retention {adv_kept} not below average {total_retention}"
        );
    }
}
