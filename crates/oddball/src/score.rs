//! Anomaly scoring (paper Eq. (3)) and the optimisation surrogate.

/// One clamped log feature: `ln(max(x, 1))`. The single code path both
/// the batch [`log_features`] and the per-row patches of
/// [`IncrementalFit`](crate::IncrementalFit) go through, so cached and
/// freshly-derived rows are bit-identical.
#[inline]
pub(crate) fn log_feat(x: f64) -> f64 {
    x.max(1.0).ln()
}

/// Safe log features: `u = ln(max(N, 1))`, `v = ln(max(E, 1))`.
///
/// The paper's attacks never create singleton nodes, so `N ≥ 1` in all
/// clean and poisoned graphs; the clamp guards fractional intermediate
/// states in ContinuousA where a relaxed degree can dip below 1.
pub fn log_features(n: &[f64], e: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let u = n.iter().map(|&x| log_feat(x)).collect();
    let v = e.iter().map(|&x| log_feat(x)).collect();
    (u, v)
}

/// Power-law prediction `C_i = e^{β0} · N_i^{β1}` for a node with feature
/// `N_i` (clamped to ≥ 1 as above).
#[inline]
pub fn predicted_e(n_i: f64, beta0: f64, beta1: f64) -> f64 {
    (beta0 + beta1 * n_i.max(1.0).ln()).exp()
}

/// True OddBall anomaly score (paper Eq. (3)):
/// `S_i = max(E, C)/min(E, C) · ln(|E − C| + 1)`.
///
/// `E` is clamped to ≥ 1 so the ratio is well-defined for the degenerate
/// fractional graphs that appear mid-optimisation.
pub fn anomaly_score(e_i: f64, n_i: f64, beta0: f64, beta1: f64) -> f64 {
    let e = e_i.max(1.0);
    let c = predicted_e(n_i, beta0, beta1).max(1e-12);
    let ratio = if e >= c { e / c } else { c / e };
    ratio * ((e - c).abs() + 1.0).ln()
}

/// The paper's normalisation-free proxy `˜S_i = ln(|E − C| + 1)`.
pub fn surrogate_score(e_i: f64, n_i: f64, beta0: f64, beta1: f64) -> f64 {
    let e = e_i.max(1.0);
    let c = predicted_e(n_i, beta0, beta1);
    ((e - c).abs() + 1.0).ln()
}

/// The smooth objective actually optimised by the attacks
/// (paper Eq. (5a)/(8a)): `Σ_{a ∈ targets} (E_a − e^{ρ_a})²`.
pub fn surrogate_loss(e: &[f64], n: &[f64], beta0: f64, beta1: f64, targets: &[u32]) -> f64 {
    targets
        .iter()
        .map(|&a| {
            let idx = a as usize;
            let r = e[idx].max(1.0) - predicted_e(n[idx], beta0, beta1);
            r * r
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_the_line_scores_zero() {
        // E exactly equals the prediction ⇒ ratio 1, ln(1) = 0.
        let beta0 = 0.5;
        let beta1 = 1.3;
        let n = 7.0;
        let e = predicted_e(n, beta0, beta1);
        assert_eq!(anomaly_score(e, n, beta0, beta1), 0.0);
        assert_eq!(surrogate_score(e, n, beta0, beta1), 0.0);
    }

    #[test]
    fn score_symmetric_in_direction() {
        // Same |E - C| above and below the line with equal ratio gives
        // equal scores only when ratios match; check deviation monotonicity
        // instead: further away ⇒ larger score.
        let (b0, b1) = (0.0, 1.0); // C = N
        let s1 = anomaly_score(12.0, 10.0, b0, b1);
        let s2 = anomaly_score(20.0, 10.0, b0, b1);
        assert!(s2 > s1);
        let s3 = anomaly_score(8.0, 10.0, b0, b1); // below the line
        assert!(s3 > 0.0);
    }

    #[test]
    fn score_matches_formula_by_hand() {
        let (b0, b1) = (0.0, 1.0);
        // N = 4 ⇒ C = 4; E = 10 ⇒ ratio 2.5, distance 6.
        let s = anomaly_score(10.0, 4.0, b0, b1);
        assert!((s - 2.5 * 7.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn clamps_protect_against_zero_features() {
        let s = anomaly_score(0.0, 0.0, 0.0, 1.0);
        assert!(s.is_finite());
        let (u, v) = log_features(&[0.0, 2.0], &[0.0, 3.0]);
        assert_eq!(u[0], 0.0);
        assert_eq!(v[0], 0.0);
        assert!((u[1] - 2.0f64.ln()).abs() < 1e-15);
        assert!((v[1] - 3.0f64.ln()).abs() < 1e-15);
    }

    #[test]
    fn surrogate_loss_sums_squared_residuals() {
        let e = [5.0, 9.0, 2.0];
        let n = [2.0, 3.0, 1.0];
        let (b0, b1) = (0.0, 1.0); // C = N
        let loss = surrogate_loss(&e, &n, b0, b1, &[0, 1]);
        assert!((loss - (9.0 + 36.0)).abs() < 1e-12);
        // Empty target set ⇒ zero loss.
        assert_eq!(surrogate_loss(&e, &n, b0, b1, &[]), 0.0);
    }

    #[test]
    fn predicted_e_power_law_shape() {
        let b0 = 1.0f64;
        let b1 = 1.5;
        let c4 = predicted_e(4.0, b0, b1);
        let c16 = predicted_e(16.0, b0, b1);
        // N -> 4N multiplies C by 4^1.5 = 8.
        assert!((c16 / c4 - 8.0).abs() < 1e-9);
    }
}
