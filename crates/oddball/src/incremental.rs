//! Incremental detector refitting under per-node feature updates.
//!
//! The paper's evaluation metric τ_as refits OddBall on the poisoned
//! graph at *every* budget point. A from-scratch refit pays
//! `O(n + m + Σdeg²)` for feature extraction plus `2n` `ln` calls and an
//! `O(n)` regression — per budget — even though consecutive budgets
//! differ by a handful of edge toggles. [`IncrementalFit`] removes that
//! redundancy:
//!
//! * a **dirty-row log-feature cache**: the `(u, v) = (ln N, ln E)` rows
//!   are kept materialised, and only the rows an edge toggle actually
//!   moved (reported by
//!   [`IncrementalEgonet::toggle_with`](ba_graph::egonet::IncrementalEgonet::toggle_with))
//!   are re-derived;
//! * **compensated OLS sufficient statistics**
//!   ([`OlsStats`](ba_linalg::OlsStats)): `Σu, Σv, Σu², Σuv` are patched
//!   per dirty row, so the OLS refit is O(1) per budget;
//! * **robust refits reuse the cache**: Huber and RANSAC still iterate
//!   over all rows (their estimators are not decomposable), but they
//!   skip the feature re-extraction and the `2n` `ln` calls entirely.
//!
//! ## Equality contract
//!
//! [`OddBall::fit`](crate::OddBall::fit) routes its regression through
//! the same kernels — [`OlsStats`](ba_linalg::OlsStats) for OLS,
//! [`huber_fit`](crate::huber_fit)/[`ransac_fit`](crate::ransac_fit)
//! over the identical log rows otherwise — so a curve evaluated through
//! `IncrementalFit` is **bit-identical** to refitting from scratch at
//! every budget. `ba-core`'s `eval_equivalence` proptest pins this for
//! all three regressors over random attack-op sequences.

use crate::detector::{FitError, Regressor};
use crate::robust::{huber_fit, ransac_fit, HuberConfig, RansacConfig};
use crate::score::{anomaly_score, log_feat, log_features};
use ba_graph::egonet::EgonetFeatures;
use ba_linalg::OlsStats;

/// The `(β0, β1)` parameter pair a refit produces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitParams {
    /// Intercept of the log-log fit.
    pub beta0: f64,
    /// Slope (the power-law exponent).
    pub beta1: f64,
}

impl FitParams {
    /// Anomaly score of a node with features `(n_i, e_i)` under these
    /// parameters (paper Eq. (3)).
    #[inline]
    pub fn score(&self, n_i: f64, e_i: f64) -> f64 {
        anomaly_score(e_i, n_i, self.beta0, self.beta1)
    }
}

/// Maintains the detector's regression inputs — log-feature rows and OLS
/// sufficient statistics — under per-node feature updates.
#[derive(Debug, Clone)]
pub struct IncrementalFit {
    regressor: Regressor,
    u: Vec<f64>,
    v: Vec<f64>,
    /// Present exactly when the regressor is OLS — Huber/RANSAC refit
    /// from the row cache and never read the statistics, so robust fits
    /// skip the accumulation entirely.
    stats: Option<OlsStats>,
}

impl IncrementalFit {
    /// Derives the log rows — and, for OLS, the sufficient statistics —
    /// from `feats`, in the same accumulation order a from-scratch fit
    /// uses.
    pub fn new(regressor: Regressor, feats: &EgonetFeatures) -> Self {
        let (u, v) = log_features(&feats.n, &feats.e);
        let stats = matches!(regressor, Regressor::Ols).then(|| OlsStats::from_rows(&u, &v));
        Self {
            regressor,
            u,
            v,
            stats,
        }
    }

    /// The configured regressor.
    pub fn regressor(&self) -> Regressor {
        self.regressor
    }

    /// Number of rows (nodes) covered.
    pub fn len(&self) -> usize {
        self.u.len()
    }

    /// `true` when the fit covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.u.is_empty()
    }

    /// The cached log rows `(u, v)` (tests compare them against a fresh
    /// derivation).
    pub fn log_rows(&self) -> (&[f64], &[f64]) {
        (&self.u, &self.v)
    }

    /// Patches row `i` to the features `(n_i, e_i)`, updating the cached
    /// logs and the sufficient statistics. O(1); a no-op when the row's
    /// log features are unchanged.
    pub fn update_row(&mut self, i: usize, n_i: f64, e_i: f64) {
        let nu = log_feat(n_i);
        let nv = log_feat(e_i);
        if nu == self.u[i] && nv == self.v[i] {
            return;
        }
        if let Some(stats) = &mut self.stats {
            stats.replace(self.u[i], self.v[i], nu, nv);
        }
        self.u[i] = nu;
        self.v[i] = nv;
    }

    /// Refits the regression on the current rows.
    ///
    /// OLS answers from the sufficient statistics in O(1); Huber and
    /// RANSAC rerun their estimators over the cached rows (O(n) per
    /// refit, but with no feature extraction or `ln` re-derivation).
    pub fn refit(&self) -> Result<FitParams, FitError> {
        if self.u.is_empty() {
            return Err(FitError::EmptyGraph);
        }
        let (beta0, beta1) = match self.regressor {
            Regressor::Ols => self
                .stats
                .as_ref()
                // ba-lint: allow(panic-path) -- the constructor populates stats iff the regressor is OLS, the arm we are in
                .expect("stats are built whenever the regressor is OLS")
                .solve()
                .map_err(FitError::Regression)?,
            Regressor::Huber { k } => {
                let fit = huber_fit(
                    &self.u,
                    &self.v,
                    HuberConfig {
                        k,
                        ..HuberConfig::default()
                    },
                )
                .map_err(FitError::Regression)?;
                (fit.intercept, fit.slope)
            }
            Regressor::Ransac {
                trials,
                inlier_k,
                seed,
            } => {
                let fit = ransac_fit(
                    &self.u,
                    &self.v,
                    RansacConfig {
                        trials,
                        inlier_k,
                        seed,
                    },
                )
                .map_err(FitError::Regression)?;
                (fit.intercept, fit.slope)
            }
        };
        Ok(FitParams { beta0, beta1 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OddBall;
    use ba_graph::egonet::{egonet_features, IncrementalEgonet};
    use ba_graph::{generators, NodeId};

    #[test]
    fn fresh_fit_matches_detector() {
        let g = generators::erdos_renyi(200, 0.03, 5);
        let feats = egonet_features(&g);
        for reg in [
            Regressor::Ols,
            Regressor::default_huber(),
            Regressor::default_ransac(3),
        ] {
            let params = IncrementalFit::new(reg, &feats).refit().unwrap();
            let model = OddBall::new(reg).fit(&g).unwrap();
            assert_eq!(params.beta0.to_bits(), model.beta0().to_bits(), "{reg:?}");
            assert_eq!(params.beta1.to_bits(), model.beta1().to_bits(), "{reg:?}");
        }
    }

    #[test]
    fn dirty_row_updates_track_toggles_bit_identically() {
        let mut g = generators::erdos_renyi(120, 0.05, 9);
        let mut inc = IncrementalEgonet::new(&g);
        let mut fit = IncrementalFit::new(Regressor::Ols, inc.features());
        let edits: &[(NodeId, NodeId)] = &[(0, 1), (3, 7), (0, 1), (2, 9), (5, 40), (3, 7)];
        for &(a, b) in edits {
            let mut dirty: Vec<NodeId> = Vec::new();
            inc.toggle_with(&mut g, a, b, |m| dirty.push(m)).unwrap();
            dirty.sort_unstable();
            dirty.dedup();
            let feats = inc.features();
            for &m in &dirty {
                fit.update_row(m as usize, feats.n[m as usize], feats.e[m as usize]);
            }
            // Cached rows equal a fresh derivation...
            let (fu, fv) = log_features(&feats.n, &feats.e);
            let (cu, cv) = fit.log_rows();
            assert_eq!(cu, &fu[..]);
            assert_eq!(cv, &fv[..]);
            // ...and the refit equals the from-scratch detector fit.
            let params = fit.refit().unwrap();
            let model = OddBall::default().fit(&g).unwrap();
            assert_eq!(params.beta0.to_bits(), model.beta0().to_bits());
            assert_eq!(params.beta1.to_bits(), model.beta1().to_bits());
        }
    }

    #[test]
    fn score_matches_model_scores() {
        let g = generators::barabasi_albert(80, 3, 4);
        let feats = egonet_features(&g);
        let params = IncrementalFit::new(Regressor::Ols, &feats).refit().unwrap();
        let model = OddBall::default().fit(&g).unwrap();
        for i in 0..feats.len() {
            assert_eq!(
                params.score(feats.n[i], feats.e[i]).to_bits(),
                model.score(i as NodeId).to_bits()
            );
        }
    }

    #[test]
    fn empty_features_rejected() {
        let empty = EgonetFeatures {
            n: vec![],
            e: vec![],
        };
        assert!(matches!(
            IncrementalFit::new(Regressor::Ols, &empty).refit(),
            Err(FitError::EmptyGraph)
        ));
    }
}
