//! # ba-oddball
//!
//! The target GAD system of the paper: **OddBall** (Akoglu et al., 2010),
//! plus the robust-regression countermeasures of paper Sec. VII.
//!
//! OddBall extracts egonet features `(N_i, E_i)` for every node, fits the
//! Egonet Density Power Law `ln E = β0 + β1 ln N` (paper Eq. (1)–(2)) and
//! scores each node by its deviation from the law (Eq. (3)):
//!
//! ```text
//! S_i = max(E_i, C_i) / min(E_i, C_i) · ln(|E_i − C_i| + 1),
//! C_i = e^{β0} N_i^{β1}
//! ```
//!
//! The regression parameters can be estimated by plain OLS (the paper's
//! default target) or by the robust estimators used as countermeasures:
//! Huber IRLS and RANSAC.
//!
//! ## Example
//!
//! ```
//! use ba_graph::generators;
//! use ba_oddball::{OddBall, Regressor};
//!
//! let mut g = generators::erdos_renyi(300, 0.03, 7);
//! // Plant a near-clique: those nodes become anomalous under OddBall.
//! let members: Vec<u32> = (0..10).collect();
//! generators::plant_near_clique(&mut g, &members, 1.0, 8);
//!
//! let model = OddBall::new(Regressor::Ols).fit(&g).unwrap();
//! let top = model.top_k(10);
//! // Most of the top-10 anomalies are clique members.
//! let hits = top.iter().filter(|(id, _)| *id < 10).count();
//! assert!(hits >= 5, "only {hits} clique members in the top 10");
//! ```

mod detector;
mod incremental;
pub mod purify;
mod robust;
mod score;

pub use detector::{FitError, OddBall, OddBallModel, Regressor};
pub use incremental::{FitParams, IncrementalFit};
pub use purify::{edge_retention, low_rank_purify, PurifyConfig};
pub use robust::{huber_fit, ransac_fit, HuberConfig, RansacConfig};
pub use score::{anomaly_score, log_features, predicted_e, surrogate_loss, surrogate_score};
