//! The OddBall detector: fit a regressor over log-log egonet features,
//! score every node, rank anomalies.

use crate::incremental::IncrementalFit;
use crate::score::surrogate_score;
use ba_graph::egonet::{egonet_features, EgonetFeatures};
use ba_graph::{GraphView, NodeId};
use ba_linalg::Ols2Error;
use serde::{Deserialize, Serialize};

/// Which estimator fits the Egonet Density Power Law.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Regressor {
    /// Ordinary least squares — the paper's default target (Eq. (2)).
    Ols,
    /// Huber IRLS (paper Eq. (10)); `k` in MAD-scale units.
    Huber {
        /// Huber threshold in robust-scale units.
        k: f64,
    },
    /// RANSAC consensus fit (paper Sec. VII).
    Ransac {
        /// Number of random 2-point hypotheses.
        trials: usize,
        /// Inlier tolerance in robust-scale units.
        inlier_k: f64,
        /// RNG seed.
        seed: u64,
    },
}

impl Regressor {
    /// Default Huber configuration as used in the defence experiments.
    pub fn default_huber() -> Self {
        Regressor::Huber { k: 1.345 }
    }

    /// Default RANSAC configuration as used in the defence experiments.
    pub fn default_ransac(seed: u64) -> Self {
        Regressor::Ransac {
            trials: 200,
            inlier_k: 1.0,
            seed,
        }
    }
}

/// Errors from fitting OddBall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitError {
    /// The underlying regression failed (degenerate features).
    Regression(Ols2Error),
    /// The graph has no nodes.
    EmptyGraph,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::Regression(e) => write!(f, "regression failed: {e}"),
            FitError::EmptyGraph => write!(f, "empty graph"),
        }
    }
}

impl std::error::Error for FitError {}

/// The OddBall detector (configuration object).
#[derive(Debug, Clone, Copy)]
pub struct OddBall {
    regressor: Regressor,
}

impl Default for OddBall {
    fn default() -> Self {
        Self {
            regressor: Regressor::Ols,
        }
    }
}

impl OddBall {
    /// Creates a detector with the given regressor.
    pub fn new(regressor: Regressor) -> Self {
        Self { regressor }
    }

    /// The configured regressor.
    pub fn regressor(&self) -> Regressor {
        self.regressor
    }

    /// Extracts egonet features from `g` and fits the detector. Accepts
    /// any [`GraphView`] — a mutable `Graph`, a frozen `CsrGraph`, or a
    /// live `DeltaOverlay` — so attack loops can refit on the poisoned
    /// view without materialising a graph.
    pub fn fit<V: GraphView + ?Sized>(&self, g: &V) -> Result<OddBallModel, FitError> {
        if g.num_nodes() == 0 {
            return Err(FitError::EmptyGraph);
        }
        self.fit_features(egonet_features(g))
    }

    /// Fits the detector on pre-computed features (the attack loop keeps
    /// features incrementally, so this avoids re-extraction).
    ///
    /// The regression goes through [`IncrementalFit`] — the same kernels
    /// (compensated OLS sufficient statistics, Huber/RANSAC over the
    /// derived log rows) the incremental curve-evaluation engine
    /// maintains — so a from-scratch fit and a replayed incremental
    /// refit of the same graph are bit-identical.
    pub fn fit_features(&self, feats: EgonetFeatures) -> Result<OddBallModel, FitError> {
        if feats.is_empty() {
            return Err(FitError::EmptyGraph);
        }
        let params = IncrementalFit::new(self.regressor, &feats).refit()?;
        let scores: Vec<f64> = feats
            .n
            .iter()
            .zip(&feats.e)
            .map(|(&n_i, &e_i)| params.score(n_i, e_i))
            .collect();
        Ok(OddBallModel {
            beta0: params.beta0,
            beta1: params.beta1,
            feats,
            scores,
        })
    }
}

/// A fitted OddBall model: regression parameters, the features it was fit
/// on, and every node's anomaly score.
#[derive(Debug, Clone)]
pub struct OddBallModel {
    beta0: f64,
    beta1: f64,
    feats: EgonetFeatures,
    scores: Vec<f64>,
}

impl OddBallModel {
    /// Intercept `β0` of the log-log fit.
    pub fn beta0(&self) -> f64 {
        self.beta0
    }

    /// Slope `β1` of the log-log fit — the power-law exponent `α`,
    /// empirically in `[1, 2]` per the paper.
    pub fn beta1(&self) -> f64 {
        self.beta1
    }

    /// The features the model was fitted on.
    pub fn features(&self) -> &EgonetFeatures {
        &self.feats
    }

    /// Anomaly score of node `i` (paper Eq. (3)).
    pub fn score(&self, i: NodeId) -> f64 {
        self.scores[i as usize]
    }

    /// All anomaly scores.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Normalisation-free proxy score `˜S_i` of node `i`.
    pub fn proxy_score(&self, i: NodeId) -> f64 {
        surrogate_score(
            self.feats.e[i as usize],
            self.feats.n[i as usize],
            self.beta0,
            self.beta1,
        )
    }

    /// Sum of the anomaly scores of `targets` — the quantity the attack
    /// minimises (evaluated with the *true* score, as the paper does).
    pub fn target_score_sum(&self, targets: &[NodeId]) -> f64 {
        targets.iter().map(|&t| self.score(t)).sum()
    }

    /// The `k` highest-scoring nodes as `(node, score)`, descending.
    /// Ties break toward smaller node ids (deterministic). Uses the IEEE
    /// total order, so a pathological NaN score sorts deterministically
    /// instead of panicking (scores from a successful fit are finite, so
    /// the ordering is the usual numeric one in practice).
    pub fn top_k(&self, k: usize) -> Vec<(NodeId, f64)> {
        let mut idx: Vec<NodeId> = (0..self.scores.len() as NodeId).collect();
        idx.sort_by(|&a, &b| {
            self.scores[b as usize]
                .total_cmp(&self.scores[a as usize])
                .then(a.cmp(&b))
        });
        idx.into_iter()
            .take(k)
            .map(|i| (i, self.scores[i as usize]))
            .collect()
    }

    /// Boolean anomaly labels for the `frac` highest-scoring nodes
    /// (used by the transfer pipeline to create supervised labels).
    pub fn labels_top_fraction(&self, frac: f64) -> Vec<bool> {
        let n = self.scores.len();
        let k = ((n as f64 * frac).round() as usize).clamp(1, n);
        let mut labels = vec![false; n];
        for (node, _) in self.top_k(k) {
            labels[node as usize] = true;
        }
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_graph::{generators, CsrGraph, DeltaOverlay, Graph};

    fn planted_graph(seed: u64) -> Graph {
        let mut g = generators::erdos_renyi(400, 0.02, seed);
        generators::attach_isolated(&mut g, seed + 1);
        let members: Vec<NodeId> = (0..12).collect();
        generators::plant_near_clique(&mut g, &members, 1.0, seed + 2);
        generators::plant_near_star(&mut g, 20, 70, seed + 3);
        g
    }

    #[test]
    fn power_law_exponent_in_band() {
        let g = generators::erdos_renyi(600, 0.02, 3);
        let model = OddBall::default().fit(&g).unwrap();
        // The paper reports 1 <= alpha <= 2 for real graphs; ER graphs sit
        // near 1 (egonets are mostly stars of spokes).
        assert!(
            model.beta1() > 0.5 && model.beta1() < 2.5,
            "beta1 = {}",
            model.beta1()
        );
    }

    #[test]
    fn planted_anomalies_rank_high() {
        let g = planted_graph(11);
        let model = OddBall::default().fit(&g).unwrap();
        let top: Vec<NodeId> = model.top_k(20).into_iter().map(|(i, _)| i).collect();
        let clique_hits = top.iter().filter(|&&i| i < 12).count();
        assert!(
            clique_hits >= 6,
            "clique hits = {clique_hits}, top = {top:?}"
        );
        assert!(top.contains(&20), "star centre not in top-20: {top:?}");
    }

    #[test]
    fn scores_nonnegative_and_finite() {
        let g = planted_graph(13);
        let model = OddBall::default().fit(&g).unwrap();
        for &s in model.scores() {
            assert!(s.is_finite());
            assert!(s >= 0.0);
        }
    }

    #[test]
    fn top_k_sorted_descending() {
        let g = planted_graph(17);
        let model = OddBall::default().fit(&g).unwrap();
        let top = model.top_k(50);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert_eq!(top.len(), 50);
    }

    #[test]
    fn labels_top_fraction_counts() {
        let g = planted_graph(19);
        let model = OddBall::default().fit(&g).unwrap();
        let labels = model.labels_top_fraction(0.1);
        let count = labels.iter().filter(|&&b| b).count();
        assert_eq!(count, 40); // 10% of 400
    }

    #[test]
    fn robust_regressors_fit_too() {
        let g = planted_graph(23);
        for reg in [Regressor::default_huber(), Regressor::default_ransac(7)] {
            let model = OddBall::new(reg).fit(&g).unwrap();
            assert!(model.beta1().is_finite());
            // Robust fits should still rank the star centre highly.
            let top: Vec<NodeId> = model.top_k(30).into_iter().map(|(i, _)| i).collect();
            assert!(top.contains(&20), "{reg:?}: top = {top:?}");
        }
    }

    #[test]
    fn fit_identical_across_views() {
        let g = planted_graph(41);
        let csr = CsrGraph::from(&g);
        let ov = DeltaOverlay::new(&csr);
        let a = OddBall::default().fit(&g).unwrap();
        let b = OddBall::default().fit(&csr).unwrap();
        let c = OddBall::default().fit(&ov).unwrap();
        assert_eq!(a.scores(), b.scores());
        assert_eq!(a.scores(), c.scores());
    }

    #[test]
    fn empty_graph_rejected() {
        assert!(matches!(
            OddBall::default().fit(&Graph::new(0)),
            Err(FitError::EmptyGraph)
        ));
    }

    #[test]
    fn target_score_sum_adds_up() {
        let g = planted_graph(29);
        let model = OddBall::default().fit(&g).unwrap();
        let targets = [0, 1, 2];
        let sum = model.target_score_sum(&targets);
        let manual: f64 = targets.iter().map(|&t| model.score(t)).sum();
        assert_eq!(sum, manual);
    }

    #[test]
    fn degenerate_regular_graph_errors() {
        // A cycle: every node has degree 2 → all u identical → singular.
        let n = 20;
        let edges: Vec<(NodeId, NodeId)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = Graph::from_edges(n as usize, edges);
        match OddBall::default().fit(&g) {
            Err(FitError::Regression(Ols2Error::Degenerate)) => {}
            other => panic!("expected degenerate error, got {other:?}"),
        }
    }
}
