//! Robust estimators for the regression step (paper Sec. VII):
//! Huber IRLS and RANSAC. Both fit `y = b0 + b1 x` like OLS but resist
//! the feature outliers a poisoning attack induces.

use ba_linalg::{simple_ols, weighted_ols, LinearFit, Ols2Error};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the Huber IRLS fit.
#[derive(Debug, Clone, Copy)]
pub struct HuberConfig {
    /// The Huber threshold `k` of paper Eq. (10), in units of the robust
    /// scale estimate. The classical choice 1.345 gives 95% Gaussian
    /// efficiency.
    pub k: f64,
    /// Maximum IRLS iterations.
    pub max_iters: usize,
    /// Convergence tolerance on parameter movement.
    pub tol: f64,
}

impl Default for HuberConfig {
    fn default() -> Self {
        Self {
            k: 1.345,
            max_iters: 60,
            tol: 1e-10,
        }
    }
}

/// Robust scale estimate: normalised median absolute deviation of the
/// residuals (`MAD / 0.6745`), with a small floor to avoid zero scale on
/// exact fits.
///
/// Residuals are ordered with the IEEE total order, which places NaNs
/// after every finite magnitude: a minority of NaN residuals (e.g. from
/// an overflowed prediction) therefore cannot poison the median, and the
/// sort can never panic mid-IRLS the way a `partial_cmp` comparator did.
fn mad_scale(residuals: &[f64]) -> f64 {
    let mut abs: Vec<f64> = residuals.iter().map(|r| r.abs()).collect();
    abs.sort_by(f64::total_cmp);
    let med = if abs.is_empty() {
        0.0
    } else if abs.len() % 2 == 1 {
        abs[abs.len() / 2]
    } else {
        0.5 * (abs[abs.len() / 2 - 1] + abs[abs.len() / 2])
    };
    (med / 0.6745).max(1e-8)
}

/// Rejects a fit whose parameters came out non-finite (a NaN/∞
/// observation slipped through the normal equations — `solve2`'s
/// singularity check cannot see it because every NaN comparison is
/// false). Surfacing `Degenerate` beats silently returning NaN
/// parameters that would propagate into NaN scores.
fn finite_or_degenerate(fit: LinearFit) -> Result<LinearFit, Ols2Error> {
    if fit.intercept.is_finite() && fit.slope.is_finite() {
        Ok(fit)
    } else {
        Err(Ols2Error::Degenerate)
    }
}

/// Huber-loss regression via iteratively re-weighted least squares.
///
/// Weights follow the Huber ψ-function: `w = 1` for `|r| ≤ k·s`,
/// `w = k·s/|r|` otherwise — the standard IRLS solution of minimising
/// paper Eq. (10). Non-finite observations yield
/// [`Ols2Error::Degenerate`] instead of a silent NaN fit.
pub fn huber_fit(x: &[f64], y: &[f64], cfg: HuberConfig) -> Result<LinearFit, Ols2Error> {
    let mut fit = finite_or_degenerate(simple_ols(x, y)?)?;
    for _ in 0..cfg.max_iters {
        let residuals: Vec<f64> = x
            .iter()
            .zip(y)
            .map(|(&xi, &yi)| yi - fit.predict(xi))
            .collect();
        let s = mad_scale(&residuals);
        let cutoff = cfg.k * s;
        let w: Vec<f64> = residuals
            .iter()
            .map(|&r| {
                if r.abs() <= cutoff {
                    1.0
                } else {
                    cutoff / r.abs()
                }
            })
            .collect();
        let next = finite_or_degenerate(weighted_ols(x, y, Some(&w))?)?;
        let moved = (next.intercept - fit.intercept).abs() + (next.slope - fit.slope).abs();
        fit = next;
        if moved < cfg.tol {
            break;
        }
    }
    Ok(fit)
}

/// Configuration for RANSAC.
#[derive(Debug, Clone, Copy)]
pub struct RansacConfig {
    /// Number of random 2-point hypotheses to try.
    pub trials: usize,
    /// Inlier threshold on |residual|. The paper notes RANSAC "uses Huber
    /// loss with k = 1", i.e. a unit threshold in residual scale; we
    /// interpret the tolerance in MAD-scale units like Huber.
    pub inlier_k: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RansacConfig {
    fn default() -> Self {
        Self {
            trials: 200,
            inlier_k: 1.0,
            seed: 0x5ac,
        }
    }
}

/// RANSAC regression with least-median-of-squares hypothesis selection:
/// repeatedly fit an exact line through two random points, score each
/// hypothesis by the *median* absolute residual (robust to up to 50%
/// contamination, unlike a consensus count with a data-derived tolerance),
/// keep the best hypothesis, and refit OLS on the points within
/// `inlier_k × MAD-scale` of it.
pub fn ransac_fit(x: &[f64], y: &[f64], cfg: RansacConfig) -> Result<LinearFit, Ols2Error> {
    if x.len() != y.len() {
        return Err(Ols2Error::LengthMismatch);
    }
    if x.len() < 2 {
        return Err(Ols2Error::TooFewPoints);
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = x.len();
    let mut best: Option<(f64, f64, f64)> = None; // (median, intercept, slope)
    let mut abs_res = vec![0.0; n];
    for _ in 0..cfg.trials {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i == j || (x[i] - x[j]).abs() < 1e-12 {
            continue;
        }
        let slope = (y[j] - y[i]) / (x[j] - x[i]);
        let intercept = y[i] - slope * x[i];
        for t in 0..n {
            abs_res[t] = (y[t] - (intercept + slope * x[t])).abs();
        }
        let mut sorted = abs_res.clone();
        // Total order: NaN residuals sort last and cannot abort the
        // hypothesis scan.
        sorted.sort_by(f64::total_cmp);
        let med = sorted[n / 2];
        // A NaN median (hypothesis through a NaN observation) would stick
        // as `best` forever — every `<` against NaN is false. Skip it.
        if med.is_nan() {
            continue;
        }
        if best.is_none_or(|(bm, _, _)| med < bm) {
            best = Some((med, intercept, slope));
        }
    }
    let Some((med, intercept, slope)) = best else {
        // Degenerate data (e.g. all x equal): fall back to OLS.
        return simple_ols(x, y).and_then(finite_or_degenerate);
    };
    // Inlier set: within inlier_k robust-scale units of the best line.
    let tol = (cfg.inlier_k * med / 0.6745).max(1e-8);
    let weights: Vec<f64> = x
        .iter()
        .zip(y)
        .map(|(&xi, &yi)| {
            if (yi - (intercept + slope * xi)).abs() <= tol {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    match weighted_ols(x, y, Some(&weights)).and_then(finite_or_degenerate) {
        Ok(fit) => Ok(fit),
        // Inlier set collapsed (all inliers share one x): keep the
        // hypothesis line itself (finite by the NaN-median guard above).
        Err(_) => Ok(LinearFit {
            intercept,
            slope,
            rss: 0.0,
            n: 2,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y = 1 + 2x with `n_out` gross outliers appended.
    fn line_with_outliers(n: usize, n_out: usize) -> (Vec<f64>, Vec<f64>) {
        let mut x: Vec<f64> = (0..n).map(|i| i as f64 / 4.0).collect();
        let mut y: Vec<f64> = x
            .iter()
            .map(|&v| 1.0 + 2.0 * v + 0.01 * (v * 7.0).sin())
            .collect();
        for k in 0..n_out {
            x.push(k as f64);
            y.push(100.0 + 10.0 * k as f64);
        }
        (x, y)
    }

    #[test]
    fn huber_resists_outliers() {
        let (x, y) = line_with_outliers(60, 6);
        let ols = simple_ols(&x, &y).unwrap();
        let huber = huber_fit(&x, &y, HuberConfig::default()).unwrap();
        assert!(
            (huber.slope - 2.0).abs() < 0.2,
            "huber slope {}",
            huber.slope
        );
        assert!(
            (huber.slope - 2.0).abs() < (ols.slope - 2.0).abs(),
            "huber ({}) no better than ols ({})",
            huber.slope,
            ols.slope
        );
    }

    #[test]
    fn huber_equals_ols_on_clean_data() {
        let x: Vec<f64> = (0..40).map(|i| i as f64 / 3.0).collect();
        let y: Vec<f64> = x.iter().map(|&v| -0.5 + 1.5 * v).collect();
        let ols = simple_ols(&x, &y).unwrap();
        let huber = huber_fit(&x, &y, HuberConfig::default()).unwrap();
        assert!((huber.slope - ols.slope).abs() < 1e-6);
        assert!((huber.intercept - ols.intercept).abs() < 1e-6);
    }

    #[test]
    fn ransac_recovers_line_under_heavy_contamination() {
        let (x, y) = line_with_outliers(50, 15); // 23% outliers
        let fit = ransac_fit(
            &x,
            &y,
            RansacConfig {
                trials: 400,
                inlier_k: 3.0,
                seed: 5,
            },
        )
        .unwrap();
        assert!((fit.slope - 2.0).abs() < 0.15, "slope {}", fit.slope);
        assert!(
            (fit.intercept - 1.0).abs() < 0.3,
            "intercept {}",
            fit.intercept
        );
    }

    #[test]
    fn ransac_deterministic_per_seed() {
        let (x, y) = line_with_outliers(30, 5);
        let cfg = RansacConfig {
            trials: 100,
            inlier_k: 2.0,
            seed: 9,
        };
        let a = ransac_fit(&x, &y, cfg).unwrap();
        let b = ransac_fit(&x, &y, cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn ransac_too_few_points() {
        assert_eq!(
            ransac_fit(&[1.0], &[1.0], RansacConfig::default()),
            Err(Ols2Error::TooFewPoints)
        );
    }

    #[test]
    fn mad_scale_of_known_residuals() {
        let r = [-1.0, 0.0, 1.0, 2.0, -2.0];
        // |r| sorted: 0,1,1,2,2 → median 1 → scale 1/0.6745
        assert!((mad_scale(&r) - 1.0 / 0.6745).abs() < 1e-12);
        // Exact fit floor:
        assert!(mad_scale(&[0.0, 0.0]) >= 1e-8);
    }

    #[test]
    fn mad_scale_survives_nan_residuals() {
        // Regression: the old partial_cmp comparator panicked on the
        // first NaN. Under the total order NaNs sort last, so a NaN
        // minority leaves the median (and the IRLS loop) finite.
        let r = [1.0, -2.0, f64::NAN, 0.5, 1.5];
        let s = mad_scale(&r);
        assert!(s.is_finite(), "scale = {s}");
        // |r| sorted: 0.5, 1, 1.5, 2, NaN → median 1.5.
        assert!((s - 1.5 / 0.6745).abs() < 1e-12, "scale = {s}");
        // All-NaN input degrades to the floor (f64::max ignores the NaN
        // median) without panicking.
        assert_eq!(mad_scale(&[f64::NAN, f64::NAN]), 1e-8);
    }

    #[test]
    fn huber_rejects_nan_observations() {
        // Regression: a NaN observation used to flow through the normal
        // equations into an Ok fit with NaN parameters (solve2 cannot
        // detect a NaN design). It must surface as Degenerate instead.
        let (mut x, mut y) = line_with_outliers(30, 3);
        y[5] = f64::NAN;
        assert_eq!(
            huber_fit(&x, &y, HuberConfig::default()),
            Err(Ols2Error::Degenerate)
        );
        x[2] = f64::NAN;
        y[5] = 2.0;
        assert_eq!(
            huber_fit(&x, &y, HuberConfig::default()),
            Err(Ols2Error::Degenerate)
        );
    }

    #[test]
    fn ransac_survives_nan_coordinates() {
        // A NaN observation must not abort the hypothesis scan.
        let (mut x, mut y) = line_with_outliers(30, 3);
        x.push(2.0);
        y.push(f64::NAN);
        let fit = ransac_fit(
            &x,
            &y,
            RansacConfig {
                trials: 200,
                inlier_k: 3.0,
                seed: 11,
            },
        )
        .unwrap();
        assert!(fit.slope.is_finite());
        assert!((fit.slope - 2.0).abs() < 0.3, "slope {}", fit.slope);
    }
}
