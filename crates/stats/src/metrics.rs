//! Binary classification metrics for the transfer-attack evaluation
//! (Tables III–IV report AUC and F1 of GAL / ReFeX under attack).

/// Confusion-matrix counts at a fixed decision threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

/// Builds the confusion matrix for scores thresholded at `threshold`
/// (score ≥ threshold ⇒ predicted positive).
///
/// # Panics
/// Panics on length mismatch.
pub fn confusion(scores: &[f64], labels: &[bool], threshold: f64) -> Confusion {
    assert_eq!(scores.len(), labels.len(), "length mismatch");
    let mut c = Confusion {
        tp: 0,
        fp: 0,
        tn: 0,
        fn_: 0,
    };
    for (&s, &y) in scores.iter().zip(labels) {
        match (s >= threshold, y) {
            (true, true) => c.tp += 1,
            (true, false) => c.fp += 1,
            (false, false) => c.tn += 1,
            (false, true) => c.fn_ += 1,
        }
    }
    c
}

/// `(precision, recall)` at the given threshold; each is 0 when its
/// denominator is 0.
pub fn precision_recall(scores: &[f64], labels: &[bool], threshold: f64) -> (f64, f64) {
    let c = confusion(scores, labels, threshold);
    let precision = if c.tp + c.fp > 0 {
        c.tp as f64 / (c.tp + c.fp) as f64
    } else {
        0.0
    };
    let recall = if c.tp + c.fn_ > 0 {
        c.tp as f64 / (c.tp + c.fn_) as f64
    } else {
        0.0
    };
    (precision, recall)
}

/// F1 score at the given threshold (0 when precision + recall = 0).
pub fn f1_score(scores: &[f64], labels: &[bool], threshold: f64) -> f64 {
    let (p, r) = precision_recall(scores, labels, threshold);
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

/// Area under the ROC curve via the rank-sum (Mann–Whitney) formulation,
/// with midrank handling of ties. Returns 0.5 when either class is empty
/// (no ranking information).
pub fn auc_roc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "length mismatch");
    let n_pos = labels.iter().filter(|&&y| y).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Sort indices by score; assign midranks to tied groups.
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut ranks = vec![0.0; scores.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = midrank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = ranks
        .iter()
        .zip(labels)
        .filter(|(_, &y)| y)
        .map(|(&r, _)| r)
        .sum();
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier_auc_one() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        assert_eq!(auc_roc(&scores, &labels), 1.0);
    }

    #[test]
    fn inverted_classifier_auc_zero() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [true, true, false, false];
        assert_eq!(auc_roc(&scores, &labels), 0.0);
    }

    #[test]
    fn random_ties_auc_half() {
        let scores = [0.5; 10];
        let labels = [
            true, false, true, false, true, false, true, false, true, false,
        ];
        assert_eq!(auc_roc(&scores, &labels), 0.5);
    }

    #[test]
    fn auc_known_partial_value() {
        // One inversion among 2x2: AUC = 3/4.
        let scores = [0.9, 0.4, 0.6, 0.1];
        let labels = [true, true, false, false];
        assert_eq!(auc_roc(&scores, &labels), 0.75);
    }

    #[test]
    fn degenerate_single_class() {
        assert_eq!(auc_roc(&[0.1, 0.9], &[true, true]), 0.5);
    }

    #[test]
    fn confusion_counts() {
        let scores = [0.9, 0.6, 0.4, 0.2];
        let labels = [true, false, true, false];
        let c = confusion(&scores, &labels, 0.5);
        assert_eq!(
            c,
            Confusion {
                tp: 1,
                fp: 1,
                tn: 1,
                fn_: 1
            }
        );
    }

    #[test]
    fn f1_and_pr_known() {
        let scores = [1.0, 1.0, 1.0, 0.0];
        let labels = [true, true, false, true];
        let (p, r) = precision_recall(&scores, &labels, 0.5);
        assert!((p - 2.0 / 3.0).abs() < 1e-12);
        assert!((r - 2.0 / 3.0).abs() < 1e-12);
        assert!((f1_score(&scores, &labels, 0.5) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn f1_degenerate_zero() {
        let scores = [0.0, 0.0];
        let labels = [true, true];
        assert_eq!(f1_score(&scores, &labels, 0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatch_panics() {
        auc_roc(&[0.1], &[true, false]);
    }

    #[test]
    fn auc_with_nan_scores_does_not_panic() {
        // Regression for the float-order sweep: detector scores can go
        // NaN on degenerate refits, and used to panic the rank sort.
        // total_cmp ranks NaN above every finite score.
        let scores = [0.1, f64::NAN, 0.9, 0.3];
        let labels = [false, true, true, false];
        let auc = auc_roc(&scores, &labels);
        assert!((0.0..=1.0).contains(&auc));
    }
}
