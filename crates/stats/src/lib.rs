//! # ba-stats
//!
//! Statistics substrate for the BinarizedAttack evaluation:
//!
//! * descriptive statistics and percentiles (Fig. 6 target grouping),
//! * the Monte-Carlo permutation test of paper Eq. (11) (Table II),
//! * Gaussian kernel density estimation (Fig. 7 densities),
//! * classification metrics — ROC AUC, F1, precision/recall — used by the
//!   transfer-attack evaluation (Tables III–IV).

pub mod descriptive;
pub mod kde;
pub mod ks;
pub mod metrics;
pub mod permutation;

pub use descriptive::{histogram, mean, percentile, std_dev, variance, Histogram};
pub use kde::Kde;
pub use ks::{ks_test, KsResult};
pub use metrics::{auc_roc, confusion, f1_score, precision_recall, Confusion};
pub use permutation::{permutation_test_pvalue, PermutationTest};
