//! Descriptive statistics and histograms.

/// Arithmetic mean. Returns 0 for an empty slice (callers in this
/// workspace always pass non-empty data; the choice avoids NaN poisoning
/// in report tables).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample variance (n−1 denominator). Returns 0 for fewer than 2 points.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Percentile in `[0, 100]` using linear interpolation between order
/// statistics (the common "linear" / type-7 definition).
///
/// # Panics
/// Panics on empty input or `q` outside `[0, 100]`.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty data");
    assert!((0.0..=100.0).contains(&q), "q must be in [0, 100]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A fixed-width histogram over `[min, max]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Left edge of the first bin.
    pub min: f64,
    /// Right edge of the last bin.
    pub max: f64,
    /// Bin counts.
    pub counts: Vec<usize>,
}

impl Histogram {
    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        (self.max - self.min) / self.counts.len() as f64
    }

    /// Centre of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.min + (i as f64 + 0.5) * self.bin_width()
    }

    /// Total number of counted observations.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Normalised density value of bin `i` (integrates to ~1).
    pub fn density(&self, i: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.counts[i] as f64 / (total as f64 * self.bin_width())
    }
}

/// Builds a histogram with `bins` equal-width bins spanning the data
/// range (values exactly at `max` land in the last bin).
///
/// # Panics
/// Panics when `bins == 0` or the input is empty.
pub fn histogram(xs: &[f64], bins: usize) -> Histogram {
    assert!(bins > 0, "need at least one bin");
    assert!(!xs.is_empty(), "histogram of empty data");
    let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-12);
    let mut counts = vec![0usize; bins];
    for &x in xs {
        let idx = (((x - min) / span) * bins as f64) as usize;
        counts[idx.min(bins - 1)] += 1;
    }
    Histogram {
        min,
        max: min + span,
        counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_degenerate() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn percentile_endpoints_and_median() {
        let xs = [3.0, 1.0, 2.0, 5.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(percentile(&xs, 25.0), 2.5);
        assert_eq!(percentile(&xs, 90.0), 9.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn histogram_counts_everything() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = histogram(&xs, 10);
        assert_eq!(h.total(), 100);
        for &c in &h.counts {
            assert_eq!(c, 10);
        }
        // Density integrates to 1.
        let integral: f64 = (0..10).map(|i| h.density(i) * h.bin_width()).sum();
        assert!((integral - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_max_value_in_last_bin() {
        let h = histogram(&[0.0, 1.0, 2.0], 2);
        assert_eq!(h.counts, vec![1, 2]);
    }

    #[test]
    fn histogram_constant_data() {
        let h = histogram(&[5.0; 8], 4);
        assert_eq!(h.total(), 8);
    }

    #[test]
    fn percentile_with_nan_does_not_panic() {
        // Regression for the float-order sweep: NaN input used to
        // panic the sort; total_cmp places NaN above +inf, so low
        // percentiles of mostly-finite data stay finite.
        let xs = [3.0, f64::NAN, 1.0, 2.0];
        let p0 = percentile(&xs, 0.0);
        assert_eq!(p0, 1.0);
        assert!(percentile(&xs, 100.0).is_nan());
    }
}
