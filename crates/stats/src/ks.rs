//! Two-sample Kolmogorov–Smirnov test — a second unnoticeability probe
//! alongside the paper's permutation test (Table II). The permutation
//! test only sees mean shifts; KS is sensitive to any distributional
//! change, so it is the *stricter* notion of "the defender could notice".

/// Result of a two-sample KS test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// The KS statistic `D = sup |F1 - F2|`.
    pub statistic: f64,
    /// Asymptotic p-value (Kolmogorov distribution approximation).
    pub p_value: f64,
}

/// Two-sample KS test with the asymptotic p-value
/// `Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}`, `λ = (√n_e + 0.12 + 0.11/√n_e)·D`
/// (Numerical-Recipes form), `n_e = n1 n2 / (n1 + n2)`.
///
/// # Panics
/// Panics when either sample is empty.
pub fn ks_test(x: &[f64], y: &[f64]) -> KsResult {
    assert!(!x.is_empty() && !y.is_empty(), "empty sample");
    let mut xs = x.to_vec();
    let mut ys = y.to_vec();
    xs.sort_by(f64::total_cmp);
    ys.sort_by(f64::total_cmp);
    let (n1, n2) = (xs.len(), ys.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut d = 0.0f64;
    while i < n1 && j < n2 {
        let x1 = xs[i];
        let x2 = ys[j];
        if x1 <= x2 {
            i += 1;
        }
        if x2 <= x1 {
            j += 1;
        }
        let f1 = i as f64 / n1 as f64;
        let f2 = j as f64 / n2 as f64;
        d = d.max((f1 - f2).abs());
    }
    let ne = (n1 as f64 * n2 as f64) / (n1 + n2) as f64;
    let sqrt_ne = ne.sqrt();
    let lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
    KsResult {
        statistic: d,
        p_value: kolmogorov_q(lambda),
    }
}

/// The Kolmogorov survival function `Q(λ)`.
fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn identical_samples_statistic_zero() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let r = ks_test(&x, &x);
        assert_eq!(r.statistic, 0.0);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn disjoint_samples_statistic_one() {
        let x = [1.0, 2.0, 3.0];
        let y = [10.0, 11.0, 12.0];
        let r = ks_test(&x, &y);
        assert!((r.statistic - 1.0).abs() < 1e-12);
        assert!(r.p_value < 0.1);
    }

    #[test]
    fn same_distribution_high_pvalue() {
        let mut rng = StdRng::seed_from_u64(1);
        let x: Vec<f64> = (0..500).map(|_| rng.gen_range(0.0..1.0)).collect();
        let y: Vec<f64> = (0..500).map(|_| rng.gen_range(0.0..1.0)).collect();
        let r = ks_test(&x, &y);
        assert!(r.p_value > 0.01, "p = {} too small", r.p_value);
    }

    #[test]
    fn shifted_distribution_low_pvalue() {
        let mut rng = StdRng::seed_from_u64(2);
        let x: Vec<f64> = (0..500).map(|_| rng.gen_range(0.0..1.0)).collect();
        let y: Vec<f64> = (0..500).map(|_| rng.gen_range(0.25..1.25)).collect();
        let r = ks_test(&x, &y);
        assert!(r.p_value < 1e-6, "p = {} too large", r.p_value);
    }

    #[test]
    fn detects_variance_change_that_mean_test_misses() {
        // Same mean, different spread: KS catches it.
        let mut rng = StdRng::seed_from_u64(3);
        let x: Vec<f64> = (0..800).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y: Vec<f64> = (0..800).map(|_| rng.gen_range(-3.0..3.0)).collect();
        let ks = ks_test(&x, &y);
        assert!(
            ks.p_value < 1e-6,
            "KS missed variance change: p = {}",
            ks.p_value
        );
        // ... while the mean-based permutation test does not.
        let perm = crate::PermutationTest {
            resamples: 2000,
            seed: 4,
        }
        .pvalue(&x, &y);
        assert!(
            perm > 0.05,
            "permutation test unexpectedly detected it: p = {perm}"
        );
    }

    #[test]
    fn kolmogorov_q_monotone() {
        assert_eq!(kolmogorov_q(0.0), 1.0);
        assert!(kolmogorov_q(0.5) > kolmogorov_q(1.0));
        assert!(kolmogorov_q(1.0) > kolmogorov_q(2.0));
        assert!(kolmogorov_q(5.0) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        ks_test(&[], &[1.0]);
    }

    #[test]
    fn nan_scores_do_not_panic() {
        // Regression for the float-order sweep: a NaN anywhere in a
        // sample used to panic the partial_cmp sort comparator; with
        // total_cmp it sorts to a deterministic end and the statistic
        // stays finite in [0, 1].
        let r = ks_test(&[0.1, f64::NAN, 0.7], &[0.2, 0.4]);
        assert!(r.statistic.is_finite());
        assert!((0.0..=1.0).contains(&r.statistic));
    }
}
