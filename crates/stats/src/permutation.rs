//! Monte-Carlo permutation test (paper Sec. VIII-B3, Eq. (11)).
//!
//! The paper tests whether the clean and poisoned feature samples
//! (`N_clean` vs `N_poisoned`, `E_clean` vs `E_poisoned`) follow the same
//! distribution. The statistic is the absolute difference of group means
//! `t = |x̄ − ȳ|`; the null distribution is approximated by `M` random
//! relabellings of the concatenated sample, and the p-value is
//! `p = (1/M) Σ_j 1[t_j ≥ t_0]`.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Configuration for a Monte-Carlo permutation test.
#[derive(Debug, Clone, Copy)]
pub struct PermutationTest {
    /// Number of Monte-Carlo resamples `M` (the paper uses 100 000).
    pub resamples: usize,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for PermutationTest {
    fn default() -> Self {
        Self {
            resamples: 100_000,
            seed: 0x0ddba11,
        }
    }
}

impl PermutationTest {
    /// Runs the test, returning the approximate p-value of the observed
    /// mean difference under the exchangeability null.
    ///
    /// # Panics
    /// Panics when either sample is empty.
    pub fn pvalue(&self, x: &[f64], y: &[f64]) -> f64 {
        assert!(!x.is_empty() && !y.is_empty(), "empty sample");
        let t0 = (crate::mean(x) - crate::mean(y)).abs();
        let mut pool: Vec<f64> = x.iter().chain(y.iter()).copied().collect();
        let nx = x.len();
        let ny = y.len();
        let total: f64 = pool.iter().sum();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut hits = 0usize;
        for _ in 0..self.resamples {
            // Partial Fisher–Yates: only nx positions need to be a uniform
            // sample of the pool. Use the returned sample slice rather
            // than a fixed index range — upstream rand and the vendored
            // stub place the sample at opposite ends of the slice.
            let (sample, _) = pool.partial_shuffle(&mut rng, nx);
            let sum_x: f64 = sample.iter().sum();
            let mean_x = sum_x / nx as f64;
            let mean_y = (total - sum_x) / ny as f64;
            if (mean_x - mean_y).abs() >= t0 {
                hits += 1;
            }
        }
        hits as f64 / self.resamples as f64
    }
}

/// Convenience wrapper with the paper's default `M = 100 000`.
pub fn permutation_test_pvalue(x: &[f64], y: &[f64], seed: u64) -> f64 {
    PermutationTest {
        resamples: 100_000,
        seed,
    }
    .pvalue(x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn identical_distributions_high_pvalue() {
        let mut rng = StdRng::seed_from_u64(1);
        let x: Vec<f64> = (0..300).map(|_| rng.gen_range(0.0..1.0)).collect();
        let y: Vec<f64> = (0..300).map(|_| rng.gen_range(0.0..1.0)).collect();
        let p = PermutationTest {
            resamples: 5_000,
            seed: 2,
        }
        .pvalue(&x, &y);
        assert!(p > 0.01, "p = {p} too small for same-distribution samples");
    }

    #[test]
    fn shifted_distributions_low_pvalue() {
        let mut rng = StdRng::seed_from_u64(3);
        let x: Vec<f64> = (0..300).map(|_| rng.gen_range(0.0..1.0)).collect();
        let y: Vec<f64> = (0..300).map(|_| rng.gen_range(0.5..1.5)).collect();
        let p = PermutationTest {
            resamples: 5_000,
            seed: 4,
        }
        .pvalue(&x, &y);
        assert!(p < 0.01, "p = {p} too large for clearly shifted samples");
    }

    #[test]
    fn pvalue_in_unit_interval_and_deterministic() {
        let x = [1.0, 2.0, 3.0];
        let y = [2.0, 3.0, 4.0];
        let t = PermutationTest {
            resamples: 2_000,
            seed: 9,
        };
        let p1 = t.pvalue(&x, &y);
        let p2 = t.pvalue(&x, &y);
        assert_eq!(p1, p2);
        assert!((0.0..=1.0).contains(&p1));
    }

    #[test]
    fn tiny_shift_detected_with_enough_data() {
        // Mean shift of 0.5 sigma with n=1000 should reject at 1%.
        let mut rng = StdRng::seed_from_u64(5);
        let x: Vec<f64> = (0..1000).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y: Vec<f64> = (0..1000).map(|_| rng.gen_range(-1.0..1.0) + 0.3).collect();
        let p = PermutationTest {
            resamples: 3_000,
            seed: 6,
        }
        .pvalue(&x, &y);
        assert!(p < 0.01);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        PermutationTest::default().pvalue(&[], &[1.0]);
    }

    #[test]
    fn unbalanced_group_sizes() {
        let x = vec![1.0; 10];
        let mut y = vec![1.0; 500];
        y[0] = 1.0;
        let p = PermutationTest {
            resamples: 1_000,
            seed: 7,
        }
        .pvalue(&x, &y);
        // Identical constant data: every permuted statistic equals t0 = 0.
        assert_eq!(p, 1.0);
    }
}
