//! Gaussian kernel density estimation, used to reproduce the probability
//! density plots of Fig. 7 (distributions of egonet features N and E
//! before and after poisoning).

/// A Gaussian KDE over a fixed sample.
#[derive(Debug, Clone)]
pub struct Kde {
    sample: Vec<f64>,
    bandwidth: f64,
}

impl Kde {
    /// Builds a KDE with Scott's rule bandwidth `h = σ̂ n^{-1/5}`
    /// (falling back to 1.0 when the sample is constant).
    ///
    /// # Panics
    /// Panics on an empty sample.
    pub fn new(sample: &[f64]) -> Self {
        assert!(!sample.is_empty(), "KDE of empty sample");
        let sd = crate::std_dev(sample);
        let h = if sd > 0.0 {
            sd * (sample.len() as f64).powf(-0.2)
        } else {
            1.0
        };
        Self {
            sample: sample.to_vec(),
            bandwidth: h,
        }
    }

    /// Builds a KDE with an explicit bandwidth.
    ///
    /// # Panics
    /// Panics on an empty sample or non-positive bandwidth.
    pub fn with_bandwidth(sample: &[f64], bandwidth: f64) -> Self {
        assert!(!sample.is_empty(), "KDE of empty sample");
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        Self {
            sample: sample.to_vec(),
            bandwidth,
        }
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Density estimate at `x`.
    pub fn density(&self, x: f64) -> f64 {
        const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
        let h = self.bandwidth;
        let n = self.sample.len() as f64;
        self.sample
            .iter()
            .map(|&xi| {
                let z = (x - xi) / h;
                INV_SQRT_2PI * (-0.5 * z * z).exp()
            })
            .sum::<f64>()
            / (n * h)
    }

    /// Evaluates the density on an evenly spaced grid of `points` values
    /// spanning `[lo, hi]`. Returns `(grid, densities)`.
    pub fn grid(&self, lo: f64, hi: f64, points: usize) -> (Vec<f64>, Vec<f64>) {
        assert!(points >= 2, "need at least two grid points");
        let step = (hi - lo) / (points - 1) as f64;
        let xs: Vec<f64> = (0..points).map(|i| lo + step * i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| self.density(x)).collect();
        (xs, ys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_integrates_to_one() {
        let sample = [0.0, 1.0, 2.0, 3.0, 4.0];
        let kde = Kde::new(&sample);
        let (xs, ys) = kde.grid(-10.0, 14.0, 2000);
        let step = xs[1] - xs[0];
        let integral: f64 = ys.iter().sum::<f64>() * step;
        assert!((integral - 1.0).abs() < 0.01, "integral = {integral}");
    }

    #[test]
    fn density_peaks_at_data_mass() {
        let sample = [0.0; 20];
        let kde = Kde::with_bandwidth(&sample, 0.5);
        assert!(kde.density(0.0) > kde.density(2.0));
        assert!(kde.density(0.0) > kde.density(-2.0));
    }

    #[test]
    fn symmetric_sample_gives_symmetric_density() {
        let sample = [-1.0, 1.0];
        let kde = Kde::with_bandwidth(&sample, 0.7);
        assert!((kde.density(0.5) - kde.density(-0.5)).abs() < 1e-12);
    }

    #[test]
    fn scott_bandwidth_positive() {
        let sample: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let kde = Kde::new(&sample);
        assert!(kde.bandwidth() > 0.0);
    }

    #[test]
    fn constant_sample_fallback_bandwidth() {
        let kde = Kde::new(&[3.0, 3.0, 3.0]);
        assert_eq!(kde.bandwidth(), 1.0);
        assert!(kde.density(3.0) > 0.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        Kde::new(&[]);
    }
}
