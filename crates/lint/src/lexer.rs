//! A hand-rolled Rust lexer, just deep enough for invariant linting.
//!
//! The build environment has no `syn`, so `ba-lint` tokenizes source
//! itself. The rules only need four things a regex can't deliver
//! reliably: (1) string/char literals must not produce identifier
//! matches (`"call .unwrap() here"` in a log message is not a panic
//! path), (2) comments must be kept — with their line numbers — so
//! suppression pragmas can be found, (3) raw strings and nested block
//! comments must be skipped correctly, and (4) lifetimes must not be
//! confused with char literals. Everything else (numbers, punctuation)
//! is lexed loosely: the rules match identifier/punct sequences and
//! never need exact literal values.

/// What a token is. Identifier text and comment text are retained;
/// literal contents are deliberately dropped (no rule looks inside).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `as`, `HashMap`, ...).
    Ident(String),
    /// A single punctuation character (`::` arrives as two `:`).
    Punct(char),
    /// String / raw-string / byte-string / char / number literal.
    Lit,
    /// Line or block comment; text excludes the delimiters.
    Comment(String),
    /// A lifetime such as `'a` (distinct from a char literal).
    Lifetime,
}

/// One token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub line: u32,
}

/// Tokenizes `src`. Never fails: unterminated literals or comments
/// simply end at EOF — good enough for linting, and it means a
/// syntactically broken file degrades to fewer matches rather than a
/// crashed lint run.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        toks: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    toks: Vec<Tok>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, line: u32) {
        self.toks.push(Tok { kind, line });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => {
                    self.bump();
                    self.string_body(line);
                }
                '\'' => self.quote(line),
                'r' | 'b' if self.raw_or_byte_literal(line) => {}
                c if c.is_ascii_digit() => self.number(line),
                c if c.is_alphabetic() || c == '_' => self.ident(line),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct(c), line);
                }
            }
        }
        self.toks
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::Comment(text), line);
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                    text.push_str("/*");
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                    if depth > 0 {
                        text.push_str("*/");
                    }
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.push(TokKind::Comment(text), line);
    }

    /// Body of a non-raw string, after the opening `"` was consumed.
    fn string_body(&mut self, line: u32) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Lit, line);
    }

    /// `'a` lifetime vs `'x'` / `'\n'` char literal.
    fn quote(&mut self, line: u32) {
        let first = self.peek(1);
        let second = self.peek(2);
        let is_lifetime =
            matches!(first, Some(c) if c.is_alphabetic() || c == '_') && second != Some('\'');
        self.bump(); // the quote
        if is_lifetime {
            while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
                self.bump();
            }
            self.push(TokKind::Lifetime, line);
            return;
        }
        // Char literal: consume through the closing quote, honouring
        // escapes (`'\''`, `'\\'`).
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push(TokKind::Lit, line);
    }

    /// Attempts `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'` at the
    /// current position. Returns false (consuming nothing) when the
    /// `r`/`b` starts an ordinary identifier.
    fn raw_or_byte_literal(&mut self, line: u32) -> bool {
        let mut ahead = 1;
        if self.peek(0) == Some('b') && self.peek(1) == Some('r') {
            ahead = 2;
        }
        // b'x'
        if self.peek(0) == Some('b') && self.peek(1) == Some('\'') {
            self.bump();
            self.quote(line);
            return true;
        }
        let mut hashes = 0usize;
        while self.peek(ahead) == Some('#') {
            ahead += 1;
            hashes += 1;
        }
        if self.peek(ahead) != Some('"') {
            return false;
        }
        let raw = ahead >= 2 || self.peek(0) == Some('r') || hashes > 0;
        // Consume prefix + opening quote.
        for _ in 0..=ahead {
            self.bump();
        }
        if raw {
            // Raw string: ends at `"` followed by `hashes` hash marks;
            // no escapes.
            'outer: while let Some(c) = self.bump() {
                if c == '"' {
                    for k in 0..hashes {
                        if self.peek(k) != Some('#') {
                            continue 'outer;
                        }
                    }
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
            self.push(TokKind::Lit, line);
        } else {
            self.string_body(line);
        }
        true
    }

    fn number(&mut self, line: u32) {
        // Loose: digits, letters (hex/suffixes/exponents), `_`, and a
        // `.` only when followed by a digit (so `0..n` stays a range).
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                let prev = self.chars[self.pos];
                self.bump();
                // Exponent sign: 1e-5 / 1E+3.
                if (prev == 'e' || prev == 'E')
                    && matches!(self.peek(0), Some('+') | Some('-'))
                    && matches!(self.peek(1), Some(d) if d.is_ascii_digit())
                {
                    self.bump();
                }
            } else if c == '.' && matches!(self.peek(1), Some(d) if d.is_ascii_digit()) {
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Lit, line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident(text), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn idents_in_strings_are_not_tokens() {
        let src = r##"let msg = "please .unwrap() me"; let r = r#"also .expect("x")"#;"##;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "msg", "let", "r"]);
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let src = "let a = 1;\n// ba-lint: allow(panic-path) -- why\nlet b = 2;";
        let toks = lex(src);
        let c = toks
            .iter()
            .find(|t| matches!(t.kind, TokKind::Comment(_)))
            .expect("comment token");
        assert_eq!(c.line, 2);
        match &c.kind {
            TokKind::Comment(text) => assert!(text.contains("ba-lint: allow")),
            _ => unreachable!(),
        }
    }

    #[test]
    fn nested_block_comments_terminate() {
        let src = "/* outer /* inner */ still outer */ fn x() {}";
        let ids = idents(src);
        assert_eq!(ids, vec!["fn", "x"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'b' }";
        let toks = lex(src);
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let lits = toks.iter().filter(|t| t.kind == TokKind::Lit).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(lits, 1);
    }

    #[test]
    fn escaped_quotes_stay_inside_strings() {
        let src = r#"let s = "he said \"unwrap\""; let t = 1;"#;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "let", "t"]);
    }

    #[test]
    fn numbers_with_ranges_and_exponents() {
        let src = "for i in 0..n { let x = 1.5e-3; let y = 0xff_u32; }";
        let ids = idents(src);
        assert!(ids.contains(&"for".to_string()));
        assert!(ids.contains(&"n".to_string()));
        // The `..` range punctuation survives as two dots.
        let dots = lex(src)
            .iter()
            .filter(|t| t.kind == TokKind::Punct('.'))
            .count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn byte_and_raw_strings_are_literals() {
        let src = r###"let a = b"bytes"; let b = br#"raw bytes"#; let c = b'x';"###;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "a", "let", "b", "let", "c"]);
    }
}
