//! `ba-lint` — the workspace invariant linter.
//!
//! Walks every library source file in the workspace (crate `src/`
//! trees, excluding `src/bin/`, `src/main.rs`, `tests/`, `benches/`,
//! `examples/`, and `#[cfg(test)]` regions) and enforces the project
//! contracts as named rules — see [`rules`] for the catalogue,
//! [`baseline`] for the ratchet, and DESIGN.md §11 for the prose
//! contract. The binary front-end lives in `src/main.rs`; this library
//! exists so the fixture suite under `tests/` can drive the engine
//! directly.

pub mod baseline;
pub mod lexer;
pub mod rules;

use rules::{FileContext, PragmaError, Rule, Violation, ALL_RULES};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Which files each context-sensitive rule applies to. Crate names are
/// package names; path prefixes are workspace-relative with `/`
/// separators.
#[derive(Debug, Clone)]
pub struct LintConfig {
    pub root: PathBuf,
    /// R2 applies to every library file of these crates.
    pub deterministic_crates: Vec<String>,
    /// R2 also applies to files under these path prefixes (for crates
    /// that are only partially deterministic, like `ba-bench`).
    pub deterministic_path_prefixes: Vec<String>,
    /// R4 applies to every library file of these crates.
    pub wire_crates: Vec<String>,
    /// R5 applies to every library file of these crates (public items
    /// must carry doc comments).
    pub docs_required_crates: Vec<String>,
}

impl LintConfig {
    /// Loads the tag sets from `<root>/ba-lint.toml` when present,
    /// falling back to [`LintConfig::for_workspace`]. The file uses
    /// the same TOML subset as the baseline:
    ///
    /// ```toml
    /// schema = 1
    /// [deterministic-crates]
    /// "ba-graph" = true
    /// [deterministic-paths]
    /// "crates/bench/src/runner.rs" = true
    /// [wire-crates]
    /// "ba-net" = true
    /// [docs-required-crates]
    /// "ba-graph" = true
    /// ```
    pub fn load(root: PathBuf) -> Result<LintConfig, LintError> {
        let path = root.join("ba-lint.toml");
        if !path.is_file() {
            return Ok(LintConfig::for_workspace(root));
        }
        let text = std::fs::read_to_string(&path).map_err(|e| LintError::Io(path.clone(), e))?;
        let mut config = LintConfig {
            root,
            deterministic_crates: Vec::new(),
            deterministic_path_prefixes: Vec::new(),
            wire_crates: Vec::new(),
            docs_required_crates: Vec::new(),
        };
        let mut section: Option<&mut Vec<String>> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = match raw.find('#') {
                Some(p) => &raw[..p],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = match name.trim() {
                    "deterministic-crates" => Some(&mut config.deterministic_crates),
                    "deterministic-paths" => Some(&mut config.deterministic_path_prefixes),
                    "wire-crates" => Some(&mut config.wire_crates),
                    "docs-required-crates" => Some(&mut config.docs_required_crates),
                    other => {
                        return Err(LintError::Config(
                            path,
                            (idx + 1) as u32,
                            format!("unknown section `[{other}]`"),
                        ))
                    }
                };
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(LintError::Config(
                    path,
                    (idx + 1) as u32,
                    format!("expected `key = value`, got `{line}`"),
                ));
            };
            let (key, value) = (key.trim().trim_matches('"'), value.trim());
            match &mut section {
                None if key == "schema" && value == "1" => {}
                None => {
                    return Err(LintError::Config(
                        path,
                        (idx + 1) as u32,
                        format!("unexpected top-level entry `{key} = {value}`"),
                    ))
                }
                Some(list) => {
                    if value != "true" {
                        return Err(LintError::Config(
                            path,
                            (idx + 1) as u32,
                            format!("tag values must be `true`, got `{value}`"),
                        ));
                    }
                    list.push(key.to_string());
                }
            }
        }
        Ok(config)
    }

    /// The built-in tag sets for *this* workspace, used when no
    /// `ba-lint.toml` overrides them. Adding a crate to a contract
    /// means adding it here (and documenting it in DESIGN.md §11).
    pub fn for_workspace(root: PathBuf) -> LintConfig {
        let det = [
            "ba-graph",
            "ba-linalg",
            "ba-oddball",
            "ba-core",
            "ba-stream",
        ];
        let det_paths = [
            "crates/bench/src/runner.rs",
            "crates/bench/src/artifact.rs",
            "crates/bench/src/graphstore.rs",
            "crates/bench/src/experiments/",
            "crates/bench/src/distrib/",
        ];
        LintConfig {
            root,
            deterministic_crates: det.iter().map(|s| s.to_string()).collect(),
            deterministic_path_prefixes: det_paths.iter().map(|s| s.to_string()).collect(),
            wire_crates: vec!["ba-net".to_string()],
            docs_required_crates: vec!["ba-graph".to_string()],
        }
    }
}

/// Everything one lint run produced. Suppressed violations are kept
/// (with their justification) so reports can show them; only
/// unsuppressed ones count against the baseline.
#[derive(Debug, Default)]
pub struct LintReport {
    pub violations: Vec<Violation>,
    pub pragma_errors: Vec<PragmaError>,
    pub files_scanned: usize,
}

impl LintReport {
    /// Unsuppressed violations, in file order.
    pub fn active(&self) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(|v| v.suppressed.is_none())
    }

    pub fn suppressed_count(&self) -> usize {
        self.violations.len() - self.active().count()
    }

    /// Unsuppressed counts per `(rule, crate)` — the ratchet's input.
    pub fn counts(&self) -> BTreeMap<(Rule, String), usize> {
        let mut map = BTreeMap::new();
        for v in self.active() {
            *map.entry((v.rule, v.crate_name.clone())).or_insert(0) += 1;
        }
        map
    }

    /// Renders the `BenchReport`-schema JSON summary (schema 1, bench
    /// `"lint"`), so CI can upload the violation-count trajectory next
    /// to the `BENCH_*.json` perf artifacts. Kept format-compatible by
    /// `tests/fixtures.rs::json_matches_bench_report_schema`.
    pub fn to_bench_json(&self) -> String {
        let mut metrics: Vec<(String, f64)> = Vec::new();
        let counts = self.counts();
        for rule in ALL_RULES {
            let total: usize = counts
                .iter()
                .filter(|((r, _), _)| *r == rule)
                .map(|(_, c)| *c)
                .sum();
            metrics.push((format!("{}_total", metric_name(rule.key())), total as f64));
        }
        for ((rule, krate), count) in &counts {
            metrics.push((
                format!("{}_{}", metric_name(rule.key()), metric_name(krate)),
                *count as f64,
            ));
        }
        metrics.push((
            "suppressed_total".to_string(),
            self.suppressed_count() as f64,
        ));
        metrics.push(("files_scanned".to_string(), self.files_scanned as f64));

        let mut out = String::from("{\"schema\":1,\"bench\":\"lint\",\"commit\":\"");
        out.push_str(&json_escape(&commit()));
        out.push_str("\",\"metrics\":[");
        for (i, (name, value)) in metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"metric\":\"");
            out.push_str(&json_escape(name));
            out.push_str("\",\"value\":");
            out.push_str(&format!("{value}"));
            out.push_str(",\"unit\":\"count\"}");
        }
        out.push_str("]}\n");
        out
    }
}

/// `panic-path` → `panic_path`, `ba-core` → `ba_core`.
fn metric_name(s: &str) -> String {
    s.replace('-', "_")
}

/// Mirrors `ba_bench::report`: the trend axis comes from CI's commit
/// env, else stays a fixed placeholder so output is deterministic.
fn commit() -> String {
    std::env::var("BA_BENCH_COMMIT")
        .or_else(|_| std::env::var("GITHUB_SHA"))
        .unwrap_or_else(|_| "unknown".to_string())
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A failure that stops the lint run itself (bad workspace layout or
/// unreadable file — never a rule violation).
#[derive(Debug)]
pub enum LintError {
    Io(PathBuf, std::io::Error),
    /// The root has no `crates/` directory and no `src/` — probably a
    /// wrong `--root`.
    NotAWorkspace(PathBuf),
    /// `ba-lint.toml` is malformed at the given line.
    Config(PathBuf, u32, String),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io(p, e) => write!(f, "{}: {e}", p.display()),
            LintError::NotAWorkspace(p) => {
                write!(f, "{} does not look like a workspace root", p.display())
            }
            LintError::Config(p, line, msg) => write!(f, "{}:{line}: {msg}", p.display()),
        }
    }
}

impl std::error::Error for LintError {}

/// Lints every library source file under `config.root`.
pub fn lint_workspace(config: &LintConfig) -> Result<LintReport, LintError> {
    let mut report = LintReport::default();
    let crates_dir = config.root.join("crates");
    let root_src = config.root.join("src");
    if !crates_dir.is_dir() && !root_src.is_dir() {
        return Err(LintError::NotAWorkspace(config.root.clone()));
    }

    // (crate name, src dir) pairs, sorted for a deterministic walk.
    let mut units: Vec<(String, PathBuf)> = Vec::new();
    if root_src.is_dir() {
        units.push((package_name(&config.root)?, root_src));
    }
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> = read_dir_sorted(&crates_dir)?;
        entries.retain(|p| p.is_dir());
        for crate_dir in entries {
            let src = crate_dir.join("src");
            if src.is_dir() {
                units.push((package_name(&crate_dir)?, src));
            }
        }
    }

    for (crate_name, src) in units {
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        for path in files {
            let rel_path = rel_display(&config.root, &path);
            let ctx = FileContext {
                crate_name: crate_name.clone(),
                deterministic: config.deterministic_crates.contains(&crate_name)
                    || config
                        .deterministic_path_prefixes
                        .iter()
                        .any(|p| rel_path.starts_with(p.as_str())),
                wire: config.wire_crates.contains(&crate_name),
                docs: config.docs_required_crates.contains(&crate_name),
                rel_path,
            };
            let src_text =
                std::fs::read_to_string(&path).map_err(|e| LintError::Io(path.clone(), e))?;
            let (violations, pragma_errors) = rules::scan_source(&ctx, &src_text);
            report.violations.extend(violations);
            report.pragma_errors.extend(pragma_errors);
            report.files_scanned += 1;
        }
    }
    Ok(report)
}

/// Reads `name = "…"` out of a crate's `Cargo.toml` without a TOML
/// dependency. Falls back to the directory name when absent.
fn package_name(crate_dir: &Path) -> Result<String, LintError> {
    let manifest = crate_dir.join("Cargo.toml");
    let text =
        std::fs::read_to_string(&manifest).map_err(|e| LintError::Io(manifest.clone(), e))?;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(value) = rest.strip_prefix('=') {
                return Ok(value.trim().trim_matches('"').to_string());
            }
        }
    }
    Ok(crate_dir
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unknown".to_string()))
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let rd = std::fs::read_dir(dir).map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
    let mut out = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
        out.push(entry.path());
    }
    out.sort();
    Ok(out)
}

/// Recursively collects `.rs` files, skipping `bin/` directories and
/// `main.rs` roots — binaries may prototype and panic; the contracts
/// bind *library* code.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    for path in read_dir_sorted(dir)? {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs")
            && path.file_name().is_none_or(|n| n != "main.rs")
        {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_display(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
