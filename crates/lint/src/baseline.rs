//! The ratcheted violation baseline: `lint-baseline.toml`.
//!
//! The baseline records, per `(rule, crate)`, how many *unsuppressed*
//! violations the tree is currently allowed to contain. `--check`
//! compares the live counts against it with ratchet semantics:
//!
//! * **regression** — any cell above its baseline fails the check and
//!   prints every site in that cell (per-site identity is not stored,
//!   so the whole cell is shown for triage);
//! * **improvement** — any cell below its baseline rewrites the file
//!   in place with the lower number, so the next regression is judged
//!   against the better state. The run still succeeds; committing the
//!   tightened file is what locks the win in.
//! * a `(rule, crate)` cell absent from the file allows **zero**
//!   violations — new crates start clean by default.
//!
//! The format is a deliberately tiny TOML subset (comments, one
//! `schema = 1` scalar, `[rule]` sections, `crate = count` entries) so
//! the linter stays dependency-free. Serialization is sorted, so the
//! file is byte-stable for a given state of the tree.

use crate::rules::{Rule, ALL_RULES};
use std::collections::BTreeMap;
use std::fmt;

/// Counts per `(rule, crate)`. Absent cell = 0 allowed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Baseline {
    pub counts: BTreeMap<(Rule, String), usize>,
}

/// A syntax or semantic error in the baseline file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineParseError {
    pub line: u32,
    pub message: String,
}

impl fmt::Display for BaselineParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint-baseline.toml:{}: {}", self.line, self.message)
    }
}

impl Baseline {
    /// Parses the TOML subset. Unknown sections, non-numeric counts,
    /// and junk lines are errors — a typo must not silently allow
    /// violations.
    pub fn parse(text: &str) -> Result<Baseline, BaselineParseError> {
        let mut counts = BTreeMap::new();
        let mut section: Option<Rule> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = (idx + 1) as u32;
            let line = match raw.find('#') {
                Some(p) => &raw[..p],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let name = name.trim();
                section = Some(Rule::from_key(name).ok_or_else(|| BaselineParseError {
                    line: lineno,
                    message: format!("unknown rule section `[{name}]`"),
                })?);
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(BaselineParseError {
                    line: lineno,
                    message: format!("expected `key = value`, got `{line}`"),
                });
            };
            let key = key.trim();
            let value = value.trim();
            match section {
                None => {
                    if key != "schema" {
                        return Err(BaselineParseError {
                            line: lineno,
                            message: format!("unexpected top-level key `{key}`"),
                        });
                    }
                    if value != "1" {
                        return Err(BaselineParseError {
                            line: lineno,
                            message: format!("unsupported schema `{value}` (expected 1)"),
                        });
                    }
                }
                Some(rule) => {
                    // Crate names are bare or quoted keys.
                    let krate = key.trim_matches('"').to_string();
                    let count: usize = value.parse().map_err(|_| BaselineParseError {
                        line: lineno,
                        message: format!("count for `{krate}` is not a non-negative integer"),
                    })?;
                    counts.insert((rule, krate), count);
                }
            }
        }
        Ok(Baseline { counts })
    }

    /// Renders the sorted, byte-stable file.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# ba-lint ratcheted violation baseline.\n\
             #\n\
             # Counts are per (rule, crate) and may only go DOWN: `ba-lint --check`\n\
             # fails on any count above its cell here and rewrites this file with\n\
             # the lower number whenever the tree improves. Regenerate from\n\
             # scratch with `cargo run -p ba-lint -- --write-baseline`.\n\
             schema = 1\n",
        );
        for rule in ALL_RULES {
            let cells: Vec<(&String, usize)> = self
                .counts
                .iter()
                .filter(|((r, _), count)| *r == rule && **count > 0)
                .map(|((_, krate), count)| (krate, *count))
                .collect();
            if cells.is_empty() {
                continue;
            }
            out.push_str(&format!("\n[{}]\n", rule.key()));
            for (krate, count) in cells {
                out.push_str(&format!("\"{krate}\" = {count}\n"));
            }
        }
        out
    }

    /// Builds a baseline from live counts.
    pub fn from_counts(counts: BTreeMap<(Rule, String), usize>) -> Baseline {
        Baseline {
            counts: counts.into_iter().filter(|(_, c)| *c > 0).collect(),
        }
    }
}

/// Outcome of ratcheting live counts against a baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RatchetOutcome {
    /// Cells above their allowance: `(rule, crate, live, allowed)`.
    pub regressions: Vec<(Rule, String, usize, usize)>,
    /// Cells below their allowance: `(rule, crate, live, allowed)`.
    pub improvements: Vec<(Rule, String, usize, usize)>,
    /// The baseline with improvements folded in (regressions keep the
    /// old allowance — a failing check never loosens the file).
    pub tightened: Baseline,
}

/// Compares live counts against `baseline` with ratchet semantics.
pub fn ratchet(live: &BTreeMap<(Rule, String), usize>, baseline: &Baseline) -> RatchetOutcome {
    let mut regressions = Vec::new();
    let mut improvements = Vec::new();
    let mut tightened = baseline.clone();
    // Union of cells seen on either side.
    let mut cells: Vec<(Rule, String)> =
        live.keys().chain(baseline.counts.keys()).cloned().collect();
    cells.sort();
    cells.dedup();
    for cell in cells {
        let current = live.get(&cell).copied().unwrap_or(0);
        let allowed = baseline.counts.get(&cell).copied().unwrap_or(0);
        match current.cmp(&allowed) {
            std::cmp::Ordering::Greater => {
                regressions.push((cell.0, cell.1, current, allowed));
            }
            std::cmp::Ordering::Less => {
                improvements.push((cell.0, cell.1.clone(), current, allowed));
                if current == 0 {
                    tightened.counts.remove(&cell);
                } else {
                    tightened.counts.insert(cell, current);
                }
            }
            std::cmp::Ordering::Equal => {}
        }
    }
    RatchetOutcome {
        regressions,
        improvements,
        tightened,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(cells: &[(Rule, &str, usize)]) -> BTreeMap<(Rule, String), usize> {
        cells
            .iter()
            .map(|(r, k, c)| ((*r, k.to_string()), *c))
            .collect()
    }

    #[test]
    fn render_parse_round_trip_is_identity() {
        let b = Baseline::from_counts(counts(&[
            (Rule::PanicPath, "ba-core", 12),
            (Rule::PanicPath, "ba-graph", 3),
            (Rule::Determinism, "ba-stream", 1),
        ]));
        let text = b.render();
        let parsed = Baseline::parse(&text).expect("round trip parses");
        assert_eq!(parsed, b);
        // Byte-stable: rendering the parse reproduces the text.
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn missing_cell_allows_zero() {
        let b = Baseline::from_counts(counts(&[(Rule::PanicPath, "ba-core", 1)]));
        let out = ratchet(&counts(&[(Rule::FloatOrder, "ba-new", 2)]), &b);
        assert_eq!(out.regressions.len(), 1);
        assert_eq!(out.regressions[0].3, 0);
    }

    #[test]
    fn improvements_tighten_and_drop_zeros() {
        let b = Baseline::from_counts(counts(&[
            (Rule::PanicPath, "ba-core", 10),
            (Rule::PanicPath, "ba-graph", 2),
        ]));
        let live = counts(&[
            (Rule::PanicPath, "ba-core", 7),
            (Rule::PanicPath, "ba-graph", 0),
        ]);
        let out = ratchet(&live, &b);
        assert!(out.regressions.is_empty());
        assert_eq!(out.improvements.len(), 2);
        assert_eq!(
            out.tightened,
            Baseline::from_counts(counts(&[(Rule::PanicPath, "ba-core", 7)]))
        );
    }

    #[test]
    fn unknown_section_and_bad_count_are_parse_errors() {
        let err = Baseline::parse("[no-such-rule]\n").expect_err("unknown section");
        assert!(err.message.contains("unknown rule section"));
        let err = Baseline::parse("[panic-path]\n\"ba-core\" = many\n").expect_err("bad count");
        assert!(err.message.contains("not a non-negative integer"));
        let err = Baseline::parse("schema = 2\n").expect_err("bad schema");
        assert!(err.message.contains("unsupported schema"));
        let err = Baseline::parse("junk line\n").expect_err("junk");
        assert!(err.message.contains("expected `key = value`"));
    }

    #[test]
    fn comments_and_quoted_keys_parse() {
        let text = "# header\nschema = 1\n[wire-cast] # trailing\n\"ba-net\" = 4 # why\n";
        let b = Baseline::parse(text).expect("parses");
        assert_eq!(
            b.counts.get(&(Rule::WireCast, "ba-net".to_string())),
            Some(&4)
        );
    }
}
