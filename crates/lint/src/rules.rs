//! The rule catalogue and the token-stream scanners behind it.
//!
//! Five named rules, each enforcing a contract the ROADMAP states in
//! prose and the test suites check after the fact:
//!
//! * **panic-path** (R1) — no `.unwrap()` / `.expect(…)` in non-test,
//!   non-bin library code. Worker cells record `failed,<reason>` rows;
//!   a panic in library code tears down a whole worker instead.
//! * **determinism** (R2) — no `HashMap`/`HashSet`, `SystemTime::now`,
//!   `thread_rng`, or `rand::random` in crates/paths tagged
//!   deterministic. Output must be byte-identical at any
//!   `--threads/--shards/--clients/--peers` count; iteration over a
//!   randomized-order container in a merge path silently breaks that.
//! * **float-order** (R3) — no `partial_cmp` anywhere in library code:
//!   a NaN reaching a `sort_by(partial_cmp…unwrap)` comparator is the
//!   exact panic class PR 4 fixed by hand. Use `f64::total_cmp`.
//! * **wire-cast** (R4) — no truncating `as` casts to narrow integer
//!   types in `ba-net` frame/wire code; use `try_from` so a corrupt
//!   length fails loudly instead of wrapping.
//! * **missing-docs** (R5) — every `pub` item (fn, struct, enum,
//!   trait, mod, type, const, static) in crates that opt in via
//!   `[docs-required-crates]` must carry a doc comment. Unlike
//!   `#![warn(missing_docs)]` this is enforced in CI with the same
//!   ratchet and pragma machinery as the other rules, so a public API
//!   cannot regress to undocumented silently.
//!
//! Every rule is suppressible only by an inline pragma on the same or
//! the preceding line:
//!
//! ```text
//! // ba-lint: allow(<rule>) -- <non-empty justification>
//! ```
//!
//! A pragma with a missing justification or an unknown rule name is a
//! hard error, not a suppression.

use crate::lexer::{lex, Tok, TokKind};
use std::fmt;

/// The rule identifiers. Ordering is the report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// R1: `.unwrap()` / `.expect(` in library code.
    PanicPath,
    /// R2: hash collections / wall clock / ambient RNG in
    /// deterministic crates and paths.
    Determinism,
    /// R3: `partial_cmp` instead of `total_cmp`.
    FloatOrder,
    /// R4: truncating `as` casts in wire code.
    WireCast,
    /// R5: undocumented `pub` items in docs-required crates.
    MissingDocs,
}

pub const ALL_RULES: [Rule; 5] = [
    Rule::PanicPath,
    Rule::Determinism,
    Rule::FloatOrder,
    Rule::WireCast,
    Rule::MissingDocs,
];

impl Rule {
    /// The pragma / baseline-section name.
    pub fn key(self) -> &'static str {
        match self {
            Rule::PanicPath => "panic-path",
            Rule::Determinism => "determinism",
            Rule::FloatOrder => "float-order",
            Rule::WireCast => "wire-cast",
            Rule::MissingDocs => "missing-docs",
        }
    }

    pub fn from_key(key: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.key() == key)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// Where a file sits, which decides which rules apply to it.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Package name of the owning crate (`ba-core`, ...).
    pub crate_name: String,
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// R2 applies (crate or path is tagged deterministic).
    pub deterministic: bool,
    /// R4 applies (frame/wire code).
    pub wire: bool,
    /// R5 applies (crate opted into required public docs).
    pub docs: bool,
}

/// One rule hit at one source line.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: Rule,
    pub crate_name: String,
    pub rel_path: String,
    pub line: u32,
    pub message: String,
    /// `Some(justification)` when an inline pragma suppressed it.
    pub suppressed: Option<String>,
}

/// A malformed suppression pragma — always a hard error.
#[derive(Debug, Clone)]
pub struct PragmaError {
    pub rel_path: String,
    pub line: u32,
    pub message: String,
}

/// Scans one file's source. Returns all hits (suppressed ones carry
/// their justification) plus any pragma errors.
pub fn scan_source(ctx: &FileContext, src: &str) -> (Vec<Violation>, Vec<PragmaError>) {
    let toks = lex(src);
    let (pragmas, pragma_errors) = collect_pragmas(ctx, &toks);

    // Rule matching works on the comment-free stream; test-region
    // detection and adjacency must not be broken by interleaved
    // comments.
    let code: Vec<&Tok> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::Comment(_)))
        .collect();
    let in_test = test_regions(&code);

    let mut raw_hits: Vec<(Rule, u32, String)> = Vec::new();
    for (i, &in_test) in in_test.iter().enumerate() {
        if in_test {
            continue;
        }
        r1_panic_path(&code, i, &mut raw_hits);
        if ctx.deterministic {
            r2_determinism(&code, i, &mut raw_hits);
        }
        r3_float_order(&code, i, &mut raw_hits);
        if ctx.wire {
            r4_wire_cast(&code, i, &mut raw_hits);
        }
    }

    // R5 needs the comments (doc adjacency), so it walks the full
    // stream, masked by the test-region *lines* computed above.
    if ctx.docs {
        let test_lines: std::collections::BTreeSet<u32> = code
            .iter()
            .zip(&in_test)
            .filter(|&(_, &t)| t)
            .map(|(tok, _)| tok.line)
            .collect();
        let all: Vec<&Tok> = toks.iter().collect();
        r5_missing_docs(&all, &test_lines, &mut raw_hits);
    }

    let violations = raw_hits
        .into_iter()
        .map(|(rule, line, message)| {
            let suppressed = pragmas
                .iter()
                .find(|p| p.rule == rule && (p.line == line || p.line + 1 == line))
                .map(|p| p.justification.clone());
            Violation {
                rule,
                crate_name: ctx.crate_name.clone(),
                rel_path: ctx.rel_path.clone(),
                line,
                message,
                suppressed,
            }
        })
        .collect();
    (violations, pragma_errors)
}

fn ident<'a>(code: &'a [&Tok], i: usize) -> Option<&'a str> {
    match code.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct(code: &[&Tok], i: usize, c: char) -> bool {
    matches!(code.get(i).map(|t| &t.kind), Some(TokKind::Punct(p)) if *p == c)
}

/// R1: `.unwrap()` / `.expect(`.
fn r1_panic_path(code: &[&Tok], i: usize, out: &mut Vec<(Rule, u32, String)>) {
    if !punct(code, i, '.') {
        return;
    }
    let Some(name) = ident(code, i + 1) else {
        return;
    };
    if (name == "unwrap" || name == "expect") && punct(code, i + 2, '(') {
        out.push((
            Rule::PanicPath,
            code[i + 1].line,
            format!(".{name}() can panic; return a typed error or record a failed row"),
        ));
    }
}

/// R2: `HashMap` / `HashSet` / `SystemTime::now` / `thread_rng` /
/// `rand::random` in deterministic code.
fn r2_determinism(code: &[&Tok], i: usize, out: &mut Vec<(Rule, u32, String)>) {
    let Some(name) = ident(code, i) else {
        return;
    };
    let line = code[i].line;
    match name {
        "HashMap" | "HashSet" => out.push((
            Rule::Determinism,
            line,
            format!("{name} has randomized iteration order; use BTreeMap/BTreeSet or a sorted Vec"),
        )),
        "SystemTime" if path_seg(code, i + 1, "now") => out.push((
            Rule::Determinism,
            line,
            "SystemTime::now() makes output depend on the wall clock".to_string(),
        )),
        "thread_rng" => out.push((
            Rule::Determinism,
            line,
            "thread_rng() is ambiently seeded; derive seeds per cell instead".to_string(),
        )),
        "rand" if path_seg(code, i + 1, "random") => out.push((
            Rule::Determinism,
            line,
            "rand::random() is ambiently seeded; derive seeds per cell instead".to_string(),
        )),
        _ => {}
    }
}

/// True when tokens at `i` are `:: seg`.
fn path_seg(code: &[&Tok], i: usize, seg: &str) -> bool {
    punct(code, i, ':') && punct(code, i + 1, ':') && ident(code, i + 2) == Some(seg)
}

/// R3: any `partial_cmp` identifier (method call or fn path).
fn r3_float_order(code: &[&Tok], i: usize, out: &mut Vec<(Rule, u32, String)>) {
    if ident(code, i) == Some("partial_cmp") {
        out.push((
            Rule::FloatOrder,
            code[i].line,
            "partial_cmp returns None on NaN; use f64::total_cmp".to_string(),
        ));
    }
}

/// Narrow integer targets an `as` cast can truncate into. `usize` is
/// included: `u64 as usize` truncates on 32-bit targets, and wire code
/// is exactly where attacker-controlled u64 lengths appear.
const NARROW_INTS: [&str; 7] = ["u8", "u16", "u32", "i8", "i16", "i32", "usize"];

/// R4: `as <narrow-int>` in wire code.
fn r4_wire_cast(code: &[&Tok], i: usize, out: &mut Vec<(Rule, u32, String)>) {
    if ident(code, i) != Some("as") {
        return;
    }
    let Some(target) = ident(code, i + 1) else {
        return;
    };
    if NARROW_INTS.contains(&target) {
        out.push((
            Rule::WireCast,
            code[i].line,
            format!("`as {target}` silently truncates; use try_from so corrupt input fails loudly"),
        ));
    }
}

/// Item keywords whose `pub` form must carry a doc comment. Public
/// fields, `pub use` re-exports, and trait members are deliberately
/// out of scope — this tracks `#![warn(missing_docs)]`'s high-order
/// bit (named public items), not its full reach.
const DOC_ITEM_KEYWORDS: [&str; 9] = [
    "fn", "struct", "enum", "trait", "mod", "type", "const", "static", "union",
];

/// R5: `pub <item>` with no doc comment. Walks the *full* token stream
/// tracking whether a doc comment is still pending when a `pub` item
/// head is reached: doc comments set the flag, attributes (`#[...]`)
/// pass it through, any other token clears it.
fn r5_missing_docs(
    all: &[&Tok],
    test_lines: &std::collections::BTreeSet<u32>,
    out: &mut Vec<(Rule, u32, String)>,
) {
    let mut documented = false;
    let mut i = 0;
    while i < all.len() {
        match &all[i].kind {
            TokKind::Comment(text) => {
                // `/// x` arrives as `/ x` and `/** x` as `* x` —
                // outer doc comments, which document the next item.
                // Inner docs (`//! x` → `! x`) document the enclosing
                // scope, so they *clear* the flag: the crate-level
                // header must not vouch for the first item after it.
                // Plain comments neither set nor clear (a pragma
                // between doc and item must not strip the doc).
                if text.starts_with(['/', '*']) {
                    documented = true;
                } else if text.starts_with('!') {
                    documented = false;
                }
                i += 1;
            }
            TokKind::Punct('#') if punct(all, i + 1, '[') => {
                // Attributes between the doc comment and the item
                // (`#[derive(...)]`, `#[inline]`) keep the doc alive.
                match matching(all, i + 1, '[', ']') {
                    Some(e) => i = e + 1,
                    None => return,
                }
            }
            TokKind::Ident(kw) if kw == "pub" => {
                let line = all[i].line;
                if punct(all, i + 1, '(') {
                    // `pub(crate)` / `pub(super)`: not public API.
                    match matching(all, i + 1, '(', ')') {
                        Some(e) => i = e + 1,
                        None => return,
                    }
                    continue;
                }
                // Skip modifiers (`unsafe`, `async`, `extern "C"`,
                // `const fn`) to reach the item keyword.
                let mut j = i + 1;
                loop {
                    match ident(all, j) {
                        Some("unsafe") | Some("async") => j += 1,
                        Some("extern") => {
                            j += 1;
                            if matches!(all.get(j).map(|t| &t.kind), Some(TokKind::Lit)) {
                                j += 1;
                            }
                        }
                        Some("const") if ident(all, j + 1) == Some("fn") => j += 1,
                        _ => break,
                    }
                }
                if let Some(kw) = ident(all, j) {
                    if DOC_ITEM_KEYWORDS.contains(&kw) && !documented && !test_lines.contains(&line)
                    {
                        let name = ident(all, j + 1).unwrap_or("_");
                        out.push((
                            Rule::MissingDocs,
                            line,
                            format!("public {kw} `{name}` has no doc comment"),
                        ));
                    }
                }
                documented = false;
                i = j.max(i + 1);
            }
            _ => {
                documented = false;
                i += 1;
            }
        }
    }
}

/// Computes, per token, whether it sits inside a `#[cfg(test)]` item
/// (module, fn, impl, or `use`). Conservative in the right direction:
/// an unrecognized shape is treated as non-test, so real violations
/// are never hidden by accident.
fn test_regions(code: &[&Tok]) -> Vec<bool> {
    let mut flag = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        if punct(code, i, '#') && punct(code, i + 1, '[') {
            let attr_start = i;
            let Some(attr_end) = matching(code, i + 1, '[', ']') else {
                break;
            };
            // `cfg(not(test))` gates *shipped* code — only a `test`
            // without a `not` in the attribute marks a test region.
            let is_test_cfg = (i + 2..attr_end).any(|k| ident(code, k) == Some("cfg"))
                && (i + 2..attr_end).any(|k| ident(code, k) == Some("test"))
                && !(i + 2..attr_end).any(|k| ident(code, k) == Some("not"));
            i = attr_end + 1;
            if !is_test_cfg {
                continue;
            }
            // Skip any further attributes on the same item.
            while punct(code, i, '#') && punct(code, i + 1, '[') {
                match matching(code, i + 1, '[', ']') {
                    Some(e) => i = e + 1,
                    None => return flag,
                }
            }
            // The item extends to its closing brace, or to a `;` at
            // item level (e.g. `#[cfg(test)] use …;`).
            let mut depth_paren = 0i32;
            let mut depth_brack = 0i32;
            let mut j = i;
            let end = loop {
                match code.get(j).map(|t| &t.kind) {
                    None => break code.len().saturating_sub(1),
                    Some(TokKind::Punct('(')) => depth_paren += 1,
                    Some(TokKind::Punct(')')) => depth_paren -= 1,
                    Some(TokKind::Punct('[')) => depth_brack += 1,
                    Some(TokKind::Punct(']')) => depth_brack -= 1,
                    Some(TokKind::Punct('{')) => {
                        break matching(code, j, '{', '}').unwrap_or(code.len() - 1)
                    }
                    Some(TokKind::Punct(';')) if depth_paren == 0 && depth_brack == 0 => break j,
                    _ => {}
                }
                j += 1;
            };
            for f in flag.iter_mut().take(end + 1).skip(attr_start) {
                *f = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    flag
}

/// Index of the token closing the bracket opened at `open_idx`.
fn matching(code: &[&Tok], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in code.iter().enumerate().skip(open_idx) {
        match &t.kind {
            TokKind::Punct(c) if *c == open => depth += 1,
            TokKind::Punct(c) if *c == close => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

struct Pragma {
    rule: Rule,
    line: u32,
    justification: String,
}

/// Extracts `ba-lint: allow(<rule>) -- <justification>` pragmas from
/// the comment tokens. Malformed pragmas become hard errors.
fn collect_pragmas(ctx: &FileContext, toks: &[Tok]) -> (Vec<Pragma>, Vec<PragmaError>) {
    let mut pragmas = Vec::new();
    let mut errors = Vec::new();
    for t in toks {
        let TokKind::Comment(text) = &t.kind else {
            continue;
        };
        // Doc comments arrive as `/ <text>` (the third slash) — strip
        // leading slashes and `!` so `/// ba-lint:` still parses.
        let body = text.trim_start_matches(['/', '!']).trim();
        let Some(rest) = body.strip_prefix("ba-lint:") else {
            continue;
        };
        match parse_pragma(rest.trim()) {
            Ok((rule, justification)) => pragmas.push(Pragma {
                rule,
                line: t.line,
                justification,
            }),
            Err(message) => errors.push(PragmaError {
                rel_path: ctx.rel_path.clone(),
                line: t.line,
                message,
            }),
        }
    }
    (pragmas, errors)
}

/// Parses the part after `ba-lint:`.
fn parse_pragma(rest: &str) -> Result<(Rule, String), String> {
    let Some(inner) = rest.strip_prefix("allow(") else {
        return Err(format!(
            "expected `allow(<rule>) -- <justification>`, got `{rest}`"
        ));
    };
    let Some(close) = inner.find(')') else {
        return Err("unclosed `allow(` in pragma".to_string());
    };
    let rule_name = inner[..close].trim();
    let Some(rule) = Rule::from_key(rule_name) else {
        let known: Vec<&str> = ALL_RULES.iter().map(|r| r.key()).collect();
        return Err(format!(
            "unknown rule `{rule_name}` (known: {})",
            known.join(", ")
        ));
    };
    let tail = inner[close + 1..].trim();
    let Some(justification) = tail.strip_prefix("--") else {
        return Err("pragma is missing the ` -- <justification>` tail".to_string());
    };
    let justification = justification.trim();
    if justification.is_empty() {
        return Err("pragma justification must not be empty".to_string());
    }
    Ok((rule, justification.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(deterministic: bool, wire: bool) -> FileContext {
        FileContext {
            crate_name: "ba-test".to_string(),
            rel_path: "crates/test/src/lib.rs".to_string(),
            deterministic,
            wire,
            docs: false,
        }
    }

    fn docs_ctx() -> FileContext {
        FileContext {
            docs: true,
            ..ctx(false, false)
        }
    }

    fn hits(ctx: &FileContext, src: &str) -> Vec<Violation> {
        let (v, e) = scan_source(ctx, src);
        assert!(e.is_empty(), "unexpected pragma errors: {e:?}");
        v.into_iter().filter(|v| v.suppressed.is_none()).collect()
    }

    #[test]
    fn unwrap_in_cfg_test_mod_is_ignored() {
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { Some(1).unwrap(); }\n}\n";
        assert!(hits(&ctx(false, false), src).is_empty());
    }

    #[test]
    fn unwrap_outside_test_mod_is_flagged() {
        let src = "pub fn f() { Some(1).unwrap(); }";
        let v = hits(&ctx(false, false), src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::PanicPath);
    }

    #[test]
    fn unwrap_or_else_is_not_flagged() {
        let src = "pub fn f() { Some(1).unwrap_or_else(|| 2); Some(1).unwrap_or(3); }";
        assert!(hits(&ctx(false, false), src).is_empty());
    }

    #[test]
    fn pragma_on_same_or_previous_line_suppresses() {
        let same = "pub fn f() { x.lock().unwrap(); } // ba-lint: allow(panic-path) -- poisoned lock means a worker already panicked\n";
        let prev = "// ba-lint: allow(panic-path) -- poisoned lock means a worker already panicked\npub fn f() { x.lock().unwrap(); }\n";
        for src in [same, prev] {
            let (v, e) = scan_source(&ctx(false, false), src);
            assert!(e.is_empty());
            assert_eq!(v.len(), 1);
            assert!(v[0].suppressed.is_some(), "src: {src}");
        }
    }

    #[test]
    fn pragma_without_justification_is_an_error() {
        let src = "// ba-lint: allow(panic-path)\npub fn f() { x.unwrap(); }\n";
        let (_, e) = scan_source(&ctx(false, false), src);
        assert_eq!(e.len(), 1);
        assert!(e[0].message.contains("justification"));
    }

    #[test]
    fn pragma_with_unknown_rule_is_an_error() {
        let src = "// ba-lint: allow(no-such-rule) -- because\n";
        let (_, e) = scan_source(&ctx(false, false), src);
        assert_eq!(e.len(), 1);
        assert!(e[0].message.contains("unknown rule"));
    }

    #[test]
    fn determinism_rule_only_fires_in_tagged_files() {
        let src = "use std::collections::HashMap;\n";
        assert!(hits(&ctx(false, false), src).is_empty());
        let v = hits(&ctx(true, false), src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::Determinism);
    }

    #[test]
    fn determinism_catches_clock_and_ambient_rng() {
        let src = "fn f() { let t = SystemTime::now(); let r = thread_rng(); let x: u8 = rand::random(); }";
        let v = hits(&ctx(true, false), src);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn float_order_catches_method_and_path_forms() {
        let src = "fn f(xs: &mut [f64]) { xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); xs.sort_by(f64::partial_cmp); }";
        let v = hits(&ctx(false, false), src);
        let fo = v.iter().filter(|v| v.rule == Rule::FloatOrder).count();
        assert_eq!(fo, 2);
        // The `.unwrap()` in the comparator is also a panic path.
        assert_eq!(v.iter().filter(|v| v.rule == Rule::PanicPath).count(), 1);
    }

    #[test]
    fn wire_cast_catches_narrowing_only() {
        let src = "fn f(len: u64) { let a = len as usize; let b = len as u32; let c = 3u32 as u64; let d = x as f64; }";
        let v = hits(&ctx(false, true), src);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == Rule::WireCast));
        assert!(hits(&ctx(false, false), src).is_empty());
    }

    #[test]
    fn string_literals_never_match() {
        let src = r#"pub fn f() -> &'static str { "call .unwrap() or partial_cmp or HashMap" }"#;
        assert!(hits(&ctx(true, true), src).is_empty());
    }

    #[test]
    fn missing_docs_flags_undocumented_pub_items() {
        let src = "pub fn f() {}\npub struct S;\npub enum E { A }\n";
        let v = hits(&docs_ctx(), src);
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|v| v.rule == Rule::MissingDocs));
        assert!(v[0].message.contains("public fn `f`"), "{}", v[0].message);
        // Opt-in only: the same source is clean without the docs tag.
        assert!(hits(&ctx(false, false), src).is_empty());
    }

    #[test]
    fn missing_docs_accepts_documented_items() {
        let src = "/// Does f.\npub fn f() {}\n\n/// S holds state.\n#[derive(Debug)]\npub struct S;\n\n/** block doc */\npub mod m {}\n";
        assert!(hits(&docs_ctx(), src).is_empty());
    }

    #[test]
    fn missing_docs_skips_non_public_shapes() {
        let src = "fn private() {}\npub(crate) fn semi() {}\npub use other::Thing;\n/// Doc.\npub struct S { pub field: u32 }\n";
        assert!(hits(&docs_ctx(), src).is_empty());
    }

    #[test]
    fn missing_docs_sees_through_attributes_and_modifiers() {
        let src = "/// Doc.\n#[inline]\n#[must_use]\npub const fn f() -> u32 { 1 }\n/// Doc.\npub unsafe extern \"C\" fn g() {}\n";
        assert!(hits(&docs_ctx(), src).is_empty());
        let bare = "#[inline]\npub const fn f() -> u32 { 1 }\n";
        let v = hits(&docs_ctx(), bare);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("public fn `f`"));
    }

    #[test]
    fn missing_docs_ignores_test_regions_and_respects_pragma() {
        let src = "#[cfg(test)]\npub mod helpers { }\n";
        assert!(hits(&docs_ctx(), src).is_empty());
        let pragma =
            "// ba-lint: allow(missing-docs) -- generated shim, documented at the macro site\npub fn f() {}\n";
        let (v, e) = scan_source(&docs_ctx(), pragma);
        assert!(e.is_empty());
        assert_eq!(v.len(), 1);
        assert!(v[0].suppressed.is_some());
    }

    #[test]
    fn cfg_test_use_item_only_masks_itself() {
        let src =
            "#[cfg(test)]\nuse std::collections::HashMap;\npub fn f() { Some(1).unwrap(); }\n";
        let v = hits(&ctx(true, false), src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::PanicPath);
    }
}
