//! CLI front-end for the workspace invariant linter.
//!
//! ```text
//! ba-lint [--root DIR] [--baseline FILE]          # list violations, exit 0
//! ba-lint --check [--json PATH]                   # ratchet against the baseline
//! ba-lint --write-baseline                        # regenerate the baseline file
//! ba-lint --json PATH                             # also emit the BenchReport-schema summary
//! ```
//!
//! Exit codes: 0 clean (or informational run), 1 ratchet regression or
//! malformed pragma, 2 usage / IO / baseline-parse error.

use ba_lint::baseline::{ratchet, Baseline};
use ba_lint::rules::ALL_RULES;
use ba_lint::{lint_workspace, LintConfig, LintReport};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    baseline: Option<PathBuf>,
    check: bool,
    write_baseline: bool,
    json: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        baseline: None,
        check: false,
        write_baseline: false,
        json: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> Result<&String, String> {
            argv.get(i + 1)
                .ok_or_else(|| format!("{} requires a value", argv[i]))
        };
        match argv[i].as_str() {
            "--root" => {
                args.root = PathBuf::from(value(i)?);
                i += 2;
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(value(i)?));
                i += 2;
            }
            "--json" => {
                args.json = Some(PathBuf::from(value(i)?));
                i += 2;
            }
            "--check" => {
                args.check = true;
                i += 1;
            }
            "--write-baseline" => {
                args.write_baseline = true;
                i += 1;
            }
            "--help" | "-h" => {
                return Err("usage: ba-lint [--root DIR] [--baseline FILE] [--check] [--write-baseline] [--json PATH]".to_string());
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    // Default root: walk up from the CWD to the directory holding a
    // `crates/` tree, so the tool runs from any crate dir.
    let root = if args.root == Path::new(".") {
        find_root().unwrap_or_else(|| args.root.clone())
    } else {
        args.root.clone()
    };
    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| root.join("lint-baseline.toml"));

    let config = match LintConfig::load(root) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("ba-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match lint_workspace(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ba-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.json {
        if let Err(e) = std::fs::write(path, report.to_bench_json()) {
            eprintln!("ba-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("[json] wrote {}", path.display());
    }

    // Malformed pragmas fail every mode: a typo'd suppression must not
    // silently stop suppressing (or silently suppress).
    if !report.pragma_errors.is_empty() {
        for e in &report.pragma_errors {
            eprintln!("{}:{}: bad pragma: {}", e.rel_path, e.line, e.message);
        }
        return ExitCode::from(1);
    }

    if args.write_baseline {
        let b = Baseline::from_counts(report.counts());
        if let Err(e) = std::fs::write(&baseline_path, b.render()) {
            eprintln!("ba-lint: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", baseline_path.display());
        print_summary(&report);
        return ExitCode::SUCCESS;
    }

    if args.check {
        return run_check(&report, &baseline_path);
    }

    // Informational mode: list everything, always exit 0.
    for v in report.active() {
        println!("{}:{}: [{}] {}", v.rel_path, v.line, v.rule, v.message);
    }
    print_summary(&report);
    ExitCode::SUCCESS
}

fn run_check(report: &LintReport, baseline_path: &std::path::Path) -> ExitCode {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "ba-lint: cannot read {} ({e}); run `ba-lint --write-baseline` first",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
    };
    let baseline = match Baseline::parse(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("ba-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let live = report.counts();
    let outcome = ratchet(&live, &baseline);

    if !outcome.regressions.is_empty() {
        for (rule, krate, current, allowed) in &outcome.regressions {
            eprintln!(
                "ratchet regression: [{rule}] {krate}: {current} violations (baseline allows {allowed})"
            );
            for v in report.active() {
                if v.rule == *rule && &v.crate_name == krate {
                    eprintln!("  {}:{}: {}", v.rel_path, v.line, v.message);
                }
            }
        }
        eprintln!(
            "\nfix the new violations, or suppress with `// ba-lint: allow(<rule>) -- <justification>`"
        );
        return ExitCode::from(1);
    }

    if !outcome.improvements.is_empty() {
        for (rule, krate, current, allowed) in &outcome.improvements {
            println!("[ratchet] tightened [{rule}] {krate}: {allowed} -> {current}");
        }
        if let Err(e) = std::fs::write(baseline_path, outcome.tightened.render()) {
            eprintln!("ba-lint: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "[ratchet] {} tightened; commit the update",
            baseline_path.display()
        );
    }

    print_summary(report);
    println!("ba-lint --check: OK");
    ExitCode::SUCCESS
}

fn print_summary(report: &LintReport) {
    let counts = report.counts();
    println!(
        "scanned {} files: {} active violations, {} suppressed",
        report.files_scanned,
        report.active().count(),
        report.suppressed_count()
    );
    for rule in ALL_RULES {
        let total: usize = counts
            .iter()
            .filter(|((r, _), _)| *r == rule)
            .map(|(_, c)| *c)
            .sum();
        let per_crate: Vec<String> = counts
            .iter()
            .filter(|((r, _), c)| *r == rule && **c > 0)
            .map(|((_, k), c)| format!("{k}={c}"))
            .collect();
        println!("  [{}] {} ({})", rule, total, per_crate.join(", "));
    }
}

/// Walks up from the CWD looking for a directory with a `crates/`
/// subdirectory and a `Cargo.toml`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
