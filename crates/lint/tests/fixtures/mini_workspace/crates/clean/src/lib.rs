//! Fully clean fixture: no rule should fire anywhere in this crate.

/// Typed-error style the contracts ask for.
pub fn safe_head(xs: &[f64]) -> Result<f64, &'static str> {
    xs.first().copied().ok_or("empty input")
}

/// `total_cmp` ordering, no hash containers, no clocks.
pub fn rank(xs: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    idx
}
