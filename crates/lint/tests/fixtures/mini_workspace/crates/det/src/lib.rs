//! R2 fixture: this crate is tagged deterministic by the test config.

use std::collections::HashMap;

/// POSITIVE: HashMap in a deterministic crate (the `use` above and the
/// signature below both count).
pub fn build(keys: &[u64]) -> HashMap<u64, usize> {
    keys.iter().enumerate().map(|(i, k)| (*k, i)).collect()
}

/// POSITIVE: wall clock and ambient RNG.
pub fn stamp() -> u64 {
    let t = std::time::SystemTime::now();
    let _ = t;
    0
}

/// SUPPRESSED: a seeded constructor is allowed to consult entropy.
pub fn seeded() -> u64 {
    // ba-lint: allow(determinism) -- fixture: seed derivation happens once, outside any replayed path
    let x: u64 = rand::random();
    x
}

/// NEGATIVE: BTreeMap is the sanctioned container.
pub fn sorted(keys: &[u64]) -> std::collections::BTreeMap<u64, usize> {
    keys.iter().enumerate().map(|(i, k)| (*k, i)).collect()
}
