//! R3 + R4 fixture: float ordering everywhere, casts in a wire crate.

/// POSITIVE (float-order): method form; the `.unwrap()` is also R1.
pub fn sort_floats(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

/// POSITIVE (float-order): bare-path comparator form. (Fixtures are
/// never compiled, so the bogus `max_by` signature does not matter.)
pub fn max_float(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().max_by(f64::partial_cmp)
}

/// NEGATIVE: total_cmp is the sanctioned comparator.
pub fn sort_total(xs: &mut [f64]) {
    xs.sort_by(f64::total_cmp);
}

/// POSITIVE (wire-cast): narrowing casts on wire-adjacent lengths.
pub fn narrow(len: u64) -> (usize, u32) {
    (len as usize, len as u32)
}

/// SUPPRESSED (wire-cast): a cast proven in-range by a prior check.
pub fn checked(len: u64) -> usize {
    assert!(len < 1 << 20);
    // ba-lint: allow(wire-cast) -- fixture: bounds-checked on the line above
    len as usize
}

/// NEGATIVE: widening casts are fine.
pub fn widen(len: u32) -> (u64, f64) {
    (len as u64, len as f64)
}
