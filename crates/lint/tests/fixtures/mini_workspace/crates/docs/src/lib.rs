//! R5 fixture: public-API documentation in a docs-tagged crate. The
//! crate-level doc block above must not count as documentation for the
//! first item below it.

/// NEGATIVE: a documented public function.
pub fn documented() {}

pub fn undocumented() {}

#[derive(Debug)]
pub struct Bare(pub u32);

/// NEGATIVE: documented, with the attribute between doc and item.
#[derive(Debug)]
pub struct Covered;

fn private_is_fine() {}

pub(crate) fn restricted_is_fine() {}

// ba-lint: allow(missing-docs) -- fixture: suppression carries through R5
pub mod suppressed_mod {}

#[cfg(test)]
mod tests {
    // Test-region items are exempt even when public.
    pub fn undocumented_but_in_tests() {}
}
