//! NEGATIVE: `src/bin/` is bin code — outside the R1 contract.
fn main() {
    let v = std::env::var("HOME").unwrap();
    println!("{v}");
}
