//! R1 fixture: positives, pragma suppression, and false-positive
//! guards for the panic-path rule.

/// POSITIVE: one `.unwrap()` and one `.expect(…)` violation.
pub fn positives(x: Option<u32>, r: Result<u32, ()>) -> u32 {
    let a = x.unwrap();
    let b = r.expect("boom");
    a + b
}

/// SUPPRESSED: same-line and previous-line pragma forms.
pub fn suppressed(x: Option<u32>) -> u32 {
    let a = x.unwrap(); // ba-lint: allow(panic-path) -- fixture: same-line suppression
    // ba-lint: allow(panic-path) -- fixture: previous-line suppression
    let b = x.unwrap();
    a + b
}

/// NEGATIVE: non-panicking cousins must not match.
pub fn negatives(x: Option<u32>) -> u32 {
    x.unwrap_or(0) + x.unwrap_or_else(|| 1) + x.unwrap_or_default()
}

/// NEGATIVE: the method names inside string literals and doc text are
/// not calls: ".unwrap()" and ".expect(msg)" stay strings.
pub fn strings() -> &'static str {
    "please call .unwrap() and .expect(now) immediately"
}

#[cfg(test)]
mod tests {
    // NEGATIVE: test code may panic freely.
    #[test]
    fn in_test_module() {
        let v: Vec<u32> = Vec::new();
        let _ = v.first().copied().unwrap_or(0);
        let _ = Some(3).unwrap();
        let _: Result<u32, ()> = Ok(1);
        let _ = Ok::<u32, ()>(1).expect("fine in tests");
    }
}
