//! NEGATIVE: `src/main.rs` is bin code — outside the R1 contract.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let first = args.first().unwrap();
    println!("{first}");
}
