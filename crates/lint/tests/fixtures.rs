//! Fixture-driven tests for the whole `ba-lint` engine: discovery over
//! a miniature workspace, per-rule positives/negatives/suppressions,
//! the `--check` ratchet through the real binary, and the
//! BenchReport-schema JSON shape.

use ba_lint::baseline::{ratchet, Baseline};
use ba_lint::rules::Rule;
use ba_lint::{lint_workspace, LintConfig, LintReport};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("mini_workspace")
}

/// The fixture workspace's tag sets come from its own `ba-lint.toml`:
/// `fx-det` is deterministic, `fx-wire` carries wire code, `fx-docs`
/// requires public-API docs.
fn fixture_config() -> LintConfig {
    let config = LintConfig::load(fixture_root()).expect("fixture ba-lint.toml parses");
    assert_eq!(config.deterministic_crates, vec!["fx-det".to_string()]);
    assert_eq!(config.wire_crates, vec!["fx-wire".to_string()]);
    assert_eq!(config.docs_required_crates, vec!["fx-docs".to_string()]);
    config
}

fn lint_fixture() -> LintReport {
    lint_workspace(&fixture_config()).expect("fixture workspace lints")
}

fn active_cells(report: &LintReport) -> BTreeMap<(Rule, String), usize> {
    report.counts()
}

#[test]
fn fixture_counts_are_exactly_as_designed() {
    let report = lint_fixture();
    assert!(
        report.pragma_errors.is_empty(),
        "{:?}",
        report.pragma_errors
    );
    let cells = active_cells(&report);
    let expect: BTreeMap<(Rule, String), usize> = [
        // panic/src/lib.rs: unwrap + expect in `positives`, plus the
        // comparator unwrap in wire/src/lib.rs::sort_floats.
        ((Rule::PanicPath, "fx-panic".to_string()), 2),
        ((Rule::PanicPath, "fx-wire".to_string()), 1),
        // det/src/lib.rs: `use HashMap`, HashMap in a signature,
        // SystemTime::now. (rand::random is pragma-suppressed.)
        ((Rule::Determinism, "fx-det".to_string()), 3),
        // wire/src/lib.rs: method + bare-path partial_cmp.
        ((Rule::FloatOrder, "fx-wire".to_string()), 2),
        // wire/src/lib.rs::narrow: `as usize` + `as u32`.
        ((Rule::WireCast, "fx-wire".to_string()), 2),
        // docs/src/lib.rs: undocumented fn + attribute-only struct.
        ((Rule::MissingDocs, "fx-docs".to_string()), 2),
    ]
    .into_iter()
    .collect();
    assert_eq!(cells, expect);
}

#[test]
fn suppressions_carry_their_justifications() {
    let report = lint_fixture();
    let suppressed: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.suppressed.is_some())
        .collect();
    // Two in fx-panic (same-line + previous-line), one rand::random in
    // fx-det, one checked cast in fx-wire, one undocumented mod in
    // fx-docs.
    assert_eq!(suppressed.len(), 5, "{suppressed:?}");
    for v in &suppressed {
        let j = v.suppressed.as_deref().expect("justification");
        assert!(j.starts_with("fixture:"), "justification retained: {j}");
    }
    assert_eq!(report.suppressed_count(), 5);
}

#[test]
fn bin_code_and_clean_crate_produce_nothing() {
    let report = lint_fixture();
    // main.rs and src/bin/tool.rs both contain unwraps; neither may be
    // scanned. The clean crate must not appear in any cell.
    assert!(report
        .violations
        .iter()
        .all(|v| !v.rel_path.contains("main.rs") && !v.rel_path.contains("/bin/")));
    assert!(report.violations.iter().all(|v| v.crate_name != "fx-clean"));
}

#[test]
fn rules_are_context_gated() {
    // With the tags removed, determinism, wire-cast, and missing-docs
    // fall silent but panic-path and float-order still fire.
    let config = LintConfig {
        deterministic_crates: vec![],
        wire_crates: vec![],
        docs_required_crates: vec![],
        ..fixture_config()
    };
    let report = lint_workspace(&config).expect("lints");
    let cells = active_cells(&report);
    assert!(cells.keys().all(|(r, _)| *r != Rule::Determinism));
    assert!(cells.keys().all(|(r, _)| *r != Rule::WireCast));
    assert!(cells.keys().all(|(r, _)| *r != Rule::MissingDocs));
    assert_eq!(
        cells.get(&(Rule::FloatOrder, "fx-wire".to_string())),
        Some(&2)
    );
}

#[test]
fn json_matches_bench_report_schema() {
    std::env::set_var("BA_BENCH_COMMIT", "cafef00d");
    let json = lint_fixture().to_bench_json();
    std::env::remove_var("BA_BENCH_COMMIT");
    // Same envelope as ba_bench::report::BenchReport::to_json.
    assert!(
        json.starts_with("{\"schema\":1,\"bench\":\"lint\",\"commit\":\"cafef00d\",\"metrics\":[")
    );
    assert!(json.ends_with("]}\n"));
    assert!(json.contains("{\"metric\":\"panic_path_total\",\"value\":3,\"unit\":\"count\"}"));
    assert!(json.contains("{\"metric\":\"determinism_fx_det\",\"value\":3,\"unit\":\"count\"}"));
    assert!(json.contains("{\"metric\":\"suppressed_total\",\"value\":5,\"unit\":\"count\"}"));
}

// ---- ratchet semantics through the real binary ----

struct TempBaseline {
    path: PathBuf,
}

impl TempBaseline {
    fn new(name: &str, contents: &str) -> TempBaseline {
        let path = std::env::temp_dir().join(format!(
            "ba_lint_fixture_{}_{}.toml",
            std::process::id(),
            name
        ));
        std::fs::write(&path, contents).expect("write temp baseline");
        TempBaseline { path }
    }
}

impl Drop for TempBaseline {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

fn run_check(baseline: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_ba-lint"))
        .arg("--root")
        .arg(fixture_root())
        .arg("--check")
        .arg("--baseline")
        .arg(baseline)
        .output()
        .expect("spawn ba-lint")
}

/// The fixture tree's true counts, rendered as a baseline file.
fn exact_baseline() -> String {
    Baseline::from_counts(lint_fixture().counts()).render()
}

#[test]
fn check_passes_at_the_exact_baseline() {
    let tb = TempBaseline::new("exact", &exact_baseline());
    let out = run_check(&tb.path);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ba-lint --check: OK"));
    assert!(!stdout.contains("[ratchet] tightened"));
}

#[test]
fn check_fails_on_regression_and_names_the_sites() {
    // Tighter than reality: fx-panic allows 1 but the tree has 2.
    let text = exact_baseline().replace("\"fx-panic\" = 2", "\"fx-panic\" = 1");
    let tb = TempBaseline::new("regress", &text);
    let out = run_check(&tb.path);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("ratchet regression"), "{stderr}");
    assert!(stderr.contains("fx-panic: 2 violations (baseline allows 1)"));
    assert!(stderr.contains("crates/panic/src/lib.rs"));
    // A failing check must not rewrite the baseline.
    assert_eq!(
        std::fs::read_to_string(&tb.path).expect("still there"),
        text
    );
}

#[test]
fn check_auto_tightens_on_improvement() {
    // Looser than reality: the ratchet must pull it down and rewrite.
    let text = exact_baseline().replace("\"fx-panic\" = 2", "\"fx-panic\" = 7");
    let tb = TempBaseline::new("tighten", &text);
    let out = run_check(&tb.path);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[ratchet] tightened [panic-path] fx-panic: 7 -> 2"));
    let rewritten = std::fs::read_to_string(&tb.path).expect("rewritten");
    assert_eq!(rewritten, exact_baseline());
}

#[test]
fn check_rejects_a_corrupt_baseline() {
    let tb = TempBaseline::new("corrupt", "schema = 1\n[panic-path\n");
    let out = run_check(&tb.path);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("expected `key = value`"));
}

#[test]
fn check_without_a_baseline_points_at_write_baseline() {
    let missing = std::env::temp_dir().join(format!(
        "ba_lint_fixture_{}_missing.toml",
        std::process::id()
    ));
    let out = run_check(&missing);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--write-baseline"));
}

#[test]
fn ratchet_round_trip_via_library_api() {
    // tighten → render → parse → identical; regress → reported.
    let live = lint_fixture().counts();
    let baseline = Baseline::from_counts(live.clone());
    let out = ratchet(&live, &baseline);
    assert!(out.regressions.is_empty() && out.improvements.is_empty());
    let reparsed = Baseline::parse(&baseline.render()).expect("round trip");
    assert_eq!(reparsed, baseline);

    let mut worse = live.clone();
    *worse
        .entry((Rule::PanicPath, "fx-panic".to_string()))
        .or_insert(0) += 1;
    let out = ratchet(&worse, &baseline);
    assert_eq!(out.regressions.len(), 1);
}
