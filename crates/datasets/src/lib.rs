//! # ba-datasets
//!
//! The five evaluation datasets of paper Table I.
//!
//! | dataset | nodes | edges | provenance here |
//! |---|---|---|---|
//! | ER | 1000 | ~9948 | `G(n=1000, p=0.02)` exactly as the paper |
//! | BA | 1000 | ~4975 | Barabási–Albert `m = 5` exactly as the paper |
//! | Blogcatalog | 1000 | ~6190 | **synthetic stand-in** (see below) |
//! | Wikivote | 1012 | ~4860 | **synthetic stand-in** |
//! | Bitcoin-Alpha | 1025 | ~2311 | **synthetic stand-in** |
//!
//! The three real datasets are not redistributable inside this offline
//! reproduction, so [`Dataset::build`] generates seeded stand-ins matched
//! to the published node/edge counts with heavy-tailed degree
//! distributions (Chung–Lu power law), community structure for the
//! social network, and planted near-clique / near-star anomalies — the
//! exact structural patterns OddBall flags and the attack must erase
//! (DESIGN.md §4 records the substitution argument). If you have the real
//! edge lists, load them with [`load_real`] and every experiment binary
//! accepts them in place of the stand-ins.

use ba_graph::io::{load_edge_list, IoError};
use ba_graph::{generators, metrics, sample, Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::Path;

/// The evaluation datasets of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Erdős–Rényi `G(1000, 0.02)`.
    Er,
    /// Barabási–Albert, `n = 1000`, `m = 5`.
    Ba,
    /// Blogcatalog-like social network stand-in.
    Blogcatalog,
    /// Wikivote-like voting network stand-in.
    Wikivote,
    /// Bitcoin-Alpha-like trust network stand-in.
    BitcoinAlpha,
}

impl Dataset {
    /// All five datasets in Table I order.
    pub fn all() -> [Dataset; 5] {
        [
            Dataset::Er,
            Dataset::Ba,
            Dataset::Blogcatalog,
            Dataset::Wikivote,
            Dataset::BitcoinAlpha,
        ]
    }

    /// Table name.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Er => "ER",
            Dataset::Ba => "BA",
            Dataset::Blogcatalog => "Blogcatalog",
            Dataset::Wikivote => "Wikivote",
            Dataset::BitcoinAlpha => "Bitcoin-Alpha",
        }
    }

    /// Paper-reported `(nodes, edges)` from Table I (sampled subgraphs).
    pub fn paper_statistics(&self) -> (usize, usize) {
        match self {
            Dataset::Er => (1000, 9948),
            Dataset::Ba => (1000, 4975),
            Dataset::Blogcatalog => (1000, 6190),
            Dataset::Wikivote => (1012, 4860),
            Dataset::BitcoinAlpha => (1025, 2311),
        }
    }

    /// Builds the dataset at full Table-I scale with the given seed.
    pub fn build(&self, seed: u64) -> Graph {
        let (n, m) = self.paper_statistics();
        self.build_scaled(n, m, seed)
    }

    /// Builds a smaller version with the same shape (for tests and quick
    /// experiment modes): `n` nodes targeting `m` edges.
    pub fn build_scaled(&self, n: usize, m: usize, seed: u64) -> Graph {
        match self {
            Dataset::Er => {
                let p = 2.0 * m as f64 / (n as f64 * (n as f64 - 1.0));
                let mut g = generators::erdos_renyi(n, p, seed);
                generators::attach_isolated(&mut g, seed ^ 0xa77ac4);
                g
            }
            Dataset::Ba => {
                let ba_m = (m as f64 / n as f64).round().max(1.0) as usize;
                generators::barabasi_albert(n, ba_m, seed)
            }
            Dataset::Blogcatalog => {
                // Social network: communities + heavy tail + dense cores.
                let mut g = blend_communities_and_tail(n, m, 5, 2.4, seed);
                plant_standard_anomalies(&mut g, n / 100, seed ^ 0xb10c);
                generators::attach_isolated(&mut g, seed ^ 0xb10d);
                g
            }
            Dataset::Wikivote => {
                // Voting network: pronounced (but capped) hubs plus
                // triadic closure so hub egonets are not pathologically
                // sparse -- uncapped gamma~2.1 tails make the top AScores
                // deg-400 stars with power-law deficits in the thousands,
                // which no bounded attacker could fix and the paper's
                // Fig. 4 wikivote curves clearly exclude.
                let base = m - m / 4;
                let cap = (n as f64 / 16.0).max(20.0);
                let mut g = generators::power_law_chung_lu_capped(n, base, 2.3, cap, seed);
                generators::triadic_closure(&mut g, m / 8, seed ^ 0x3c10);
                plant_attackable_anomalies(&mut g, n / 120 + 2, n / 30, seed ^ 0x717e);
                generators::attach_isolated(&mut g, seed ^ 0x717f);
                g
            }
            Dataset::BitcoinAlpha => {
                // Sparse trust network: mild tail, low clustering, a few
                // dense trust rings.
                let mut g = generators::power_law_chung_lu(n, m.saturating_sub(m / 10), 2.6, seed);
                plant_standard_anomalies(&mut g, (n / 150).max(2), seed ^ 0xb17c);
                generators::attach_isolated(&mut g, seed ^ 0xb17d);
                g
            }
        }
    }
}

/// Mixes a planted-partition community graph with a Chung–Lu tail so the
/// result has both communities and hubs (Blogcatalog-like).
fn blend_communities_and_tail(n: usize, m: usize, k: usize, gamma: f64, seed: u64) -> Graph {
    let comm_edges = m * 2 / 3;
    let tail_edges = m - comm_edges;
    let p_in = comm_edges as f64 / (k as f64 * (n / k) as f64 * ((n / k) as f64 - 1.0) / 2.0);
    let mut g = generators::planted_partition(n, k, p_in.min(0.9), 0.001, seed);
    let tail = generators::power_law_chung_lu(n, tail_edges, gamma, seed ^ 0x7a11);
    for (u, v) in tail.edges() {
        g.add_edge(u, v);
    }
    g
}

/// Plants *attackable* anomalies: near-cliques and moderate near-stars
/// whose AScore deficits are fixable with a handful of edge flips each —
/// the regime the paper's targets live in (it reports 4–9 modified
/// edges per target sufficing for up to 90% score decreases).
fn plant_attackable_anomalies(g: &mut Graph, cliques: usize, star_spokes: usize, seed: u64) {
    let n = g.num_nodes() as NodeId;
    let mut rng = StdRng::seed_from_u64(seed);
    for c in 0..cliques.max(1) {
        let size = rng.gen_range(7..=11);
        let members: Vec<NodeId> = (0..size).map(|_| rng.gen_range(0..n)).collect();
        generators::plant_near_clique(g, &members, 0.9, seed ^ ((c as u64) << 8));
    }
    for c in 0..3u64 {
        let center = rng.gen_range(0..n);
        let spokes = star_spokes.max(10) + rng.gen_range(0..10);
        generators::plant_near_star(g, center, spokes, seed ^ 0x57a6 ^ (c << 16));
    }
}

/// Plants the anomalous structures the paper's threat model presumes:
/// a few near-cliques and near-stars whose members become the high-AScore
/// nodes the attacker wants to hide.
fn plant_standard_anomalies(g: &mut Graph, count: usize, seed: u64) {
    let n = g.num_nodes() as NodeId;
    let mut rng = StdRng::seed_from_u64(seed);
    for c in 0..count.max(1) {
        // Near-clique of 6-10 random members.
        let size = rng.gen_range(6..=10);
        let members: Vec<NodeId> = (0..size).map(|_| rng.gen_range(0..n)).collect();
        generators::plant_near_clique(g, &members, 0.9, seed ^ ((c as u64) << 8));
        // Near-star.
        let center = rng.gen_range(0..n);
        let spokes = rng.gen_range(n as usize / 30..n as usize / 12);
        generators::plant_near_star(g, center, spokes, seed ^ 0x57a5 ^ ((c as u64) << 16));
    }
}

/// Loads a real edge-list file and BFS-samples a connected ~`target`-node
/// subgraph, mirroring the paper's pre-processing of the real datasets.
pub fn load_real(path: impl AsRef<Path>, target: usize, seed: u64) -> Result<Graph, IoError> {
    let loaded = load_edge_list(path)?;
    let (sub, _) = sample::bfs_sample(&loaded.graph, target, seed);
    Ok(sub)
}

/// One row of the Table I report.
#[derive(Debug, Clone)]
pub struct TableOneRow {
    /// Dataset name.
    pub name: &'static str,
    /// Nodes in the built graph.
    pub nodes: usize,
    /// Edges in the built graph.
    pub edges: usize,
    /// Nodes reported by the paper.
    pub paper_nodes: usize,
    /// Edges reported by the paper.
    pub paper_edges: usize,
    /// Average clustering of the built graph (sanity column).
    pub avg_clustering: f64,
}

/// Builds all datasets and assembles the Table I comparison.
pub fn table_one(seed: u64) -> Vec<TableOneRow> {
    Dataset::all()
        .iter()
        .map(|d| {
            let g = d.build(seed);
            let (pn, pm) = d.paper_statistics();
            TableOneRow {
                name: d.name(),
                nodes: g.num_nodes(),
                edges: g.num_edges(),
                paper_nodes: pn,
                paper_edges: pm,
                avg_clustering: metrics::average_clustering(&g),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_oddball::OddBall;

    #[test]
    fn node_counts_match_table_one_exactly() {
        for d in Dataset::all() {
            let g = d.build(7);
            let (pn, _) = d.paper_statistics();
            assert_eq!(g.num_nodes(), pn, "{}", d.name());
        }
    }

    #[test]
    fn edge_counts_within_tolerance_of_table_one() {
        for d in Dataset::all() {
            let g = d.build(7);
            let (_, pm) = d.paper_statistics();
            let m = g.num_edges() as f64;
            let rel = (m - pm as f64).abs() / pm as f64;
            assert!(
                rel < 0.25,
                "{}: {m} edges vs paper {pm} (rel err {rel:.2})",
                d.name()
            );
        }
    }

    #[test]
    fn builds_are_deterministic() {
        for d in Dataset::all() {
            assert_eq!(d.build(3), d.build(3), "{}", d.name());
            assert_ne!(d.build(3), d.build(4), "{}", d.name());
        }
    }

    #[test]
    fn no_isolated_nodes() {
        for d in Dataset::all() {
            let g = d.build(11);
            for u in 0..g.num_nodes() as NodeId {
                assert!(g.degree(u) >= 1, "{}: node {u} isolated", d.name());
            }
        }
    }

    #[test]
    fn stand_ins_have_heavy_tails() {
        for d in [
            Dataset::Blogcatalog,
            Dataset::Wikivote,
            Dataset::BitcoinAlpha,
        ] {
            let g = d.build(13);
            let max_deg = (0..g.num_nodes() as NodeId)
                .map(|u| g.degree(u))
                .max()
                .unwrap();
            let avg = metrics::average_degree(&g);
            assert!(
                max_deg as f64 > 6.0 * avg,
                "{}: max {max_deg} vs avg {avg} - tail too light",
                d.name()
            );
        }
    }

    #[test]
    fn oddball_finds_planted_anomalies_on_stand_ins() {
        for d in [
            Dataset::Blogcatalog,
            Dataset::Wikivote,
            Dataset::BitcoinAlpha,
        ] {
            let g = d.build(17);
            let model = OddBall::default().fit(&g).unwrap();
            let top = model.top_k(50);
            // The top-50 AScores must be clearly above the median: there
            // must be real outliers to attack.
            let median = ba_stats::percentile(model.scores(), 50.0);
            assert!(
                top[9].1 > 4.0 * median.max(0.05),
                "{}: 10th score {} vs median {median}",
                d.name(),
                top[9].1
            );
        }
    }

    #[test]
    fn scaled_builds_shrink() {
        let g = Dataset::Wikivote.build_scaled(300, 1500, 5);
        assert_eq!(g.num_nodes(), 300);
        assert!(
            g.num_edges() > 700 && g.num_edges() < 2600,
            "{}",
            g.num_edges()
        );
    }

    #[test]
    fn table_one_rows_complete() {
        let rows = table_one(7);
        assert_eq!(rows.len(), 5);
        for r in rows {
            assert!(r.nodes > 0 && r.edges > 0);
            assert!(r.avg_clustering >= 0.0 && r.avg_clustering <= 1.0);
        }
    }

    #[test]
    fn load_real_roundtrip() {
        // Save a synthetic graph as an edge list and reload through the
        // real-data path.
        let g = Dataset::Ba.build_scaled(200, 600, 3);
        let dir = std::env::temp_dir().join("ba_datasets_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("real.edges");
        ba_graph::io::save_edge_list(&g, &path).unwrap();
        let sub = load_real(&path, 150, 9).unwrap();
        assert_eq!(sub.num_nodes(), 150);
        assert_eq!(ba_graph::metrics::connected_components(&sub), 1);
        std::fs::remove_file(path).ok();
    }
}
