//! Length-prefixed binary framing over a byte stream — the one frame
//! layer every wire in the workspace speaks (the `ba-serve` scoring
//! service and the `ba-bench` tracker/peer orchestrator).
//!
//! Every message — request or response — travels as one *frame*: a
//! little-endian `u64` payload length followed by exactly that many
//! payload bytes. The reader distinguishes three byte-stream endings:
//!
//! * **clean close** — EOF exactly at a frame boundary: the peer is
//!   done, [`read_frame`] returns `Ok(None)`;
//! * **severed connection** — EOF inside the length header or inside
//!   the payload: the peer died mid-message,
//!   [`FrameError::Severed`] reports how much arrived;
//! * **rejected frame** — a declared length of zero
//!   ([`FrameError::Empty`]; no valid message encodes to zero bytes)
//!   or above [`MAX_FRAME_LEN`] ([`FrameError::Oversized`]; the cap
//!   stops a corrupt or hostile header from making the reader allocate
//!   unboundedly).

use std::io::{self, Read, Write};

/// Hard cap on a frame's payload length (16 MiB). Large enough for any
/// legitimate batch; small enough that a garbage header cannot drive an
/// allocation into the gigabytes.
pub const MAX_FRAME_LEN: u64 = 16 << 20;

/// Errors raised while reading a frame.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying IO failure.
    Io(io::Error),
    /// The stream ended mid-header or mid-payload.
    Severed {
        /// Bytes that did arrive before the EOF.
        read: usize,
        /// Bytes the header (8) or declared payload length required.
        expected: usize,
    },
    /// The header declared a payload above [`MAX_FRAME_LEN`].
    Oversized {
        /// The declared length.
        len: u64,
    },
    /// The header declared a zero-length payload.
    Empty,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "io error: {e}"),
            FrameError::Severed { read, expected } => {
                write!(f, "connection severed mid-frame ({read}/{expected} bytes)")
            }
            FrameError::Oversized { len } => {
                write!(f, "oversized frame: {len} bytes (max {MAX_FRAME_LEN})")
            }
            FrameError::Empty => write!(f, "zero-length frame"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame (header + payload) and flushes.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u64).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean close (EOF at a frame
/// boundary); `Ok(Some(payload))` is a complete frame.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; 8];
    match read_up_to(r, &mut header)? {
        0 => return Ok(None),
        8 => {}
        got => {
            return Err(FrameError::Severed {
                read: got,
                expected: 8,
            })
        }
    }
    let len = u64::from_le_bytes(header);
    if len == 0 {
        return Err(FrameError::Empty);
    }
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized { len });
    }
    // Lossless even on 16-bit targets: a length that does not fit in
    // `usize` is by definition oversized for this process.
    let len = usize::try_from(len).map_err(|_| FrameError::Oversized { len })?;
    let mut payload = vec![0u8; len];
    let got = read_up_to(r, &mut payload)?;
    if got < payload.len() {
        return Err(FrameError::Severed {
            read: got,
            expected: len,
        });
    }
    Ok(Some(payload))
}

/// Fills `buf` as far as the stream allows; returns the byte count
/// actually read (short only on EOF).
fn read_up_to<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize, FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn framed(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, payload).unwrap();
        out
    }

    #[test]
    fn roundtrip_and_clean_eof() {
        let mut bytes = framed(b"hello");
        bytes.extend_from_slice(&framed(b"world"));
        let mut cursor = bytes.as_slice();
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"world");
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn severed_mid_header_and_mid_payload() {
        let bytes = framed(b"payload");
        // Cut inside the 8-byte header.
        let mut cut = &bytes[..5];
        assert!(matches!(
            read_frame(&mut cut),
            Err(FrameError::Severed {
                read: 5,
                expected: 8
            })
        ));
        // Cut inside the payload.
        let mut cut = &bytes[..10];
        assert!(matches!(
            read_frame(&mut cut),
            Err(FrameError::Severed {
                read: 2,
                expected: 7
            })
        ));
    }

    #[test]
    fn zero_length_frame_rejected() {
        let bytes = 0u64.to_le_bytes();
        assert!(matches!(
            read_frame(&mut bytes.as_slice()),
            Err(FrameError::Empty)
        ));
    }

    #[test]
    fn oversized_frame_rejected_without_allocating() {
        let bytes = u64::MAX.to_le_bytes();
        assert!(matches!(
            read_frame(&mut bytes.as_slice()),
            Err(FrameError::Oversized { len: u64::MAX })
        ));
    }
}
