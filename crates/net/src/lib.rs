//! # ba-net
//!
//! Shared network plumbing for every wire-speaking crate in the
//! workspace. Two layers, both dependency-free:
//!
//! * [`frame`] — length-prefixed binary framing (a little-endian `u64`
//!   payload length, then the payload). The reader distinguishes clean
//!   closes, severed connections (EOF mid-header or mid-payload), and
//!   rejected headers (zero-length or oversized), so a dying peer can
//!   never leave a torn message. Extracted verbatim from `ba-serve`,
//!   which re-exports it — the scoring service and the experiment
//!   tracker speak the exact same frame layer.
//! * [`wire`] — primitive message codecs (`u8`/`u64`/UTF-8 strings /
//!   string lists) over a byte buffer, with strict truncation and
//!   trailing-byte detection. Protocol crates build their typed
//!   encode/decode on these so every message round-trips exactly.

pub mod frame;
pub mod wire;

pub use frame::{read_frame, write_frame, FrameError, MAX_FRAME_LEN};
pub use wire::{WireReader, WireWriter};
