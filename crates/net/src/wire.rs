//! Primitive message codecs over a byte buffer.
//!
//! A [`WireWriter`] appends fixed-width little-endian integers and
//! length-prefixed UTF-8 strings; a [`WireReader`] consumes them in the
//! same order and rejects truncated values, invalid UTF-8, and —
//! via [`WireReader::finish`] — trailing garbage. Every encoded value
//! has exactly one byte representation, so protocol messages built on
//! these round-trip byte-identically (the determinism contract the
//! tracker and the scoring service both lean on).

/// Decoding failures. Encoding cannot fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireDecodeError {
    /// The buffer ended before the value it promised.
    Truncated,
    /// A string payload was not valid UTF-8.
    BadUtf8,
    /// [`WireReader::finish`] found unconsumed bytes.
    Trailing(usize),
}

impl std::fmt::Display for WireDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireDecodeError::Truncated => write!(f, "truncated message"),
            WireDecodeError::BadUtf8 => write!(f, "string payload is not valid UTF-8"),
            WireDecodeError::Trailing(n) => write!(f, "{n} trailing byte(s) after message"),
        }
    }
}

impl std::error::Error for WireDecodeError {}

/// Append-only message encoder.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) -> &mut Self {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    /// Appends a count-prefixed list of strings.
    pub fn put_str_list(&mut self, items: &[String]) -> &mut Self {
        self.put_u64(items.len() as u64);
        for item in items {
            self.put_str(item);
        }
        self
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Sequential message decoder over a borrowed buffer.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireDecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(WireDecodeError::Truncated)?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireDecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireDecodeError> {
        let bytes = self.take(8)?;
        // ba-lint: allow(panic-path) -- take(8) just returned exactly eight bytes, so the slice-to-array conversion cannot fail
        Ok(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireDecodeError> {
        let len = self.u64()?;
        let len = usize::try_from(len).map_err(|_| WireDecodeError::Truncated)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireDecodeError::BadUtf8)
    }

    /// Reads a count-prefixed list of strings.
    pub fn str_list(&mut self) -> Result<Vec<String>, WireDecodeError> {
        let count = self.u64()?;
        // Each entry costs at least its 8-byte length prefix, so a count
        // beyond the remaining bytes is truncation — checked before the
        // allocation a hostile count would otherwise size.
        let count = usize::try_from(count)
            .ok()
            .filter(|&c| c <= (self.buf.len() - self.pos) / 8)
            .ok_or(WireDecodeError::Truncated)?;
        let mut items = Vec::with_capacity(count);
        for _ in 0..count {
            items.push(self.str()?);
        }
        Ok(items)
    }

    /// Asserts the whole buffer was consumed.
    pub fn finish(self) -> Result<(), WireDecodeError> {
        match self.buf.len() - self.pos {
            0 => Ok(()),
            n => Err(WireDecodeError::Trailing(n)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut w = WireWriter::new();
        w.put_u8(7)
            .put_u64(u64::MAX)
            .put_str("héllo")
            .put_str_list(&["a".into(), String::new(), "βç".into()]);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.str_list().unwrap(), vec!["a", "", "βç"]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_detected_not_panicked() {
        let mut w = WireWriter::new();
        w.put_str("payload");
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            let mut r = WireReader::new(&bytes[..cut]);
            assert_eq!(r.str(), Err(WireDecodeError::Truncated), "cut at {cut}");
        }
    }

    #[test]
    fn hostile_list_count_is_rejected_before_allocating() {
        let mut w = WireWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.str_list(), Err(WireDecodeError::Truncated));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = WireWriter::new();
        w.put_u8(1).put_u8(2);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 1);
        assert_eq!(r.finish(), Err(WireDecodeError::Trailing(1)));
    }

    #[test]
    fn bad_utf8_is_rejected() {
        let mut w = WireWriter::new();
        w.put_u64(2);
        let mut bytes = w.finish();
        bytes.extend_from_slice(&[0xff, 0xfe]);
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.str(), Err(WireDecodeError::BadUtf8));
    }
}
