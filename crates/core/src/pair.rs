//! Candidate-pair machinery: upper-triangle indexing, attack scopes, and
//! edge-operation masks.

use ba_graph::{GraphView, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Which edge operations the attacker may perform. Fig. 5 of the paper
/// demonstrates all three regimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EdgeOpKind {
    /// Add and delete edges (the default threat model).
    Both,
    /// Only add edges.
    AddOnly,
    /// Only delete edges.
    DeleteOnly,
}

impl EdgeOpKind {
    /// Whether the given pair state is eligible: a non-edge can only be
    /// added, an edge only deleted.
    #[inline]
    pub fn allows(self, is_edge: bool) -> bool {
        match self {
            EdgeOpKind::Both => true,
            EdgeOpKind::AddOnly => !is_edge,
            EdgeOpKind::DeleteOnly => is_edge,
        }
    }
}

/// Which pairs the optimiser considers.
///
/// The paper's attacker controls the whole graph (`Full`). Pairs that do
/// not touch a target's 2-hop neighbourhood only influence the objective
/// through the global regression, so restricting to `TargetNeighborhood`
/// is a cheap approximation we expose for large graphs and for the
/// scoping ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CandidateScope {
    /// All `n(n−1)/2` unordered pairs.
    Full,
    /// Pairs with at least one endpoint in the target set, plus all pairs
    /// among each target's neighbours (those close the target's
    /// triangles).
    TargetNeighborhood,
}

/// Upper-triangular pair indexer over `n` nodes: maps an unordered pair
/// `(i < j)` to a flat index in `[0, n(n−1)/2)` and back.
#[derive(Debug, Clone)]
pub struct PairSpace {
    n: usize,
    /// `offsets[i]` = flat index of pair `(i, i+1)`.
    offsets: Vec<usize>,
}

impl PairSpace {
    /// Creates a pair space over `n` nodes.
    pub fn new(n: usize) -> Self {
        let mut offsets = Vec::with_capacity(n);
        let mut acc = 0usize;
        for i in 0..n {
            offsets.push(acc);
            acc += n - 1 - i;
        }
        Self { n, offsets }
    }

    /// Number of nodes the pair space spans.
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// Number of unordered pairs.
    pub fn len(&self) -> usize {
        self.n * (self.n.saturating_sub(1)) / 2
    }

    /// `true` when there are no pairs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat index of pair `(i, j)` (any order, `i != j`).
    #[inline]
    pub fn index(&self, i: NodeId, j: NodeId) -> usize {
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        debug_assert!((j as usize) < self.n);
        self.offsets[i as usize] + (j - i - 1) as usize
    }

    /// Inverse of [`PairSpace::index`].
    pub fn pair(&self, idx: usize) -> (NodeId, NodeId) {
        debug_assert!(idx < self.len());
        // offsets is sorted; find the row via binary search.
        let i = match self.offsets.binary_search(&idx) {
            Ok(exact) => exact,
            Err(ins) => ins - 1,
        };
        let j = i + 1 + (idx - self.offsets[i]);
        (i as NodeId, j as NodeId)
    }
}

/// The concrete candidate set an attack optimises over.
#[derive(Debug, Clone)]
pub enum Candidates {
    /// The full pair space.
    Full(PairSpace),
    /// An explicit pair list (deduplicated, each `(i, j)` with `i < j`).
    List(Vec<(NodeId, NodeId)>),
}

impl Candidates {
    /// Builds the candidate set for a scope. Generic over graph views so
    /// the same candidates come out of a `Graph` or the frozen
    /// `CsrGraph` substrate a reused session runs on (both uphold the
    /// sorted-neighbour-slice contract).
    pub fn build<V: GraphView + ?Sized>(
        scope: CandidateScope,
        g: &V,
        targets: &[NodeId],
    ) -> Candidates {
        match scope {
            CandidateScope::Full => Candidates::Full(PairSpace::new(g.num_nodes())),
            CandidateScope::TargetNeighborhood => {
                let n = g.num_nodes() as NodeId;
                let mut set: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
                for &t in targets {
                    for x in 0..n {
                        if x != t {
                            set.insert(if t < x { (t, x) } else { (x, t) });
                        }
                    }
                    let nbrs: Vec<NodeId> = g.neighbors_sorted(t).to_vec();
                    for (ai, &a) in nbrs.iter().enumerate() {
                        for &b in &nbrs[ai + 1..] {
                            set.insert(if a < b { (a, b) } else { (b, a) });
                        }
                    }
                }
                Candidates::List(set.into_iter().collect())
            }
        }
    }

    /// Number of candidate pairs.
    pub fn len(&self) -> usize {
        match self {
            Candidates::Full(ps) => ps.len(),
            Candidates::List(v) => v.len(),
        }
    }

    /// `true` when there are no candidates.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Calls `f(flat_index, i, j)` for every candidate pair.
    pub fn for_each(&self, f: impl FnMut(usize, NodeId, NodeId)) {
        self.for_each_range(0, self.len(), f);
    }

    /// Calls `f(flat_index, i, j)` for the candidates in
    /// `[start, end)`, walking pairs incrementally (no per-index
    /// decode) — the kernel the chunked parallel gradient assembly
    /// iterates with.
    pub fn for_each_range(
        &self,
        start: usize,
        end: usize,
        mut f: impl FnMut(usize, NodeId, NodeId),
    ) {
        debug_assert!(start <= end && end <= self.len());
        if start >= end {
            return;
        }
        match self {
            Candidates::Full(ps) => {
                let n = ps.n as NodeId;
                let (mut i, mut j) = ps.pair(start);
                for idx in start..end {
                    f(idx, i, j);
                    j += 1;
                    if j == n {
                        i += 1;
                        j = i + 1;
                    }
                }
            }
            Candidates::List(v) => {
                for (off, &(i, j)) in v[start..end].iter().enumerate() {
                    f(start + off, i, j);
                }
            }
        }
    }

    /// The pair at a flat index.
    pub fn pair(&self, idx: usize) -> (NodeId, NodeId) {
        match self {
            Candidates::Full(ps) => ps.pair(idx),
            Candidates::List(v) => v[idx],
        }
    }

    /// Flat index of a pair, when the pair is in the set.
    pub fn index_of(&self, i: NodeId, j: NodeId) -> Option<usize> {
        let key = if i < j { (i, j) } else { (j, i) };
        match self {
            Candidates::Full(ps) => Some(ps.index(key.0, key.1)),
            Candidates::List(v) => v.binary_search(&key).ok(),
        }
    }
}

/// A fixed-length bitvec over candidate indices.
///
/// The greedy search's never-revisit pool used to be a
/// `HashSet<u64>` of packed pairs — a hash probe per candidate per
/// step. [`Candidates`] already assigns every pair a dense flat index,
/// so membership is one shift-and-mask into a word array: no hashing,
/// no allocation after construction, and the whole pool for a
/// 10⁵-pair candidate set is ~12 KiB of contiguous bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexBitSet {
    words: Vec<u64>,
    len: usize,
}

impl IndexBitSet {
    /// An all-clear set over `len` indices.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of indices the set covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the set covers no indices.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `idx` is set.
    #[inline]
    pub fn contains(&self, idx: usize) -> bool {
        debug_assert!(idx < self.len);
        self.words[idx >> 6] & (1u64 << (idx & 63)) != 0
    }

    /// Sets `idx`; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, idx: usize) -> bool {
        debug_assert!(idx < self.len);
        let word = &mut self.words[idx >> 6];
        let bit = 1u64 << (idx & 63);
        let fresh = *word & bit == 0;
        *word |= bit;
        fresh
    }

    /// Clears every bit (the pool is per-attack-run; sessions reuse
    /// the allocation).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Static validity mask for a candidate set: pairs excluded by the op
/// kind, or whose deletion would create a singleton in the *clean* graph.
/// (Dynamic singleton checks against the evolving poisoned graph are
/// performed again at application time.)
pub fn static_mask<V: GraphView + ?Sized>(
    candidates: &Candidates,
    g0: &V,
    kind: EdgeOpKind,
    forbid_singletons: bool,
) -> Vec<bool> {
    let mut ok = vec![false; candidates.len()];
    candidates.for_each(|idx, i, j| {
        let is_edge = g0.has_edge(i, j);
        let mut valid = kind.allows(is_edge);
        if valid && is_edge && forbid_singletons && !g0.deletion_keeps_no_singletons(i, j) {
            valid = false;
        }
        ok[idx] = valid;
    });
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_graph::Graph;

    #[test]
    fn pair_space_roundtrip() {
        let ps = PairSpace::new(7);
        assert_eq!(ps.len(), 21);
        let mut seen = vec![false; ps.len()];
        for i in 0..7u32 {
            for j in (i + 1)..7u32 {
                let idx = ps.index(i, j);
                assert!(!seen[idx], "index collision at ({i},{j})");
                seen[idx] = true;
                assert_eq!(ps.pair(idx), (i, j));
                // Order-insensitive:
                assert_eq!(ps.index(j, i), idx);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn pair_space_small_sizes() {
        assert_eq!(PairSpace::new(0).len(), 0);
        assert_eq!(PairSpace::new(1).len(), 0);
        assert_eq!(PairSpace::new(2).len(), 1);
        assert_eq!(PairSpace::new(2).pair(0), (0, 1));
    }

    #[test]
    fn op_kind_masks() {
        assert!(EdgeOpKind::Both.allows(true));
        assert!(EdgeOpKind::Both.allows(false));
        assert!(EdgeOpKind::AddOnly.allows(false));
        assert!(!EdgeOpKind::AddOnly.allows(true));
        assert!(EdgeOpKind::DeleteOnly.allows(true));
        assert!(!EdgeOpKind::DeleteOnly.allows(false));
    }

    #[test]
    fn full_candidates_enumerate_everything() {
        let g = Graph::from_edges(4, [(0, 1)]);
        let c = Candidates::build(CandidateScope::Full, &g, &[0]);
        assert_eq!(c.len(), 6);
        let mut pairs = Vec::new();
        c.for_each(|_, i, j| pairs.push((i, j)));
        assert_eq!(pairs.len(), 6);
        assert_eq!(c.index_of(2, 3), Some(5));
    }

    #[test]
    fn target_neighborhood_scope() {
        // Star around target 0 with extra far-away edge (3,4).
        let g = Graph::from_edges(6, [(0, 1), (0, 2), (3, 4)]);
        let c = Candidates::build(CandidateScope::TargetNeighborhood, &g, &[0]);
        // Pairs touching 0: (0,1)..(0,5) = 5; plus neighbour pair (1,2).
        assert_eq!(c.len(), 6);
        assert!(c.index_of(1, 2).is_some());
        assert!(c.index_of(3, 4).is_none());
        // Flat-index/pair roundtrip for lists.
        for idx in 0..c.len() {
            let (i, j) = c.pair(idx);
            assert_eq!(c.index_of(i, j), Some(idx));
        }
    }

    #[test]
    fn index_bitset_insert_contains_clear() {
        let mut s = IndexBitSet::new(130);
        assert_eq!(s.len(), 130);
        assert!(!s.is_empty());
        assert!(!s.contains(0) && !s.contains(129));
        assert!(s.insert(129));
        assert!(!s.insert(129), "second insert reports not-fresh");
        assert!(s.insert(0) && s.insert(64));
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(63));
        assert_eq!(s.count(), 3);
        s.clear();
        assert_eq!(s.count(), 0);
        assert!(!s.contains(129));
        assert!(IndexBitSet::new(0).is_empty());
    }

    #[test]
    fn static_mask_respects_singletons_and_kind() {
        // Path 0-1-2: deleting (0,1) would isolate 0.
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let c = Candidates::build(CandidateScope::Full, &g, &[1]);
        let mask_both = static_mask(&c, &g, EdgeOpKind::Both, true);
        // (0,1): edge whose deletion isolates 0 → masked.
        assert!(!mask_both[c.index_of(0, 1).unwrap()]);
        // (0,2): non-edge, addable.
        assert!(mask_both[c.index_of(0, 2).unwrap()]);
        let mask_del = static_mask(&c, &g, EdgeOpKind::DeleteOnly, false);
        assert!(mask_del[c.index_of(0, 1).unwrap()]);
        assert!(!mask_del[c.index_of(0, 2).unwrap()]);
    }
}
