//! Dense-adjacency forward/backward passes — **ContinuousA only**.
//!
//! ContinuousA relaxes the whole adjacency to `Ã ∈ [0,1]^{n×n}` (paper
//! Sec. V-A2), so its state is genuinely dense and its products cannot be
//! expressed as common-neighbour merges. Everything dense is quarantined
//! here and routed through `ba_linalg::par_matmul` with a worker count
//! from [`crate::grad::resolve_threads`] (autodetected via
//! `std::thread::available_parallelism` when the caller passes 0). The
//! binary-graph attacks (`BinarizedAttack`, `GradMaxSearch`) never touch
//! this module — their gradient is assembled sparsely in [`crate::grad`].

use crate::grad::{resolve_threads, NodeGrads};
use ba_linalg::Matrix;

/// Dense pair gradient for a *fractional* symmetric adjacency matrix.
/// Returns an `n × n` symmetric matrix `G` whose `(i,j)` entry is the
/// derivative w.r.t. the unordered pair; the diagonal is 0.
///
/// Uses two thread-parallel dense products: `A²` and `A·diag(gE)·A`.
pub fn dense_pair_gradient(a: &Matrix, ng: &NodeGrads, threads: usize) -> Matrix {
    let n = a.rows();
    assert_eq!(n, a.cols(), "adjacency must be square");
    assert_eq!(n, ng.h.len(), "gradient size mismatch");
    let threads = resolve_threads(threads);
    let a2 = ba_linalg::par_matmul(a, a, threads);
    // AW: scale columns of A by gE (W = diag(gE)); then (AW)·A.
    let mut aw = a.clone();
    for i in 0..n {
        let row = aw.row_mut(i);
        for (j, x) in row.iter_mut().enumerate() {
            *x *= ng.g_e[j];
        }
    }
    let awa = ba_linalg::par_matmul(&aw, a, threads);
    let mut g = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            g[(i, j)] = ng.h[i] + ng.h[j] + a2[(i, j)] * (ng.g_e[i] + ng.g_e[j]) + awa[(i, j)];
        }
    }
    g
}

/// Computes fractional egonet features `N = A·1`, `E = N + ½ diag(A³)`
/// from a dense symmetric adjacency. Returns `(n, e)`.
pub fn dense_features(a: &Matrix, threads: usize) -> (Vec<f64>, Vec<f64>) {
    let n = a.rows();
    let a2 = ba_linalg::par_matmul(a, a, resolve_threads(threads));
    let mut deg = vec![0.0; n];
    let mut e = vec![0.0; n];
    for i in 0..n {
        let row = a.row(i);
        deg[i] = row.iter().sum();
        // diag(A³)_i = Σ_m (A²)_im A_mi = row_i(A²)·row_i(A) for symmetric A.
        let a2row = a2.row(i);
        let t: f64 = a2row.iter().zip(row).map(|(x, y)| x * y).sum();
        e[i] = deg[i] + 0.5 * t;
    }
    (deg, e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad::{node_grads, pair_grad};
    use ba_graph::egonet::egonet_features;
    use ba_graph::generators;

    #[test]
    fn dense_features_match_sparse_on_binary_graph() {
        let g = generators::erdos_renyi(50, 0.1, 4);
        let feats = egonet_features(&g);
        let a = ba_linalg::Matrix::from_vec(50, 50, ba_graph::adjacency::to_row_major(&g));
        let (n_dense, e_dense) = dense_features(&a, 2);
        for k in 0..50 {
            assert!((feats.n[k] - n_dense[k]).abs() < 1e-9);
            assert!((feats.e[k] - e_dense[k]).abs() < 1e-9, "node {k}");
        }
    }

    #[test]
    fn dense_pair_gradient_matches_sparse_on_binary_graph() {
        let g = generators::erdos_renyi(40, 0.12, 5);
        let feats = egonet_features(&g);
        let ng = node_grads(&feats.n, &feats.e, &[0, 8]).unwrap();
        let a = ba_linalg::Matrix::from_vec(40, 40, ba_graph::adjacency::to_row_major(&g));
        let dense = dense_pair_gradient(&a, &ng, 2);
        for i in 0..40u32 {
            for j in (i + 1)..40u32 {
                let sparse = pair_grad(&g, &ng, i, j);
                let d = dense[(i as usize, j as usize)];
                assert!(
                    (sparse - d).abs() < 1e-9,
                    "pair ({i},{j}): sparse {sparse} vs dense {d}"
                );
            }
        }
    }

    #[test]
    fn autodetected_threads_match_serial() {
        let g = generators::erdos_renyi(64, 0.1, 6);
        let feats = egonet_features(&g);
        let ng = node_grads(&feats.n, &feats.e, &[1, 2]).unwrap();
        let a = ba_linalg::Matrix::from_vec(64, 64, ba_graph::adjacency::to_row_major(&g));
        let serial = dense_pair_gradient(&a, &ng, 1);
        let auto = dense_pair_gradient(&a, &ng, 0); // available_parallelism
        assert!((&serial - &auto).max_abs() == 0.0);
    }
}
