//! The attack's surrogate objective (paper Eq. (5a)) evaluated from
//! feature vectors, with the OLS fit inlined in closed form.

use ba_linalg::solve2;
use ba_oddball::log_features;

/// Errors while evaluating the objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossError {
    /// The log-feature design matrix is singular (all degrees equal).
    DegenerateRegression,
    /// A target index is out of range.
    TargetOutOfRange,
}

impl std::fmt::Display for LossError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LossError::DegenerateRegression => write!(f, "degenerate regression"),
            LossError::TargetOutOfRange => write!(f, "target index out of range"),
        }
    }
}

impl std::error::Error for LossError {}

/// Clamped exponential: the regression can momentarily produce extreme
/// `ρ` values on adversarial intermediate graphs; clamping keeps the
/// optimiser finite without affecting any realistic operating point.
#[inline]
pub(crate) fn safe_exp(x: f64) -> f64 {
    x.clamp(-60.0, 60.0).exp()
}

/// Fits `v = β0 + β1 u` by OLS in closed form (paper Eq. (2), reduced to
/// the 2×2 normal equations). Returns `(β0, β1)`.
pub fn fit_beta(u: &[f64], v: &[f64]) -> Result<(f64, f64), LossError> {
    let n = u.len() as f64;
    let mut su = 0.0;
    let mut suu = 0.0;
    let mut sv = 0.0;
    let mut suv = 0.0;
    for (&ui, &vi) in u.iter().zip(v) {
        su += ui;
        suu += ui * ui;
        sv += vi;
        suv += ui * vi;
    }
    solve2(n, su, su, suu, sv, suv).map_err(|_| LossError::DegenerateRegression)
}

/// Evaluates the surrogate loss `Σ_{a∈T} (E_a − e^{ρ_a})²` from raw
/// feature vectors, fitting the regression internally.
pub fn surrogate_loss_from_features(
    n: &[f64],
    e: &[f64],
    targets: &[u32],
) -> Result<f64, LossError> {
    if targets.iter().any(|&t| t as usize >= n.len()) {
        return Err(LossError::TargetOutOfRange);
    }
    let (u, v) = log_features(n, e);
    let (b0, b1) = fit_beta(&u, &v)?;
    let mut loss = 0.0;
    for &a in targets {
        let idx = a as usize;
        let rho = b0 + b1 * u[idx];
        let r = e[idx].max(1.0) - safe_exp(rho);
        loss += r * r;
    }
    Ok(loss)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_beta_matches_linalg_ols() {
        let u = [0.0, 1.0, 2.0, 3.0];
        let v = [1.0, 3.1, 4.9, 7.0];
        let (b0, b1) = fit_beta(&u, &v).unwrap();
        let fit = ba_linalg::simple_ols(&u, &v).unwrap();
        assert!((b0 - fit.intercept).abs() < 1e-12);
        assert!((b1 - fit.slope).abs() < 1e-12);
    }

    #[test]
    fn degenerate_fit_detected() {
        let u = [2.0, 2.0, 2.0];
        let v = [1.0, 2.0, 3.0];
        assert_eq!(fit_beta(&u, &v), Err(LossError::DegenerateRegression));
    }

    #[test]
    fn loss_zero_when_targets_on_the_line() {
        // Construct features exactly on a power law E = N^1.5 and target a
        // node: loss must vanish.
        let n: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let e: Vec<f64> = n.iter().map(|&x| x.powf(1.5)).collect();
        let loss = surrogate_loss_from_features(&n, &e, &[4]).unwrap();
        assert!(loss < 1e-12, "loss = {loss}");
    }

    #[test]
    fn loss_positive_for_outlier_target() {
        let mut n: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let mut e: Vec<f64> = n.iter().map(|&x| x.powf(1.5)).collect();
        n.push(5.0);
        e.push(100.0); // far off the law
        let loss = surrogate_loss_from_features(&n, &e, &[20]).unwrap();
        assert!(loss > 100.0);
    }

    #[test]
    fn target_out_of_range_rejected() {
        let n = [1.0, 2.0];
        let e = [1.0, 2.0];
        assert_eq!(
            surrogate_loss_from_features(&n, &e, &[5]),
            Err(LossError::TargetOutOfRange)
        );
    }

    #[test]
    fn safe_exp_clamps() {
        assert!(safe_exp(1000.0).is_finite());
        assert!(safe_exp(-1000.0) > 0.0);
        assert!((safe_exp(1.0) - 1.0f64.exp()).abs() < 1e-12);
    }
}
