//! # ba-core
//!
//! The paper's primary contribution: **targeted structural poisoning
//! attacks against OddBall** (paper Secs. IV–V), implemented as three
//! methods sharing one analytic gradient engine:
//!
//! * [`BinarizedAttack`] — the proposed method (Alg. 1): each candidate
//!   pair carries a continuous soft decision variable `Ż ∈ [0,1]` and a
//!   discrete dummy `Z ∈ {−1,+1}`; the forward pass evaluates the
//!   objective on the *discrete* poisoned graph, the backward pass updates
//!   `Ż` through a straight-through estimator with a LASSO budget penalty,
//!   swept over a grid of penalty weights `λ`.
//! * [`GradMaxSearch`] — the greedy baseline: per step, flip the
//!   sign-consistent pair with the largest gradient magnitude.
//! * [`ContinuousA`] — the full-relaxation baseline: projected gradient
//!   descent over `Ã ∈ [0,1]^{n×n}`, then round the top-B changes.
//!
//! Plus two non-gradient baselines used in ablations: [`RandomAttack`]
//! and [`CliqueBreaker`].
//!
//! ## The gradient engine
//!
//! The attack objective is bi-level: `L(A) = Σ_{a∈T} (E_a − e^{ρ_a})²`
//! where `ρ_a = β0 + β1 ln N_a` and `(β0, β1)` are the OLS solution over
//! *all* nodes' log-features (paper Eq. (5)). Because OLS has a closed
//! form, the total derivative w.r.t. every adjacency entry also has a
//! closed form (see [`grad`] and DESIGN.md §3.2); `ba-core`'s test-suite
//! verifies it against `ba-autodiff` and central finite differences.
//!
//! ## Example
//!
//! ```
//! use ba_core::{AttackConfig, BinarizedAttack, StructuralAttack};
//! use ba_graph::generators;
//! use ba_oddball::OddBall;
//!
//! let mut g = generators::erdos_renyi(120, 0.05, 3);
//! generators::plant_near_clique(&mut g, &[0, 1, 2, 3, 4, 5, 6, 7], 1.0, 4);
//! let model = OddBall::default().fit(&g).unwrap();
//! let targets = vec![model.top_k(1)[0].0];
//! let s0 = model.target_score_sum(&targets);
//!
//! let attack = BinarizedAttack::new(AttackConfig::default());
//! let outcome = attack.attack(&g, &targets, 10).unwrap();
//! let poisoned = outcome.poisoned_graph(&g, 10);
//! let s_b = OddBall::default().fit(&poisoned).unwrap().target_score_sum(&targets);
//! assert!(s_b < s0, "attack failed to reduce the target score: {s_b} >= {s0}");
//! ```

pub mod attack;
pub mod baselines;
pub mod binarized;
pub mod continuous;
pub mod dense;
pub mod grad;
pub mod gradmax;
pub mod loss;
pub mod pair;
pub mod session;
pub mod tt;

pub use attack::{AttackConfig, AttackError, AttackOutcome, CurveError, StructuralAttack};
pub use baselines::{CliqueBreaker, RandomAttack};
pub use binarized::BinarizedAttack;
pub use continuous::ContinuousA;
pub use dense::{dense_features, dense_pair_gradient};
pub use grad::{
    assemble_pair_grads, assemble_pair_grads_into, assemble_pair_grads_with_scratch,
    correction_map, node_grads, pair_grad, pair_grads_for_indices, resolve_threads, NodeGrads,
};
pub use gradmax::GradMaxSearch;
pub use loss::{fit_beta, surrogate_loss_from_features, LossError};
pub use pair::{CandidateScope, Candidates, EdgeOpKind, IndexBitSet, PairSpace};
pub use session::{target_set_hash, AttackSession, MemoStats, SearchMemo};
pub use tt::{TransTable, TtStats};
