//! The shared attack pipeline state.
//!
//! Every attack needs the same loop machinery: the clean graph, a
//! mutable working copy, incrementally-maintained egonet features, the
//! surrogate forward pass, and the pair-gradient backward pass.
//! [`AttackSession`] owns that state once — a [`DeltaOverlay`] over the
//! frozen [`CsrGraph`] substrate plus an [`IncrementalEgonet`] — so
//! `BinarizedAttack`, `GradMaxSearch`, and the non-gradient baselines
//! share one forward/score/flip implementation instead of each cloning
//! the graph and re-deriving features. Resetting to the clean graph
//! (done once per λ sweep and once per budget extraction) drops the
//! overlay's dirty rows and restores cached base features: `O(edits)`,
//! not `O(n + m)`.
//!
//! ## Search memoization
//!
//! The session optionally carries a [`SearchMemo`]: a Zobrist state
//! hash ([`AttackSession::state_hash`] = edge-set hash ⊕ target-set
//! hash, maintained in O(1) per [`AttackSession::toggle`]) keying a
//! small cache hierarchy —
//!
//! * an LRU of recent whole-assembly outputs (state + mask ⇒ memcpy),
//!   which absorbs the PGD tail where the re-binarised graph cycles
//!   through a handful of states;
//! * an LRU of recent [`NodeGrads`] forward passes;
//! * a bounded per-candidate [`TransTable`] of pair-gradient and loss
//!   evaluations, the second chance for states whose full vector has
//!   aged out of the LRU (λ restarts from the clean graph, long-period
//!   revisits, budget-extraction replays).
//!
//! The memo is *transparent*: every cached value was produced by the
//! exact code path that would otherwise run, so cached and uncached
//! sessions are bit-identical — pinned by the golden suite in
//! `tests/search_memo.rs` — and it is off by default
//! ([`AttackSession::with_memo`] opts in).

use crate::attack::{validate_targets, AttackError, AttackOutcome};
use crate::grad::{
    assemble_pair_grads_with_scratch, node_grads, pair_grads_for_indices, NodeGrads,
};
use crate::loss::surrogate_loss_from_features;
use crate::pair::Candidates;
use crate::tt::{TransTable, TtStats};
use ba_graph::egonet::{EgonetFeatures, IncrementalEgonet};
use ba_graph::zobrist::splitmix64;
use ba_graph::{CsrGraph, DeltaOverlay, EdgeOp, GraphView, NodeId};

/// Seed for the target-set fold in [`target_set_hash`]. Fixed — part of
/// the determinism contract, like [`ba_graph::zobrist::EDGE_KEY_SEED`].
const TARGET_HASH_SEED: u64 = 0x51_7cc1_b727_2209;

/// Reserved slot code for state-level *loss* entries in the
/// transposition table, disjoint from candidate indices (which are
/// bounded by the pair-space size, far below `u64::MAX`).
const LOSS_CODE: u64 = u64::MAX;

/// Hash of a target list: a sequential SplitMix64 fold, so it is
/// sensitive to order and multiplicity — deliberately, because the
/// loss sums target residuals in list order and floating-point
/// addition is not commutative in the bits. Two sessions hash equal
/// only if their losses are guaranteed bit-equal.
pub fn target_set_hash(targets: &[NodeId]) -> u64 {
    let mut h = TARGET_HASH_SEED;
    for &t in targets {
        h = splitmix64(h ^ (t as u64 + 1));
    }
    h
}

/// Maximum [`NodeGrads`] LRU depth (each entry is a few `O(n)` arrays).
const NG_SLOTS: usize = 24;

/// Memory budget for the whole-assembly LRU; the slot count adapts to
/// the candidate-space size so big graphs don't blow up the session.
const GRADS_CACHE_BYTES: usize = 12 << 20;

/// Maximum whole-assembly LRU depth (small graphs would otherwise get
/// hundreds of slots out of the byte budget; past the PGD oscillation
/// period extra depth stops paying).
const GRADS_SLOTS_MAX: usize = 24;

/// Probes sampled from the transposition table before committing to the
/// per-candidate walk: a state whose full vector aged out of the LRU
/// answers nearly every sample, a never-seen state answers none — in
/// which case the walk (and its per-probe overhead) is skipped in
/// favour of the bulk assembly.
const TT_SAMPLE: usize = 128;

/// Entry capacity of the dedicated state-level loss table. Loss keys
/// are spread by hash, so this comfortably outlives the distinct states
/// a budget-extraction sweep replays.
const LOSS_TABLE_ENTRIES: usize = 1 << 12;

/// Maximum whole-run outcome LRU depth. Outcomes are small (per-budget
/// op lists and loss curves), so this comfortably covers the distinct
/// (attack, target set, budget) cells a suite revisits.
const OUTCOME_SLOTS: usize = 32;

/// Counter snapshot of a session's [`SearchMemo`] (see
/// [`AttackSession::memo_stats`]); surfaced as `BENCH_search.json`
/// metrics so cache effectiveness is tracked per commit.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemoStats {
    /// Pair-gradient transposition-table counters.
    pub table: TtStats,
    /// State-level loss memo hits ([`AttackSession::loss`]).
    pub loss_hits: u64,
    /// State-level loss memo misses (computed fresh).
    pub loss_misses: u64,
    /// State-level [`NodeGrads`] cache hits.
    pub ng_hits: u64,
    /// State-level [`NodeGrads`] cache misses (computed fresh).
    pub ng_misses: u64,
    /// Whole-assembly short-circuits: a recent
    /// [`AttackSession::pair_gradients_into`] call had the identical
    /// state and mask, so its output was copied wholesale.
    pub grads_hits: u64,
    /// Assemblies that missed the whole-assembly LRU and went to the
    /// transposition table or the cold path.
    pub grads_misses: u64,
    /// Whole-run replays: an attack re-ran a (clean state, target set,
    /// hyper-parameter) cell this session had already searched, and the
    /// stored outcome was returned without re-searching.
    pub outcome_hits: u64,
    /// Whole-run searches actually performed.
    pub outcome_misses: u64,
}

/// One resident whole-assembly output: the exact `(state, mask)` query
/// and the vector it produced, plus how often it was replayed while
/// resident (recurrent states earn a transposition-table afterlife on
/// eviction).
#[derive(Debug, Clone)]
struct GradsSlot {
    state: u64,
    hits: u32,
    mask: Vec<bool>,
    out: Vec<f64>,
}

/// Session-attached memoization state: the bounded [`TransTable`] plus
/// the state-level LRU caches in front of it. Constructed via
/// [`AttackSession::with_memo`] / [`AttackSession::with_memo_capacity`].
///
/// All reuse is keyed by the full session state hash (edge set and
/// target set), so one memo safely spans budget steps, λ sweeps, and
/// [`AttackSession::retarget`] within a session — entries from other
/// states or target sets can collide into the same bucket but never
/// match keys.
#[derive(Debug, Clone)]
pub struct SearchMemo {
    table: TransTable,
    /// State-level loss entries, kept apart from the candidate-indexed
    /// table so dense per-candidate store sweeps can never flood them
    /// out of their buckets.
    loss_table: TransTable,
    /// [`NodeGrads`] LRU, most recent first.
    ng_slots: Vec<(u64, NodeGrads)>,
    ng_hits: u64,
    ng_misses: u64,
    /// Whole-assembly LRU, most recent first. Exact state *and* mask
    /// match required — no hashing, no collision risk.
    grads_slots: Vec<GradsSlot>,
    grads_hits: u64,
    grads_misses: u64,
    /// Whole-run outcome LRU, most recent first: `(cell key, outcome)`.
    /// The deepest memo tier — a suite that revisits an identical
    /// search cell replays the stored result instead of re-searching
    /// (the transposition-table idea applied to whole subtrees).
    outcomes: Vec<(u64, AttackOutcome)>,
    outcome_hits: u64,
    outcome_misses: u64,
    /// Per-candidate `splitmix64(idx)` half of [`TransTable::full_key`],
    /// precomputed once per candidate-space size.
    idx_keys: Vec<u64>,
    /// Scratch: miss indices (ascending) and their computed values.
    miss_idx: Vec<u32>,
    miss_vals: Vec<f64>,
}

impl SearchMemo {
    /// A memo whose table holds at most `entries` cached evaluations.
    pub fn new(entries: usize) -> Self {
        Self {
            table: TransTable::new(entries),
            loss_table: TransTable::new(LOSS_TABLE_ENTRIES),
            ng_slots: Vec::new(),
            ng_hits: 0,
            ng_misses: 0,
            grads_slots: Vec::new(),
            grads_hits: 0,
            grads_misses: 0,
            outcomes: Vec::new(),
            outcome_hits: 0,
            outcome_misses: 0,
            idx_keys: Vec::new(),
            miss_idx: Vec::new(),
            miss_vals: Vec::new(),
        }
    }

    /// Default capacity heuristic: room for two full candidate sets of
    /// an `n`-node graph (so the clean state and one search frontier
    /// stay resident together), clamped to [2¹⁰, 2²¹] entries (16 KiB
    /// to 32 MiB of table).
    pub fn for_nodes(num_nodes: usize) -> Self {
        let pairs = num_nodes.saturating_mul(num_nodes.saturating_sub(1)) / 2;
        Self::new((2 * pairs).clamp(1 << 10, 1 << 21))
    }

    /// Counter snapshot.
    pub fn stats(&self) -> MemoStats {
        let loss = self.loss_table.stats();
        MemoStats {
            table: self.table.stats(),
            loss_hits: loss.hits,
            loss_misses: loss.misses,
            ng_hits: self.ng_hits,
            ng_misses: self.ng_misses,
            grads_hits: self.grads_hits,
            grads_misses: self.grads_misses,
            outcome_hits: self.outcome_hits,
            outcome_misses: self.outcome_misses,
        }
    }

    /// Whole-assembly LRU depth for a candidate space of `len` pairs:
    /// as many slots as fit the byte budget, at least two (the minimum
    /// that holds a period-2 PGD oscillation), at most
    /// [`GRADS_SLOTS_MAX`].
    fn grads_capacity(len: usize) -> usize {
        let per_slot = len * (size_of::<f64>() + size_of::<bool>()) + size_of::<GradsSlot>();
        (GRADS_CACHE_BYTES / per_slot.max(1)).clamp(2, GRADS_SLOTS_MAX)
    }

    /// Ensures `idx_keys[i] == splitmix64(i)` for the whole candidate
    /// space (grown once; candidate spaces only change on retarget,
    /// and shrinking would discard nothing reusable).
    fn ensure_idx_keys(&mut self, len: usize) {
        let from = self.idx_keys.len();
        if from < len {
            self.idx_keys
                .extend((from..len).map(|i| splitmix64(i as u64)));
        }
    }
}

/// Mutable attack state over a frozen CSR substrate: the poisoned graph
/// as a delta overlay, live egonet features, and the target set.
#[derive(Debug, Clone)]
pub struct AttackSession<'g> {
    overlay: DeltaOverlay<'g>,
    inc: IncrementalEgonet,
    base_feats: EgonetFeatures,
    targets: Vec<NodeId>,
    /// Zobrist fold of `targets` — combined with the overlay's edge-set
    /// hash this keys all memoized evaluations.
    target_hash: u64,
    threads: usize,
    /// Reusable correction buffer for the backward pass (one assembly
    /// per optimiser iteration; candidate-sized).
    grad_scratch: Vec<(f64, f64)>,
    /// Optional search memoization (off by default; boxed because the
    /// memo dwarfs the rest of the session).
    memo: Option<Box<SearchMemo>>,
}

impl<'g> AttackSession<'g> {
    /// Opens a session on a clean graph. Validates the target set and
    /// extracts the base features once.
    pub fn new(base: &'g CsrGraph, targets: &[NodeId]) -> Result<Self, AttackError> {
        validate_targets(base, targets)?;
        let inc = IncrementalEgonet::new(base);
        let base_feats = inc.features().clone();
        Ok(Self {
            overlay: DeltaOverlay::new(base),
            inc,
            base_feats,
            targets: targets.to_vec(),
            target_hash: target_set_hash(targets),
            threads: 0,
            grad_scratch: Vec::new(),
            memo: None,
        })
    }

    /// Overrides the worker-thread count for gradient assembly
    /// (`0` = autodetect).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Attaches a [`SearchMemo`] with the default capacity heuristic
    /// ([`SearchMemo::for_nodes`]). Memoized sessions return
    /// bit-identical results to unmemoized ones — the memo trades
    /// memory for wall-clock, nothing else.
    pub fn with_memo(self) -> Self {
        let n = self.overlay.base().num_nodes();
        self.with_memo_capacity_from(SearchMemo::for_nodes(n))
    }

    /// Attaches a [`SearchMemo`] whose table holds at most `entries`
    /// cached evaluations.
    pub fn with_memo_capacity(self, entries: usize) -> Self {
        self.with_memo_capacity_from(SearchMemo::new(entries))
    }

    fn with_memo_capacity_from(mut self, memo: SearchMemo) -> Self {
        self.memo = Some(Box::new(memo));
        self
    }

    /// Detaches and discards the memo, returning the session to the
    /// plain recompute-everything behaviour.
    pub fn without_memo(mut self) -> Self {
        self.memo = None;
        self
    }

    /// `true` when a [`SearchMemo`] is attached.
    pub fn memo_enabled(&self) -> bool {
        self.memo.is_some()
    }

    /// Counter snapshot of the attached memo, `None` when memoization
    /// is off.
    pub fn memo_stats(&self) -> Option<MemoStats> {
        self.memo.as_deref().map(SearchMemo::stats)
    }

    /// The Zobrist hash of the session state every memoized evaluation
    /// is keyed by: current edge set ⊕ target set. Maintained
    /// incrementally — O(1) per toggle, restored exactly by
    /// [`AttackSession::reset`] / [`AttackSession::retarget`] — and
    /// always equal to hashing the materialised edge set from scratch
    /// (pinned by proptest in `tests/search_memo.rs`).
    #[inline]
    pub fn state_hash(&self) -> u64 {
        self.overlay.edge_set_hash() ^ self.target_hash
    }

    /// The target node set.
    pub fn targets(&self) -> &[NodeId] {
        &self.targets
    }

    /// The clean-graph substrate the session was opened on.
    pub fn base(&self) -> &'g CsrGraph {
        self.overlay.base()
    }

    /// The current (possibly poisoned) graph view.
    pub fn graph(&self) -> &DeltaOverlay<'g> {
        &self.overlay
    }

    /// Current egonet features (kept incrementally; never recomputed).
    pub fn features(&self) -> &EgonetFeatures {
        self.inc.features()
    }

    /// Drops all edits, returning to the clean graph in `O(dirty rows)`.
    pub fn reset(&mut self) {
        self.overlay.reset();
        self.inc = IncrementalEgonet::from_features(self.base_feats.clone());
    }

    /// Re-points the session at a new target set and drops all edits.
    ///
    /// This is the cheap path for running many attacks over one frozen
    /// substrate: the cached base features survive, so swapping targets
    /// costs `O(dirty rows)` instead of the `O(n + m)` feature pass a
    /// fresh [`AttackSession::new`] performs. Equivalence with a fresh
    /// session is pinned by a proptest in `tests/session_equivalence.rs`.
    /// An attached memo survives too — its entries are keyed by the
    /// target hash, so evaluations for previously-seen target sets stay
    /// reusable and other target sets' entries can never be confused
    /// for this one's.
    pub fn retarget(&mut self, targets: &[NodeId]) -> Result<(), AttackError> {
        validate_targets(self.overlay.base(), targets)?;
        self.targets.clear();
        self.targets.extend_from_slice(targets);
        self.target_hash = target_set_hash(targets);
        self.reset();
        Ok(())
    }

    /// Toggles the pair `{i, j}` on the working graph, patching features
    /// incrementally. Returns the op performed (`None` for self-loops).
    pub fn toggle(&mut self, i: NodeId, j: NodeId) -> Option<EdgeOp> {
        self.inc.toggle(&mut self.overlay, i, j)
    }

    /// Forward pass: surrogate loss and the per-node total derivatives at
    /// the current features. Memoized per state when a [`SearchMemo`] is
    /// attached (errors are never cached).
    pub fn node_grads(&mut self) -> Result<NodeGrads, AttackError> {
        let state = self.state_hash();
        if let Some(memo) = self.memo.as_deref_mut() {
            if let Some(pos) = memo.ng_slots.iter().position(|slot| slot.0 == state) {
                memo.ng_hits += 1;
                memo.ng_slots[..=pos].rotate_right(1);
                return Ok(memo.ng_slots[0].1.clone());
            }
            memo.ng_misses += 1;
        }
        let feats = self.inc.features();
        let ng = node_grads(&feats.n, &feats.e, &self.targets)?;
        if let Some(memo) = self.memo.as_deref_mut() {
            memo.ng_slots.truncate(NG_SLOTS - 1);
            memo.ng_slots.insert(0, (state, ng.clone()));
        }
        Ok(ng)
    }

    /// Surrogate loss at the current features (cheaper than a full
    /// [`AttackSession::node_grads`] when only the value is needed).
    /// Memoized per state when a [`SearchMemo`] is attached.
    pub fn loss(&mut self) -> Result<f64, AttackError> {
        let state = self.state_hash();
        let key = TransTable::full_key(state, LOSS_CODE);
        if let Some(memo) = self.memo.as_deref_mut() {
            // The key doubles as the slot code so loss entries spread
            // across their table instead of piling into one bucket.
            if let Some(v) = memo.loss_table.probe(key, key) {
                return Ok(v);
            }
        }
        let feats = self.inc.features();
        let loss = surrogate_loss_from_features(&feats.n, &feats.e, &self.targets)?;
        if let Some(memo) = self.memo.as_deref_mut() {
            memo.loss_table.store(key, key, loss);
        }
        Ok(loss)
    }

    /// Backward pass: assembles `G_ij` for every masked candidate pair
    /// into `out` via parallel sorted-merge common-neighbour scans over
    /// the current graph view. No dense matrix is allocated.
    ///
    /// With a [`SearchMemo`] attached the assembly is memoized at two
    /// levels. First the whole-assembly LRU: a recent call with the
    /// identical state and mask replays by memcpy (the PGD tail, where
    /// the re-binarised graph cycles through a handful of states).
    /// Otherwise the per-candidate transposition table, probed in
    /// ascending index order (consecutive buckets — the sequential scan
    /// the table's layout is built for): only the *miss list* is
    /// computed — contiguously, via [`pair_grads_for_indices`] — and
    /// stored back. A sampled pre-probe detects never-seen states and
    /// sends them straight to the regular cost-model assembly instead
    /// of paying a full walk of guaranteed misses. Every cached value
    /// equals the one the uncached path computes, so results are
    /// bit-identical either way.
    pub fn pair_gradients_into(
        &mut self,
        ng: &NodeGrads,
        candidates: &Candidates,
        mask: &[bool],
        out: &mut [f64],
    ) {
        let Some(memo) = self.memo.as_deref_mut() else {
            assemble_pair_grads_with_scratch(
                &self.overlay,
                ng,
                candidates,
                mask,
                self.threads,
                out,
                &mut self.grad_scratch,
            );
            return;
        };
        let len = candidates.len();
        assert_eq!(mask.len(), len, "mask length mismatch");
        assert_eq!(out.len(), len, "output length mismatch");
        let state = self.overlay.edge_set_hash() ^ self.target_hash;

        // Whole-assembly LRU: an exact (state, mask) repeat replays by
        // memcpy. Mask equality is checked verbatim (cheap: a state
        // match already filters to near-certain hits).
        if let Some(pos) = memo
            .grads_slots
            .iter()
            .position(|s| s.state == state && s.mask == mask)
        {
            memo.grads_slots[..=pos].rotate_right(1);
            let slot = &mut memo.grads_slots[0];
            slot.hits += 1;
            out.copy_from_slice(&slot.out);
            memo.grads_hits += 1;
            return;
        }
        memo.grads_misses += 1;
        memo.ensure_idx_keys(len);

        // Sampled pre-probe: states the table has never seen (the PGD
        // transient, fresh GradMax frontiers) would miss every one of
        // the per-candidate probes below — detect that from a handful
        // of samples and skip straight to the bulk assembly. Counters
        // are untouched here; the sample is a routing decision, not a
        // lookup (a false "cold" call only costs wall-clock, never
        // correctness).
        let mut sample_hits = 0u32;
        let mut sampled = 0u32;
        for (idx, &m) in mask.iter().enumerate() {
            if !m {
                continue;
            }
            sampled += 1;
            let key = TransTable::full_key_premixed(state, memo.idx_keys[idx]);
            if memo.table.peek(idx as u64, key) {
                sample_hits += 1;
            }
            if sampled as usize >= TT_SAMPLE {
                break;
            }
        }

        if sample_hits > 0 {
            // Warm state: per-candidate probes, ascending index; misses
            // pack into a contiguous work list and are computed as a
            // dense span of per-pair merges.
            memo.miss_idx.clear();
            for (idx, (&m, o)) in mask.iter().zip(out.iter_mut()).enumerate() {
                if !m {
                    *o = 0.0;
                    continue;
                }
                let key = TransTable::full_key_premixed(state, memo.idx_keys[idx]);
                match memo.table.probe(idx as u64, key) {
                    Some(v) => *o = v,
                    None => memo.miss_idx.push(idx as u32),
                }
            }
            if !memo.miss_idx.is_empty() {
                memo.miss_vals.clear();
                memo.miss_vals.resize(memo.miss_idx.len(), 0.0);
                pair_grads_for_indices(
                    &self.overlay,
                    ng,
                    candidates,
                    &memo.miss_idx,
                    self.threads,
                    &mut memo.miss_vals,
                );
                for (&idx, &v) in memo.miss_idx.iter().zip(memo.miss_vals.iter()) {
                    out[idx as usize] = v;
                    let key = TransTable::full_key_premixed(state, memo.idx_keys[idx as usize]);
                    memo.table.store(idx as u64, key, v);
                }
            }
        } else {
            // Cold state: the regular assembly (the cost model may pick
            // the wedge-scatter strategy, which beats per-pair merges on
            // dense candidate sets). The table is deliberately *not*
            // written here — most cold states never recur, and a full
            // per-candidate store sweep per PGD transient iteration
            // costs more than the occasional re-assembly it would save.
            // Recurrent states reach the table on LRU eviction below.
            assemble_pair_grads_with_scratch(
                &self.overlay,
                ng,
                candidates,
                mask,
                self.threads,
                out,
                &mut self.grad_scratch,
            );
        }

        // Install into the whole-assembly LRU. The eviction victim's
        // buffers are reused; if it was ever replayed while resident it
        // has proven itself recurrent, so its values are scattered into
        // the transposition table first — the second-chance tier that
        // outlives the LRU (λ restarts to the clean graph, long-period
        // revisits).
        let cap = SearchMemo::grads_capacity(len);
        let mut slot = if memo.grads_slots.len() >= cap {
            memo.grads_slots.truncate(cap);
            // ba-lint: allow(panic-path) -- grads_capacity() is >= 2 and the branch guard just proved len >= cap, so the pop always succeeds; restructuring would bury that invariant
            let victim = memo.grads_slots.pop().expect("cap >= 2");
            if victim.hits > 0 {
                for (idx, &m) in victim.mask.iter().enumerate() {
                    if !m {
                        continue;
                    }
                    let key = TransTable::full_key_premixed(victim.state, memo.idx_keys[idx]);
                    memo.table.store(idx as u64, key, victim.out[idx]);
                }
            }
            victim
        } else {
            GradsSlot {
                state: 0,
                hits: 0,
                mask: Vec::new(),
                out: Vec::new(),
            }
        };
        slot.state = state;
        slot.hits = 0;
        slot.mask.clear();
        slot.mask.extend_from_slice(mask);
        slot.out.clear();
        slot.out.extend_from_slice(out);
        memo.grads_slots.insert(0, slot);
    }

    /// Memo key for a whole search run: the current state hash (edge
    /// set ⊕ target set — the graph and targets the search will read)
    /// folded with an attack tag and its hyper-parameter bits. Two runs
    /// share a key only if every input the search depends on matches.
    pub(crate) fn run_key(&self, parts: &[u64]) -> u64 {
        let mut h = splitmix64(self.state_hash());
        for &p in parts {
            h = splitmix64(h ^ p);
        }
        h
    }

    /// Looks up a memoized whole-run outcome for `key`. A hit replays
    /// the stored result and resets the working graph to the clean
    /// state (attacks leave the session's edits unspecified; callers
    /// reset or retarget before reuse either way).
    pub(crate) fn memo_run_probe(&mut self, key: u64) -> Option<AttackOutcome> {
        let memo = self.memo.as_deref_mut()?;
        match memo.outcomes.iter().position(|(k, _)| *k == key) {
            Some(pos) => {
                memo.outcomes[..=pos].rotate_right(1);
                memo.outcome_hits += 1;
                let outcome = memo.outcomes[0].1.clone();
                self.reset();
                Some(outcome)
            }
            None => {
                memo.outcome_misses += 1;
                None
            }
        }
    }

    /// Records a completed search run's outcome under `key` (no-op
    /// without an attached memo).
    pub(crate) fn memo_run_store(&mut self, key: u64, outcome: &AttackOutcome) {
        if let Some(memo) = self.memo.as_deref_mut() {
            memo.outcomes.truncate(OUTCOME_SLOTS - 1);
            memo.outcomes.insert(0, (key, outcome.clone()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::CandidateScope;
    use ba_graph::egonet::egonet_features;
    use ba_graph::generators;

    #[test]
    fn session_tracks_features_and_resets() {
        let g = generators::erdos_renyi(50, 0.1, 3);
        let csr = CsrGraph::from(&g);
        let mut s = AttackSession::new(&csr, &[0, 1]).unwrap();
        let clean_loss = s.loss().unwrap();
        let clean_hash = s.state_hash();

        let op = s.toggle(0, 1).unwrap();
        assert_eq!(op.u, 0);
        assert_ne!(s.state_hash(), clean_hash);
        assert_eq!(s.features(), &egonet_features(s.graph()));
        s.toggle(2, 3);
        assert_eq!(s.features(), &egonet_features(s.graph()));

        s.reset();
        assert_eq!(s.graph().dirty_rows(), 0);
        assert_eq!(s.state_hash(), clean_hash);
        assert_eq!(s.loss().unwrap(), clean_loss);
        assert_eq!(s.features(), &egonet_features(&csr));
    }

    #[test]
    fn session_rejects_bad_targets() {
        let g = generators::erdos_renyi(10, 0.2, 1);
        let csr = CsrGraph::from(&g);
        assert!(matches!(
            AttackSession::new(&csr, &[]),
            Err(AttackError::NoTargets)
        ));
        assert!(matches!(
            AttackSession::new(&csr, &[99]),
            Err(AttackError::TargetOutOfRange(99))
        ));
    }

    #[test]
    fn session_gradients_match_standalone_assembly() {
        let g = generators::barabasi_albert(60, 3, 8);
        let csr = CsrGraph::from(&g);
        let targets = [2u32, 5];
        let mut s = AttackSession::new(&csr, &targets).unwrap();
        s.toggle(0, 7);
        let ng = s.node_grads().unwrap();
        let candidates = Candidates::build(CandidateScope::Full, &g, &targets);
        let mask = vec![true; candidates.len()];
        let mut out = vec![0.0; candidates.len()];
        s.pair_gradients_into(&ng, &candidates, &mask, &mut out);
        let reference = crate::grad::assemble_pair_grads(s.graph(), &ng, &candidates, &mask, 1);
        assert_eq!(out, reference);
    }

    #[test]
    fn memoized_session_is_bit_identical_and_actually_hits() {
        let g = generators::barabasi_albert(60, 3, 8);
        let csr = CsrGraph::from(&g);
        let targets = [2u32, 5];
        let mut plain = AttackSession::new(&csr, &targets).unwrap();
        let mut memo = AttackSession::new(&csr, &targets).unwrap().with_memo();
        assert!(memo.memo_enabled() && !plain.memo_enabled());

        let candidates = Candidates::build(CandidateScope::Full, &g, &targets);
        let mut mask = vec![true; candidates.len()];
        mask[1] = false;
        let mut out_p = vec![0.0; candidates.len()];
        let mut out_m = vec![0.0; candidates.len()];

        // Same script on both sessions, revisiting states: clean →
        // toggle → back to clean → same toggle again.
        for (i, j) in [(0u32, 7u32), (0, 7), (3, 9), (3, 9)] {
            for s in [&mut plain, &mut memo] {
                s.toggle(i, j);
            }
            assert_eq!(plain.loss().unwrap(), memo.loss().unwrap());
            let ng_p = plain.node_grads().unwrap();
            let ng_m = memo.node_grads().unwrap();
            assert_eq!(ng_p.loss, ng_m.loss);
            assert_eq!(ng_p.g_e, ng_m.g_e);
            plain.pair_gradients_into(&ng_p, &candidates, &mask, &mut out_p);
            memo.pair_gradients_into(&ng_m, &candidates, &mask, &mut out_m);
            assert_eq!(out_p, out_m);
            // Repeat at the same state: exercises the whole-assembly LRU.
            memo.pair_gradients_into(&ng_m, &candidates, &mask, &mut out_m);
            assert_eq!(out_p, out_m);
        }
        let stats = memo.memo_stats().unwrap();
        assert!(stats.loss_hits > 0, "revisited states must hit: {stats:?}");
        assert!(stats.ng_hits > 0);
        assert!(stats.grads_hits > 0);
        assert_eq!(plain.memo_stats(), None);
    }

    #[test]
    fn recurrent_state_survives_lru_eviction_via_table() {
        let g = generators::barabasi_albert(60, 3, 8);
        let csr = CsrGraph::from(&g);
        let targets = [2u32, 5];
        let mut plain = AttackSession::new(&csr, &targets).unwrap();
        let mut memo = AttackSession::new(&csr, &targets).unwrap().with_memo();
        let candidates = Candidates::build(CandidateScope::Full, &g, &targets);
        let mask = vec![true; candidates.len()];
        let mut out_p = vec![0.0; candidates.len()];
        let mut out_m = vec![0.0; candidates.len()];
        let assemble = |p: &mut AttackSession<'_>,
                        m: &mut AttackSession<'_>,
                        out_p: &mut [f64],
                        out_m: &mut [f64]| {
            let ng_p = p.node_grads().unwrap();
            let ng_m = m.node_grads().unwrap();
            p.pair_gradients_into(&ng_p, &candidates, &mask, out_p);
            m.pair_gradients_into(&ng_m, &candidates, &mask, out_m);
            assert_eq!(out_p, out_m);
        };

        // Make the clean state recurrent (one LRU replay), then flood
        // the LRU with more distinct states than it can hold so the
        // clean slot is evicted — and, being recurrent, scattered into
        // the transposition table.
        assemble(&mut plain, &mut memo, &mut out_p, &mut out_m);
        assemble(&mut plain, &mut memo, &mut out_p, &mut out_m);
        for k in 1..40u32 {
            for s in [&mut plain, &mut memo] {
                s.toggle(0, k).unwrap();
            }
            assemble(&mut plain, &mut memo, &mut out_p, &mut out_m);
        }
        // Coming home to the clean state must answer from the table
        // (the LRU lost it long ago) — and still be bit-identical.
        plain.reset();
        memo.reset();
        let tt_hits_before = memo.memo_stats().unwrap().table.hits;
        assemble(&mut plain, &mut memo, &mut out_p, &mut out_m);
        let stats = memo.memo_stats().unwrap();
        assert!(
            stats.table.hits > tt_hits_before,
            "evicted recurrent state must hit the table: {stats:?}"
        );
    }

    #[test]
    fn memo_survives_retarget_without_cross_talk() {
        let g = generators::erdos_renyi(40, 0.15, 9);
        let csr = CsrGraph::from(&g);
        let mut s = AttackSession::new(&csr, &[0, 1]).unwrap().with_memo();
        let h01 = s.state_hash();
        let loss01 = s.loss().unwrap();
        s.retarget(&[2, 3]).unwrap();
        assert_ne!(s.state_hash(), h01, "target set must feed the hash");
        let loss23 = s.loss().unwrap();
        assert_ne!(loss01, loss23);
        // Coming back to the original targets reproduces the original
        // state hash and the memoized loss.
        s.retarget(&[0, 1]).unwrap();
        assert_eq!(s.state_hash(), h01);
        assert_eq!(s.loss().unwrap(), loss01);
        // Target order matters (the loss sums residuals in list order).
        s.retarget(&[1, 0]).unwrap();
        assert_ne!(s.state_hash(), h01);
    }
}
