//! The shared attack pipeline state.
//!
//! Every attack needs the same loop machinery: the clean graph, a
//! mutable working copy, incrementally-maintained egonet features, the
//! surrogate forward pass, and the pair-gradient backward pass.
//! [`AttackSession`] owns that state once — a [`DeltaOverlay`] over the
//! frozen [`CsrGraph`] substrate plus an [`IncrementalEgonet`] — so
//! `BinarizedAttack`, `GradMaxSearch`, and the non-gradient baselines
//! share one forward/score/flip implementation instead of each cloning
//! the graph and re-deriving features. Resetting to the clean graph
//! (done once per λ sweep and once per budget extraction) drops the
//! overlay's dirty rows and restores cached base features: `O(edits)`,
//! not `O(n + m)`.

use crate::attack::{validate_targets, AttackError};
use crate::grad::{assemble_pair_grads_with_scratch, node_grads, NodeGrads};
use crate::loss::surrogate_loss_from_features;
use crate::pair::Candidates;
use ba_graph::egonet::{EgonetFeatures, IncrementalEgonet};
use ba_graph::{CsrGraph, DeltaOverlay, EdgeOp, NodeId};

/// Mutable attack state over a frozen CSR substrate: the poisoned graph
/// as a delta overlay, live egonet features, and the target set.
#[derive(Debug, Clone)]
pub struct AttackSession<'g> {
    overlay: DeltaOverlay<'g>,
    inc: IncrementalEgonet,
    base_feats: EgonetFeatures,
    targets: Vec<NodeId>,
    threads: usize,
    /// Reusable correction buffer for the backward pass (one assembly
    /// per optimiser iteration; candidate-sized).
    grad_scratch: Vec<(f64, f64)>,
}

impl<'g> AttackSession<'g> {
    /// Opens a session on a clean graph. Validates the target set and
    /// extracts the base features once.
    pub fn new(base: &'g CsrGraph, targets: &[NodeId]) -> Result<Self, AttackError> {
        validate_targets(base, targets)?;
        let inc = IncrementalEgonet::new(base);
        let base_feats = inc.features().clone();
        Ok(Self {
            overlay: DeltaOverlay::new(base),
            inc,
            base_feats,
            targets: targets.to_vec(),
            threads: 0,
            grad_scratch: Vec::new(),
        })
    }

    /// Overrides the worker-thread count for gradient assembly
    /// (`0` = autodetect).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The target node set.
    pub fn targets(&self) -> &[NodeId] {
        &self.targets
    }

    /// The clean-graph substrate the session was opened on.
    pub fn base(&self) -> &'g CsrGraph {
        self.overlay.base()
    }

    /// The current (possibly poisoned) graph view.
    pub fn graph(&self) -> &DeltaOverlay<'g> {
        &self.overlay
    }

    /// Current egonet features (kept incrementally; never recomputed).
    pub fn features(&self) -> &EgonetFeatures {
        self.inc.features()
    }

    /// Drops all edits, returning to the clean graph in `O(dirty rows)`.
    pub fn reset(&mut self) {
        self.overlay.reset();
        self.inc = IncrementalEgonet::from_features(self.base_feats.clone());
    }

    /// Re-points the session at a new target set and drops all edits.
    ///
    /// This is the cheap path for running many attacks over one frozen
    /// substrate: the cached base features survive, so swapping targets
    /// costs `O(dirty rows)` instead of the `O(n + m)` feature pass a
    /// fresh [`AttackSession::new`] performs. Equivalence with a fresh
    /// session is pinned by a proptest in `tests/session_equivalence.rs`.
    pub fn retarget(&mut self, targets: &[NodeId]) -> Result<(), AttackError> {
        validate_targets(self.overlay.base(), targets)?;
        self.targets.clear();
        self.targets.extend_from_slice(targets);
        self.reset();
        Ok(())
    }

    /// Toggles the pair `{i, j}` on the working graph, patching features
    /// incrementally. Returns the op performed (`None` for self-loops).
    pub fn toggle(&mut self, i: NodeId, j: NodeId) -> Option<EdgeOp> {
        self.inc.toggle(&mut self.overlay, i, j)
    }

    /// Forward pass: surrogate loss and the per-node total derivatives at
    /// the current features.
    pub fn node_grads(&self) -> Result<NodeGrads, AttackError> {
        let feats = self.features();
        Ok(node_grads(&feats.n, &feats.e, &self.targets)?)
    }

    /// Surrogate loss at the current features (cheaper than a full
    /// [`AttackSession::node_grads`] when only the value is needed).
    pub fn loss(&self) -> Result<f64, AttackError> {
        let feats = self.features();
        Ok(surrogate_loss_from_features(
            &feats.n,
            &feats.e,
            &self.targets,
        )?)
    }

    /// Backward pass: assembles `G_ij` for every masked candidate pair
    /// into `out` via parallel sorted-merge common-neighbour scans over
    /// the current graph view. No dense matrix is allocated.
    pub fn pair_gradients_into(
        &mut self,
        ng: &NodeGrads,
        candidates: &Candidates,
        mask: &[bool],
        out: &mut [f64],
    ) {
        assemble_pair_grads_with_scratch(
            &self.overlay,
            ng,
            candidates,
            mask,
            self.threads,
            out,
            &mut self.grad_scratch,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::CandidateScope;
    use ba_graph::egonet::egonet_features;
    use ba_graph::generators;

    #[test]
    fn session_tracks_features_and_resets() {
        let g = generators::erdos_renyi(50, 0.1, 3);
        let csr = CsrGraph::from(&g);
        let mut s = AttackSession::new(&csr, &[0, 1]).unwrap();
        let clean_loss = s.loss().unwrap();

        let op = s.toggle(0, 1).unwrap();
        assert_eq!(op.u, 0);
        assert_eq!(s.features(), &egonet_features(s.graph()));
        s.toggle(2, 3);
        assert_eq!(s.features(), &egonet_features(s.graph()));

        s.reset();
        assert_eq!(s.graph().dirty_rows(), 0);
        assert_eq!(s.loss().unwrap(), clean_loss);
        assert_eq!(s.features(), &egonet_features(&csr));
    }

    #[test]
    fn session_rejects_bad_targets() {
        let g = generators::erdos_renyi(10, 0.2, 1);
        let csr = CsrGraph::from(&g);
        assert!(matches!(
            AttackSession::new(&csr, &[]),
            Err(AttackError::NoTargets)
        ));
        assert!(matches!(
            AttackSession::new(&csr, &[99]),
            Err(AttackError::TargetOutOfRange(99))
        ));
    }

    #[test]
    fn session_gradients_match_standalone_assembly() {
        let g = generators::barabasi_albert(60, 3, 8);
        let csr = CsrGraph::from(&g);
        let targets = [2u32, 5];
        let mut s = AttackSession::new(&csr, &targets).unwrap();
        s.toggle(0, 7);
        let ng = s.node_grads().unwrap();
        let candidates = Candidates::build(CandidateScope::Full, &g, &targets);
        let mask = vec![true; candidates.len()];
        let mut out = vec![0.0; candidates.len()];
        s.pair_gradients_into(&ng, &candidates, &mask, &mut out);
        let reference = crate::grad::assemble_pair_grads(s.graph(), &ng, &candidates, &mask, 1);
        assert_eq!(out, reference);
    }
}
