//! ContinuousA (paper Sec. V-A2): the full-relaxation baseline.
//!
//! The adjacency matrix is relaxed to `Ã ∈ [0,1]^{n×n}` and the surrogate
//! objective is minimised by projected gradient descent until the
//! iteration budget is exhausted; the per-budget discrete solution takes
//! the `b` pairs with the largest `|Ã − A₀|` (paper: "pick those edges
//! associated with the top-B absolute differences").
//!
//! The forward pass computes fractional egonet features
//! `N = Ã·1`, `E = N + ½·diag(Ã³)` with dense (thread-parallel) matrix
//! products; this is the one attack whose state genuinely densifies,
//! which is why the paper observes it scales poorly and converts
//! erratically — behaviour this implementation reproduces.

use crate::attack::{AttackConfig, AttackError, AttackOutcome, StructuralAttack};
use crate::binarized::extract_budget;
use crate::dense::{dense_features, dense_pair_gradient};
use crate::grad::{node_grads, resolve_threads};
use crate::pair::{static_mask, Candidates};
use crate::session::AttackSession;
use ba_graph::GraphView;
use ba_linalg::Matrix;

/// The continuous-relaxation attack.
#[derive(Debug, Clone)]
pub struct ContinuousA {
    config: AttackConfig,
    /// PGD iterations.
    pub iterations: usize,
    /// Step size after gradient normalisation.
    pub learning_rate: f64,
    /// Worker threads for the dense products (0 ⇒ autodetect).
    pub threads: usize,
}

impl ContinuousA {
    /// Creates the attack with defaults (`T = 60`, `η = 0.05`).
    pub fn new(config: AttackConfig) -> Self {
        Self {
            config,
            iterations: 60,
            learning_rate: 0.05,
            threads: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AttackConfig {
        &self.config
    }

    /// Builder-style override of the iteration count.
    pub fn with_iterations(mut self, iters: usize) -> Self {
        self.iterations = iters;
        self
    }

    /// Builder-style override of the learning rate.
    pub fn with_learning_rate(mut self, lr: f64) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Builder-style override of the thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    fn thread_count(&self) -> usize {
        resolve_threads(self.threads)
    }
}

impl Default for ContinuousA {
    fn default() -> Self {
        Self::new(AttackConfig::default())
    }
}

impl StructuralAttack for ContinuousA {
    fn name(&self) -> &'static str {
        "continuousA"
    }

    fn attack_with_session(
        &self,
        session: &mut AttackSession<'_>,
        budget: usize,
    ) -> Result<AttackOutcome, AttackError> {
        session.reset();
        let base = session.base();
        let targets = session.targets().to_vec();
        let n = base.num_nodes();
        let candidates = Candidates::build(self.config.scope, base, &targets);
        if candidates.is_empty() {
            return Err(AttackError::NoCandidates);
        }
        let mask = static_mask(
            &candidates,
            base,
            self.config.op_kind,
            self.config.forbid_singletons,
        );
        let threads = self.thread_count();

        // Relaxed adjacency, initialised at the clean graph.
        let mut a = Matrix::from_vec(n, n, ba_graph::adjacency::to_row_major(base));
        let mut trajectory = Vec::with_capacity(self.iterations);

        for _t in 0..self.iterations {
            let (nfeat, efeat) = dense_features(&a, threads);
            let ng = node_grads(&nfeat, &efeat, &targets)?;
            trajectory.push(ng.loss);
            let grad = dense_pair_gradient(&a, &ng, threads);

            // Normalised PGD step over the candidate pairs only.
            let mut max_abs = 0.0f64;
            candidates.for_each(|idx, i, j| {
                if mask[idx] {
                    max_abs = max_abs.max(grad[(i as usize, j as usize)].abs());
                }
            });
            if max_abs == 0.0 {
                break;
            }
            let step = self.learning_rate / max_abs;
            candidates.for_each(|idx, i, j| {
                if !mask[idx] {
                    return;
                }
                let (iu, ju) = (i as usize, j as usize);
                let v = (a[(iu, ju)] - step * grad[(iu, ju)]).clamp(0.0, 1.0);
                a[(iu, ju)] = v;
                a[(ju, iu)] = v;
            });
        }

        // Soft scores: |Ã − A₀| per candidate (the rounding rule).
        let mut scores = vec![0.0f64; candidates.len()];
        candidates.for_each(|idx, i, j| {
            let orig = if base.has_edge(i, j) { 1.0 } else { 0.0 };
            scores[idx] = (a[(i as usize, j as usize)] - orig).abs();
        });

        let mut ops_per_budget = Vec::with_capacity(budget);
        let mut loss_per_budget = Vec::with_capacity(budget);
        for b in 1..=budget {
            let (ops, loss) = extract_budget(
                session,
                &candidates,
                &mask,
                &scores,
                b,
                self.config.forbid_singletons,
            )?;
            ops_per_budget.push(ops);
            loss_per_budget.push(loss);
        }
        Ok(AttackOutcome {
            name: self.name().to_string(),
            ops_per_budget,
            surrogate_loss_per_budget: loss_per_budget,
            loss_trajectory: trajectory,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_graph::{generators, Graph, NodeId};
    use ba_oddball::OddBall;

    fn anomalous_graph(seed: u64) -> (Graph, Vec<NodeId>) {
        let mut g = generators::erdos_renyi(100, 0.05, seed);
        generators::attach_isolated(&mut g, seed + 1);
        let members: Vec<NodeId> = (0..8).collect();
        generators::plant_near_clique(&mut g, &members, 1.0, seed + 2);
        let model = OddBall::default().fit(&g).unwrap();
        let targets: Vec<NodeId> = model.top_k(2).into_iter().map(|(i, _)| i).collect();
        (g, targets)
    }

    #[test]
    fn optimiser_decreases_relaxed_objective() {
        let (g, targets) = anomalous_graph(51);
        let attack = ContinuousA::default().with_iterations(30).with_threads(2);
        let outcome = attack.attack(&g, &targets, 5).unwrap();
        let traj = &outcome.loss_trajectory;
        assert!(traj.len() >= 10);
        assert!(
            traj.last().unwrap() < traj.first().unwrap(),
            "relaxed loss did not decrease: {traj:?}"
        );
    }

    #[test]
    fn produces_valid_discrete_ops() {
        let (g, targets) = anomalous_graph(53);
        let attack = ContinuousA::default().with_iterations(25).with_threads(2);
        let outcome = attack.attack(&g, &targets, 8).unwrap();
        assert_eq!(outcome.max_budget(), 8);
        let poisoned = outcome.poisoned_graph(&g, 8);
        // Graph remains simple and singleton-free.
        for u in 0..poisoned.num_nodes() as u32 {
            if g.degree(u) > 0 {
                assert!(poisoned.degree(u) > 0);
            }
        }
    }

    #[test]
    fn usually_reduces_true_score() {
        // The paper reports ContinuousA is erratic; we assert the weaker
        // property that it does not *increase* the target score and that
        // its relaxed optimisation made progress (previous test).
        let (g, targets) = anomalous_graph(55);
        let attack = ContinuousA::default().with_iterations(30).with_threads(2);
        let outcome = attack.attack(&g, &targets, 10).unwrap();
        let curve = outcome
            .ascore_curve(&g, &targets, &OddBall::default())
            .unwrap();
        let tau = AttackOutcome::tau_as(&curve, 10);
        assert!(tau > -0.05, "attack made things notably worse: τ = {tau}");
    }

    #[test]
    fn deterministic() {
        let (g, targets) = anomalous_graph(57);
        let attack = ContinuousA::default().with_iterations(15).with_threads(2);
        let a = attack.attack(&g, &targets, 4).unwrap();
        let b = attack.attack(&g, &targets, 4).unwrap();
        assert_eq!(a.ops_per_budget, b.ops_per_budget);
    }
}
