//! The common attack interface, configuration, and result types.

use crate::loss::LossError;
use crate::pair::{CandidateScope, EdgeOpKind};
use ba_graph::{CsrGraph, DeltaOverlay, EdgeOp, EditableGraph, Graph, GraphView, NodeId};
use ba_oddball::OddBall;
use serde::{Deserialize, Serialize};

/// Configuration shared by all structural attacks.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AttackConfig {
    /// Which pairs the optimiser may touch.
    pub scope: CandidateScope,
    /// Which edge operations are allowed (paper Fig. 5 explores all three).
    pub op_kind: EdgeOpKind,
    /// Never delete an edge whose removal would isolate a node (the
    /// paper's GradMaxSearch explicitly avoids singleton nodes; we apply
    /// the rule to every method).
    pub forbid_singletons: bool,
    /// RNG seed for any stochastic component.
    pub seed: u64,
}

impl Default for AttackConfig {
    fn default() -> Self {
        Self {
            scope: CandidateScope::Full,
            op_kind: EdgeOpKind::Both,
            forbid_singletons: true,
            seed: 0xb1a5,
        }
    }
}

/// Errors an attack can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackError {
    /// No targets supplied.
    NoTargets,
    /// A target id is out of range for the graph.
    TargetOutOfRange(NodeId),
    /// The surrogate objective is degenerate on this graph (e.g. a
    /// regular graph where the regression is singular).
    Loss(LossError),
    /// The candidate set is empty under the configured scope/mask.
    NoCandidates,
}

impl std::fmt::Display for AttackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttackError::NoTargets => write!(f, "no target nodes supplied"),
            AttackError::TargetOutOfRange(t) => write!(f, "target {t} out of range"),
            AttackError::Loss(e) => write!(f, "objective error: {e}"),
            AttackError::NoCandidates => write!(f, "no candidate pairs to modify"),
        }
    }
}

impl std::error::Error for AttackError {}

impl From<LossError> for AttackError {
    fn from(e: LossError) -> Self {
        AttackError::Loss(e)
    }
}

/// The result of an attack run with maximum budget `B`: for every budget
/// `b ∈ 1..=B`, the set of edge flips the attack commits to and the
/// surrogate loss it achieves.
///
/// Greedy attacks produce nested (prefix) op sets; BinarizedAttack and
/// ContinuousA may produce unrelated sets per budget — hence the explicit
/// per-budget storage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttackOutcome {
    /// Attack name (for reports).
    pub name: String,
    /// `ops_per_budget[b-1]` = ops for budget `b`. May be shorter than
    /// requested if the attack saturated (no more useful flips).
    pub ops_per_budget: Vec<Vec<EdgeOp>>,
    /// Surrogate loss after applying each budget's ops.
    pub surrogate_loss_per_budget: Vec<f64>,
    /// Optimiser trace (objective per iteration), for ablations. Empty
    /// for non-iterative methods.
    pub loss_trajectory: Vec<f64>,
}

impl AttackOutcome {
    /// Largest budget with recorded ops.
    pub fn max_budget(&self) -> usize {
        self.ops_per_budget.len()
    }

    /// The ops for budget `b` (clamped to the largest recorded budget;
    /// budget 0 yields no ops).
    pub fn ops(&self, budget: usize) -> &[EdgeOp] {
        if budget == 0 || self.ops_per_budget.is_empty() {
            return &[];
        }
        let idx = budget.min(self.ops_per_budget.len()) - 1;
        &self.ops_per_budget[idx]
    }

    /// Applies the budget-`b` ops to a clean graph.
    pub fn poisoned_graph(&self, g0: &Graph, budget: usize) -> Graph {
        g0.with_ops(self.ops(budget))
    }

    /// Evaluates the *true* OddBall anomaly-score sum of `targets` at
    /// every recorded budget (plus budget 0 first), as the paper's
    /// evaluation metric τ_as requires. Returns `scores[b] = S_T` after
    /// budget `b`.
    pub fn ascore_curve(&self, g0: &Graph, targets: &[NodeId], detector: &OddBall) -> Vec<f64> {
        self.ascore_curve_on(&CsrGraph::from(g0), targets, detector)
    }

    /// [`AttackOutcome::ascore_curve`] over a caller-owned frozen
    /// substrate — the orchestrator path, where one `CsrGraph` per
    /// dataset is shared across every cell and never rebuilt.
    pub fn ascore_curve_on(
        &self,
        csr: &CsrGraph,
        targets: &[NodeId],
        detector: &OddBall,
    ) -> Vec<f64> {
        let clean = detector.fit(csr).expect("detector fit on clean graph");
        self.ascore_curve_with_clean(csr, &clean, targets, detector)
    }

    /// [`AttackOutcome::ascore_curve_on`] with a caller-prefitted clean
    /// model, so grids that already hold one (the runner fits OddBall
    /// once per dataset substrate) skip the redundant clean-graph fit.
    pub fn ascore_curve_with_clean(
        &self,
        csr: &CsrGraph,
        clean: &ba_oddball::OddBallModel,
        targets: &[NodeId],
        detector: &OddBall,
    ) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.max_budget() + 1);
        // Each budget's poisoned graph is a throwaway overlay over the
        // frozen substrate — no adjacency rebuild per refit.
        out.push(clean.target_score_sum(targets));
        let mut overlay = DeltaOverlay::new(csr);
        for b in 1..=self.max_budget() {
            overlay.reset();
            overlay.apply_ops(self.ops(b));
            let model = detector
                .fit(&overlay)
                .expect("detector fit on poisoned graph");
            out.push(model.target_score_sum(targets));
        }
        out
    }

    /// τ_as at budget `b`: `(S⁰_T − S^b_T) / S⁰_T` for a precomputed
    /// AScore curve.
    pub fn tau_as(curve: &[f64], b: usize) -> f64 {
        let s0 = curve[0];
        if s0 == 0.0 {
            return 0.0;
        }
        (s0 - curve[b.min(curve.len() - 1)]) / s0
    }
}

/// Validates a target set against any graph view.
pub(crate) fn validate_targets<V: GraphView + ?Sized>(
    g: &V,
    targets: &[NodeId],
) -> Result<(), AttackError> {
    if targets.is_empty() {
        return Err(AttackError::NoTargets);
    }
    for &t in targets {
        if t as usize >= g.num_nodes() {
            return Err(AttackError::TargetOutOfRange(t));
        }
    }
    Ok(())
}

/// A targeted structural poisoning attack against OddBall.
pub trait StructuralAttack {
    /// Human-readable method name (as used in the paper's figures).
    fn name(&self) -> &'static str;

    /// Runs the attack inside a caller-owned
    /// [`AttackSession`](crate::session::AttackSession), using
    /// the session's target set. The session is reset first, so any
    /// prior edits are discarded; the frozen substrate and cached base
    /// features are reused. This is the orchestrator entry point: one
    /// substrate per dataset, one session per worker, re-pointed between
    /// cells via
    /// [`AttackSession::retarget`](crate::session::AttackSession::retarget).
    fn attack_with_session(
        &self,
        session: &mut crate::session::AttackSession<'_>,
        budget: usize,
    ) -> Result<AttackOutcome, AttackError>;

    /// Runs the attack on clean graph `g0` for the given targets and
    /// maximum budget, producing per-budget op sets. Convenience wrapper
    /// that freezes `g0` into a throwaway substrate and delegates to
    /// [`StructuralAttack::attack_with_session`].
    fn attack(
        &self,
        g0: &Graph,
        targets: &[NodeId],
        budget: usize,
    ) -> Result<AttackOutcome, AttackError> {
        let csr = CsrGraph::from(g0);
        let mut session = crate::session::AttackSession::new(&csr, targets)?;
        self.attack_with_session(&mut session, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_outcome() -> AttackOutcome {
        AttackOutcome {
            name: "dummy".into(),
            ops_per_budget: vec![
                vec![EdgeOp::new(0, 1, false)],
                vec![EdgeOp::new(0, 1, false), EdgeOp::new(0, 2, true)],
            ],
            surrogate_loss_per_budget: vec![5.0, 3.0],
            loss_trajectory: vec![],
        }
    }

    #[test]
    fn ops_clamping() {
        let o = dummy_outcome();
        assert!(o.ops(0).is_empty());
        assert_eq!(o.ops(1).len(), 1);
        assert_eq!(o.ops(2).len(), 2);
        assert_eq!(o.ops(99).len(), 2); // clamped
    }

    #[test]
    fn poisoned_graph_applies_ops() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let o = dummy_outcome();
        let p = o.poisoned_graph(&g, 2);
        assert!(!p.has_edge(0, 1));
        assert!(p.has_edge(0, 2));
        assert_eq!(p.num_edges(), 2);
    }

    #[test]
    fn tau_as_formula() {
        let curve = [10.0, 8.0, 5.0];
        assert!((AttackOutcome::tau_as(&curve, 1) - 0.2).abs() < 1e-12);
        assert!((AttackOutcome::tau_as(&curve, 2) - 0.5).abs() < 1e-12);
        assert!((AttackOutcome::tau_as(&curve, 9) - 0.5).abs() < 1e-12);
        assert_eq!(AttackOutcome::tau_as(&[0.0, 0.0], 1), 0.0);
    }

    #[test]
    fn validate_targets_errors() {
        let g = Graph::new(3);
        assert_eq!(validate_targets(&g, &[]), Err(AttackError::NoTargets));
        assert_eq!(
            validate_targets(&g, &[5]),
            Err(AttackError::TargetOutOfRange(5))
        );
        assert_eq!(validate_targets(&g, &[0, 2]), Ok(()));
    }
}
