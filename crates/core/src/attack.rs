//! The common attack interface, configuration, and result types, plus
//! the incremental AScore-curve evaluation engine (the τ_as hot path).

use crate::loss::LossError;
use crate::pair::{CandidateScope, EdgeOpKind};
use ba_graph::egonet::IncrementalEgonet;
use ba_graph::{CsrGraph, DeltaOverlay, EdgeOp, EditableGraph, Graph, GraphView, NodeId};
use ba_oddball::{FitError, IncrementalFit, OddBall, OddBallModel};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Configuration shared by all structural attacks.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AttackConfig {
    /// Which pairs the optimiser may touch.
    pub scope: CandidateScope,
    /// Which edge operations are allowed (paper Fig. 5 explores all three).
    pub op_kind: EdgeOpKind,
    /// Never delete an edge whose removal would isolate a node (the
    /// paper's GradMaxSearch explicitly avoids singleton nodes; we apply
    /// the rule to every method).
    pub forbid_singletons: bool,
    /// RNG seed for any stochastic component.
    pub seed: u64,
}

impl Default for AttackConfig {
    fn default() -> Self {
        Self {
            scope: CandidateScope::Full,
            op_kind: EdgeOpKind::Both,
            forbid_singletons: true,
            seed: 0xb1a5,
        }
    }
}

impl AttackConfig {
    /// The configuration folded into whole-run memo keys (see
    /// [`crate::session::AttackSession`]): every field that can change
    /// a search result, as plain integers.
    pub(crate) fn memo_bits(&self) -> [u64; 4] {
        let scope = match self.scope {
            CandidateScope::Full => 0,
            CandidateScope::TargetNeighborhood => 1,
        };
        let op = match self.op_kind {
            EdgeOpKind::Both => 0,
            EdgeOpKind::AddOnly => 1,
            EdgeOpKind::DeleteOnly => 2,
        };
        [scope, op, u64::from(self.forbid_singletons), self.seed]
    }
}

/// Errors an attack can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackError {
    /// No targets supplied.
    NoTargets,
    /// A target id is out of range for the graph.
    TargetOutOfRange(NodeId),
    /// The surrogate objective is degenerate on this graph (e.g. a
    /// regular graph where the regression is singular).
    Loss(LossError),
    /// The candidate set is empty under the configured scope/mask.
    NoCandidates,
    /// A search loop tried to toggle a degenerate candidate pair
    /// (self-loop) — candidate enumeration should never produce one,
    /// so this flags a corrupted candidate set instead of panicking
    /// the worker.
    InvalidCandidatePair(NodeId, NodeId),
    /// The λ grid of the binarized attack is empty, so there is no
    /// best sweep to extract.
    EmptyLambdaGrid,
}

impl std::fmt::Display for AttackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttackError::NoTargets => write!(f, "no target nodes supplied"),
            AttackError::TargetOutOfRange(t) => write!(f, "target {t} out of range"),
            AttackError::Loss(e) => write!(f, "objective error: {e}"),
            AttackError::NoCandidates => write!(f, "no candidate pairs to modify"),
            AttackError::InvalidCandidatePair(u, v) => {
                write!(f, "candidate pair ({u}, {v}) is not togglable")
            }
            AttackError::EmptyLambdaGrid => write!(f, "empty λ grid: nothing to sweep"),
        }
    }
}

impl std::error::Error for AttackError {}

impl From<LossError> for AttackError {
    fn from(e: LossError) -> Self {
        AttackError::Loss(e)
    }
}

/// A detector refit failed while evaluating an AScore curve.
///
/// Carries the budget whose poisoned graph could not be fitted (`0` =
/// the clean graph), so grid runners can report exactly which point of a
/// cell degenerated instead of panicking the worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CurveError {
    /// Budget whose refit failed (`0` = the clean graph).
    pub budget: usize,
    /// The underlying detector failure.
    pub source: FitError,
}

impl std::fmt::Display for CurveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.budget == 0 {
            write!(f, "detector fit on the clean graph failed: {}", self.source)
        } else {
            write!(
                f,
                "detector refit at budget {} failed: {}",
                self.budget, self.source
            )
        }
    }
}

impl std::error::Error for CurveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// The result of an attack run with maximum budget `B`: for every budget
/// `b ∈ 1..=B`, the set of edge flips the attack commits to and the
/// surrogate loss it achieves.
///
/// Greedy attacks produce nested (prefix) op sets; BinarizedAttack and
/// ContinuousA may produce unrelated sets per budget — hence the explicit
/// per-budget storage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttackOutcome {
    /// Attack name (for reports).
    pub name: String,
    /// `ops_per_budget[b-1]` = ops for budget `b`. May be shorter than
    /// requested if the attack saturated (no more useful flips).
    pub ops_per_budget: Vec<Vec<EdgeOp>>,
    /// Surrogate loss after applying each budget's ops.
    pub surrogate_loss_per_budget: Vec<f64>,
    /// Optimiser trace (objective per iteration), for ablations. Empty
    /// for non-iterative methods.
    pub loss_trajectory: Vec<f64>,
}

impl AttackOutcome {
    /// Largest budget with recorded ops.
    pub fn max_budget(&self) -> usize {
        self.ops_per_budget.len()
    }

    /// The ops for budget `b` (clamped to the largest recorded budget;
    /// budget 0 yields no ops).
    pub fn ops(&self, budget: usize) -> &[EdgeOp] {
        if budget == 0 || self.ops_per_budget.is_empty() {
            return &[];
        }
        let idx = budget.min(self.ops_per_budget.len()) - 1;
        &self.ops_per_budget[idx]
    }

    /// Applies the budget-`b` ops to a clean graph.
    pub fn poisoned_graph(&self, g0: &Graph, budget: usize) -> Graph {
        g0.with_ops(self.ops(budget))
    }

    /// Evaluates the *true* OddBall anomaly-score sum of `targets` at
    /// every recorded budget (plus budget 0 first), as the paper's
    /// evaluation metric τ_as requires. Returns `scores[b] = S_T` after
    /// budget `b`, or the budget at which a degenerate poisoned graph
    /// made the detector refit fail.
    pub fn ascore_curve(
        &self,
        g0: &Graph,
        targets: &[NodeId],
        detector: &OddBall,
    ) -> Result<Vec<f64>, CurveError> {
        self.ascore_curve_on(&CsrGraph::from(g0), targets, detector)
    }

    /// [`AttackOutcome::ascore_curve`] over a caller-owned frozen
    /// substrate — the orchestrator path, where one `CsrGraph` per
    /// dataset is shared across every cell and never rebuilt.
    pub fn ascore_curve_on(
        &self,
        csr: &CsrGraph,
        targets: &[NodeId],
        detector: &OddBall,
    ) -> Result<Vec<f64>, CurveError> {
        let clean = detector
            .fit(csr)
            .map_err(|source| CurveError { budget: 0, source })?;
        self.ascore_curve_with_clean(csr, &clean, targets, detector)
    }

    /// [`AttackOutcome::ascore_curve_on`] with a caller-prefitted clean
    /// model, so grids that already hold one (the runner fits OddBall
    /// once per dataset substrate) skip the redundant clean-graph fit.
    ///
    /// This is the incremental replay engine: one [`DeltaOverlay`] and
    /// one [`IncrementalEgonet`] walk the op sequence budget by budget,
    /// toggling only the pairs that differ between consecutive budgets'
    /// poisoned graphs, and an [`IncrementalFit`] patches exactly the
    /// log-feature rows those toggles moved. Per budget that costs
    /// `O(Σ_{toggled} deg(u) + deg(v))` plus an O(1) OLS solve (robust
    /// regressors rerun over the cached rows), instead of the
    /// `O(n + m + Σdeg²)` full re-extraction and refit — the curve is
    /// bit-identical to [`AttackOutcome::ascore_curve_full_refit`]
    /// (pinned by the `eval_equivalence` proptest and the `eval_bench`
    /// cross-check).
    pub fn ascore_curve_with_clean(
        &self,
        csr: &CsrGraph,
        clean: &OddBallModel,
        targets: &[NodeId],
        detector: &OddBall,
    ) -> Result<Vec<f64>, CurveError> {
        let mut out = Vec::with_capacity(self.max_budget() + 1);
        out.push(clean.target_score_sum(targets));
        if self.max_budget() == 0 {
            return Ok(out);
        }
        let mut overlay = DeltaOverlay::new(csr);
        let mut inc = IncrementalEgonet::from_features(clean.features().clone());
        let mut fit = IncrementalFit::new(detector.regressor(), clean.features());
        // Pairs currently toggled away from the clean graph (sorted) —
        // the state a non-nested budget diffs against.
        let mut applied: Vec<(NodeId, NodeId)> = Vec::new();
        let mut dirty: Vec<NodeId> = Vec::new();
        for b in 1..=self.max_budget() {
            let prev = self.ops(b - 1);
            let cur = self.ops(b);
            dirty.clear();
            if cur.len() >= prev.len() && cur[..prev.len()] == *prev {
                // Nested fast path (every greedy attack): the overlay
                // already holds budget b−1, so replay just the new
                // suffix ops — O(Δ_b) toggles, no per-budget op-set
                // rebuild.
                for op in &cur[prev.len()..] {
                    if op.u == op.v {
                        continue;
                    }
                    // `EdgeOp::new` normalises, but the fields are pub:
                    // keep the `applied` key normalised like
                    // `poisoned_delta`'s, or a later non-nested budget
                    // would see the same pair under two keys.
                    let (u, v) = if op.u <= op.v {
                        (op.u, op.v)
                    } else {
                        (op.v, op.u)
                    };
                    if overlay.has_edge(u, v) != op.added {
                        inc.toggle_with(&mut overlay, u, v, |m| dirty.push(m));
                    }
                    let differs = csr.has_edge(u, v) != op.added;
                    match applied.binary_search(&(u, v)) {
                        Ok(pos) if !differs => {
                            applied.remove(pos);
                        }
                        Err(pos) if differs => applied.insert(pos, (u, v)),
                        _ => {}
                    }
                }
            } else {
                // Arbitrary per-budget sets (PGD extractions): derive
                // the pairs whose state must differ from clean and
                // toggle the symmetric difference `applied Δ desired` —
                // pairs only in `applied` revert to clean, pairs only
                // in `desired` flip away from it.
                let desired = poisoned_delta(csr, cur);
                let (mut i, mut j) = (0, 0);
                while i < applied.len() || j < desired.len() {
                    let ord = match (applied.get(i), desired.get(j)) {
                        (Some(a), Some(d)) => a.cmp(d),
                        (Some(_), None) => std::cmp::Ordering::Less,
                        _ => std::cmp::Ordering::Greater,
                    };
                    let (u, v) = match ord {
                        std::cmp::Ordering::Equal => {
                            i += 1;
                            j += 1;
                            continue;
                        }
                        std::cmp::Ordering::Less => {
                            i += 1;
                            applied[i - 1]
                        }
                        std::cmp::Ordering::Greater => {
                            j += 1;
                            desired[j - 1]
                        }
                    };
                    inc.toggle_with(&mut overlay, u, v, |m| dirty.push(m));
                }
                applied = desired;
            }
            dirty.sort_unstable();
            dirty.dedup();
            let feats = inc.features();
            for &m in &dirty {
                fit.update_row(m as usize, feats.n[m as usize], feats.e[m as usize]);
            }
            let params = fit
                .refit()
                .map_err(|source| CurveError { budget: b, source })?;
            out.push(
                targets
                    .iter()
                    .map(|&t| params.score(feats.n[t as usize], feats.e[t as usize]))
                    .sum(),
            );
        }
        Ok(out)
    }

    /// Reference implementation of
    /// [`AttackOutcome::ascore_curve_with_clean`]: re-extracts features
    /// and refits the detector from scratch at every budget,
    /// `O(budget × (n + m + Σdeg²))` total. Kept as the equivalence
    /// oracle for the incremental engine (`eval_equivalence` proptest,
    /// `eval_bench` speedup gate); production paths should use the
    /// incremental method.
    pub fn ascore_curve_full_refit(
        &self,
        csr: &CsrGraph,
        clean: &OddBallModel,
        targets: &[NodeId],
        detector: &OddBall,
    ) -> Result<Vec<f64>, CurveError> {
        let mut out = Vec::with_capacity(self.max_budget() + 1);
        out.push(clean.target_score_sum(targets));
        let mut overlay = DeltaOverlay::new(csr);
        for b in 1..=self.max_budget() {
            overlay.reset();
            overlay.apply_ops(self.ops(b));
            let model = detector
                .fit(&overlay)
                .map_err(|source| CurveError { budget: b, source })?;
            out.push(model.target_score_sum(targets));
        }
        Ok(out)
    }

    /// τ_as at budget `b`: `(S⁰_T − S^b_T) / S⁰_T` for a precomputed
    /// AScore curve. Strict variant: `None` when the curve is empty,
    /// when `b` is past the recorded curve (a saturated attack would
    /// otherwise masquerade as converged), or when `S⁰_T = 0` (the
    /// reduction ratio is undefined on a zero-score target set).
    pub fn tau_as_at(curve: &[f64], b: usize) -> Option<f64> {
        let &s0 = curve.first()?;
        if b >= curve.len() || s0 == 0.0 {
            return None;
        }
        Some((s0 - curve[b]) / s0)
    }

    /// τ_as at budget `b` with **documented saturation**: a budget past
    /// the recorded curve evaluates at the final recorded point (the
    /// attack saturated — no further flips were useful — so its score
    /// stays at the last value), and a zero clean score yields `0.0` (a
    /// vacuous target set cannot be attacked). Callers that must
    /// distinguish those cases use [`AttackOutcome::tau_as_at`].
    pub fn tau_as(curve: &[f64], b: usize) -> f64 {
        debug_assert!(!curve.is_empty(), "tau_as on an empty curve");
        if curve.is_empty() {
            return 0.0;
        }
        Self::tau_as_at(curve, b.min(curve.len() - 1)).unwrap_or(0.0)
    }
}

/// The normalised pairs whose membership after applying `ops` to the
/// clean graph differs from the clean graph, ascending. Sequential
/// add/remove semantics — the last op on a pair decides its final state,
/// exactly as `DeltaOverlay::apply_ops` would leave it.
fn poisoned_delta(csr: &CsrGraph, ops: &[EdgeOp]) -> Vec<(NodeId, NodeId)> {
    let mut last: BTreeMap<(NodeId, NodeId), bool> = BTreeMap::new();
    for op in ops {
        let key = if op.u <= op.v {
            (op.u, op.v)
        } else {
            (op.v, op.u)
        };
        last.insert(key, op.added);
    }
    last.into_iter()
        .filter(|&((u, v), present)| u != v && csr.has_edge(u, v) != present)
        .map(|(pair, _)| pair)
        .collect()
}

/// Validates a target set against any graph view.
pub(crate) fn validate_targets<V: GraphView + ?Sized>(
    g: &V,
    targets: &[NodeId],
) -> Result<(), AttackError> {
    if targets.is_empty() {
        return Err(AttackError::NoTargets);
    }
    for &t in targets {
        if t as usize >= g.num_nodes() {
            return Err(AttackError::TargetOutOfRange(t));
        }
    }
    Ok(())
}

/// A targeted structural poisoning attack against OddBall.
pub trait StructuralAttack {
    /// Human-readable method name (as used in the paper's figures).
    fn name(&self) -> &'static str;

    /// Runs the attack inside a caller-owned
    /// [`AttackSession`](crate::session::AttackSession), using
    /// the session's target set. The session is reset first, so any
    /// prior edits are discarded; the frozen substrate and cached base
    /// features are reused. This is the orchestrator entry point: one
    /// substrate per dataset, one session per worker, re-pointed between
    /// cells via
    /// [`AttackSession::retarget`](crate::session::AttackSession::retarget).
    fn attack_with_session(
        &self,
        session: &mut crate::session::AttackSession<'_>,
        budget: usize,
    ) -> Result<AttackOutcome, AttackError>;

    /// Runs the attack on clean graph `g0` for the given targets and
    /// maximum budget, producing per-budget op sets. Convenience wrapper
    /// that freezes `g0` into a throwaway substrate and delegates to
    /// [`StructuralAttack::attack_with_session`].
    fn attack(
        &self,
        g0: &Graph,
        targets: &[NodeId],
        budget: usize,
    ) -> Result<AttackOutcome, AttackError> {
        let csr = CsrGraph::from(g0);
        let mut session = crate::session::AttackSession::new(&csr, targets)?;
        self.attack_with_session(&mut session, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_outcome() -> AttackOutcome {
        AttackOutcome {
            name: "dummy".into(),
            ops_per_budget: vec![
                vec![EdgeOp::new(0, 1, false)],
                vec![EdgeOp::new(0, 1, false), EdgeOp::new(0, 2, true)],
            ],
            surrogate_loss_per_budget: vec![5.0, 3.0],
            loss_trajectory: vec![],
        }
    }

    #[test]
    fn ops_clamping() {
        let o = dummy_outcome();
        assert!(o.ops(0).is_empty());
        assert_eq!(o.ops(1).len(), 1);
        assert_eq!(o.ops(2).len(), 2);
        assert_eq!(o.ops(99).len(), 2); // clamped
    }

    #[test]
    fn poisoned_graph_applies_ops() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let o = dummy_outcome();
        let p = o.poisoned_graph(&g, 2);
        assert!(!p.has_edge(0, 1));
        assert!(p.has_edge(0, 2));
        assert_eq!(p.num_edges(), 2);
    }

    #[test]
    fn tau_as_formula() {
        let curve = [10.0, 8.0, 5.0];
        assert!((AttackOutcome::tau_as(&curve, 1) - 0.2).abs() < 1e-12);
        assert!((AttackOutcome::tau_as(&curve, 2) - 0.5).abs() < 1e-12);
        // Past-the-curve budgets saturate to the last recorded point...
        assert!((AttackOutcome::tau_as(&curve, 9) - 0.5).abs() < 1e-12);
        // ...and a zero clean score is defined as a vacuous 0.0.
        assert_eq!(AttackOutcome::tau_as(&[0.0, 0.0], 1), 0.0);
    }

    #[test]
    fn tau_as_at_is_strict() {
        let curve = [10.0, 8.0, 5.0];
        assert_eq!(AttackOutcome::tau_as_at(&curve, 0), Some(0.0));
        assert!((AttackOutcome::tau_as_at(&curve, 2).unwrap() - 0.5).abs() < 1e-12);
        // Out-of-range budgets and zero clean scores are None, not a
        // silently clamped/zeroed value.
        assert_eq!(AttackOutcome::tau_as_at(&curve, 3), None);
        assert_eq!(AttackOutcome::tau_as_at(&[0.0, 0.0], 1), None);
        assert_eq!(AttackOutcome::tau_as_at(&[], 0), None);
    }

    #[test]
    fn curve_error_reports_budget() {
        let e = CurveError {
            budget: 3,
            source: FitError::EmptyGraph,
        };
        assert!(e.to_string().contains("budget 3"), "{e}");
        let clean = CurveError {
            budget: 0,
            source: FitError::EmptyGraph,
        };
        assert!(clean.to_string().contains("clean graph"), "{clean}");
    }

    #[test]
    fn poisoned_delta_nets_out_noops() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2)]);
        let csr = CsrGraph::from(&g);
        let ops = [
            EdgeOp::new(0, 1, false), // real deletion
            EdgeOp::new(0, 2, true),  // real addition
            EdgeOp::new(1, 2, true),  // no-op: already present
            EdgeOp::new(0, 3, true),  // toggled on...
            EdgeOp::new(0, 3, false), // ...then back off: nets out
        ];
        assert_eq!(poisoned_delta(&csr, &ops), vec![(0, 1), (0, 2)]);
        assert!(poisoned_delta(&csr, &[]).is_empty());
    }

    #[test]
    fn incremental_curve_matches_full_refit_on_non_nested_ops() {
        // Per-budget op sets that are NOT prefixes of each other (the
        // BinarizedAttack shape): the replay must re-derive the right
        // deltas between budgets.
        let g = ba_graph::generators::erdos_renyi(60, 0.1, 5);
        let csr = CsrGraph::from(&g);
        let detector = OddBall::default();
        let clean = detector.fit(&csr).unwrap();
        let outcome = AttackOutcome {
            name: "synthetic".into(),
            ops_per_budget: vec![
                vec![EdgeOp::new(0, 1, !g.has_edge(0, 1))],
                vec![
                    EdgeOp::new(2, 3, !g.has_edge(2, 3)),
                    EdgeOp::new(4, 5, !g.has_edge(4, 5)),
                ],
                vec![
                    EdgeOp::new(0, 1, !g.has_edge(0, 1)),
                    EdgeOp::new(7, 9, !g.has_edge(7, 9)),
                    EdgeOp::new(4, 5, !g.has_edge(4, 5)),
                ],
            ],
            surrogate_loss_per_budget: vec![0.0; 3],
            loss_trajectory: vec![],
        };
        let targets = [0u32, 7, 11];
        let fast = outcome
            .ascore_curve_with_clean(&csr, &clean, &targets, &detector)
            .unwrap();
        let slow = outcome
            .ascore_curve_full_refit(&csr, &clean, &targets, &detector)
            .unwrap();
        assert_eq!(fast.len(), slow.len());
        for (b, (f, s)) in fast.iter().zip(&slow).enumerate() {
            assert_eq!(f.to_bits(), s.to_bits(), "budget {b}: {f} != {s}");
        }
    }

    #[test]
    fn degenerate_refit_fails_with_budget_context() {
        // A 6-cycle: deleting {0,1} and adding {0,3} keeps every degree
        // at 2 → the budget-2 regression is singular while budget 1 is
        // fine.
        let n = 6u32;
        let edges: Vec<(NodeId, NodeId)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = Graph::from_edges(n as usize, edges);
        let csr = CsrGraph::from(&g);
        let detector = OddBall::default();
        // The clean cycle itself is degenerate: ascore_curve_on reports
        // budget 0.
        let outcome = AttackOutcome {
            name: "degenerate".into(),
            ops_per_budget: vec![vec![EdgeOp::new(0, 2, true)]],
            surrogate_loss_per_budget: vec![0.0],
            loss_trajectory: vec![],
        };
        let err = outcome.ascore_curve_on(&csr, &[0], &detector).unwrap_err();
        assert_eq!(err.budget, 0);

        // Break the clean degeneracy with one chord, then drive the
        // poisoned graph back into a regular one at budget 2.
        let mut g2 = g.clone();
        g2.add_edge(0, 2);
        let csr2 = CsrGraph::from(&g2);
        let clean = detector.fit(&csr2).unwrap();
        let outcome = AttackOutcome {
            name: "degenerate-later".into(),
            ops_per_budget: vec![
                vec![EdgeOp::new(3, 5, true)],
                vec![EdgeOp::new(0, 2, false)],
            ],
            surrogate_loss_per_budget: vec![0.0; 2],
            loss_trajectory: vec![],
        };
        let err = outcome
            .ascore_curve_with_clean(&csr2, &clean, &[0], &detector)
            .unwrap_err();
        assert_eq!(err.budget, 2, "err = {err}");
        // The reference path reports the same failure point.
        let err_full = outcome
            .ascore_curve_full_refit(&csr2, &clean, &[0], &detector)
            .unwrap_err();
        assert_eq!(err_full, err);
    }

    #[test]
    fn validate_targets_errors() {
        let g = Graph::new(3);
        assert_eq!(validate_targets(&g, &[]), Err(AttackError::NoTargets));
        assert_eq!(
            validate_targets(&g, &[5]),
            Err(AttackError::TargetOutOfRange(5))
        );
        assert_eq!(validate_targets(&g, &[0, 2]), Ok(()));
    }
}
