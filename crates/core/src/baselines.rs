//! Non-gradient baselines used in the ablation benches: a uniformly
//! random attacker and a structural heuristic (clique breaking).

use crate::attack::{AttackConfig, AttackError, AttackOutcome, StructuralAttack};
use crate::pair::Candidates;
use crate::session::AttackSession;
use ba_graph::{GraphView, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Flips uniformly random valid candidate pairs. A floor that any
/// gradient-guided attack must clear.
#[derive(Debug, Clone, Copy)]
pub struct RandomAttack {
    config: AttackConfig,
}

impl RandomAttack {
    /// Creates the baseline with the given config (seed matters).
    pub fn new(config: AttackConfig) -> Self {
        Self { config }
    }
}

impl Default for RandomAttack {
    fn default() -> Self {
        Self::new(AttackConfig::default())
    }
}

impl StructuralAttack for RandomAttack {
    fn name(&self) -> &'static str {
        "random"
    }

    fn attack_with_session(
        &self,
        session: &mut AttackSession<'_>,
        budget: usize,
    ) -> Result<AttackOutcome, AttackError> {
        session.reset();
        let targets = session.targets().to_vec();
        let candidates = Candidates::build(self.config.scope, session.base(), &targets);
        if candidates.is_empty() {
            return Err(AttackError::NoCandidates);
        }
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        order.shuffle(&mut rng);

        let mut ops = Vec::new();
        let mut ops_per_budget = Vec::new();
        let mut loss_per_budget = Vec::new();
        for idx in order {
            if ops.len() >= budget {
                break;
            }
            let (i, j) = candidates.pair(idx);
            let g = session.graph();
            let is_edge = g.has_edge(i, j);
            if !self.config.op_kind.allows(is_edge) {
                continue;
            }
            if is_edge && self.config.forbid_singletons && !g.deletion_keeps_no_singletons(i, j) {
                continue;
            }
            let op = session
                .toggle(i, j)
                .ok_or(AttackError::InvalidCandidatePair(i, j))?;
            ops.push(op);
            let loss = session.loss()?;
            ops_per_budget.push(ops.clone());
            loss_per_budget.push(loss);
        }
        Ok(AttackOutcome {
            name: self.name().to_string(),
            ops_per_budget,
            surrogate_loss_per_budget: loss_per_budget,
            loss_trajectory: vec![],
        })
    }
}

/// A structural heuristic: per step, pick the target with the highest
/// current proxy anomaly score and delete its incident edge with the
/// most common neighbours (near-clique edges first). Knows the OddBall
/// anomaly patterns but uses no gradients — isolates how much the
/// gradient machinery actually buys.
#[derive(Debug, Clone, Copy)]
pub struct CliqueBreaker {
    config: AttackConfig,
}

impl CliqueBreaker {
    /// Creates the heuristic with the given config.
    pub fn new(config: AttackConfig) -> Self {
        Self { config }
    }
}

impl Default for CliqueBreaker {
    fn default() -> Self {
        Self::new(AttackConfig::default())
    }
}

impl StructuralAttack for CliqueBreaker {
    fn name(&self) -> &'static str {
        "cliquebreaker"
    }

    fn attack_with_session(
        &self,
        session: &mut AttackSession<'_>,
        budget: usize,
    ) -> Result<AttackOutcome, AttackError> {
        session.reset();
        let targets = session.targets().to_vec();
        let mut ops = Vec::new();
        let mut ops_per_budget = Vec::new();
        let mut loss_per_budget = Vec::new();

        for _ in 0..budget {
            // Rank targets by current squared residual from the fitted law.
            let ng = session.node_grads()?;
            let feats = session.features();
            let (b0, b1) = (ng.beta0, ng.beta1);
            let mut ranked: Vec<NodeId> = targets.to_vec();
            sort_desc_by_score(&mut ranked, |t| {
                ba_oddball::surrogate_score(feats.e[t as usize], feats.n[t as usize], b0, b1)
            });
            // For the worst target, delete the incident edge with the most
            // common neighbours.
            let g = session.graph();
            let mut choice: Option<(NodeId, NodeId, usize)> = None;
            'outer: for &t in &ranked {
                let nbrs: Vec<NodeId> = g.neighbors_sorted(t).to_vec();
                for x in nbrs {
                    if self.config.forbid_singletons && !g.deletion_keeps_no_singletons(t, x) {
                        continue;
                    }
                    let cn = g.common_neighbors(t, x);
                    if choice.is_none_or(|(_, _, bc)| cn > bc) {
                        choice = Some((t, x, cn));
                    }
                }
                if choice.is_some() {
                    break 'outer;
                }
            }
            let Some((t, x, _)) = choice else { break };
            let op = session
                .toggle(t, x)
                .ok_or(AttackError::InvalidCandidatePair(t, x))?;
            ops.push(op);
            let loss = session.loss()?;
            ops_per_budget.push(ops.clone());
            loss_per_budget.push(loss);
        }
        Ok(AttackOutcome {
            name: self.name().to_string(),
            ops_per_budget,
            surrogate_loss_per_budget: loss_per_budget,
            loss_trajectory: vec![],
        })
    }
}

/// Sorts node ids by descending score with deterministic id tie-breaks.
///
/// Uses the IEEE total order: a NaN score (an overflowed surrogate on an
/// adversarial intermediate graph) ranks deterministically instead of
/// panicking the attack mid-run.
fn sort_desc_by_score(nodes: &mut [NodeId], score: impl Fn(NodeId) -> f64) {
    nodes.sort_by(|&x, &y| score(y).total_cmp(&score(x)).then(x.cmp(&y)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_graph::{generators, Graph};
    use ba_oddball::OddBall;

    fn anomalous_graph(seed: u64) -> (Graph, Vec<NodeId>) {
        let mut g = generators::erdos_renyi(120, 0.05, seed);
        generators::attach_isolated(&mut g, seed + 1);
        let members: Vec<NodeId> = (0..9).collect();
        generators::plant_near_clique(&mut g, &members, 1.0, seed + 2);
        let model = OddBall::default().fit(&g).unwrap();
        let targets: Vec<NodeId> = model.top_k(3).into_iter().map(|(i, _)| i).collect();
        (g, targets)
    }

    #[test]
    fn random_attack_within_budget_and_valid() {
        let (g, targets) = anomalous_graph(61);
        let outcome = RandomAttack::default().attack(&g, &targets, 12).unwrap();
        assert!(outcome.max_budget() <= 12);
        let poisoned = outcome.poisoned_graph(&g, 12);
        for u in 0..poisoned.num_nodes() as u32 {
            if g.degree(u) > 0 {
                assert!(poisoned.degree(u) > 0);
            }
        }
    }

    #[test]
    fn random_attack_seed_determinism() {
        let (g, targets) = anomalous_graph(63);
        let a = RandomAttack::default().attack(&g, &targets, 6).unwrap();
        let b = RandomAttack::default().attack(&g, &targets, 6).unwrap();
        assert_eq!(a.ops_per_budget, b.ops_per_budget);
        let cfg = AttackConfig {
            seed: 999,
            ..AttackConfig::default()
        };
        let c = RandomAttack::new(cfg).attack(&g, &targets, 6).unwrap();
        assert_ne!(a.ops_per_budget, c.ops_per_budget);
    }

    #[test]
    fn ranking_survives_nan_scores() {
        // Regression: the old partial_cmp comparator panicked on the
        // first NaN surrogate score.
        let mut nodes: Vec<NodeId> = vec![0, 1, 2, 3];
        let scores = [2.0, f64::NAN, 5.0, 2.0];
        sort_desc_by_score(&mut nodes, |t| scores[t as usize]);
        // NaN orders above every finite score in the IEEE total order;
        // the finite tail is descending with id tie-breaks.
        assert_eq!(nodes, vec![1, 2, 0, 3]);
    }

    #[test]
    fn clique_breaker_reduces_score_on_planted_clique() {
        let (g, targets) = anomalous_graph(65);
        let outcome = CliqueBreaker::default().attack(&g, &targets, 12).unwrap();
        let curve = outcome
            .ascore_curve(&g, &targets, &OddBall::default())
            .unwrap();
        let tau = AttackOutcome::tau_as(&curve, outcome.max_budget());
        assert!(
            tau > 0.05,
            "clique breaker ineffective: τ = {tau}, curve = {curve:?}"
        );
        // All ops are deletions incident to a target.
        for op in outcome.ops(outcome.max_budget()) {
            assert!(!op.added);
            assert!(targets.contains(&op.u) || targets.contains(&op.v));
        }
    }

    #[test]
    fn clique_breaker_stops_when_no_deletable_edges() {
        // Targets with only degree-1 neighbours cannot lose edges under
        // the singleton rule... construct a tiny star.
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
        let outcome = CliqueBreaker::default().attack(&g, &[0], 3).unwrap();
        // Deleting any spoke isolates the leaf ⇒ no ops possible.
        assert_eq!(outcome.max_budget(), 0);
    }
}
