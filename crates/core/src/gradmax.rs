//! GradMaxSearch (paper Sec. V-A1): the greedy gradient baseline.
//!
//! Per step: relax the integrality of `A`, compute the gradient of the
//! surrogate loss w.r.t. every candidate pair, and flip the pair with the
//! largest gradient magnitude whose *sign is consistent with a feasible
//! move* — a non-edge (`A_ij = 0`) may only be added when its gradient is
//! negative (increasing `A_ij` decreases the loss) and an edge may only
//! be deleted when its gradient is positive. A pool of already-modified
//! pairs is never revisited, and deletions that would create singleton
//! nodes are skipped (both rules are explicit in the paper).
//!
//! Two scan-order refinements keep results bit-identical while cutting
//! wall-clock: the never-revisit pool is a candidate-indexed
//! [`IndexBitSet`] (one shift-and-mask instead of a hash probe per
//! candidate per step), and the argmax scan is *PV-seeded* — last
//! step's best movers are probed first, so by the time the full scan
//! runs, almost every candidate fails the `|G| > |best|` test on the
//! first compare. The selection comparator is total (magnitude, then
//! index), so the winner is the same whatever order candidates are
//! visited in; the principal-variation ordering is a pure wall-clock
//! optimisation, as the cached≡uncached golden suite verifies.

use crate::attack::{AttackConfig, AttackError, AttackOutcome, StructuralAttack};
use crate::pair::{CandidateScope, Candidates, IndexBitSet};
use crate::session::AttackSession;
use ba_graph::{GraphView, NodeId};

/// The greedy per-edge gradient attack.
#[derive(Debug, Clone, Copy)]
pub struct GradMaxSearch {
    config: AttackConfig,
}

impl GradMaxSearch {
    /// Creates the attack with the given configuration.
    pub fn new(config: AttackConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AttackConfig {
        &self.config
    }
}

impl Default for GradMaxSearch {
    fn default() -> Self {
        Self::new(AttackConfig::default())
    }
}

/// Number of previous-step best movers probed before the full argmax
/// scan (the principal variation). Affects wall-clock only.
const PV_WIDTH: usize = 8;

impl StructuralAttack for GradMaxSearch {
    fn name(&self) -> &'static str {
        "gradmaxsearch"
    }

    fn attack_with_session(
        &self,
        session: &mut AttackSession<'_>,
        budget: usize,
    ) -> Result<AttackOutcome, AttackError> {
        session.reset();
        // Whole-run memo: a session reused across experiment cells (the
        // orchestrator's shape) re-runs identical (state, attack, config)
        // searches; replay the stored outcome instead of re-searching.
        let bits = self.config.memo_bits();
        let run_key = session.run_key(&[1, budget as u64, bits[0], bits[1], bits[2], bits[3]]);
        if let Some(outcome) = session.memo_run_probe(run_key) {
            return Ok(outcome);
        }
        let targets = session.targets().to_vec();
        let candidates = Candidates::build(self.config.scope, session.base(), &targets);
        if candidates.is_empty() {
            return Err(AttackError::NoCandidates);
        }
        let mut pool = IndexBitSet::new(candidates.len());
        let mut eligible = vec![false; candidates.len()];
        let mut is_edge_cache = vec![false; candidates.len()];
        let mut grads = vec![0.0f64; candidates.len()];
        // Principal variation: last step's top movers, best-first.
        let mut pv: Vec<u32> = Vec::with_capacity(PV_WIDTH);
        let mut top: Vec<(f64, u32)> = Vec::with_capacity(PV_WIDTH + 1);
        let mut ops = Vec::new();
        let mut ops_per_budget = Vec::with_capacity(budget);
        let mut loss_per_budget = Vec::with_capacity(budget);
        let mut trajectory = Vec::with_capacity(budget + 1);

        for _step in 0..budget {
            let ng = session.node_grads()?;
            trajectory.push(ng.loss);

            // Mark the feasible moves (never-revisited pool, op kind,
            // singleton protection against the evolving poisoned graph),
            // then assemble their gradients sparsely in parallel.
            let kind = self.config.op_kind;
            let forbid_singletons = self.config.forbid_singletons;
            let g = session.graph();
            candidates.for_each(|idx, i, j| {
                let is_edge = g.has_edge(i, j);
                is_edge_cache[idx] = is_edge;
                eligible[idx] = !pool.contains(idx)
                    && kind.allows(is_edge)
                    && !(is_edge && forbid_singletons && !g.deletion_keeps_no_singletons(i, j));
            });
            session.pair_gradients_into(&ng, &candidates, &eligible, &mut grads);

            // Argmax over sign-consistent moves, with a *total*
            // comparator — larger |G| wins, smaller index breaks ties —
            // so the winner does not depend on visit order and the PV
            // pre-pass below can only speed the scan up, never steer it.
            let mut best: Option<(usize, NodeId, NodeId)> = None;
            let mut best_abs = 0.0f64;
            top.clear();
            let consider = |idx: usize,
                            i: NodeId,
                            j: NodeId,
                            collect_top: bool,
                            best: &mut Option<(usize, NodeId, NodeId)>,
                            best_abs: &mut f64,
                            top: &mut Vec<(f64, u32)>| {
                if !eligible[idx] {
                    return;
                }
                let grad = grads[idx];
                // Sign consistency: adding requires dL/dA < 0; deleting
                // requires dL/dA > 0.
                let valid = if is_edge_cache[idx] {
                    grad > 0.0
                } else {
                    grad < 0.0
                };
                if !valid {
                    return;
                }
                let a = grad.abs();
                let replace = match *best {
                    None => true,
                    Some((bidx, _, _)) => a > *best_abs || (a == *best_abs && idx < bidx),
                };
                if replace {
                    *best = Some((idx, i, j));
                    *best_abs = a;
                }
                // Collect next step's PV during the full scan only (the
                // PV pre-pass would double-insert its own entries).
                if collect_top && (top.len() < PV_WIDTH || top.last().is_none_or(|&(ta, _)| a > ta))
                {
                    let pos = top.partition_point(|&(ta, _)| ta > a);
                    top.insert(pos, (a, idx as u32));
                    top.truncate(PV_WIDTH);
                }
            };
            // PV pre-pass: seed `best` with last step's movers so the
            // full scan fails the `a > best_abs` compare early.
            for &idx in &pv {
                let (i, j) = candidates.pair(idx as usize);
                consider(
                    idx as usize,
                    i,
                    j,
                    false,
                    &mut best,
                    &mut best_abs,
                    &mut top,
                );
            }
            candidates.for_each(|idx, i, j| {
                consider(idx, i, j, true, &mut best, &mut best_abs, &mut top)
            });
            pv.clear();
            pv.extend(top.iter().map(|&(_, idx)| idx));

            let Some((idx, i, j)) = best else {
                break; // saturated: no feasible move improves the objective
            };
            let op = session
                .toggle(i, j)
                .ok_or(AttackError::InvalidCandidatePair(i, j))?;
            let loss = session.loss()?;
            // The gradient is a linearisation; a discrete ±1 flip can
            // overshoot once the objective is nearly minimised. Revert
            // and stop — the attack has saturated (paper: "we stop
            // attacking until the changes of AScore saturated").
            if loss > ng.loss + 1e-12 {
                session
                    .toggle(i, j)
                    .ok_or(AttackError::InvalidCandidatePair(i, j))?;
                break;
            }
            pool.insert(idx);
            ops.push(op);
            ops_per_budget.push(ops.clone());
            loss_per_budget.push(loss);
        }
        if let Some(&last) = loss_per_budget.last() {
            trajectory.push(last);
        }
        let outcome = AttackOutcome {
            name: self.name().to_string(),
            ops_per_budget,
            surrogate_loss_per_budget: loss_per_budget,
            loss_trajectory: trajectory,
        };
        session.memo_run_store(run_key, &outcome);
        Ok(outcome)
    }
}

/// Re-export of the scope type for ergonomic construction in examples.
pub type Scope = CandidateScope;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::EdgeOpKind;
    use ba_graph::{generators, Graph};
    use ba_oddball::OddBall;
    use std::collections::HashSet;

    fn anomalous_graph(seed: u64) -> (Graph, Vec<NodeId>) {
        let mut g = generators::erdos_renyi(150, 0.04, seed);
        generators::attach_isolated(&mut g, seed + 1);
        let members: Vec<NodeId> = (0..10).collect();
        generators::plant_near_clique(&mut g, &members, 1.0, seed + 2);
        let model = OddBall::default().fit(&g).unwrap();
        let targets: Vec<NodeId> = model.top_k(3).into_iter().map(|(i, _)| i).collect();
        (g, targets)
    }

    #[test]
    fn reduces_surrogate_loss_monotonically_enough() {
        let (g, targets) = anomalous_graph(5);
        let outcome = GradMaxSearch::default().attack(&g, &targets, 12).unwrap();
        assert!(!outcome.surrogate_loss_per_budget.is_empty());
        let first = outcome.surrogate_loss_per_budget[0];
        let last = *outcome.surrogate_loss_per_budget.last().unwrap();
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn reduces_true_anomaly_score() {
        let (g, targets) = anomalous_graph(7);
        let detector = OddBall::default();
        let outcome = GradMaxSearch::default().attack(&g, &targets, 15).unwrap();
        let curve = outcome.ascore_curve(&g, &targets, &detector).unwrap();
        let tau = AttackOutcome::tau_as(&curve, outcome.max_budget());
        assert!(tau > 0.2, "τ_as = {tau} too small; curve = {curve:?}");
    }

    #[test]
    fn respects_budget_and_prefix_structure() {
        let (g, targets) = anomalous_graph(9);
        let outcome = GradMaxSearch::default().attack(&g, &targets, 8).unwrap();
        assert!(outcome.max_budget() <= 8);
        for (b, ops) in outcome.ops_per_budget.iter().enumerate() {
            assert_eq!(ops.len(), b + 1, "greedy op sets must be prefixes");
        }
    }

    #[test]
    fn never_revisits_a_pair() {
        let (g, targets) = anomalous_graph(11);
        let outcome = GradMaxSearch::default().attack(&g, &targets, 20).unwrap();
        let final_ops = outcome.ops(outcome.max_budget());
        let mut seen = HashSet::new();
        for op in final_ops {
            assert!(
                seen.insert((op.u, op.v)),
                "pair ({}, {}) modified twice",
                op.u,
                op.v
            );
        }
    }

    #[test]
    fn no_singletons_created() {
        let (g, targets) = anomalous_graph(13);
        let outcome = GradMaxSearch::default().attack(&g, &targets, 25).unwrap();
        let poisoned = outcome.poisoned_graph(&g, outcome.max_budget());
        for u in 0..poisoned.num_nodes() as NodeId {
            if g.degree(u) > 0 {
                assert!(poisoned.degree(u) > 0, "node {u} became a singleton");
            }
        }
    }

    #[test]
    fn add_only_and_delete_only_modes() {
        let (g, targets) = anomalous_graph(17);
        for kind in [EdgeOpKind::AddOnly, EdgeOpKind::DeleteOnly] {
            let cfg = AttackConfig {
                op_kind: kind,
                ..AttackConfig::default()
            };
            let outcome = GradMaxSearch::new(cfg).attack(&g, &targets, 10).unwrap();
            for op in outcome.ops(outcome.max_budget()) {
                match kind {
                    EdgeOpKind::AddOnly => assert!(op.added),
                    EdgeOpKind::DeleteOnly => assert!(!op.added),
                    EdgeOpKind::Both => {}
                }
            }
        }
    }

    #[test]
    fn scoped_candidates_still_work() {
        let (g, targets) = anomalous_graph(19);
        let cfg = AttackConfig {
            scope: CandidateScope::TargetNeighborhood,
            ..AttackConfig::default()
        };
        let outcome = GradMaxSearch::new(cfg).attack(&g, &targets, 10).unwrap();
        assert!(outcome.max_budget() > 0);
        // Every op touches a target or two target-neighbours.
        let target_set: HashSet<NodeId> = targets.iter().copied().collect();
        for op in outcome.ops(outcome.max_budget()) {
            let touches = target_set.contains(&op.u)
                || target_set.contains(&op.v)
                || targets
                    .iter()
                    .any(|&t| g.neighbors(t).contains(&op.u) && g.neighbors(t).contains(&op.v));
            assert!(touches, "op {op:?} outside scope");
        }
    }

    #[test]
    fn error_paths() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert!(matches!(
            GradMaxSearch::default().attack(&g, &[], 3),
            Err(AttackError::NoTargets)
        ));
        assert!(matches!(
            GradMaxSearch::default().attack(&g, &[9], 3),
            Err(AttackError::TargetOutOfRange(9))
        ));
    }
}
