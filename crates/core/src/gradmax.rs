//! GradMaxSearch (paper Sec. V-A1): the greedy gradient baseline.
//!
//! Per step: relax the integrality of `A`, compute the gradient of the
//! surrogate loss w.r.t. every candidate pair, and flip the pair with the
//! largest gradient magnitude whose *sign is consistent with a feasible
//! move* — a non-edge (`A_ij = 0`) may only be added when its gradient is
//! negative (increasing `A_ij` decreases the loss) and an edge may only
//! be deleted when its gradient is positive. A pool of already-modified
//! pairs is never revisited, and deletions that would create singleton
//! nodes are skipped (both rules are explicit in the paper).

use crate::attack::{AttackConfig, AttackError, AttackOutcome, StructuralAttack};
use crate::pair::{CandidateScope, Candidates};
use crate::session::AttackSession;
use ba_graph::{GraphView, NodeId};
use std::collections::HashSet;

/// The greedy per-edge gradient attack.
#[derive(Debug, Clone, Copy)]
pub struct GradMaxSearch {
    config: AttackConfig,
}

impl GradMaxSearch {
    /// Creates the attack with the given configuration.
    pub fn new(config: AttackConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AttackConfig {
        &self.config
    }
}

impl Default for GradMaxSearch {
    fn default() -> Self {
        Self::new(AttackConfig::default())
    }
}

#[inline]
fn pool_key(i: NodeId, j: NodeId) -> u64 {
    let (i, j) = if i < j { (i, j) } else { (j, i) };
    ((i as u64) << 32) | j as u64
}

impl StructuralAttack for GradMaxSearch {
    fn name(&self) -> &'static str {
        "gradmaxsearch"
    }

    fn attack_with_session(
        &self,
        session: &mut AttackSession<'_>,
        budget: usize,
    ) -> Result<AttackOutcome, AttackError> {
        session.reset();
        let targets = session.targets().to_vec();
        let candidates = Candidates::build(self.config.scope, session.base(), &targets);
        if candidates.is_empty() {
            return Err(AttackError::NoCandidates);
        }
        let mut pool: HashSet<u64> = HashSet::new();
        let mut eligible = vec![false; candidates.len()];
        let mut is_edge_cache = vec![false; candidates.len()];
        let mut grads = vec![0.0f64; candidates.len()];
        let mut ops = Vec::new();
        let mut ops_per_budget = Vec::with_capacity(budget);
        let mut loss_per_budget = Vec::with_capacity(budget);
        let mut trajectory = Vec::with_capacity(budget + 1);

        for _step in 0..budget {
            let ng = session.node_grads()?;
            trajectory.push(ng.loss);

            // Mark the feasible moves (never-revisited pool, op kind,
            // singleton protection against the evolving poisoned graph),
            // then assemble their gradients sparsely in parallel.
            let kind = self.config.op_kind;
            let forbid_singletons = self.config.forbid_singletons;
            let g = session.graph();
            candidates.for_each(|idx, i, j| {
                let is_edge = g.has_edge(i, j);
                is_edge_cache[idx] = is_edge;
                eligible[idx] = !pool.contains(&pool_key(i, j))
                    && kind.allows(is_edge)
                    && !(is_edge && forbid_singletons && !g.deletion_keeps_no_singletons(i, j));
            });
            session.pair_gradients_into(&ng, &candidates, &eligible, &mut grads);

            // Scan candidates for the best sign-consistent move.
            let mut best: Option<(NodeId, NodeId, f64)> = None;
            candidates.for_each(|idx, i, j| {
                if !eligible[idx] {
                    return;
                }
                let grad = grads[idx];
                // Sign consistency: adding requires dL/dA < 0; deleting
                // requires dL/dA > 0.
                let valid = if is_edge_cache[idx] {
                    grad > 0.0
                } else {
                    grad < 0.0
                };
                if !valid {
                    return;
                }
                if best.is_none_or(|(_, _, bg)| grad.abs() > bg.abs()) {
                    best = Some((i, j, grad));
                }
            });

            let Some((i, j, _)) = best else {
                break; // saturated: no feasible move improves the objective
            };
            let op = session.toggle(i, j).expect("valid pair");
            let loss = session.loss()?;
            // The gradient is a linearisation; a discrete ±1 flip can
            // overshoot once the objective is nearly minimised. Revert
            // and stop — the attack has saturated (paper: "we stop
            // attacking until the changes of AScore saturated").
            if loss > ng.loss + 1e-12 {
                session.toggle(i, j).expect("revert");
                break;
            }
            pool.insert(pool_key(i, j));
            ops.push(op);
            ops_per_budget.push(ops.clone());
            loss_per_budget.push(loss);
        }
        if let Some(&last) = loss_per_budget.last() {
            trajectory.push(last);
        }
        Ok(AttackOutcome {
            name: self.name().to_string(),
            ops_per_budget,
            surrogate_loss_per_budget: loss_per_budget,
            loss_trajectory: trajectory,
        })
    }
}

/// Re-export of the scope type for ergonomic construction in examples.
pub type Scope = CandidateScope;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::EdgeOpKind;
    use ba_graph::{generators, Graph};
    use ba_oddball::OddBall;

    fn anomalous_graph(seed: u64) -> (Graph, Vec<NodeId>) {
        let mut g = generators::erdos_renyi(150, 0.04, seed);
        generators::attach_isolated(&mut g, seed + 1);
        let members: Vec<NodeId> = (0..10).collect();
        generators::plant_near_clique(&mut g, &members, 1.0, seed + 2);
        let model = OddBall::default().fit(&g).unwrap();
        let targets: Vec<NodeId> = model.top_k(3).into_iter().map(|(i, _)| i).collect();
        (g, targets)
    }

    #[test]
    fn reduces_surrogate_loss_monotonically_enough() {
        let (g, targets) = anomalous_graph(5);
        let outcome = GradMaxSearch::default().attack(&g, &targets, 12).unwrap();
        assert!(!outcome.surrogate_loss_per_budget.is_empty());
        let first = outcome.surrogate_loss_per_budget[0];
        let last = *outcome.surrogate_loss_per_budget.last().unwrap();
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn reduces_true_anomaly_score() {
        let (g, targets) = anomalous_graph(7);
        let detector = OddBall::default();
        let outcome = GradMaxSearch::default().attack(&g, &targets, 15).unwrap();
        let curve = outcome.ascore_curve(&g, &targets, &detector).unwrap();
        let tau = AttackOutcome::tau_as(&curve, outcome.max_budget());
        assert!(tau > 0.2, "τ_as = {tau} too small; curve = {curve:?}");
    }

    #[test]
    fn respects_budget_and_prefix_structure() {
        let (g, targets) = anomalous_graph(9);
        let outcome = GradMaxSearch::default().attack(&g, &targets, 8).unwrap();
        assert!(outcome.max_budget() <= 8);
        for (b, ops) in outcome.ops_per_budget.iter().enumerate() {
            assert_eq!(ops.len(), b + 1, "greedy op sets must be prefixes");
        }
    }

    #[test]
    fn never_revisits_a_pair() {
        let (g, targets) = anomalous_graph(11);
        let outcome = GradMaxSearch::default().attack(&g, &targets, 20).unwrap();
        let final_ops = outcome.ops(outcome.max_budget());
        let mut seen = HashSet::new();
        for op in final_ops {
            assert!(
                seen.insert((op.u, op.v)),
                "pair ({}, {}) modified twice",
                op.u,
                op.v
            );
        }
    }

    #[test]
    fn no_singletons_created() {
        let (g, targets) = anomalous_graph(13);
        let outcome = GradMaxSearch::default().attack(&g, &targets, 25).unwrap();
        let poisoned = outcome.poisoned_graph(&g, outcome.max_budget());
        for u in 0..poisoned.num_nodes() as NodeId {
            if g.degree(u) > 0 {
                assert!(poisoned.degree(u) > 0, "node {u} became a singleton");
            }
        }
    }

    #[test]
    fn add_only_and_delete_only_modes() {
        let (g, targets) = anomalous_graph(17);
        for kind in [EdgeOpKind::AddOnly, EdgeOpKind::DeleteOnly] {
            let cfg = AttackConfig {
                op_kind: kind,
                ..AttackConfig::default()
            };
            let outcome = GradMaxSearch::new(cfg).attack(&g, &targets, 10).unwrap();
            for op in outcome.ops(outcome.max_budget()) {
                match kind {
                    EdgeOpKind::AddOnly => assert!(op.added),
                    EdgeOpKind::DeleteOnly => assert!(!op.added),
                    EdgeOpKind::Both => {}
                }
            }
        }
    }

    #[test]
    fn scoped_candidates_still_work() {
        let (g, targets) = anomalous_graph(19);
        let cfg = AttackConfig {
            scope: CandidateScope::TargetNeighborhood,
            ..AttackConfig::default()
        };
        let outcome = GradMaxSearch::new(cfg).attack(&g, &targets, 10).unwrap();
        assert!(outcome.max_budget() > 0);
        // Every op touches a target or two target-neighbours.
        let target_set: HashSet<NodeId> = targets.iter().copied().collect();
        for op in outcome.ops(outcome.max_budget()) {
            let touches = target_set.contains(&op.u)
                || target_set.contains(&op.v)
                || targets
                    .iter()
                    .any(|&t| g.neighbors(t).contains(&op.u) && g.neighbors(t).contains(&op.v));
            assert!(touches, "op {op:?} outside scope");
        }
    }

    #[test]
    fn error_paths() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert!(matches!(
            GradMaxSearch::default().attack(&g, &[], 3),
            Err(AttackError::NoTargets)
        ));
        assert!(matches!(
            GradMaxSearch::default().attack(&g, &[9], 3),
            Err(AttackError::TargetOutOfRange(9))
        ));
    }
}
