//! Bounded two-level transposition table for the attack search.
//!
//! The greedy attacks re-evaluate heavily overlapping candidate sets:
//! every PGD iteration whose re-binarised graph matches a state already
//! visited (the long stretches where no Ż crosses ½, period-2 flip
//! oscillations near a fixed point), every λ restart from the clean
//! graph, and every budget-extraction replay re-derive the same
//! `(graph state, candidate)` pair gradients. [`TransTable`] caches
//! those scalars the way chess engines cache position evaluations:
//!
//! * **Key** — the caller folds the session's Zobrist state hash (edge
//!   set ⊕ target set, see [`ba_graph::zobrist`]) with the candidate's
//!   dense index into one 64-bit key ([`TransTable::full_key`]). The
//!   full key is stored and compared, so a hit requires all 64 bits to
//!   match — bucket aliasing can evict, never corrupt.
//! * **Bucket layout** — entries live in power-of-two buckets of two
//!   slots, indexed by a caller-chosen *slot code* (`code & mask`).
//!   The memoized assembly passes the candidate index as the code, so
//!   a scan over the candidate space probes consecutive buckets —
//!   sequential, prefetch-friendly memory traffic instead of the
//!   random walk a conventional state-major table would do per
//!   candidate.
//! * **Two-level keyed replacement** — the two slots are recency
//!   tiers: a store whose key is already present updates in place;
//!   a new key enters slot 0, demoting slot 0 to slot 1 and evicting
//!   slot 1; a hit in slot 1 promotes the entry back to slot 0. Each
//!   bucket is therefore a 2-entry LRU, which is exactly what the
//!   search's revisit pattern needs: a PGD oscillation alternates
//!   between two states, and both stay resident while older states'
//!   values age out.
//!
//! Capacity is fixed at construction — the table never grows, never
//! rehashes, and evicts deterministically, so memory stays bounded on
//! arbitrarily long sessions and a cached run is reproducible to the
//! byte. Crucially the table only ever returns values *it was given*:
//! correctness never depends on hit rate, which is why the golden
//! tests can pin cached ≡ uncached bit-identity while the hit/miss/
//! eviction counters ([`TtStats`]) are free to drift with tuning.

use ba_graph::zobrist::splitmix64;

/// One cached scalar. `key == 0` marks an empty slot; [`TransTable::full_key`]
/// never produces 0.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct Entry {
    key: u64,
    value: f64,
}

/// Hit/miss/eviction counters of a [`TransTable`] — surfaced through
/// `BENCH_search.json` so cache effectiveness is tracked per commit.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TtStats {
    /// Probes that found their key.
    pub hits: u64,
    /// Probes that did not.
    pub misses: u64,
    /// Values written (first-time and in-place updates).
    pub stores: u64,
    /// Stores that displaced a live entry with a different key.
    pub evictions: u64,
    /// Total entry capacity (2 × bucket count).
    pub capacity: usize,
}

impl TtStats {
    /// Fraction of probes that hit, `0.0` when nothing was probed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Bounded-capacity two-level transposition table mapping 64-bit keys
/// to `f64` evaluations. See the module docs for the replacement
/// policy and bucket layout.
#[derive(Debug, Clone)]
pub struct TransTable {
    buckets: Vec<[Entry; 2]>,
    mask: u64,
    hits: u64,
    misses: u64,
    stores: u64,
    evictions: u64,
}

impl TransTable {
    /// A table holding at most `entries` values (rounded up to a
    /// power-of-two bucket count, two entries per bucket, minimum one
    /// bucket). Memory is allocated up front and never grows.
    pub fn new(entries: usize) -> Self {
        let buckets = (entries.div_ceil(2)).next_power_of_two().max(1);
        Self {
            buckets: vec![[Entry::default(); 2]; buckets],
            mask: buckets as u64 - 1,
            hits: 0,
            misses: 0,
            stores: 0,
            evictions: 0,
        }
    }

    /// Folds a session state hash and a per-entry code (candidate index
    /// or a reserved sentinel) into the stored 64-bit key. Never
    /// returns 0 (the empty-slot marker): the remap of 0 to 1 costs one
    /// key out of 2⁶⁴ and keeps slots branch-free.
    #[inline]
    pub fn full_key(state_hash: u64, code: u64) -> u64 {
        Self::full_key_premixed(state_hash, splitmix64(code))
    }

    /// [`TransTable::full_key`] with the code half already mixed
    /// (`mixed_code = splitmix64(code)`) — callers that probe a dense
    /// candidate range per state precompute the mix once per candidate
    /// instead of once per probe.
    #[inline]
    pub fn full_key_premixed(state_hash: u64, mixed_code: u64) -> u64 {
        let k = splitmix64(state_hash ^ mixed_code);
        if k == 0 {
            1
        } else {
            k
        }
    }

    /// Whether `key` is resident in the bucket selected by `code`,
    /// without touching counters or recency order — the sampling
    /// pre-probe callers use to route between the memoized and bulk
    /// assembly paths.
    #[inline]
    pub fn peek(&self, code: u64, key: u64) -> bool {
        let bucket = &self.buckets[(code & self.mask) as usize];
        bucket[0].key == key || bucket[1].key == key
    }

    /// Looks up `key` in the bucket selected by `code`. A hit in the
    /// older slot promotes the entry to the front (recency order).
    #[inline]
    pub fn probe(&mut self, code: u64, key: u64) -> Option<f64> {
        let bucket = &mut self.buckets[(code & self.mask) as usize];
        if bucket[0].key == key {
            self.hits += 1;
            return Some(bucket[0].value);
        }
        if bucket[1].key == key {
            self.hits += 1;
            bucket.swap(0, 1);
            return Some(bucket[0].value);
        }
        self.misses += 1;
        None
    }

    /// Inserts or updates `key → value` in the bucket selected by
    /// `code`: in-place if the key is present; otherwise the new entry
    /// takes slot 0, the previous front demotes to slot 1, and the
    /// oldest entry (if live) is evicted.
    #[inline]
    pub fn store(&mut self, code: u64, key: u64, value: f64) {
        debug_assert_ne!(key, 0, "key 0 is the empty-slot marker");
        let bucket = &mut self.buckets[(code & self.mask) as usize];
        self.stores += 1;
        if bucket[0].key == key {
            bucket[0].value = value;
            return;
        }
        if bucket[1].key == key {
            bucket[1].value = value;
            bucket.swap(0, 1);
            return;
        }
        if bucket[1].key != 0 && bucket[0].key != 0 {
            self.evictions += 1;
        }
        bucket[1] = bucket[0];
        bucket[0] = Entry { key, value };
    }

    /// Clears all entries (counters survive — they describe the
    /// session, not the resident set).
    pub fn clear(&mut self) {
        self.buckets.fill([Entry::default(); 2]);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TtStats {
        TtStats {
            hits: self.hits,
            misses: self.misses,
            stores: self.stores,
            evictions: self.evictions,
            capacity: self.buckets.len() * 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_miss_then_store_then_hit() {
        let mut tt = TransTable::new(64);
        let key = TransTable::full_key(0xdead_beef, 7);
        assert_eq!(tt.probe(7, key), None);
        tt.store(7, key, 1.25);
        assert_eq!(tt.probe(7, key), Some(1.25));
        let s = tt.stats();
        assert_eq!((s.hits, s.misses, s.stores, s.evictions), (1, 1, 1, 0));
        assert_eq!(s.capacity, 64);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn same_bucket_holds_two_keys_then_evicts_churn_slot() {
        // One bucket total: every code aliases to it.
        let mut tt = TransTable::new(2);
        let (k1, k2, k3) = (
            TransTable::full_key(1, 0),
            TransTable::full_key(2, 0),
            TransTable::full_key(3, 0),
        );
        tt.store(0, k1, 1.0);
        tt.store(0, k2, 2.0);
        assert_eq!(tt.stats().evictions, 0);
        // Third distinct key evicts the least recent (k1), keeping the
        // two newest resident.
        tt.store(0, k3, 3.0);
        assert_eq!(tt.stats().evictions, 1);
        assert_eq!(tt.probe(0, k2), Some(2.0));
        assert_eq!(tt.probe(0, k3), Some(3.0));
        assert_eq!(tt.probe(0, k1), None);
    }

    #[test]
    fn older_slot_hit_earns_recency() {
        let mut tt = TransTable::new(2);
        let (k1, k2, k3) = (
            TransTable::full_key(1, 0),
            TransTable::full_key(2, 0),
            TransTable::full_key(3, 0),
        );
        tt.store(0, k1, 1.0);
        tt.store(0, k2, 2.0);
        // Hitting k1 (the older slot) promotes it, so the next store
        // evicts k2 instead — the oscillation pattern's guarantee.
        assert_eq!(tt.probe(0, k1), Some(1.0));
        tt.store(0, k3, 3.0);
        assert_eq!(tt.probe(0, k1), Some(1.0));
        assert_eq!(tt.probe(0, k2), None);
    }

    #[test]
    fn in_place_update_is_not_an_eviction() {
        let mut tt = TransTable::new(8);
        let key = TransTable::full_key(5, 1);
        tt.store(1, key, 1.0);
        tt.store(1, key, 2.0);
        assert_eq!(tt.probe(1, key), Some(2.0));
        assert_eq!(tt.stats().evictions, 0);
        assert_eq!(tt.stats().stores, 2);
    }

    #[test]
    fn capacity_stays_bounded_and_clear_empties() {
        let mut tt = TransTable::new(16);
        for i in 0..10_000u64 {
            tt.store(i, TransTable::full_key(i, i), i as f64);
        }
        assert_eq!(tt.stats().capacity, 16);
        tt.clear();
        for i in 0..10_000u64 {
            assert_eq!(tt.probe(i, TransTable::full_key(i, i)), None);
        }
    }

    #[test]
    fn full_key_never_zero_and_mixes_both_inputs() {
        assert_ne!(TransTable::full_key(0, 0), 0);
        assert_ne!(TransTable::full_key(1, 0), TransTable::full_key(0, 1));
        assert_ne!(TransTable::full_key(7, 3), TransTable::full_key(7, 4));
    }
}
