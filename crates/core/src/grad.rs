//! Analytic gradient of the bi-level surrogate objective.
//!
//! Loss (paper Eq. (5a)): `L = Σ_{a∈T} (E_a − e^{ρ_a})²` with
//! `ρ_a = β0 + β1 u_a`, `u = ln N`, `v = ln E`, and `β = S⁻¹ c` the OLS
//! solution over all nodes (`S = XᵀX`, `c = Xᵀv`, `X = [1, u]`).
//!
//! Because the lower-level problem (OLS) has a closed form, the total
//! derivative does too. With `r_a = E_a − e^{ρ_a}`:
//!
//! * `gβ = (−2 Σ_a r_a e^{ρ_a}, −2 Σ_a r_a e^{ρ_a} u_a)` and `w = S⁻¹ gβ`;
//! * `dL/dv_k = w₀ + w₁ u_k` (β-path only);
//! * `dL/du_k = [k∈T](−2 r_k e^{ρ_k} β₁) + (−β₁ w₀ + (v_k − β₀ − 2u_k β₁) w₁)`;
//! * `gN_k = (dL/du_k) / N_k`, `gE_k = [k∈T] 2 r_k + (dL/dv_k) / E_k`;
//! * for the unordered pair `{i,j}` (both `A_ij` and `A_ji` flip):
//!   `G_ij = (h_i + h_j) + (A²)_ij (gE_i + gE_j) + (A·diag(gE)·A)_ij`
//!   with `h = gN + gE`.
//!
//! The `(A²)`/`(A diag A)` terms come from `E_k = N_k + ½(A³)_kk`:
//! differentiating `tr(diag(gE/2)·A³)` w.r.t. a symmetric pair
//! perturbation yields exactly those common-neighbour sums — so on a
//! *binary* graph the whole pair gradient is a sorted-merge
//! common-neighbour scan, `O(deg(i) + deg(j))` per pair, with no `n×n`
//! matrix anywhere ([`pair_grad`], [`assemble_pair_grads_into`]). The
//! dense fallback for fractional adjacencies (ContinuousA only) lives in
//! [`crate::dense`]. Everything here is verified against `ba-autodiff`
//! and finite differences in `tests/grad_check.rs`.

use crate::loss::{fit_beta, safe_exp, LossError};
use crate::pair::Candidates;
use ba_graph::view::merge_count_weighted;
use ba_graph::{GraphView, NodeId};
use std::collections::BTreeMap;

/// Per-node derivatives of the surrogate loss, plus the fitted regression
/// and the loss value itself (the forward pass is a by-product).
#[derive(Debug, Clone)]
pub struct NodeGrads {
    /// Surrogate loss at the evaluated features.
    pub loss: f64,
    /// Fitted intercept `β0`.
    pub beta0: f64,
    /// Fitted slope `β1`.
    pub beta1: f64,
    /// `dL/dN_k` (total derivative, including the regression path).
    pub g_n: Vec<f64>,
    /// `dL/dE_k` (total derivative, including the regression path).
    pub g_e: Vec<f64>,
    /// `h = g_n + g_e` — the per-endpoint part of the pair gradient.
    pub h: Vec<f64>,
}

/// Computes [`NodeGrads`] from raw feature vectors.
///
/// `targets` must be in range; features may be fractional (ContinuousA).
pub fn node_grads(n: &[f64], e: &[f64], targets: &[NodeId]) -> Result<NodeGrads, LossError> {
    let n_nodes = n.len();
    if targets.iter().any(|&t| (t as usize) >= n_nodes) {
        return Err(LossError::TargetOutOfRange);
    }
    let (u, v) = ba_oddball::log_features(n, e);
    let (b0, b1) = fit_beta(&u, &v)?;

    // Normal-equation sums (S entries).
    let nn = n_nodes as f64;
    let su: f64 = u.iter().sum();
    let suu: f64 = u.iter().map(|x| x * x).sum();

    // Target residuals and gβ.
    let mut is_target = vec![false; n_nodes];
    let mut loss = 0.0;
    let mut gb0 = 0.0;
    let mut gb1 = 0.0;
    for &a in targets {
        let k = a as usize;
        is_target[k] = true;
        let rho = b0 + b1 * u[k];
        let exp_rho = safe_exp(rho);
        let r = e[k].max(1.0) - exp_rho;
        loss += r * r;
        gb0 += -2.0 * r * exp_rho;
        gb1 += -2.0 * r * exp_rho * u[k];
    }

    // w = S⁻¹ gβ (S is symmetric).
    let (w0, w1) = ba_linalg::solve2(nn, su, su, suu, gb0, gb1)
        .map_err(|_| LossError::DegenerateRegression)?;

    let mut g_n = vec![0.0; n_nodes];
    let mut g_e = vec![0.0; n_nodes];
    let mut h = vec![0.0; n_nodes];
    for k in 0..n_nodes {
        // β-path derivatives.
        let dl_dv = w0 + w1 * u[k];
        let mut dl_du = -b1 * w0 + (v[k] - b0 - 2.0 * u[k] * b1) * w1;
        let mut dl_de_direct = 0.0;
        if is_target[k] {
            let rho = b0 + b1 * u[k];
            let exp_rho = safe_exp(rho);
            let r = e[k].max(1.0) - exp_rho;
            dl_du += -2.0 * r * exp_rho * b1;
            dl_de_direct = 2.0 * r;
        }
        // Chain through the clamped logs: d ln(max(x,1))/dx = 1/x for
        // x ≥ 1, 0 below the clamp.
        let du_dn = if n[k] >= 1.0 { 1.0 / n[k] } else { 0.0 };
        let dv_de = if e[k] >= 1.0 { 1.0 / e[k] } else { 0.0 };
        g_n[k] = dl_du * du_dn;
        g_e[k] = dl_de_direct + dl_dv * dv_de;
        h[k] = g_n[k] + g_e[k];
    }
    Ok(NodeGrads {
        loss,
        beta0: b0,
        beta1: b1,
        g_n,
        g_e,
        h,
    })
}

/// Gradient of the loss w.r.t. the single unordered pair `{i, j}` on a
/// *binary* graph, computed sparsely from common neighbours: one sorted
/// merge over the two neighbour slices, `O(deg(i) + deg(j))`.
pub fn pair_grad<V: GraphView + ?Sized>(g: &V, ng: &NodeGrads, i: NodeId, j: NodeId) -> f64 {
    debug_assert_ne!(i, j);
    pair_grad_row(g, ng, i, g.neighbors_sorted(i), j)
}

/// [`pair_grad`] with the first endpoint's neighbour slice supplied by
/// the caller. The chunked merge assembly walks candidates grouped by
/// their first endpoint, so it fetches each leading row once per run of
/// pairs instead of once per pair — on a `DeltaOverlay` that fetch is an
/// indirection through the dirty-row table, and hoisting it keeps the
/// hot loop inside the fused merge kernel. Bit-identical to
/// [`pair_grad`]: the merge itself accumulates in ascending common
/// neighbour, whichever strategy ([`merge_count_weighted`]'s linear or
/// galloping path) the length ratio picks.
#[inline]
fn pair_grad_row<V: GraphView + ?Sized>(
    g: &V,
    ng: &NodeGrads,
    i: NodeId,
    nbrs_i: &[NodeId],
    j: NodeId,
) -> f64 {
    let (cn, wsum) = merge_count_weighted(nbrs_i, g.neighbors_sorted(j), &ng.g_e);
    ng.h[i as usize]
        + ng.h[j as usize]
        + cn as f64 * (ng.g_e[i as usize] + ng.g_e[j as usize])
        + wsum
}

/// Resolves a thread-count request: `0` means autodetect via
/// [`std::thread::available_parallelism`].
pub fn resolve_threads(threads: usize) -> usize {
    if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Assembles the pair gradient `G_ij` for every candidate pair into
/// `out`: `out[idx]` receives [`pair_grad`] for the pair at `idx` when
/// `mask[idx]` is set, `0.0` otherwise. No `n×n` matrix is ever
/// allocated, and the result is bit-identical for any thread count and
/// either internal strategy — determinism the fixed-seed attack
/// equivalence tests rely on.
///
/// Two sparse strategies, chosen by a cost model:
///
/// * **per-pair merge** — a sorted-merge common-neighbour scan per
///   candidate, `O(deg(i) + deg(j))` each, parallelised over candidate
///   chunks with scoped threads. Wins when the candidate set is small
///   relative to the graph (e.g. `TargetNeighborhood` scope).
/// * **wedge scatter** — enumerate every wedge `a–m–b` once
///   (`O(Σ_m deg(m)²)`) and scatter `(count, Σ gE_m)` into flat arrays
///   indexed by candidate, then combine in one linear pass. Wins when
///   the candidates are dense in the pair space (`Full` scope), where
///   per-pair merges would re-walk every adjacency list `n` times.
///
/// Both accumulate common-neighbour contributions in increasing `m` and
/// combine with the same expression, so they agree to the last bit.
pub fn assemble_pair_grads_into<V: GraphView + Sync + ?Sized>(
    g: &V,
    ng: &NodeGrads,
    candidates: &Candidates,
    mask: &[bool],
    threads: usize,
    out: &mut [f64],
) {
    assemble_pair_grads_with_scratch(g, ng, candidates, mask, threads, out, &mut Vec::new());
}

/// [`assemble_pair_grads_into`] with a caller-owned scratch buffer for
/// the wedge-scatter strategy's per-candidate corrections, so hot loops
/// (one assembly per optimiser iteration) avoid re-allocating a
/// candidate-sized buffer every call. Results are identical to
/// [`assemble_pair_grads_into`] regardless of the scratch's prior
/// contents.
pub fn assemble_pair_grads_with_scratch<V: GraphView + Sync + ?Sized>(
    g: &V,
    ng: &NodeGrads,
    candidates: &Candidates,
    mask: &[bool],
    threads: usize,
    out: &mut [f64],
    scratch: &mut Vec<(f64, f64)>,
) {
    let len = candidates.len();
    assert_eq!(mask.len(), len, "mask length mismatch");
    assert_eq!(out.len(), len, "output length mismatch");
    if len == 0 {
        return;
    }
    // Cost model (unit = one adjacency touch). Merge re-walks both
    // endpoint lists per pair; scatter touches every wedge once plus a
    // constant amount per candidate slot.
    let n = g.num_nodes().max(1);
    let avg_deg = 2.0 * g.num_edges() as f64 / n as f64;
    let merge_cost = len as f64 * (2.0 * avg_deg + 4.0);
    let wedges: f64 = (0..n as NodeId)
        .map(|m| {
            let d = g.degree(m) as f64;
            d * (d - 1.0) * 0.5
        })
        .sum();
    let scatter_cost = wedges + 4.0 * len as f64;
    if scatter_cost < merge_cost {
        scatter_pair_grads(g, ng, candidates, mask, threads, out, scratch);
    } else {
        merge_pair_grads(g, ng, candidates, mask, threads, out);
    }
}

/// Per-pair sorted-merge strategy (see [`assemble_pair_grads_into`]).
fn merge_pair_grads<V: GraphView + Sync + ?Sized>(
    g: &V,
    ng: &NodeGrads,
    candidates: &Candidates,
    mask: &[bool],
    threads: usize,
    out: &mut [f64],
) {
    let len = candidates.len();
    let threads = resolve_threads(threads).min(len.max(1));
    let fill = |start: usize, chunk: &mut [f64]| {
        let end = start + chunk.len();
        // Candidates arrive grouped by first endpoint, so the leading
        // row slice is hoisted across each run of pairs sharing it.
        let mut cur_i: Option<NodeId> = None;
        let mut row_i: &[NodeId] = &[];
        candidates.for_each_range(start, end, |idx, i, j| {
            chunk[idx - start] = if mask[idx] {
                if cur_i != Some(i) {
                    cur_i = Some(i);
                    row_i = g.neighbors_sorted(i);
                }
                pair_grad_row(g, ng, i, row_i, j)
            } else {
                0.0
            };
        });
    };
    if threads <= 1 || len < 1024 {
        fill(0, out);
        return;
    }
    let chunk = len.div_ceil(threads);
    let fill = &fill;
    std::thread::scope(|scope| {
        for (c, out_chunk) in out.chunks_mut(chunk).enumerate() {
            scope.spawn(move || fill(c * chunk, out_chunk));
        }
    });
}

/// Wedge-scatter strategy (see [`assemble_pair_grads_into`]): the flat-
/// array descendant of [`correction_map`] — same sums, no hashing.
fn scatter_pair_grads<V: GraphView + Sync + ?Sized>(
    g: &V,
    ng: &NodeGrads,
    candidates: &Candidates,
    mask: &[bool],
    threads: usize,
    out: &mut [f64],
    scratch: &mut Vec<(f64, f64)>,
) {
    let len = candidates.len();
    let n = g.num_nodes();
    // Per-candidate `(common-neighbour count, Σ gE_m)`, interleaved so a
    // wedge hit costs one cache line. Enumeration is endpoint-ordered —
    // ascending smaller endpoint `a`, then `m ∈ N(a)` ascending, then
    // `b ∈ N(m)` past `a` — which (1) clusters the scatter writes by
    // pair-space row and (2) delivers each pair's contributions in
    // ascending `m`, so the accumulated sums are bit-identical to the
    // sorted merge's.
    scratch.clear();
    scratch.resize(len, (0.0, 0.0));
    let corr: &mut [(f64, f64)] = scratch;
    for a in 0..n as NodeId {
        for &m in g.neighbors_sorted(a) {
            let gem = ng.g_e[m as usize];
            let nbrs_m = g.neighbors_sorted(m);
            let from = nbrs_m.partition_point(|&b| b <= a);
            for &b in &nbrs_m[from..] {
                if let Some(idx) = candidates.index_of(a, b) {
                    let slot = &mut corr[idx];
                    slot.0 += 1.0;
                    slot.1 += gem;
                }
            }
        }
    }
    // Combine pass: same expression as `pair_grad` (the `cn == 0` branch
    // only skips adding exact zeros).
    let threads = resolve_threads(threads).min(len.max(1));
    if threads <= 1 || len < 1024 {
        combine_chunk(ng, candidates, mask, corr, 0, out);
        return;
    }
    let chunk = len.div_ceil(threads);
    let corr = &corr;
    std::thread::scope(|scope| {
        for (c, out_chunk) in out.chunks_mut(chunk).enumerate() {
            scope.spawn(move || combine_chunk(ng, candidates, mask, corr, c * chunk, out_chunk));
        }
    });
}

/// One combine chunk of the scatter strategy: `out[idx] = G_ij` from the
/// accumulated `(cn, Σ gE_m)` corrections, matching [`pair_grad`]'s
/// evaluation order exactly.
fn combine_chunk(
    ng: &NodeGrads,
    candidates: &Candidates,
    mask: &[bool],
    corr: &[(f64, f64)],
    start: usize,
    chunk: &mut [f64],
) {
    let end = start + chunk.len();
    candidates.for_each_range(start, end, |idx, i, j| {
        chunk[idx - start] = if mask[idx] {
            let base = ng.h[i as usize] + ng.h[j as usize];
            let (c, w) = corr[idx];
            if c != 0.0 {
                base + c * (ng.g_e[i as usize] + ng.g_e[j as usize]) + w
            } else {
                base
            }
        } else {
            0.0
        };
    });
}

/// Per-pair merge assembly over an *explicit list* of candidate
/// indices — the transposition table's miss list. `vals[k]` receives
/// [`pair_grad`] for the pair at `indices[k]`; chunks of the list are
/// evaluated on scoped threads. Because each value is the same
/// `pair_grad` the masked assembly computes (both strategies are
/// bit-identical to it), mixing cached and freshly-computed entries
/// can never change a result, only its cost.
///
/// The miss list is also where the PV-ordering story pays off in the
/// assembly itself: cold candidates are packed contiguously (ascending
/// index) instead of being scattered through a mostly-cached mask, so
/// the threads each walk a dense span of real work.
pub fn pair_grads_for_indices<V: GraphView + Sync + ?Sized>(
    g: &V,
    ng: &NodeGrads,
    candidates: &Candidates,
    indices: &[u32],
    threads: usize,
    vals: &mut [f64],
) {
    let len = indices.len();
    assert_eq!(vals.len(), len, "values length mismatch");
    if len == 0 {
        return;
    }
    let fill = |idx_chunk: &[u32], val_chunk: &mut [f64]| {
        for (k, &idx) in idx_chunk.iter().enumerate() {
            let (i, j) = candidates.pair(idx as usize);
            val_chunk[k] = pair_grad(g, ng, i, j);
        }
    };
    let threads = resolve_threads(threads).min(len);
    if threads <= 1 || len < 1024 {
        fill(indices, vals);
        return;
    }
    let chunk = len.div_ceil(threads);
    let fill = &fill;
    std::thread::scope(|scope| {
        for (idx_chunk, val_chunk) in indices.chunks(chunk).zip(vals.chunks_mut(chunk)) {
            scope.spawn(move || fill(idx_chunk, val_chunk));
        }
    });
}

/// Allocating convenience wrapper around [`assemble_pair_grads_into`].
pub fn assemble_pair_grads<V: GraphView + Sync + ?Sized>(
    g: &V,
    ng: &NodeGrads,
    candidates: &Candidates,
    mask: &[bool],
    threads: usize,
) -> Vec<f64> {
    let mut out = vec![0.0; candidates.len()];
    assemble_pair_grads_into(g, ng, candidates, mask, threads, &mut out);
    out
}

/// Packs an unordered pair into a `u64` map key.
#[inline]
fn pair_key(i: NodeId, j: NodeId) -> u64 {
    let (i, j) = if i < j { (i, j) } else { (j, i) };
    ((i as u64) << 32) | j as u64
}

/// Builds the sparse second-order correction terms for *all* pairs with
/// at least one common neighbour: for each such pair the map holds
/// `(common-neighbour count, Σ_m gE_m over common neighbours)`.
///
/// Enumerating the middle node `m` and all pairs of its neighbours costs
/// `O(Σ_m deg(m)²)` and a hash insert per wedge. The per-pair merge path
/// ([`assemble_pair_grads_into`]) replaced this in the attack hot loops —
/// it allocates nothing per step and parallelises — but the map remains
/// the independent reference implementation the equivalence tests check
/// the merge path against. A `BTreeMap` rather than a hash map: lookups
/// are the only consumer, and the determinism contract (R2) keeps
/// randomized-iteration-order containers out of this crate entirely.
pub fn correction_map<V: GraphView + ?Sized>(g: &V, g_e: &[f64]) -> BTreeMap<u64, (f64, f64)> {
    let mut map: BTreeMap<u64, (f64, f64)> = BTreeMap::new();
    for m in 0..g.num_nodes() as NodeId {
        let gem = g_e[m as usize];
        let nbrs = g.neighbors_sorted(m);
        for (ai, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[ai + 1..] {
                let entry = map.entry(pair_key(a, b)).or_insert((0.0, 0.0));
                entry.0 += 1.0;
                entry.1 += gem;
            }
        }
    }
    map
}

/// Full pair gradient as a correction lookup: `G_ij = h_i + h_j +
/// cn·(gE_i + gE_j) + Σ gE_m`, where the correction part comes from a
/// prebuilt [`correction_map`].
#[inline]
pub fn pair_grad_with_corrections(
    ng: &NodeGrads,
    corrections: &BTreeMap<u64, (f64, f64)>,
    i: NodeId,
    j: NodeId,
) -> f64 {
    let base = ng.h[i as usize] + ng.h[j as usize];
    match corrections.get(&pair_key(i, j)) {
        Some(&(cn, wsum)) => base + cn * (ng.g_e[i as usize] + ng.g_e[j as usize]) + wsum,
        None => base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::CandidateScope;
    use ba_graph::egonet::egonet_features;
    use ba_graph::{generators, CsrGraph, DeltaOverlay, Graph};

    fn feature_vectors(g: &Graph) -> (Vec<f64>, Vec<f64>) {
        let f = egonet_features(g);
        (f.n, f.e)
    }

    #[test]
    fn node_grads_loss_matches_direct_eval() {
        let g = generators::erdos_renyi(60, 0.1, 1);
        let (n, e) = feature_vectors(&g);
        let targets = [0, 5, 9];
        let ng = node_grads(&n, &e, &targets).unwrap();
        let direct = crate::loss::surrogate_loss_from_features(&n, &e, &targets).unwrap();
        assert!((ng.loss - direct).abs() < 1e-9);
    }

    #[test]
    fn node_grads_match_finite_difference_on_features() {
        // Perturb N_k / E_k directly and compare with g_n / g_e.
        let g = generators::erdos_renyi(40, 0.15, 2);
        let (n, e) = feature_vectors(&g);
        let targets = [1, 3];
        let ng = node_grads(&n, &e, &targets).unwrap();
        let h = 1e-5;
        for k in [0usize, 1, 3, 10, 20] {
            // dL/dN_k
            let mut np = n.clone();
            np[k] += h;
            let mut nm = n.clone();
            nm[k] -= h;
            let lp = crate::loss::surrogate_loss_from_features(&np, &e, &targets).unwrap();
            let lm = crate::loss::surrogate_loss_from_features(&nm, &e, &targets).unwrap();
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - ng.g_n[k]).abs() < 1e-4 * (1.0 + fd.abs()),
                "g_n[{k}]: analytic {} vs fd {fd}",
                ng.g_n[k]
            );
            // dL/dE_k
            let mut ep = e.clone();
            ep[k] += h;
            let mut em = e.clone();
            em[k] -= h;
            let lp = crate::loss::surrogate_loss_from_features(&n, &ep, &targets).unwrap();
            let lm = crate::loss::surrogate_loss_from_features(&n, &em, &targets).unwrap();
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - ng.g_e[k]).abs() < 1e-4 * (1.0 + fd.abs()),
                "g_e[{k}]: analytic {} vs fd {fd}",
                ng.g_e[k]
            );
        }
    }

    #[test]
    fn pair_grad_agrees_with_correction_map() {
        let g = generators::barabasi_albert(80, 3, 3);
        let (n, e) = feature_vectors(&g);
        let ng = node_grads(&n, &e, &[2, 7]).unwrap();
        let corr = correction_map(&g, &ng.g_e);
        for (i, j) in [(0u32, 1u32), (2, 3), (10, 40), (5, 6), (70, 79)] {
            let direct = pair_grad(&g, &ng, i, j);
            let via_map = pair_grad_with_corrections(&ng, &corr, i, j);
            assert!(
                (direct - via_map).abs() < 1e-12,
                "pair ({i},{j}): {direct} vs {via_map}"
            );
        }
    }

    #[test]
    fn assembly_bitwise_matches_correction_map_and_any_thread_count() {
        let g = generators::barabasi_albert(120, 4, 9);
        let (n, e) = feature_vectors(&g);
        let ng = node_grads(&n, &e, &[1, 17, 33]).unwrap();
        let candidates = Candidates::build(CandidateScope::Full, &g, &[1, 17, 33]);
        let mask = vec![true; candidates.len()];
        let corr = correction_map(&g, &ng.g_e);

        let serial = assemble_pair_grads(&g, &ng, &candidates, &mask, 1);
        for threads in [2usize, 4, 7] {
            let parallel = assemble_pair_grads(&g, &ng, &candidates, &mask, threads);
            assert_eq!(serial, parallel, "thread count {threads} diverged");
        }
        candidates.for_each(|idx, i, j| {
            let via_map = pair_grad_with_corrections(&ng, &corr, i, j);
            assert_eq!(
                serial[idx], via_map,
                "pair ({i},{j}): merge path must be bit-identical to the map path"
            );
        });
    }

    #[test]
    fn merge_and_scatter_strategies_agree_bitwise() {
        // Both internal strategies must be interchangeable to the last
        // bit — the cost model may pick either depending on graph shape.
        let g = generators::barabasi_albert(100, 5, 21);
        let (n, e) = feature_vectors(&g);
        let targets = [3u32, 11];
        let ng = node_grads(&n, &e, &targets).unwrap();
        for scope in [CandidateScope::Full, CandidateScope::TargetNeighborhood] {
            let candidates = Candidates::build(scope, &g, &targets);
            let mut mask = vec![true; candidates.len()];
            mask[candidates.len() / 2] = false;
            let mut via_merge = vec![0.0; candidates.len()];
            let mut via_scatter = vec![0.0; candidates.len()];
            super::merge_pair_grads(&g, &ng, &candidates, &mask, 1, &mut via_merge);
            super::scatter_pair_grads(
                &g,
                &ng,
                &candidates,
                &mask,
                1,
                &mut via_scatter,
                &mut Vec::new(),
            );
            assert_eq!(via_merge, via_scatter, "scope {scope:?}");
        }
    }

    #[test]
    fn list_assembly_matches_masked_assembly_bitwise() {
        let g = generators::barabasi_albert(90, 4, 17);
        let (n, e) = feature_vectors(&g);
        let targets = [2u32, 9];
        let ng = node_grads(&n, &e, &targets).unwrap();
        let candidates = Candidates::build(CandidateScope::Full, &g, &targets);
        let mask = vec![true; candidates.len()];
        let full = assemble_pair_grads(&g, &ng, &candidates, &mask, 1);
        // A scattered subset of indices, assembled as an explicit list.
        let indices: Vec<u32> = (0..candidates.len() as u32).step_by(3).collect();
        for threads in [1usize, 4] {
            let mut vals = vec![0.0; indices.len()];
            pair_grads_for_indices(&g, &ng, &candidates, &indices, threads, &mut vals);
            for (k, &idx) in indices.iter().enumerate() {
                assert_eq!(vals[k], full[idx as usize], "idx {idx} threads {threads}");
            }
        }
    }

    #[test]
    fn for_each_range_matches_pair_decode() {
        let g = generators::erdos_renyi(40, 0.1, 2);
        for scope in [CandidateScope::Full, CandidateScope::TargetNeighborhood] {
            let candidates = Candidates::build(scope, &g, &[0, 1]);
            let len = candidates.len();
            for (start, end) in [(0, len), (len / 3, 2 * len / 3), (len - 1, len)] {
                candidates.for_each_range(start, end, |idx, i, j| {
                    assert_eq!(candidates.pair(idx), (i, j), "idx {idx}");
                });
            }
        }
    }

    #[test]
    fn assembly_identical_across_representations() {
        let g = generators::erdos_renyi(90, 0.06, 12);
        let (n, e) = feature_vectors(&g);
        let targets = [4u32, 8];
        let ng = node_grads(&n, &e, &targets).unwrap();
        let candidates = Candidates::build(CandidateScope::Full, &g, &targets);
        let mask = vec![true; candidates.len()];
        let csr = CsrGraph::from(&g);
        let ov = DeltaOverlay::new(&csr);
        let a = assemble_pair_grads(&g, &ng, &candidates, &mask, 2);
        let b = assemble_pair_grads(&csr, &ng, &candidates, &mask, 2);
        let c = assemble_pair_grads(&ov, &ng, &candidates, &mask, 2);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn assembly_respects_mask() {
        let g = generators::erdos_renyi(30, 0.2, 5);
        let (n, e) = feature_vectors(&g);
        let ng = node_grads(&n, &e, &[0]).unwrap();
        let candidates = Candidates::build(CandidateScope::Full, &g, &[0]);
        let mut mask = vec![false; candidates.len()];
        mask[3] = true;
        let grads = assemble_pair_grads(&g, &ng, &candidates, &mask, 2);
        for (idx, &v) in grads.iter().enumerate() {
            if idx == 3 {
                let (i, j) = candidates.pair(idx);
                assert_eq!(v, pair_grad(&g, &ng, i, j));
            } else {
                assert_eq!(v, 0.0);
            }
        }
    }

    #[test]
    fn empty_targets_zero_gradient() {
        let g = generators::erdos_renyi(30, 0.15, 6);
        let (n, e) = feature_vectors(&g);
        let ng = node_grads(&n, &e, &[]).unwrap();
        assert_eq!(ng.loss, 0.0);
        for k in 0..30 {
            assert_eq!(ng.g_n[k], 0.0);
            assert_eq!(ng.g_e[k], 0.0);
        }
    }
}
