//! Analytic gradient of the bi-level surrogate objective.
//!
//! Loss (paper Eq. (5a)): `L = Σ_{a∈T} (E_a − e^{ρ_a})²` with
//! `ρ_a = β0 + β1 u_a`, `u = ln N`, `v = ln E`, and `β = S⁻¹ c` the OLS
//! solution over all nodes (`S = XᵀX`, `c = Xᵀv`, `X = [1, u]`).
//!
//! Because the lower-level problem (OLS) has a closed form, the total
//! derivative does too. With `r_a = E_a − e^{ρ_a}`:
//!
//! * `gβ = (−2 Σ_a r_a e^{ρ_a}, −2 Σ_a r_a e^{ρ_a} u_a)` and `w = S⁻¹ gβ`;
//! * `dL/dv_k = w₀ + w₁ u_k` (β-path only);
//! * `dL/du_k = [k∈T](−2 r_k e^{ρ_k} β₁) + (−β₁ w₀ + (v_k − β₀ − 2u_k β₁) w₁)`;
//! * `gN_k = (dL/du_k) / N_k`, `gE_k = [k∈T] 2 r_k + (dL/dv_k) / E_k`;
//! * for the unordered pair `{i,j}` (both `A_ij` and `A_ji` flip):
//!   `G_ij = (h_i + h_j) + (A²)_ij (gE_i + gE_j) + (A·diag(gE)·A)_ij`
//!   with `h = gN + gE`.
//!
//! The `(A²)`/`(A diag A)` terms come from `E_k = N_k + ½(A³)_kk`:
//! differentiating `tr(diag(gE/2)·A³)` w.r.t. a symmetric pair
//! perturbation yields exactly those common-neighbour sums. Everything
//! here is verified against `ba-autodiff` and finite differences in
//! `tests/grad_check.rs`.

use crate::loss::{fit_beta, safe_exp, LossError};
use ba_graph::{Graph, NodeId};
use ba_oddball::log_features;
use std::collections::HashMap;

/// Per-node derivatives of the surrogate loss, plus the fitted regression
/// and the loss value itself (the forward pass is a by-product).
#[derive(Debug, Clone)]
pub struct NodeGrads {
    /// Surrogate loss at the evaluated features.
    pub loss: f64,
    /// Fitted intercept `β0`.
    pub beta0: f64,
    /// Fitted slope `β1`.
    pub beta1: f64,
    /// `dL/dN_k` (total derivative, including the regression path).
    pub g_n: Vec<f64>,
    /// `dL/dE_k` (total derivative, including the regression path).
    pub g_e: Vec<f64>,
    /// `h = g_n + g_e` — the per-endpoint part of the pair gradient.
    pub h: Vec<f64>,
}

/// Computes [`NodeGrads`] from raw feature vectors.
///
/// `targets` must be in range; features may be fractional (ContinuousA).
pub fn node_grads(n: &[f64], e: &[f64], targets: &[NodeId]) -> Result<NodeGrads, LossError> {
    let n_nodes = n.len();
    if targets.iter().any(|&t| (t as usize) >= n_nodes) {
        return Err(LossError::TargetOutOfRange);
    }
    let (u, v) = log_features(n, e);
    let (b0, b1) = fit_beta(&u, &v)?;

    // Normal-equation sums (S entries).
    let nn = n_nodes as f64;
    let su: f64 = u.iter().sum();
    let suu: f64 = u.iter().map(|x| x * x).sum();

    // Target residuals and gβ.
    let mut is_target = vec![false; n_nodes];
    let mut loss = 0.0;
    let mut gb0 = 0.0;
    let mut gb1 = 0.0;
    for &a in targets {
        let k = a as usize;
        is_target[k] = true;
        let rho = b0 + b1 * u[k];
        let exp_rho = safe_exp(rho);
        let r = e[k].max(1.0) - exp_rho;
        loss += r * r;
        gb0 += -2.0 * r * exp_rho;
        gb1 += -2.0 * r * exp_rho * u[k];
    }

    // w = S⁻¹ gβ (S is symmetric).
    let (w0, w1) = ba_linalg::solve2(nn, su, su, suu, gb0, gb1)
        .map_err(|_| LossError::DegenerateRegression)?;

    let mut g_n = vec![0.0; n_nodes];
    let mut g_e = vec![0.0; n_nodes];
    let mut h = vec![0.0; n_nodes];
    for k in 0..n_nodes {
        // β-path derivatives.
        let dl_dv = w0 + w1 * u[k];
        let mut dl_du = -b1 * w0 + (v[k] - b0 - 2.0 * u[k] * b1) * w1;
        let mut dl_de_direct = 0.0;
        if is_target[k] {
            let rho = b0 + b1 * u[k];
            let exp_rho = safe_exp(rho);
            let r = e[k].max(1.0) - exp_rho;
            dl_du += -2.0 * r * exp_rho * b1;
            dl_de_direct = 2.0 * r;
        }
        // Chain through the clamped logs: d ln(max(x,1))/dx = 1/x for
        // x ≥ 1, 0 below the clamp.
        let du_dn = if n[k] >= 1.0 { 1.0 / n[k] } else { 0.0 };
        let dv_de = if e[k] >= 1.0 { 1.0 / e[k] } else { 0.0 };
        g_n[k] = dl_du * du_dn;
        g_e[k] = dl_de_direct + dl_dv * dv_de;
        h[k] = g_n[k] + g_e[k];
    }
    Ok(NodeGrads {
        loss,
        beta0: b0,
        beta1: b1,
        g_n,
        g_e,
        h,
    })
}

/// Gradient of the loss w.r.t. the single unordered pair `{i, j}` on a
/// *binary* graph, computed sparsely from common neighbours.
pub fn pair_grad(g: &Graph, ng: &NodeGrads, i: NodeId, j: NodeId) -> f64 {
    debug_assert_ne!(i, j);
    let mut cn = 0usize;
    let mut wsum = 0.0;
    let (a, b) = (g.neighbors(i), g.neighbors(j));
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    for &m in small {
        if large.contains(&m) {
            cn += 1;
            wsum += ng.g_e[m as usize];
        }
    }
    ng.h[i as usize]
        + ng.h[j as usize]
        + cn as f64 * (ng.g_e[i as usize] + ng.g_e[j as usize])
        + wsum
}

/// Packs an unordered pair into a `u64` map key.
#[inline]
fn pair_key(i: NodeId, j: NodeId) -> u64 {
    let (i, j) = if i < j { (i, j) } else { (j, i) };
    ((i as u64) << 32) | j as u64
}

/// Builds the sparse second-order correction terms for *all* pairs with
/// at least one common neighbour: for each such pair the map holds
/// `(common-neighbour count, Σ_m gE_m over common neighbours)`.
///
/// Enumerating the middle node `m` and all pairs of its neighbours costs
/// `O(Σ_m deg(m)²)` — cheap on the paper's sparse graphs, and *much*
/// cheaper than a dense `A²` product.
pub fn correction_map(g: &Graph, g_e: &[f64]) -> HashMap<u64, (f64, f64)> {
    let mut map: HashMap<u64, (f64, f64)> = HashMap::with_capacity(4 * g.num_edges());
    for m in 0..g.num_nodes() as NodeId {
        let gem = g_e[m as usize];
        let nbrs: Vec<NodeId> = g.neighbors(m).iter().copied().collect();
        for (ai, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[ai + 1..] {
                let entry = map.entry(pair_key(a, b)).or_insert((0.0, 0.0));
                entry.0 += 1.0;
                entry.1 += gem;
            }
        }
    }
    map
}

/// Full pair gradient as a correction lookup: `G_ij = h_i + h_j +
/// cn·(gE_i + gE_j) + Σ gE_m`, where the correction part comes from a
/// prebuilt [`correction_map`].
#[inline]
pub fn pair_grad_with_corrections(
    ng: &NodeGrads,
    corrections: &HashMap<u64, (f64, f64)>,
    i: NodeId,
    j: NodeId,
) -> f64 {
    let base = ng.h[i as usize] + ng.h[j as usize];
    match corrections.get(&pair_key(i, j)) {
        Some(&(cn, wsum)) => base + cn * (ng.g_e[i as usize] + ng.g_e[j as usize]) + wsum,
        None => base,
    }
}

/// Dense pair gradient for a *fractional* symmetric adjacency matrix
/// (ContinuousA). Returns an `n × n` symmetric matrix `G` whose `(i,j)`
/// entry is the derivative w.r.t. the unordered pair; the diagonal is 0.
///
/// Uses two dense products: `A²` and `A·diag(gE)·A`.
pub fn dense_pair_gradient(
    a: &ba_linalg::Matrix,
    ng: &NodeGrads,
    threads: usize,
) -> ba_linalg::Matrix {
    let n = a.rows();
    assert_eq!(n, a.cols(), "adjacency must be square");
    assert_eq!(n, ng.h.len(), "gradient size mismatch");
    let a2 = ba_linalg::par_matmul(a, a, threads);
    // AW: scale columns of A by gE (W = diag(gE)); then (AW)·A.
    let mut aw = a.clone();
    for i in 0..n {
        let row = aw.row_mut(i);
        for (j, x) in row.iter_mut().enumerate() {
            *x *= ng.g_e[j];
        }
    }
    let awa = ba_linalg::par_matmul(&aw, a, threads);
    let mut g = ba_linalg::Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            g[(i, j)] = ng.h[i] + ng.h[j] + a2[(i, j)] * (ng.g_e[i] + ng.g_e[j]) + awa[(i, j)];
        }
    }
    g
}

/// Computes fractional egonet features `N = A·1`, `E = N + ½ diag(A³)`
/// from a dense symmetric adjacency. Returns `(n, e)`.
pub fn dense_features(a: &ba_linalg::Matrix, threads: usize) -> (Vec<f64>, Vec<f64>) {
    let n = a.rows();
    let a2 = ba_linalg::par_matmul(a, a, threads);
    let mut deg = vec![0.0; n];
    let mut e = vec![0.0; n];
    for i in 0..n {
        let row = a.row(i);
        deg[i] = row.iter().sum();
        // diag(A³)_i = Σ_m (A²)_im A_mi = row_i(A²)·row_i(A) for symmetric A.
        let a2row = a2.row(i);
        let t: f64 = a2row.iter().zip(row).map(|(x, y)| x * y).sum();
        e[i] = deg[i] + 0.5 * t;
    }
    (deg, e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_graph::egonet::egonet_features;
    use ba_graph::generators;

    fn feature_vectors(g: &Graph) -> (Vec<f64>, Vec<f64>) {
        let f = egonet_features(g);
        (f.n, f.e)
    }

    #[test]
    fn node_grads_loss_matches_direct_eval() {
        let g = generators::erdos_renyi(60, 0.1, 1);
        let (n, e) = feature_vectors(&g);
        let targets = [0, 5, 9];
        let ng = node_grads(&n, &e, &targets).unwrap();
        let direct = crate::loss::surrogate_loss_from_features(&n, &e, &targets).unwrap();
        assert!((ng.loss - direct).abs() < 1e-9);
    }

    #[test]
    fn node_grads_match_finite_difference_on_features() {
        // Perturb N_k / E_k directly and compare with g_n / g_e.
        let g = generators::erdos_renyi(40, 0.15, 2);
        let (n, e) = feature_vectors(&g);
        let targets = [1, 3];
        let ng = node_grads(&n, &e, &targets).unwrap();
        let h = 1e-5;
        for k in [0usize, 1, 3, 10, 20] {
            // dL/dN_k
            let mut np = n.clone();
            np[k] += h;
            let mut nm = n.clone();
            nm[k] -= h;
            let lp = crate::loss::surrogate_loss_from_features(&np, &e, &targets).unwrap();
            let lm = crate::loss::surrogate_loss_from_features(&nm, &e, &targets).unwrap();
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - ng.g_n[k]).abs() < 1e-4 * (1.0 + fd.abs()),
                "g_n[{k}]: analytic {} vs fd {fd}",
                ng.g_n[k]
            );
            // dL/dE_k
            let mut ep = e.clone();
            ep[k] += h;
            let mut em = e.clone();
            em[k] -= h;
            let lp = crate::loss::surrogate_loss_from_features(&n, &ep, &targets).unwrap();
            let lm = crate::loss::surrogate_loss_from_features(&n, &em, &targets).unwrap();
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - ng.g_e[k]).abs() < 1e-4 * (1.0 + fd.abs()),
                "g_e[{k}]: analytic {} vs fd {fd}",
                ng.g_e[k]
            );
        }
    }

    #[test]
    fn pair_grad_agrees_with_correction_map() {
        let g = generators::barabasi_albert(80, 3, 3);
        let (n, e) = feature_vectors(&g);
        let ng = node_grads(&n, &e, &[2, 7]).unwrap();
        let corr = correction_map(&g, &ng.g_e);
        for (i, j) in [(0u32, 1u32), (2, 3), (10, 40), (5, 6), (70, 79)] {
            let direct = pair_grad(&g, &ng, i, j);
            let via_map = pair_grad_with_corrections(&ng, &corr, i, j);
            assert!(
                (direct - via_map).abs() < 1e-12,
                "pair ({i},{j}): {direct} vs {via_map}"
            );
        }
    }

    #[test]
    fn dense_features_match_sparse_on_binary_graph() {
        let g = generators::erdos_renyi(50, 0.1, 4);
        let (n_sparse, e_sparse) = feature_vectors(&g);
        let a = ba_linalg::Matrix::from_vec(50, 50, ba_graph::adjacency::to_row_major(&g));
        let (n_dense, e_dense) = dense_features(&a, 2);
        for k in 0..50 {
            assert!((n_sparse[k] - n_dense[k]).abs() < 1e-9);
            assert!((e_sparse[k] - e_dense[k]).abs() < 1e-9, "node {k}");
        }
    }

    #[test]
    fn dense_pair_gradient_matches_sparse_on_binary_graph() {
        let g = generators::erdos_renyi(40, 0.12, 5);
        let (n, e) = feature_vectors(&g);
        let ng = node_grads(&n, &e, &[0, 8]).unwrap();
        let a = ba_linalg::Matrix::from_vec(40, 40, ba_graph::adjacency::to_row_major(&g));
        let dense = dense_pair_gradient(&a, &ng, 2);
        for i in 0..40u32 {
            for j in (i + 1)..40u32 {
                let sparse = pair_grad(&g, &ng, i, j);
                let d = dense[(i as usize, j as usize)];
                assert!(
                    (sparse - d).abs() < 1e-9,
                    "pair ({i},{j}): sparse {sparse} vs dense {d}"
                );
            }
        }
    }

    #[test]
    fn empty_targets_zero_gradient() {
        let g = generators::erdos_renyi(30, 0.15, 6);
        let (n, e) = feature_vectors(&g);
        let ng = node_grads(&n, &e, &[]).unwrap();
        assert_eq!(ng.loss, 0.0);
        for k in 0..30 {
            assert_eq!(ng.g_n[k], 0.0);
            assert_eq!(ng.g_e[k], 0.0);
        }
    }
}
