//! BinarizedAttack (paper Sec. V-B, Alg. 1) — the proposed method.
//!
//! Every candidate pair `{i,j}` carries a continuous soft decision
//! variable `Ż ∈ [0,1]` and a discrete dummy `Z = −binarized(2Ż − 1)`;
//! `Z = −1` means "flip this entry of A₀". The poisoned adjacency is
//! `A = (A₀ − ½) ⊙ Z + ½` (Eq. (6)), i.e. entries with `Ż > ½` are
//! flipped. Each iteration:
//!
//! * **forward** — evaluate the surrogate objective on the *discrete*
//!   poisoned graph (this is the paper's key difference from ContinuousA:
//!   the objective always sees a realisable graph);
//! * **backward** — compute `dL/dŻ = G_ij·(1 − 2A₀_ij)` through the
//!   straight-through estimator (`∂binarized/∂x :≈ 1`, so
//!   `∂Z/∂Ż = −2`, and `∂A/∂Z = A₀ − ½`), add the LASSO subgradient `λ`,
//!   and take a projected gradient step on `Ż` (Eq. (8)).
//!
//! After sweeping the penalty grid `Λ`, the per-budget solution is
//! extracted by ranking candidates by `Ż` and flipping the top-`b` valid
//! pairs, keeping the best λ for each budget (Alg. 1, lines 16–19).
//!
//! Implementation notes vs the paper: gradients are normalised by their
//! max-abs before the step (the paper does not specify a step-size
//! schedule), and λ is therefore expressed in normalised-gradient units.
//! The `ablation` bench quantifies both choices.

use crate::attack::{AttackConfig, AttackError, AttackOutcome, StructuralAttack};
use crate::pair::{static_mask, Candidates};
use crate::session::AttackSession;
use ba_graph::{EdgeOp, GraphView};

/// The BinarizedAttack optimiser.
#[derive(Debug, Clone)]
pub struct BinarizedAttack {
    config: AttackConfig,
    /// LASSO penalty grid `Λ` (normalised-gradient units).
    pub lambdas: Vec<f64>,
    /// PGD iterations `T` per λ.
    pub iterations: usize,
    /// Learning rate `η` (step size after gradient normalisation).
    pub learning_rate: f64,
}

impl BinarizedAttack {
    /// Creates the attack with default hyper-parameters
    /// (`Λ = {0.002, 0.02}`, `T = 300`, `η = 0.05`). The small-λ/long-T
    /// regime matters: large penalties cap how many soft decisions can
    /// accumulate, which is exactly where GradMaxSearch would otherwise
    /// overtake at big budgets (see the `ablation` bench).
    pub fn new(config: AttackConfig) -> Self {
        Self {
            config,
            lambdas: vec![0.002, 0.02],
            iterations: 300,
            learning_rate: 0.05,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AttackConfig {
        &self.config
    }

    /// Builder-style override of the λ grid.
    pub fn with_lambdas(mut self, lambdas: Vec<f64>) -> Self {
        assert!(!lambdas.is_empty(), "need at least one lambda");
        self.lambdas = lambdas;
        self
    }

    /// Builder-style override of the iteration count.
    pub fn with_iterations(mut self, iters: usize) -> Self {
        self.iterations = iters;
        self
    }

    /// Builder-style override of the learning rate.
    pub fn with_learning_rate(mut self, lr: f64) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Runs the PGD loop for one λ, returning `Ż` snapshots (periodic +
    /// final — Alg. 1 extracts the best discrete solution over the whole
    /// sweep, and intermediate iterates often dominate for small budgets)
    /// and the loss trajectory.
    fn optimise_one_lambda(
        &self,
        session: &mut AttackSession<'_>,
        candidates: &Candidates,
        mask: &[bool],
        lambda: f64,
    ) -> Result<(Vec<Vec<f64>>, Vec<f64>), AttackError> {
        session.reset();
        let base = session.base();
        let mut zdot = vec![0.0f64; candidates.len()];
        let mut grads = vec![0.0f64; candidates.len()];
        // Current flip set (candidate indices with Ż > ½).
        let mut flipped = vec![false; candidates.len()];
        let mut trajectory = Vec::with_capacity(self.iterations);
        let mut snapshots: Vec<Vec<f64>> = Vec::new();
        let snap_every = (self.iterations / 4).max(10);

        for t in 0..self.iterations {
            if t > 0 && t % snap_every == 0 {
                snapshots.push(zdot.clone());
            }
            // Forward: objective and node grads on the *discrete* graph
            // (features are maintained incrementally by the session).
            let ng = session.node_grads()?;
            trajectory.push(ng.loss);
            // Backward: sparse parallel assembly of G_ij per candidate,
            // then the straight-through sign `1 − 2A₀_ij` and the
            // normalised-step scale.
            session.pair_gradients_into(&ng, candidates, mask, &mut grads);
            let mut max_abs = 0.0f64;
            candidates.for_each(|idx, i, j| {
                if !mask[idx] {
                    return; // grads[idx] is already 0.0
                }
                let s = if base.has_edge(i, j) { -1.0 } else { 1.0 }; // 1 − 2A₀
                let gr = grads[idx] * s;
                grads[idx] = gr;
                max_abs = max_abs.max(gr.abs());
            });
            if max_abs == 0.0 {
                break; // zero gradient everywhere: nothing to optimise
            }
            let scale = self.learning_rate / max_abs;
            let shrink = self.learning_rate * lambda;
            for idx in 0..zdot.len() {
                if !mask[idx] {
                    continue;
                }
                // PGD step with the LASSO subgradient (Ż ≥ 0 always, so
                // sign(Ż) = +1) and projection onto [0,1].
                zdot[idx] = (zdot[idx] - scale * grads[idx] - shrink).clamp(0.0, 1.0);
            }

            // Re-binarise: toggle the graph wherever the flip set changed.
            let mut changed = Vec::new();
            candidates.for_each(|idx, i, j| {
                let want = zdot[idx] > 0.5;
                if want != flipped[idx] {
                    changed.push((idx, i, j, want));
                }
            });
            for (idx, i, j, want) in changed {
                session
                    .toggle(i, j)
                    .ok_or(AttackError::InvalidCandidatePair(i, j))?;
                flipped[idx] = want;
            }
        }
        snapshots.push(zdot);
        Ok((snapshots, trajectory))
    }
}

impl Default for BinarizedAttack {
    fn default() -> Self {
        Self::new(AttackConfig::default())
    }
}

/// Extracts the top-`b` flips from a soft decision vector, applying
/// dynamic validity (op kind via the static mask, singleton protection
/// against the *evolving* poisoned graph). Returns the ops and the
/// resulting surrogate loss.
pub(crate) fn extract_budget(
    session: &mut AttackSession<'_>,
    candidates: &Candidates,
    mask: &[bool],
    scores: &[f64],
    b: usize,
    forbid_singletons: bool,
) -> Result<(Vec<EdgeOp>, f64), AttackError> {
    // Rank candidates by soft score, descending; ties by index for
    // determinism.
    let mut order: Vec<usize> = (0..scores.len())
        .filter(|&i| mask[i] && scores[i] > 0.0)
        .collect();
    order.sort_by(|&a, &bidx| scores[bidx].total_cmp(&scores[a]).then(a.cmp(&bidx)));
    session.reset();
    let mut ops = Vec::with_capacity(b);
    for idx in order {
        if ops.len() >= b {
            break;
        }
        let (i, j) = candidates.pair(idx);
        let g = session.graph();
        if g.has_edge(i, j) && forbid_singletons && !g.deletion_keeps_no_singletons(i, j) {
            continue;
        }
        let op = session
            .toggle(i, j)
            .ok_or(AttackError::InvalidCandidatePair(i, j))?;
        ops.push(op);
    }
    let loss = session.loss()?;
    Ok((ops, loss))
}

impl StructuralAttack for BinarizedAttack {
    fn name(&self) -> &'static str {
        "binarizedattack"
    }

    fn attack_with_session(
        &self,
        session: &mut AttackSession<'_>,
        budget: usize,
    ) -> Result<AttackOutcome, AttackError> {
        if self.lambdas.is_empty() {
            return Err(AttackError::EmptyLambdaGrid);
        }
        // Whole-run memo, keyed on the clean state plus every hyper-
        // parameter that steers the search (budget, T, η, the λ grid in
        // order, and the candidate/op configuration).
        session.reset();
        let bits = self.config.memo_bits();
        let mut key_parts = vec![
            2,
            budget as u64,
            self.iterations as u64,
            self.learning_rate.to_bits(),
        ];
        key_parts.extend(self.lambdas.iter().map(|l| l.to_bits()));
        key_parts.extend(bits);
        let run_key = session.run_key(&key_parts);
        if let Some(outcome) = session.memo_run_probe(run_key) {
            return Ok(outcome);
        }
        let base = session.base();
        let targets = session.targets().to_vec();
        let candidates = Candidates::build(self.config.scope, base, &targets);
        if candidates.is_empty() {
            return Err(AttackError::NoCandidates);
        }
        let mask = static_mask(
            &candidates,
            base,
            self.config.op_kind,
            self.config.forbid_singletons,
        );

        // Optimise per λ, collecting Ż snapshots across the whole sweep.
        // The session is reused across λs and extractions: resetting the
        // overlay is O(edits), the substrate is never rebuilt.
        let mut sweep: Vec<Vec<f64>> = Vec::new();
        let mut trajectory = Vec::new();
        for &lambda in &self.lambdas {
            let (snapshots, traj) =
                self.optimise_one_lambda(session, &candidates, &mask, lambda)?;
            if traj.len() > trajectory.len() {
                trajectory = traj; // keep the longest trace for ablations
            }
            sweep.extend(snapshots);
        }

        // Per-budget extraction: best λ wins (Alg. 1 lines 16–19). The
        // budget constraint is `≤ b`, not `= b`, so if the top-b flips of
        // every λ are worse than the best smaller solution we keep the
        // smaller one — this makes the surrogate loss monotone in budget
        // (forcing weak extra flips can otherwise *hurt*).
        let mut ops_per_budget: Vec<Vec<EdgeOp>> = Vec::with_capacity(budget);
        let mut loss_per_budget: Vec<f64> = Vec::with_capacity(budget);
        for b in 1..=budget {
            let mut best: Option<(Vec<EdgeOp>, f64)> = None;
            for zdot in &sweep {
                let (ops, loss) = extract_budget(
                    session,
                    &candidates,
                    &mask,
                    zdot,
                    b,
                    self.config.forbid_singletons,
                )?;
                if best.as_ref().is_none_or(|(_, bl)| loss < *bl) {
                    best = Some((ops, loss));
                }
            }
            let (mut ops, mut loss) = best.ok_or(AttackError::EmptyLambdaGrid)?;
            if let (Some(prev_loss), Some(prev_ops)) =
                (loss_per_budget.last().copied(), ops_per_budget.last())
            {
                if prev_loss < loss {
                    ops = prev_ops.clone();
                    loss = prev_loss;
                }
            }
            ops_per_budget.push(ops);
            loss_per_budget.push(loss);
        }
        let outcome = AttackOutcome {
            name: self.name().to_string(),
            ops_per_budget,
            surrogate_loss_per_budget: loss_per_budget,
            loss_trajectory: trajectory,
        };
        session.memo_run_store(run_key, &outcome);
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::{CandidateScope, EdgeOpKind};
    use ba_graph::{generators, Graph, NodeId};
    use ba_oddball::OddBall;

    fn anomalous_graph(seed: u64) -> (Graph, Vec<NodeId>) {
        let mut g = generators::erdos_renyi(150, 0.04, seed);
        generators::attach_isolated(&mut g, seed + 1);
        let members: Vec<NodeId> = (0..10).collect();
        generators::plant_near_clique(&mut g, &members, 1.0, seed + 2);
        let model = OddBall::default().fit(&g).unwrap();
        let targets: Vec<NodeId> = model.top_k(3).into_iter().map(|(i, _)| i).collect();
        (g, targets)
    }

    fn fast_attack() -> BinarizedAttack {
        BinarizedAttack::default()
            .with_iterations(60)
            .with_lambdas(vec![0.01, 0.05])
    }

    #[test]
    fn reduces_true_anomaly_score() {
        let (g, targets) = anomalous_graph(31);
        let outcome = fast_attack().attack(&g, &targets, 15).unwrap();
        let curve = outcome
            .ascore_curve(&g, &targets, &OddBall::default())
            .unwrap();
        let tau = AttackOutcome::tau_as(&curve, 15);
        assert!(tau > 0.25, "τ_as = {tau}; curve = {curve:?}");
    }

    #[test]
    fn budget_respected_exactly() {
        let (g, targets) = anomalous_graph(33);
        let outcome = fast_attack().attack(&g, &targets, 10).unwrap();
        assert_eq!(outcome.max_budget(), 10);
        for (b, ops) in outcome.ops_per_budget.iter().enumerate() {
            assert!(ops.len() <= b + 1, "budget {b} exceeded: {} ops", ops.len());
            // Ops must be unique pairs.
            let mut seen = std::collections::HashSet::new();
            for op in ops {
                assert!(seen.insert((op.u, op.v)));
            }
        }
    }

    #[test]
    fn loss_decreases_with_budget_on_average() {
        let (g, targets) = anomalous_graph(35);
        let outcome = fast_attack().attack(&g, &targets, 12).unwrap();
        let losses = &outcome.surrogate_loss_per_budget;
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "losses: {losses:?}"
        );
    }

    #[test]
    fn optimiser_trajectory_recorded_and_improving() {
        let (g, targets) = anomalous_graph(37);
        let outcome = fast_attack().attack(&g, &targets, 5).unwrap();
        assert!(outcome.loss_trajectory.len() > 10);
        let first = outcome.loss_trajectory[0];
        let min = outcome
            .loss_trajectory
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!(
            min < first,
            "trajectory never improved: {first} -> min {min}"
        );
    }

    #[test]
    fn add_only_mode_only_adds() {
        let (g, targets) = anomalous_graph(39);
        let cfg = AttackConfig {
            op_kind: EdgeOpKind::AddOnly,
            ..AttackConfig::default()
        };
        let outcome = BinarizedAttack::new(cfg)
            .with_iterations(40)
            .with_lambdas(vec![0.02])
            .attack(&g, &targets, 8)
            .unwrap();
        for op in outcome.ops(8) {
            assert!(op.added);
        }
    }

    #[test]
    fn delete_only_mode_only_deletes() {
        let (g, targets) = anomalous_graph(41);
        let cfg = AttackConfig {
            op_kind: EdgeOpKind::DeleteOnly,
            ..AttackConfig::default()
        };
        let outcome = BinarizedAttack::new(cfg)
            .with_iterations(40)
            .with_lambdas(vec![0.02])
            .attack(&g, &targets, 8)
            .unwrap();
        for op in outcome.ops(8) {
            assert!(!op.added);
        }
        // Delete-only on a planted clique should still help.
        let curve = outcome
            .ascore_curve(&g, &targets, &OddBall::default())
            .unwrap();
        assert!(AttackOutcome::tau_as(&curve, 8) > 0.1, "curve = {curve:?}");
    }

    #[test]
    fn scoped_run_matches_interface() {
        let (g, targets) = anomalous_graph(43);
        let cfg = AttackConfig {
            scope: CandidateScope::TargetNeighborhood,
            ..AttackConfig::default()
        };
        let outcome = BinarizedAttack::new(cfg)
            .with_iterations(40)
            .with_lambdas(vec![0.02])
            .attack(&g, &targets, 10)
            .unwrap();
        let curve = outcome
            .ascore_curve(&g, &targets, &OddBall::default())
            .unwrap();
        assert!(AttackOutcome::tau_as(&curve, 10) > 0.1, "curve = {curve:?}");
    }

    #[test]
    fn deterministic_given_seed_and_config() {
        let (g, targets) = anomalous_graph(45);
        let a = fast_attack().attack(&g, &targets, 6).unwrap();
        let b = fast_attack().attack(&g, &targets, 6).unwrap();
        assert_eq!(a.ops_per_budget, b.ops_per_budget);
    }

    #[test]
    fn no_singletons_created() {
        let (g, targets) = anomalous_graph(47);
        let outcome = fast_attack().attack(&g, &targets, 20).unwrap();
        let poisoned = outcome.poisoned_graph(&g, 20);
        for u in 0..poisoned.num_nodes() as NodeId {
            if g.degree(u) > 0 {
                assert!(poisoned.degree(u) > 0, "node {u} isolated");
            }
        }
    }
}
